"""E12 — Adversarial scenario campaign: faults, attacks, triage.

The robustness counterpart to the performance experiments: the canonical
scenario library (repro.scenario.library) drives the full instrumented
system through honest faults (partitions, loss, latency, crash/churn,
spam, sub-quorum equivocation) and through the paper's attacks
(checkpoint withholding + forged epoch regression, the §II forged
extraction, deep reorgs, a rogue engine swap).  Every honest scenario
must classify ``clean``; every attack must trip *exactly* the auditor it
targets (``expected-violation``).

A second one-scenario campaign is the triage drill: the forged-extraction
attack deliberately mislabeled as ``safe``.  The runner must classify it
UNEXPECTED, dump a postmortem bundle, and ``python -m
repro.scenario.report`` must exit non-zero on its campaign file — proof
the nightly pipeline would actually page on a novel violation.

Expected shape: 13/13 library verdicts correct; the drill produces ≥1
bundle and a failing triage exit code; whole thing in well under a
minute of wall time.
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - standalone `python benchmarks/...`
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        ),
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

from repro.scenario import library
from repro.scenario import report as triage
from repro.scenario.campaign import CampaignRunner
from repro.scenario.spec import Expectation, VERDICT_UNEXPECTED

from common import bench_out_dir, run_once, show_table, write_bench_json

SEED = 7


def _mislabeled_forged_extraction():
    """The forged-extraction attack claiming to be a safe scenario."""
    scenario = library.forged_extraction()
    scenario.name = "injected-unexpected"
    scenario.expect = Expectation.safe()
    return scenario


def _run():
    out_dir = bench_out_dir()

    campaign = CampaignRunner(
        "e12_library",
        list(library.CANONICAL),
        seeds=(SEED,),
        out_dir=out_dir,
        postmortem_dir=out_dir,
    )
    report = campaign.run()

    drill = CampaignRunner(
        "e12_triage_drill",
        [_mislabeled_forged_extraction],
        seeds=(SEED,),
        out_dir=out_dir,
        postmortem_dir=out_dir,
    )
    drill_report = drill.run()

    return {
        "library": report,
        "library_path": campaign.path,
        "drill": drill_report,
        "drill_path": drill.path,
    }


def _check(result):
    report = result["library"]
    assert report["ok"], f"library campaign not OK: {report['summary']}"
    for run in report["runs"]:
        if run["expected"] == "safe":
            assert run["verdict"] == "clean", (
                f"{run['scenario']}: honest scenario not clean: {run['notes']}"
            )
        else:
            assert run["verdict"] == "expected-violation", (
                f"{run['scenario']}: attack misclassified: {run['notes']}"
            )
            assert run["tripped"], f"{run['scenario']}: no auditor named"

    drill = result["drill"]
    assert not drill["ok"], "mislabeled attack slipped through as OK"
    (bad,) = drill["runs"]
    assert bad["verdict"] == VERDICT_UNEXPECTED
    assert bad["bundles"], "unexpected verdict left no postmortem bundle"
    for bundle in bad["bundles"]:
        assert os.path.exists(bundle), f"missing bundle {bundle}"

    # The triage CLI is the CI gate: green on the library, red on the drill.
    assert triage.main([result["library_path"]]) == 0
    assert triage.main([result["drill_path"]]) == 1


def _show(result):
    report = result["library"]
    show_table(
        f"E12 — scenario campaign verdicts (seed {SEED})",
        ["scenario", "expected", "verdict", "tripped"],
        [
            (
                run["scenario"],
                run["expected"],
                run["verdict"],
                ",".join(run["tripped"]) or "-",
            )
            for run in report["runs"] + result["drill"]["runs"]
        ],
    )
    rows = [
        {
            "scenario": run["scenario"],
            "campaign": name,
            "seed": run["seed"],
            "expected": run["expected"],
            "verdict": run["verdict"],
            "ok": run["ok"],
            "tripped": run["tripped"],
            "heights": run["heights"],
            "events_executed": run["sim"].get("events_executed"),
            "bundles": len(run["bundles"]),
        }
        for name, runs in (
            ("e12_library", report["runs"]),
            ("e12_triage_drill", result["drill"]["runs"]),
        )
        for run in runs
    ]
    write_bench_json(
        "e12_campaign",
        rows=rows,
        extra={
            "library_summary": report["summary"],
            "library_ok": report["ok"],
            "drill_summary": result["drill"]["summary"],
            "drill_flagged": not result["drill"]["ok"],
            "campaign_files": [result["library_path"], result["drill_path"]],
        },
    )


@pytest.mark.benchmark(group="e12")
def test_e12_campaign(benchmark):
    result = run_once(benchmark, _run)
    _show(result)
    _check(result)


if __name__ == "__main__":
    outcome = _run()
    _show(outcome)
    _check(outcome)
    print("\nE12 campaign: all verdicts correct, triage drill flagged.")

"""E11 — Accelerated cross-net messages (§IV-A's direct certification).

"To accelerate the process, each SA in the path can send a direct message
to the destination, certifying that the user is the legitimate owner of
the funds … to indicate a pending payment or even … to start operating as
if these funds were already settled."

We measure, per bottom-up transfer: time until a quorum-backed pending
certificate is visible at the destination vs time until checkpoint-bound
settlement, across checkpoint periods.

Expected shape: certificate latency is a couple of block/gossip rounds and
*independent of the checkpoint period*; settlement latency grows with the
period, so acceleration's advantage widens with slower checkpointing.
"""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig

from common import capture_sim, run_once, show_table, write_bench_json

BLOCK_TIME = 0.25
PERIODS = (8, 16, 32)
N_TRANSFERS = 5


def _run_period(period: int, seed: int):
    system = HierarchicalSystem(
        seed=seed, root_validators=3, root_block_time=0.5,
        checkpoint_period=period, accelerate_root=True,
        wallet_funds={"payer": 10**9},
    ).start()
    capture_sim(system.sim)
    subnet = system.spawn_subnet(
        SubnetConfig(name="acc", validators=3, block_time=BLOCK_TIME,
                     checkpoint_period=period, accelerate=True)
    )
    payer = system.wallets["payer"]
    system.fund_subnet(payer, subnet, payer.address, 10**8)
    system.wait_for(lambda: system.balance(subnet, payer.address) >= 10**8, timeout=60.0)
    root_node = system.node(ROOTNET)

    certificate_lat, settlement_lat = [], []
    for i in range(N_TRANSFERS):
        sink = system.create_wallet(f"e11-{period}-{i}")
        start = system.sim.now
        system.cross_send(payer, subnet, ROOTNET, sink.address, 1_000)
        ok_cert = system.wait_for(
            lambda: root_node.acceleration.pending_for(sink.address) == 1_000,
            timeout=60.0,
        )
        certificate_lat.append(system.sim.now - start if ok_cert else float("nan"))
        ok_settle = system.wait_for(
            lambda: system.balance(ROOTNET, sink.address) == 1_000, timeout=240.0
        )
        settlement_lat.append(system.sim.now - start if ok_settle else float("nan"))
        system.run_for(period * BLOCK_TIME * 0.3)
    return {
        "period": period,
        "cert_mean": sum(certificate_lat) / len(certificate_lat),
        "settle_mean": sum(settlement_lat) / len(settlement_lat),
    }


@pytest.mark.benchmark(group="e11")
def test_e11_accelerated_crossmsgs(benchmark):
    def experiment():
        return [_run_period(p, 1100 + p) for p in PERIODS]

    rows = run_once(benchmark, experiment)

    show_table(
        "E11 — pending-payment certificate vs checkpoint settlement "
        f"(mean over {N_TRANSFERS} transfers)",
        ["checkpoint period", "window (s)", "certificate visible (s)",
         "settled (s)", "speedup"],
        [
            (row["period"], row["period"] * BLOCK_TIME,
             row["cert_mean"], row["settle_mean"],
             row["settle_mean"] / row["cert_mean"])
            for row in rows
        ],
    )

    write_bench_json("e11_acceleration", rows=rows)
    for row in rows:
        assert row["cert_mean"] == row["cert_mean"], "certificates never arrived"
        assert row["cert_mean"] < row["settle_mean"]
        # Certificates are block/gossip bound, not window bound.
        assert row["cert_mean"] < 8 * BLOCK_TIME
    # The advantage widens with the checkpoint period.
    assert rows[-1]["settle_mean"] / rows[-1]["cert_mean"] > \
        rows[0]["settle_mean"] / rows[0]["cert_mean"] * 0.8
    assert rows[-1]["settle_mean"] > rows[0]["settle_mean"]

"""E9 — Failing cross-msgs and the revert flow (§IV-B DDoS vector).

Cross-msgs whose application fails at the destination (calls to methods
that abort) must not stall the subnet's consensus; instead each failure
"triggers a new cross-msg with the subnet where the execution of the
message failed as source and the original source of the message as
destination … to revert every intermediate state change".

We inject a mix of healthy and poisoned bottom-up transfers and measure:
liveness (chains keep producing blocks throughout), the revert round-trip
time, and exact supply restoration.

Expected shape: zero stalls; poisoned transfers come back in roughly one
extra checkpoint round; sender balances and circulating supply restored to
the pre-send values; healthy transfers unaffected.
"""

import pytest

from repro.hierarchy import ROOTNET, audit_system

from common import build_hierarchy, run_once, show_table, write_bench_json

BLOCK_TIME = 0.25
PERIOD = 8
N_POISON = 5
N_HEALTHY = 5


def _run():
    system, (subnet,) = build_hierarchy(
        seed=901, n_subnets=1, subnet_block_time=BLOCK_TIME, checkpoint_period=PERIOD,
    )
    system.provision_treasury(subnet, 10**9)
    treasury = system.treasury
    subnet_balance_before = system.balance(subnet, treasury.address)
    circulating_before = system.child_record(ROOTNET, subnet)["circulating"]

    heights_before = system.node(subnet).head().height
    root_height_before = system.node(ROOTNET).head().height

    healthy_sinks = [system.create_wallet(f"e9-ok-{i}") for i in range(N_HEALTHY)]
    poison_value = 100
    t0 = system.sim.now
    for sink in healthy_sinks:
        system.cross_send(treasury, subnet, ROOTNET, sink.address, 50)
    for _ in range(N_POISON):
        # Destination method does not exist on an account actor -> the
        # delivery fails at the rootnet and must revert to the subnet.
        system.cross_send(
            treasury, subnet, ROOTNET, healthy_sinks[0].address, poison_value,
            method="method_that_does_not_exist",
        )

    ok_healthy = system.wait_for(
        lambda: all(system.balance(ROOTNET, s.address) == 50 for s in healthy_sinks),
        timeout=120.0,
    )
    # Reverts restore the treasury's subnet balance completely.
    expected_back = subnet_balance_before - N_HEALTHY * 50
    ok_reverted = system.wait_for(
        lambda: system.balance(subnet, treasury.address) == expected_back,
        timeout=240.0,
    )
    revert_round_trip = system.sim.now - t0
    system.run_for(5.0)

    return {
        "healthy_delivered": ok_healthy,
        "reverted": ok_reverted,
        "revert_round_trip": revert_round_trip,
        "subnet_blocks_made": system.node(subnet).head().height - heights_before,
        "root_blocks_made": system.node(ROOTNET).head().height - root_height_before,
        "circulating_delta": system.child_record(ROOTNET, subnet)["circulating"]
        - circulating_before,
        "bottomup_failures": system.sim.metrics.counters.get(
            "crossmsg./root.bottomup_failed",
        ),
        "audit_ok": audit_system(system).ok,
        "sim_elapsed": system.sim.now - t0,
    }


@pytest.mark.benchmark(group="e9")
def test_e9_failing_crossmsgs_revert(benchmark):
    result = run_once(benchmark, _run)

    show_table(
        f"E9 — {N_POISON} failing + {N_HEALTHY} healthy cross-msgs (§IV-B)",
        ["metric", "value"],
        [
            ("healthy transfers delivered", result["healthy_delivered"]),
            ("poisoned value fully reverted", result["reverted"]),
            ("revert round trip (s)", result["revert_round_trip"]),
            ("subnet blocks during episode", result["subnet_blocks_made"]),
            ("rootnet blocks during episode", result["root_blocks_made"]),
            ("net circulating change from poison",
             result["circulating_delta"] + N_HEALTHY * 50),
            ("supply audit", result["audit_ok"]),
        ],
    )

    write_bench_json("e9_revert", rows=result)
    assert result["healthy_delivered"], "healthy traffic was disturbed"
    assert result["reverted"], "poisoned value never came back"
    # Liveness: both chains kept producing blocks the whole time.
    assert result["subnet_blocks_made"] >= result["sim_elapsed"] / BLOCK_TIME * 0.5
    assert result["root_blocks_made"] > 0
    # The only net circulating change is the healthy outflow.
    assert result["circulating_delta"] == -N_HEALTHY * 50
    assert result["audit_ok"]
    # A revert costs roughly one extra checkpoint round trip: bottom-up leg
    # + top-down return, well under a minute here.
    assert result["revert_round_trip"] < 8 * BLOCK_TIME * PERIOD

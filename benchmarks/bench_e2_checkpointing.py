"""E2 — Checkpoint template population (Fig. 2).

"The checkpoint period in the SA determines the window during which
cross-msgs are accepted in the current checkpoint.  Upon reaching the end
of the period, new cross-msgs begin populating the next checkpoint and a
signature window is opened for the previous one."

We emit one bottom-up cross-msg at a controlled offset within a checkpoint
window and measure (a) the wait until the sealing block closes its window
and (b) the end-to-end time until the value lands on the parent.

Expected shape: the seal wait decreases ~linearly with the arrival offset
(sawtooth over the window); end-to-end latency = seal wait + a roughly
constant signature/commit/application tail.
"""

import pytest

from repro.hierarchy import ROOTNET, SCA_ADDRESS

from common import (
    build_hierarchy,
    fund_subnet_senders,
    run_once,
    show_table,
    write_bench_json,
)

BLOCK_TIME = 0.25
PERIOD = 16  # blocks per window -> window length 4.0s
WINDOW_SECONDS = BLOCK_TIME * PERIOD
OFFSET_FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)


def _measure_offsets():
    system, (subnet,) = build_hierarchy(
        seed=211, n_subnets=1, subnet_block_time=BLOCK_TIME,
        checkpoint_period=PERIOD, root_block_time=0.5,
    )
    (sender,) = fund_subnet_senders(system, subnet, 1, 10**9, tag="e2")
    node = system.node(subnet)
    results = []
    for index, fraction in enumerate(OFFSET_FRACTIONS):
        sink = system.create_wallet(f"e2-sink-{index}")
        # Align to the start of the next full window, then wait the offset.
        height = node.head().height
        next_boundary = ((height // PERIOD) + 1) * PERIOD
        boundary_wait = (next_boundary - height) * BLOCK_TIME
        system.run_for(boundary_wait + fraction * WINDOW_SECONDS)

        submit_time = system.sim.now
        submit_height = node.head().height
        window = submit_height // PERIOD
        system.cross_send(sender, subnet, ROOTNET, sink.address, 100)

        # (a) wait until the window that accepted the msg is sealed.
        seal_key = f"actor/{SCA_ADDRESS.raw}/ckpt/{window}"
        system.wait_for(lambda: node.vm.state.get(seal_key) is not None, timeout=60.0)
        seal_wait = system.sim.now - submit_time
        # (b) end-to-end until the value lands on the parent.
        system.wait_for(
            lambda: system.balance(ROOTNET, sink.address) == 100, timeout=120.0
        )
        e2e = system.sim.now - submit_time
        results.append(
            {"offset": fraction, "seal_wait": seal_wait, "e2e": e2e}
        )
    return results


@pytest.mark.benchmark(group="e2")
def test_e2_checkpoint_window_timing(benchmark):
    rows = run_once(benchmark, _measure_offsets)

    show_table(
        f"E2 — cross-msg wait vs arrival offset in a {WINDOW_SECONDS:.1f}s "
        f"checkpoint window (period {PERIOD} blocks x {BLOCK_TIME}s)",
        ["offset (fraction)", "seal wait (s)", "end-to-end to parent (s)"],
        [(row["offset"], row["seal_wait"], row["e2e"]) for row in rows],
    )
    write_bench_json("e2_checkpointing", rows=rows)

    # Sawtooth: later arrivals wait less for the seal.
    seal_waits = [row["seal_wait"] for row in rows]
    assert seal_waits == sorted(seal_waits, reverse=True)
    # The wait is bounded by one window (plus one block of slack).
    assert all(w <= WINDOW_SECONDS + BLOCK_TIME for w in seal_waits)
    # Expected linear relation: seal_wait ≈ (1 - offset) · window.
    for row in rows:
        expected = (1 - row["offset"]) * WINDOW_SECONDS
        assert abs(row["seal_wait"] - expected) <= 2 * BLOCK_TIME + 0.1
    # End-to-end adds a roughly constant tail after the seal.
    tails = [row["e2e"] - row["seal_wait"] for row in rows]
    assert max(tails) - min(tails) <= WINDOW_SECONDS
    assert all(t > 0 for t in tails)

"""E8 — Collateral lifecycle: slashing, inactivity, kill + save() (§III-B/C).

Three scenarios on live systems:

1. an equivocating checkpoint signer is caught by honest watchers, a fraud
   proof lands at the SA, and the SCA slashes the subnet's collateral;
2. validators leaving drop collateral under ``minCollateral``; the subnet
   turns inactive and the SCA refuses further cross-net traffic;
3. a subnet is killed with user funds inside; a ``save()`` snapshot plus a
   merkle balance proof recovers the funds on the parent.

Expected shape: slashing burns exactly the evidence-backed amount; the
inactive flip is immediate at the threshold; saved-fund claims pay out
exactly the proven balances, once.
"""

import pytest

from repro.crypto.merkle import MerkleTree
from repro.hierarchy import ROOTNET, SCA_ADDRESS, SignaturePolicy, SubnetConfig
from repro.hierarchy import HierarchicalSystem

from common import capture_sim, run_once, show_table, write_bench_json

BLOCK_TIME = 0.25
PERIOD = 4


def _slashing_scenario():
    system = HierarchicalSystem(
        seed=801, root_validators=3, root_block_time=0.5, checkpoint_period=PERIOD,
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(
            name="cheat", validators=3, block_time=BLOCK_TIME,
            checkpoint_period=PERIOD, policy=SignaturePolicy(kind="single"),
            byzantine={0: {"equivocate_checkpoint"}},
        )
    )
    collateral_before = system.child_record(ROOTNET, subnet)["collateral"]
    t0 = system.sim.now
    system.wait_for(
        lambda: system.child_record(ROOTNET, subnet)["slashed_total"] > 0,
        timeout=90.0,
    )
    detect_time = system.sim.now - t0
    # The cheater keeps equivocating every window; accumulated slashes
    # eventually push the collateral under the minimum.
    system.wait_for(
        lambda: system.child_record(ROOTNET, subnet)["status"] == "inactive",
        timeout=120.0,
    )
    record = system.child_record(ROOTNET, subnet)
    return {
        "collateral_before": collateral_before,
        "slashed": record["slashed_total"],
        "status_after": record["status"],
        "detect_time": detect_time,
        "fraud_proofs": system.sim.metrics.counter(
            f"checkpoint.{subnet.path}.fraud_proofs"
        ).value,
    }


def _inactivity_scenario():
    system = HierarchicalSystem(
        seed=803, root_validators=3, root_block_time=0.5, checkpoint_period=PERIOD,
        wallet_funds={"user": 10**6},
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="shrink", validators=3, block_time=BLOCK_TIME,
                     checkpoint_period=PERIOD)
    )
    sa_addr = system.sa_address(subnet)
    for wallet in system.validator_wallets(subnet)[:2]:
        wallet.send(system.node(ROOTNET), sa_addr, method="leave")
    system.wait_for(
        lambda: system.child_record(ROOTNET, subnet)["collateral"] == 100, timeout=30.0
    )
    status_at_threshold = system.child_record(ROOTNET, subnet)["status"]
    system.validator_wallets(subnet)[2].send(system.node(ROOTNET), sa_addr, method="leave")
    system.wait_for(
        lambda: system.child_record(ROOTNET, subnet)["status"] == "inactive",
        timeout=30.0,
    )
    # Cross-net traffic toward the inactive subnet must be refused.
    user = system.wallets["user"]
    before = system.balance(ROOTNET, user.address)
    system.fund_subnet(user, subnet, user.address, 1_000)
    system.run_for(5.0)
    return {
        "status_at_threshold": status_at_threshold,
        "status_after": system.child_record(ROOTNET, subnet)["status"],
        "fund_refused": system.balance(ROOTNET, user.address) == before,
        "circulating": system.child_record(ROOTNET, subnet)["circulating"],
    }


def _save_and_claim_scenario():
    system = HierarchicalSystem(
        seed=805, root_validators=3, root_block_time=0.5, checkpoint_period=PERIOD,
        wallet_funds={"saver": 10**6},
    ).start()
    capture_sim(system.sim)
    subnet = system.spawn_subnet(
        SubnetConfig(name="dying", validators=3, block_time=BLOCK_TIME,
                     checkpoint_period=PERIOD)
    )
    saver = system.wallets["saver"]
    system.fund_subnet(saver, subnet, saver.address, 40_000)
    system.wait_for(lambda: system.balance(subnet, saver.address) >= 40_000, timeout=30.0)

    subnet_vm = system.node(subnet).vm
    balances = sorted(
        (key[len("balance/"):], subnet_vm.state.get(key))
        for key in subnet_vm.state.keys("balance/")
    )
    tree = MerkleTree(balances)
    index = [i for i, (addr, _) in enumerate(balances) if addr == saver.address.raw][0]
    proof = tree.prove(index)

    validator_wallets = system.validator_wallets(subnet)
    validator_wallets[0].send(
        system.node(ROOTNET), SCA_ADDRESS, method="save_state",
        params={"subnet_path": subnet.path, "epoch": system.node(subnet).head().height,
                "state_cid": subnet_vm.state_root(), "balances_root": tree.root},
    )
    for wallet in validator_wallets:
        wallet.send(system.node(ROOTNET), system.sa_address(subnet), method="vote_kill")
    system.wait_for(
        lambda: system.child_record(ROOTNET, subnet)["status"] == "killed", timeout=30.0
    )
    before = system.balance(ROOTNET, saver.address)
    saver.send(
        system.node(ROOTNET), SCA_ADDRESS, method="claim_saved_funds",
        params={"subnet_path": subnet.path, "balance": 40_000, "proof": proof},
    )
    system.wait_for(
        lambda: system.balance(ROOTNET, saver.address) > before, timeout=30.0
    )
    recovered = system.balance(ROOTNET, saver.address) - before
    # A second claim must pay nothing.
    saver.send(
        system.node(ROOTNET), SCA_ADDRESS, method="claim_saved_funds",
        params={"subnet_path": subnet.path, "balance": 40_000, "proof": proof},
    )
    system.run_for(5.0)
    double_paid = system.balance(ROOTNET, saver.address) - before - recovered
    return {"recovered": recovered, "double_paid": double_paid}


@pytest.mark.benchmark(group="e8")
def test_e8_lifecycle(benchmark):
    def experiment():
        return _slashing_scenario(), _inactivity_scenario(), _save_and_claim_scenario()

    slashing, inactivity, recovery = run_once(benchmark, experiment)

    show_table(
        "E8 — collateral lifecycle (§III-B/C)",
        ["scenario", "result"],
        [
            ("equivocation detected in (s)", slashing["detect_time"]),
            ("slashed amount", slashing["slashed"]),
            ("subnet status after slash", slashing["status_after"]),
            ("status at exactly minCollateral", inactivity["status_at_threshold"]),
            ("status below minCollateral", inactivity["status_after"]),
            ("cross-net fund refused while inactive", inactivity["fund_refused"]),
            ("funds recovered from killed subnet", recovery["recovered"]),
            ("double-claim paid", recovery["double_paid"]),
        ],
    )

    write_bench_json(
        "e8_lifecycle",
        rows={"slashing": slashing, "inactivity": inactivity, "recovery": recovery},
    )
    assert slashing["slashed"] > 0
    assert slashing["fraud_proofs"] >= 1
    assert slashing["status_after"] == "inactive"  # slashed below the minimum
    assert inactivity["status_at_threshold"] == "active"
    assert inactivity["status_after"] == "inactive"
    assert inactivity["fund_refused"]
    assert inactivity["circulating"] == 0
    assert recovery["recovered"] == 40_000
    assert recovery["double_paid"] == 0

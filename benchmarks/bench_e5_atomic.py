"""E5 — Atomic execution protocol (Fig. 5, §IV-D).

Atomic swaps across sibling subnets coordinated by the LCA's SCA:

- happy path: time from initialization to commit at the LCA and to the
  result being applied in every party subnet;
- abort path: one party walks away and aborts; everything reverts;
- party-count sweep: 2, 3 and 4 parties (each in its own subnet).

Expected shape: the protocol always terminates (timeliness); commits apply
everywhere or nowhere (atomicity); time-to-commit is a few block/window
rounds at the LCA plus one cross-net notification leg per party subnet;
aborts are no slower than commits.
"""

import pytest

from repro.hierarchy import SCA_ADDRESS, HierarchicalSystem, SubnetConfig
from repro.hierarchy.atomic import AtomicExecutionClient, AtomicParty, asset_owner

from common import capture_sim, run_once, show_table, write_bench_json

BLOCK_TIME = 0.25
PERIOD = 8


def _system_with_parties(seed: int, n_parties: int):
    system = HierarchicalSystem(
        seed=seed, root_validators=3, root_block_time=0.5,
        checkpoint_period=PERIOD,
        wallet_funds={f"party{i}": 10**9 for i in range(n_parties)},
    ).start()
    capture_sim(system.sim)
    parties = []
    for i in range(n_parties):
        subnet = system.spawn_subnet(
            SubnetConfig(name=f"p{i}", validators=3, block_time=BLOCK_TIME,
                         checkpoint_period=PERIOD)
        )
        wallet = system.wallets[f"party{i}"]
        wallet.send(system.node(subnet), SCA_ADDRESS,
                    method="create_asset", params={"name": f"asset-{i}"})
        parties.append(AtomicParty(wallet=wallet, subnet=subnet, assets=(f"asset-{i}",)))
    system.wait_for(
        lambda: all(
            asset_owner(system, p.subnet, p.assets[0]) == p.wallet.address.raw
            for p in parties
        ),
        timeout=30.0,
    )
    return system, parties


def _rotation_executor(inputs):
    """N-party generalisation of the swap: owners rotate by one."""
    owners = sorted({record["owner"] for record in inputs.values()})
    rotate = {owners[i]: owners[(i + 1) % len(owners)] for i in range(len(owners))}
    return {"owners": {name: rotate[r["owner"]] for name, r in inputs.items()}}


def _happy_path(seed: int, n_parties: int):
    system, parties = _system_with_parties(seed, n_parties)
    client = AtomicExecutionClient(
        system, exec_id=f"bench-{n_parties}", parties=parties,
        executor=_rotation_executor,
    )
    t0 = system.sim.now
    assert client.initialize(timeout=60.0)
    t_locked = system.sim.now
    client.execute_offchain()
    client.submit_outputs()
    assert system.wait_for(
        lambda: client.status_at_lca() in ("committed", "aborted"), timeout=60.0
    )
    t_decided = system.sim.now
    assert client.status_at_lca() == "committed"
    assert client.wait_terminated(timeout=240.0)
    t_applied = system.sim.now
    # Atomicity check: every asset rotated.
    for i, party in enumerate(parties):
        expected_new_owner = parties[(i + 1) % n_parties].wallet.address.raw
        owners = sorted(p.wallet.address.raw for p in parties)
        rotate = {owners[j]: owners[(j + 1) % len(owners)] for j in range(len(owners))}
        assert asset_owner(system, party.subnet, party.assets[0]) == rotate[party.wallet.address.raw]
    return {
        "parties": n_parties,
        "lock_time": t_locked - t0,
        "decide_time": t_decided - t0,
        "apply_time": t_applied - t0,
    }


def _abort_path(seed: int):
    system, parties = _system_with_parties(seed, 2)
    client = AtomicExecutionClient(system, exec_id="bench-abort", parties=parties)
    t0 = system.sim.now
    assert client.initialize(timeout=60.0)
    client.abort(party_index=1)
    assert system.wait_for(lambda: client.status_at_lca() == "aborted", timeout=60.0)
    t_decided = system.sim.now
    assert client.wait_terminated(timeout=240.0)
    t_applied = system.sim.now
    for party in parties:
        assert asset_owner(system, party.subnet, party.assets[0]) == party.wallet.address.raw
        record = system.sca_state(party.subnet, f"asset/{party.assets[0]}")
        assert record["locked_by"] is None
    return {"decide_time": t_decided - t0, "apply_time": t_applied - t0}


@pytest.mark.benchmark(group="e5")
def test_e5_atomic_execution(benchmark):
    def experiment():
        sweep = [_happy_path(500 + n, n) for n in (2, 3, 4)]
        abort = _abort_path(510)
        return sweep, abort

    sweep, abort = run_once(benchmark, experiment)

    show_table(
        "E5 — atomic execution (Fig. 5): time from init to lock/decision/apply",
        ["scenario", "parties", "locked (s)", "decided at LCA (s)", "applied everywhere (s)"],
        [
            ("commit", row["parties"], row["lock_time"],
             row["decide_time"], row["apply_time"])
            for row in sweep
        ] + [("abort", 2, "-", abort["decide_time"], abort["apply_time"])],
    )

    write_bench_json("e5_atomic", rows={"sweep": sweep, "abort": abort})
    # Timeliness: everything decided and applied (asserts above), and the
    # decision at the LCA lands within a handful of windows.
    window = BLOCK_TIME * PERIOD
    for row in sweep:
        assert row["decide_time"] < 10 * window
        assert row["apply_time"] >= row["decide_time"]
    # More parties never decide faster than fewer (monotone-ish sweep).
    assert sweep[0]["decide_time"] <= sweep[-1]["decide_time"] + 2 * window
    # Aborts are not slower than commits by more than a window.
    assert abort["decide_time"] <= sweep[0]["decide_time"] + 2 * window

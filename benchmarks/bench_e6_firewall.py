"""E6 — Firewall property vs traditional sharding's 1% attack (§II, §I).

Hierarchical consensus: an adversary controlling *all* of a subnet's
validators forges bottom-up checkpoints claiming escalating value.  The
parent's SCA releases at most the subnet's genuine circulating supply —
the §II bound — regardless of the claim.

Traditional sharding: the adversary only needs a *fraction* of the global
pool; random assignment occasionally hands it a shard majority (the 1%
attack), and a compromised shard's forgery is unbounded — there is no
firewall.  We report the compromise probability per reshuffle across
adversary fractions and shard counts.

Expected shape: HC extraction flatlines at the circulating supply while
the claimed value grows 10x per row; sharding's compromise probability
rises steeply with shard count and adversary fraction, with unbounded
impact once compromised.
"""

import pytest

from repro.baselines import shard_compromise_probability
from repro.crypto.keys import KeyPair
from repro.hierarchy import ROOTNET, CompromisedSubnet, audit_system

from common import build_hierarchy, run_once, show_table, write_bench_json

INJECTED = 10_000
CLAIM_MULTIPLIERS = (1, 10, 100, 1000)


def _hc_attack_rows():
    rows = []
    for index, multiplier in enumerate(CLAIM_MULTIPLIERS):
        system, (subnet,) = build_hierarchy(
            seed=600 + index, n_subnets=1, subnet_block_time=0.25,
            checkpoint_period=5,
        )
        wallet = system.create_wallet("victim-user", fund=INJECTED * 2)
        system.fund_subnet(wallet, subnet, wallet.address, INJECTED)
        system.wait_for(
            lambda: system.balance(subnet, wallet.address) >= INJECTED, timeout=60.0
        )
        supply = system.child_record(ROOTNET, subnet)["circulating"]
        attacker = KeyPair(("e6-attacker", index)).address
        adversary = CompromisedSubnet(system, subnet)
        adversary.forge_extraction(attacker, value=supply * multiplier, count=4)
        system.run_for(60.0)
        extracted = system.balance(ROOTNET, attacker)
        audit = audit_system(system)
        monitor = system.invariant_monitor
        rows.append({
            "claimed": supply * multiplier,
            "supply": supply,
            "extracted": extracted,
            "audit_ok": audit.ok,
            # The live supply auditor must notice every forged extraction.
            "violations": len(monitor.violations_for("supply")),
        })
    return rows


def _sharding_rows():
    rows = []
    for shards in (4, 16, 64):
        for fraction in (0.05, 0.15, 0.25):
            probability = shard_compromise_probability(
                pool_size=256, shards=shards, adversary_fraction=fraction,
                trials=8000,
            )
            rows.append({
                "shards": shards,
                "adversary": fraction,
                "p_compromise": probability,
            })
    return rows


@pytest.mark.benchmark(group="e6")
def test_e6_firewall_vs_sharding(benchmark):
    def experiment():
        return _hc_attack_rows(), _sharding_rows()

    hc_rows, shard_rows = run_once(benchmark, experiment)

    show_table(
        "E6a — HC compromised subnet: forged claim vs extracted value "
        f"(genuine circulating supply ≈ {INJECTED})",
        ["claimed value", "circulating supply", "extracted",
         "supply invariants hold", "live violations"],
        [
            (row["claimed"], row["supply"], row["extracted"], row["audit_ok"],
             row["violations"])
            for row in hc_rows
        ],
    )
    show_table(
        "E6b — traditional sharding: P(some shard compromised per assignment) "
        "(pool 256; compromised shard ⇒ unbounded forgery)",
        ["shards", "adversary fraction", "P(compromise)"],
        [(row["shards"], row["adversary"], row["p_compromise"]) for row in shard_rows],
    )

    write_bench_json("e6_firewall", rows={"hc": hc_rows, "sharding": shard_rows})
    # HC: extraction never exceeds the circulating supply, for any claim,
    # and the live supply monitor flags every forged extraction as it runs.
    for row in hc_rows:
        assert row["extracted"] <= row["supply"]
        assert row["audit_ok"]
        assert row["violations"] > 0, "supply monitor missed the attack"
    # The bound is tight: the attacker does drain what was genuinely there.
    assert any(row["extracted"] >= row["supply"] * 0.9 for row in hc_rows)
    # Sharding: compromise probability grows with shards and adversary size.
    by = {(r["shards"], r["adversary"]): r["p_compromise"] for r in shard_rows}
    assert by[(64, 0.25)] > by[(4, 0.25)]
    assert by[(64, 0.25)] > by[(64, 0.05)]
    assert by[(64, 0.25)] > 0.5  # the 1%-attack regime is real

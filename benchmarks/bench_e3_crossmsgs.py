"""E3 — Commitment of cross-net messages vs hierarchy depth (Fig. 3, §IV-A).

Builds a chain of subnets /root/d1/d2/d3 plus a sibling branch and measures
end-to-end latency of:

- top-down transfers from the rootnet to each depth;
- bottom-up transfers from each depth to the rootnet;
- a path message between leaves of the two branches (via the LCA).

Expected shape: top-down latency grows with depth but stays within a few
parent block times per hop (children observe parent SCA state directly);
bottom-up latency is dominated by one checkpoint window per hop, so it
grows by ≈window-length per level; the path message costs roughly the sum
of its bottom-up and top-down legs.
"""

import os

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig
from repro.telemetry import (
    telemetry_snapshot,
    write_chrome_trace,
    write_json,
    write_prometheus,
)

import common
from common import (
    bench_out_dir,
    capture_system,
    perf_snapshot,
    run_once,
    show_table,
    write_bench_json,
)

BLOCK_TIME = 0.25
PERIOD = 8  # 2.0s windows
WINDOW = BLOCK_TIME * PERIOD
DEPTHS = (1, 2, 3)

_SYSTEM = None  # the measured run, kept for the telemetry exports


def _build_deep_system():
    global _SYSTEM
    system = HierarchicalSystem(
        seed=311, root_validators=3, root_block_time=0.5,
        checkpoint_period=PERIOD, wallet_funds={"driver": 10**12},
    ).start()
    # E3 is the telemetry flagship: causal spans for every cross-net
    # transfer below, per-subnet health samples, and live invariant
    # monitors (an honest run must finish with zero violations).
    system.enable_telemetry(
        health_interval=2.0, monitors=True, postmortem_dir=bench_out_dir()
    )
    capture_system(system)
    _SYSTEM = system
    parent = ROOTNET
    chain = []
    for depth in range(1, max(DEPTHS) + 1):
        subnet = system.spawn_subnet(
            SubnetConfig(
                name=f"d{depth}", parent=parent, validators=3,
                block_time=BLOCK_TIME, checkpoint_period=PERIOD,
            )
        )
        chain.append(subnet)
        parent = subnet
    sibling = system.spawn_subnet(
        SubnetConfig(name="side", validators=3, block_time=BLOCK_TIME,
                     checkpoint_period=PERIOD)
    )
    return system, chain, sibling


def _measure():
    system, chain, sibling = _build_deep_system()
    driver = system.wallets["driver"]
    rows = []

    # --- top-down: one message originated at the root, routed hop-by-hop
    # through each SCA on the way down (§IV-A) ---
    for depth in DEPTHS:
        target = chain[depth - 1]
        sink = system.create_wallet(f"e3-td-{depth}")
        start = system.sim.now
        system.cross_send(driver, ROOTNET, target, sink.address, 1_000)
        ok = system.wait_for(
            lambda: system.balance(target, sink.address) >= 1_000, timeout=240.0
        )
        rows.append({
            "kind": "top-down", "depth": depth,
            "latency": system.sim.now - start if ok else float("nan"),
        })

    # Stage treasury funds inside each subnet for the bottom-up phase.
    for subnet in chain:
        system.provision_treasury(subnet, 10**6)
    treasury = system.treasury

    # --- bottom-up: depth d -> root ---
    for depth in DEPTHS:
        source = chain[depth - 1]
        sink = system.create_wallet(f"e3-bu-{depth}")
        start = system.sim.now
        system.cross_send(treasury, source, ROOTNET, sink.address, 500)
        ok = system.wait_for(
            lambda: system.balance(ROOTNET, sink.address) == 500, timeout=400.0
        )
        rows.append({
            "kind": "bottom-up", "depth": depth,
            "latency": system.sim.now - start if ok else float("nan"),
        })

    # --- path message: deepest leaf -> sibling branch (LCA = root) ---
    sink = system.create_wallet("e3-path")
    leaf = chain[-1]
    start = system.sim.now
    system.cross_send(treasury, leaf, sibling, sink.address, 250)
    ok = system.wait_for(
        lambda: system.balance(sibling, sink.address) == 250, timeout=600.0
    )
    rows.append({
        "kind": "path (leaf->sibling)", "depth": len(chain),
        "latency": system.sim.now - start if ok else float("nan"),
    })
    return rows


@pytest.mark.benchmark(group="e3")
def test_e3_crossmsg_latency_vs_depth(benchmark):
    rows = run_once(benchmark, _measure)

    show_table(
        f"E3 — cross-msg end-to-end latency vs depth "
        f"(checkpoint window {WINDOW:.1f}s, subnet block {BLOCK_TIME}s)",
        ["kind", "depth", "latency (s)"],
        [(row["kind"], row["depth"], row["latency"]) for row in rows],
    )

    # Export the full telemetry of the run: machine-readable bench rows,
    # a JSON dump for `python -m repro.telemetry.report`, a Prometheus
    # text file, and a Perfetto-loadable Chrome trace.
    system = _SYSTEM
    tracer = system.span_tracer
    out = bench_out_dir()
    write_bench_json(
        "e3_crossmsgs",
        rows=rows,
        extra={"perf": perf_snapshot(system.sim, common.LAST_WALL_SECONDS)},
    )
    dump = telemetry_snapshot(
        system.sim, tracer=tracer, probe=system.health_probe,
        monitor=system.invariant_monitor,
        wall_seconds=common.LAST_WALL_SECONDS,
    )
    write_json(os.path.join(out, "TELEMETRY_e3.json"), dump)
    write_prometheus(os.path.join(out, "TELEMETRY_e3.prom"), system.sim)
    write_chrome_trace(os.path.join(out, "TRACE_e3.json"), system.sim, tracer)
    # Spawn-time funding also traces, so at least the measured transfers.
    assert tracer.delivered_count() >= len(rows), "every transfer should be spanned"
    assert dump["histograms"].get("xnet.hop.topdown.L1", {}).get("count", 0) > 0
    assert dump["histograms"].get("checkpoint.lag", {}).get("count", 0) > 0
    # An honest deep-hierarchy run trips no live invariant.
    assert dump["invariants"]["violations"] == 0, system.invariant_monitor.summary()

    by = {(r["kind"], r["depth"]): r["latency"] for r in rows}
    # Everything arrived.
    assert all(lat == lat for lat in by.values()), "a transfer never arrived"
    # Top-down is fast: every depth within a few seconds.
    for depth in DEPTHS:
        assert by[("top-down", depth)] < 4 * WINDOW
    # Bottom-up is checkpoint-dominated and grows with depth.
    assert by[("bottom-up", 1)] >= WINDOW * 0.5
    assert by[("bottom-up", 3)] > by[("bottom-up", 1)]
    # Each extra level costs at most ~2 extra windows of wait.
    assert by[("bottom-up", 3)] <= by[("bottom-up", 1)] + 4 * WINDOW
    # The path message pays at least its bottom-up leg.
    assert by[("path (leaf->sibling)", 3)] >= by[("bottom-up", 1)]

"""E1 — Horizontal scaling (§I–II claim; Fig. 1 topology).

Fixed per-chain capacity, offered load proportional to subnet count.
Hierarchical consensus adds capacity with every spawned subnet; the
single chain is capped at one chain's capacity; traditional sharding also
scales but pays periodic reshuffle downtime (§I).

Expected shape: HC throughput grows ≈linearly in the subnet count; the
single chain stays flat; sharding tracks HC minus reshuffle overhead.
"""

import time

import pytest

from repro.baselines import ShardedBaseline, SingleChainBaseline
from repro.workloads import PaymentWorkload, sender_fund_spec

from common import (
    DISPATCH_COLUMNS,
    build_hierarchy,
    dispatch_rows,
    fund_subnet_senders,
    perf_snapshot,
    profile_enabled,
    run_once,
    show_table,
    start_subnet_payments,
    write_bench_json,
)

MEASURE_SECONDS = 40.0
BLOCK_TIME = 0.5
BLOCK_CAPACITY = 20  # messages per block -> 40 tx/s per chain
PER_CHAIN_LOAD = 60.0  # offered tx/s per chain: saturating
SUBNET_COUNTS = (1, 2, 4, 8)


def _hierarchical_throughput(k: int):
    system, subnets = build_hierarchy(
        seed=100 + k,
        n_subnets=k,
        subnet_block_time=BLOCK_TIME,
        max_block_messages=BLOCK_CAPACITY,
        checkpoint_period=20,
        # Continuous profiling on the run that feeds the perf trajectory
        # (the largest hierarchy): BENCH_e1_scaling.json gains a `profile`
        # section and perfcheck can name culprits when the gate trips.
        # BENCH_PROFILE=0 opts out.
        profile=profile_enabled(default=k == max(SUBNET_COUNTS)),
    )
    workloads = []
    for subnet in subnets:
        wallets = fund_subnet_senders(system, subnet, 4, 10**9, tag=f"e1k{k}")
        workloads.append(start_subnet_payments(system, subnet, wallets, PER_CHAIN_LOAD))
    start = system.sim.now
    wall_start = time.perf_counter()
    system.run_for(MEASURE_SECONDS)
    perf = perf_snapshot(system.sim, time.perf_counter() - wall_start)
    committed = sum(w.stats.committed for w in workloads)
    if system.profiler is not None:
        # End attribution here: the baseline runs that follow share the
        # process, and their samples must not pollute this run's profile
        # (write_bench_json's stop() is then a no-op).
        system.profiler.stop()
    return committed / (system.sim.now - start), dispatch_rows(system.sim), perf


def _single_chain_throughput(offered: float) -> float:
    funds = sender_fund_spec(8, scope="e1sc")
    baseline = SingleChainBaseline(
        seed=301, validators=3, block_time=BLOCK_TIME,
        max_block_messages=BLOCK_CAPACITY, wallet_funds=funds,
    ).start()
    senders = [baseline.wallets[n] for n in funds]
    workload = PaymentWorkload(baseline.sim, baseline.nodes, senders, rate=offered).start()
    start = baseline.sim.now
    baseline.run_for(MEASURE_SECONDS)
    return workload.stats.committed / (baseline.sim.now - start)


def _sharded_throughput(k: int) -> float:
    funds = sender_fund_spec(8, scope="e1sh")
    baseline = ShardedBaseline(
        seed=401 + k, shards=k, validators_per_shard=3, block_time=BLOCK_TIME,
        reshuffle_interval=15.0, reshuffle_downtime=2.0, wallet_funds=funds,
    ).start()
    workloads = []
    for shard in range(k):
        senders = [baseline.wallets[n] for n in funds]
        workloads.append(
            PaymentWorkload(
                baseline.sim, baseline.shard_nodes[shard], senders,
                rate=PER_CHAIN_LOAD, rng_scope=f"e1shard{shard}",
            ).start()
        )
    start = baseline.sim.now
    baseline.run_for(MEASURE_SECONDS)
    duration = baseline.sim.now - start
    return sum(w.stats.committed for w in workloads) / duration


@pytest.mark.benchmark(group="e1")
def test_e1_horizontal_scaling(benchmark):
    def experiment():
        rows = []
        dispatch = None
        perf = None
        single = _single_chain_throughput(PER_CHAIN_LOAD * max(SUBNET_COUNTS))
        for k in SUBNET_COUNTS:
            hierarchical, dispatch, perf = _hierarchical_throughput(k)
            rows.append(
                {
                    "subnets": k,
                    "hierarchical": hierarchical,
                    "single_chain": single,
                    "sharded": _sharded_throughput(k),
                    # Simulation-speed figures of the hierarchical run —
                    # the largest k's entry feeds the perf trajectory.
                    **{f"hierarchical_{key}": value for key, value in perf.items()},
                }
            )
        return rows, dispatch, perf

    rows, dispatch, largest_perf = run_once(benchmark, experiment)

    show_table(
        "E1 — throughput (tx/s) vs number of subnets "
        f"(capacity {BLOCK_CAPACITY} msg / {BLOCK_TIME}s block per chain)",
        ["subnets", "hierarchical", "single chain", "sharded (reshuffling)"],
        [
            (row["subnets"], row["hierarchical"], row["single_chain"], row["sharded"])
            for row in rows
        ],
    )
    # Per-event-label dispatch profile of the largest hierarchical run —
    # the instrumented bus must have observed the whole event flow.
    show_table(
        f"E1 — dispatch profile (k={max(SUBNET_COUNTS)} hierarchical run)",
        DISPATCH_COLUMNS,
        dispatch,
    )
    write_bench_json("e1_scaling", rows=rows, extra={"perf": largest_perf})
    assert dispatch, "dispatch bus recorded no events"
    assert all(events > 0 for _, events, *_ in dispatch)

    # Profiling (on by default for the largest run): label CPU shares are
    # fractions of the sample total and must account for ~100% of samples.
    from common import LAST_SYSTEM

    profiler = getattr(LAST_SYSTEM, "profiler", None)
    if profiler is not None and profiler.label_shares():
        total_share = sum(profiler.label_shares().values())
        assert abs(total_share - 1.0) < 1e-9, total_share

    by_k = {row["subnets"]: row for row in rows}
    capacity = BLOCK_CAPACITY / BLOCK_TIME
    # Single chain is capped at one chain's capacity.
    assert by_k[1]["single_chain"] <= capacity * 1.1
    # HC scales: 8 subnets give >= 4x the 1-subnet throughput.
    assert by_k[8]["hierarchical"] >= 4 * by_k[1]["hierarchical"]
    # HC at k=8 far exceeds the single chain.
    assert by_k[8]["hierarchical"] >= 3 * by_k[8]["single_chain"]
    # Sharding scales too but pays reshuffle downtime at equal shard count.
    assert by_k[8]["sharded"] > by_k[1]["single_chain"]
    assert by_k[8]["hierarchical"] >= by_k[8]["sharded"]

"""E10 — Checkpoint period trade-off (§III-B ablation).

Sweeping the checkpoint period quantifies the design trade-off Fig. 2
implies: shorter periods mean lower bottom-up latency but more checkpoint
transactions landing on the parent chain (parent load); longer periods
amortise parent load at the cost of cross-net latency.

Expected shape: bottom-up p50 latency grows ≈linearly with the period;
parent checkpoint-tx rate falls ≈1/period.
"""

import pytest

from repro.hierarchy import ROOTNET

from common import build_hierarchy, run_once, show_table, write_bench_json

BLOCK_TIME = 0.25
PERIODS = (4, 8, 16, 32)
N_TRANSFERS = 8


def _run_period(period: int, seed: int):
    system, (subnet,) = build_hierarchy(
        seed=seed, n_subnets=1, subnet_block_time=BLOCK_TIME,
        checkpoint_period=period,
    )
    system.provision_treasury(subnet, 10**9)
    treasury = system.treasury

    latencies = []
    t0 = system.sim.now
    for i in range(N_TRANSFERS):
        sink = system.create_wallet(f"e10-{period}-{i}")
        start = system.sim.now
        system.cross_send(treasury, subnet, ROOTNET, sink.address, 10)
        ok = system.wait_for(
            lambda: system.balance(ROOTNET, sink.address) == 10, timeout=240.0
        )
        if not ok:
            raise RuntimeError(f"transfer lost at period {period}")
        latencies.append(system.sim.now - start)
        # Decorrelate from window boundaries.
        system.run_for(period * BLOCK_TIME * 0.37)
    elapsed = system.sim.now - t0

    # Parent load: checkpoint submissions that landed on the root chain.
    checkpoint_txs = 0
    sa_addr = system.sa_address(subnet)
    for block in system.node(ROOTNET).store.canonical_chain():
        for signed in block.messages:
            if signed.message.to_addr == sa_addr and signed.message.method == "submit_checkpoint":
                checkpoint_txs += 1
    ordered = sorted(latencies)
    return {
        "period": period,
        "window_s": period * BLOCK_TIME,
        "latency_p50": ordered[len(ordered) // 2],
        "latency_max": ordered[-1],
        "ckpt_tx_per_min": checkpoint_txs / (system.sim.now / 60.0),
        "elapsed": elapsed,
    }


@pytest.mark.benchmark(group="e10")
def test_e10_checkpoint_period_tradeoff(benchmark):
    def experiment():
        return [_run_period(p, 1000 + p) for p in PERIODS]

    rows = run_once(benchmark, experiment)

    show_table(
        "E10 — checkpoint period sweep: bottom-up latency vs parent load",
        ["period (blocks)", "window (s)", "bottom-up p50 (s)", "max (s)",
         "checkpoint txs/min on parent"],
        [
            (row["period"], row["window_s"], row["latency_p50"],
             row["latency_max"], row["ckpt_tx_per_min"])
            for row in rows
        ],
    )

    write_bench_json("e10_overhead", rows=rows)
    by = {row["period"]: row for row in rows}
    # Latency grows with the period…
    assert by[32]["latency_p50"] > by[4]["latency_p50"]
    # …tracking the window length (within a couple of windows of slack).
    assert by[32]["latency_p50"] <= 3 * by[32]["window_s"] + 2.0
    # Parent load falls as the period grows.
    assert by[4]["ckpt_tx_per_min"] > by[32]["ckpt_tx_per_min"]

"""E10 — Checkpoint period trade-off (§III-B ablation).

Sweeping the checkpoint period quantifies the design trade-off Fig. 2
implies: shorter periods mean lower bottom-up latency but more checkpoint
transactions landing on the parent chain (parent load); longer periods
amortise parent load at the cost of cross-net latency.

Expected shape: bottom-up p50 latency grows ≈linearly with the period;
parent checkpoint-tx rate falls ≈1/period.
"""

import gc
import time

import pytest

from repro.hierarchy import ROOTNET

from common import (
    build_hierarchy,
    fund_subnet_senders,
    run_once,
    show_table,
    start_subnet_payments,
    write_bench_json,
)

BLOCK_TIME = 0.25
PERIODS = (4, 8, 16, 32)
N_TRANSFERS = 8

# Profiler-overhead scenario: the E1 largest hierarchy (k=8), shortened.
PROFILE_K = 8
PROFILE_MEASURE_SECONDS = 15.0
# Overhead estimator: median of adjacent-pair process-CPU ratios.
#
# - *process CPU time*, not wall clock: a shared host steals wall time
#   from either mode at random (co-tenant scheduling, frequency
#   throttling), which swamps a single-digit effect.  process_time()
#   counts only cycles this process burned — and it *includes* the
#   sampler thread's own work, so the profiler's true cost is charged.
# - *adjacent pairs*: runs drift within a process (allocator/GC aging,
#   code caches); ratios of back-to-back runs cancel that drift to
#   first order where a per-mode aggregate inherits it.
# - *counterbalanced order* ((off,on) then (on,off), repeating): the
#   residual within-pair drift alternates sign instead of accumulating.
# - *median*: a single descheduled run poisons a mean; the median
#   ignores it.
# - *adaptive*: if the base design's median lands within
#   PROFILE_DECISION_MARGIN of the budget, collect PROFILE_EXTRA_PAIRS
#   more pairs before judging — sequential sampling, not retry-until-pass
#   (all collected pairs count in the final median).
PROFILE_BASE_PAIRS = 5
PROFILE_EXTRA_PAIRS = 5
PROFILE_DECISION_MARGIN = 0.02
OVERHEAD_BUDGET = 0.05  # sampling must cost < 5% process CPU


def _run_period(period: int, seed: int):
    system, (subnet,) = build_hierarchy(
        seed=seed, n_subnets=1, subnet_block_time=BLOCK_TIME,
        checkpoint_period=period,
    )
    system.provision_treasury(subnet, 10**9)
    treasury = system.treasury

    latencies = []
    t0 = system.sim.now
    for i in range(N_TRANSFERS):
        sink = system.create_wallet(f"e10-{period}-{i}")
        start = system.sim.now
        system.cross_send(treasury, subnet, ROOTNET, sink.address, 10)
        ok = system.wait_for(
            lambda: system.balance(ROOTNET, sink.address) == 10, timeout=240.0
        )
        if not ok:
            raise RuntimeError(f"transfer lost at period {period}")
        latencies.append(system.sim.now - start)
        # Decorrelate from window boundaries.
        system.run_for(period * BLOCK_TIME * 0.37)
    elapsed = system.sim.now - t0

    # Parent load: checkpoint submissions that landed on the root chain.
    checkpoint_txs = 0
    sa_addr = system.sa_address(subnet)
    for block in system.node(ROOTNET).store.canonical_chain():
        for signed in block.messages:
            if signed.message.to_addr == sa_addr and signed.message.method == "submit_checkpoint":
                checkpoint_txs += 1
    ordered = sorted(latencies)
    return {
        "period": period,
        "window_s": period * BLOCK_TIME,
        "latency_p50": ordered[len(ordered) // 2],
        "latency_max": ordered[-1],
        "ckpt_tx_per_min": checkpoint_txs / (system.sim.now / 60.0),
        "elapsed": elapsed,
    }


@pytest.mark.benchmark(group="e10")
def test_e10_checkpoint_period_tradeoff(benchmark):
    def experiment():
        return [_run_period(p, 1000 + p) for p in PERIODS]

    rows = run_once(benchmark, experiment)

    show_table(
        "E10 — checkpoint period sweep: bottom-up latency vs parent load",
        ["period (blocks)", "window (s)", "bottom-up p50 (s)", "max (s)",
         "checkpoint txs/min on parent"],
        [
            (row["period"], row["window_s"], row["latency_p50"],
             row["latency_max"], row["ckpt_tx_per_min"])
            for row in rows
        ],
    )

    write_bench_json("e10_overhead", rows=rows)
    by = {row["period"]: row for row in rows}
    # Latency grows with the period…
    assert by[32]["latency_p50"] > by[4]["latency_p50"]
    # …tracking the window length (within a couple of windows of slack).
    assert by[32]["latency_p50"] <= 3 * by[32]["window_s"] + 2.0
    # Parent load falls as the period grows.
    assert by[4]["ckpt_tx_per_min"] > by[32]["ckpt_tx_per_min"]


def _e1_scenario_cpu(profile: bool, seed: int, run_id: int):
    """Process-CPU seconds of the E1 k=8 measured region, profiler on/off.

    ``profile=False`` is explicit so a ``BENCH_PROFILE=1`` environment
    cannot contaminate the baseline rows.  Monitors stay off: the
    comparison isolates the sampler, and less per-run garbage means less
    run-over-run drift for the paired design to cancel.
    """
    # Reset the GC clock so a run isn't billed for its predecessors'
    # surviving garbage.
    gc.collect()
    system, subnets = build_hierarchy(
        seed=seed, n_subnets=PROFILE_K, subnet_block_time=0.5,
        max_block_messages=20, checkpoint_period=20, profile=profile,
        monitors=False,
    )
    for subnet in subnets:
        wallets = fund_subnet_senders(
            system, subnet, 4, 10**9, tag=f"e10prof{run_id}"
        )
        start_subnet_payments(system, subnet, wallets, 60.0)
    # GC pauses land at arbitrary points and their timing differs run to
    # run — variance, not signal.  Pausing collection for the measured
    # region (both modes equally) removes it; the run's garbage is
    # reclaimed by the next run's gc.collect().
    gc.disable()
    try:
        started = time.process_time()
        system.run_for(PROFILE_MEASURE_SECONDS)
        cpu = time.process_time() - started
    finally:
        gc.enable()
    samples = 0
    if system.profiler is not None:
        system.profiler.stop()
        samples = system.profiler.snapshot()["samples"]
    return cpu, samples, system


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@pytest.mark.benchmark(group="e10")
def test_e10_profiler_sampling_overhead(benchmark):
    """The sampling profiler's CPU tax on E1 k=8 stays under 5%."""

    def experiment():
        # Discarded warmup: the first run in a process pays one-time
        # costs (imports, code caches, dict resizing) no mode should own.
        _e1_scenario_cpu(False, seed=100 + PROFILE_K, run_id=99)

        runs = []
        ratios = []
        profiled = [None]

        def collect_pairs(n_pairs):
            for i in range(n_pairs):
                first_on = len(ratios) % 2 == 1  # counterbalance pair order
                pair = {}
                for profile in (first_on, not first_on):
                    cpu, samples, system = _e1_scenario_cpu(
                        profile, seed=100 + PROFILE_K, run_id=len(runs)
                    )
                    runs.append({
                        "profiler": profile, "cpu_seconds": cpu,
                        "samples": samples, "pair": len(ratios),
                    })
                    pair[profile] = cpu
                    if profile:
                        profiled[0] = system
                ratios.append(pair[True] / pair[False] - 1.0)

        collect_pairs(PROFILE_BASE_PAIRS)
        if _median(ratios) >= OVERHEAD_BUDGET - PROFILE_DECISION_MARGIN:
            collect_pairs(PROFILE_EXTRA_PAIRS)
        return runs, ratios, profiled[0]

    runs, ratios, profiled_system = run_once(benchmark, experiment)
    overhead = _median(ratios)

    show_table(
        "E10 — profiler sampling overhead (E1 k=8 scenario, "
        f"{PROFILE_MEASURE_SECONDS:.0f}s simulated, median CPU ratio of "
        f"{len(ratios)} counterbalanced pairs)",
        ["pair", "off cpu (s)", "on cpu (s)", "on/off - 1"],
        [
            (
                pair,
                next(r["cpu_seconds"] for r in runs
                     if r["pair"] == pair and not r["profiler"]),
                next(r["cpu_seconds"] for r in runs
                     if r["pair"] == pair and r["profiler"]),
                f"{ratio:+.1%}",
            )
            for pair, ratio in enumerate(ratios)
        ] + [("median", "", "", f"{overhead:+.1%}")],
    )
    write_bench_json(
        "e10_profiler_overhead",
        rows=runs,
        extra={"profiler_overhead": {
            "pair_ratios": ratios, "overhead": overhead,
            "budget": OVERHEAD_BUDGET, "clock": "process_cpu",
        }},
    )

    # The profiled runs really sampled, and attribution covers everything.
    profiler = profiled_system.profiler
    assert profiler is not None and profiler.snapshot()["samples"] > 0
    shares = profiler.label_shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    # The measured overhead budget of the profiling plane (DESIGN.md).
    assert overhead < OVERHEAD_BUDGET, (
        f"sampling overhead {overhead:.1%} exceeds {OVERHEAD_BUDGET:.0%} budget"
    )

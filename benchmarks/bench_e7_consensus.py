"""E7 — Per-subnet consensus engine comparison (§I, §VI).

The same payment workload on one subnet per engine (PoA, PoS, PoW,
Tendermint, Mir).  The paper's point is pluggability — "each subnet can run
its own independent consensus algorithm" with its own security/performance
trade-off — so we measure where those trade-offs land on our substrate:

Expected shape: PoA/PoS produce steady blocks at the target interval with
instant finality; Tendermint adds vote round trips (slightly longer
commit latency) but stays fork-free; PoW shows exponential interval
variance, nonzero fork/reorg counts, and delayed (depth-k) finality; Mir
multiplies block rate by its leader count.
"""

import math

import pytest

from repro.workloads import PaymentWorkload

from common import (
    build_hierarchy,
    fund_subnet_senders,
    run_once,
    show_table,
    write_bench_json,
)

BLOCK_TIME = 0.5
MEASURE_SECONDS = 40.0
ENGINES = ("poa", "pos", "tendermint", "mir", "pow")


def _run_engine(engine: str, seed: int):
    system, (subnet,) = build_hierarchy(
        seed=seed, n_subnets=1, subnet_validators=4, engine=engine,
        subnet_block_time=BLOCK_TIME, checkpoint_period=20,
    )
    wallets = fund_subnet_senders(system, subnet, 4, 10**9, tag=f"e7{engine}")
    workload = PaymentWorkload(
        system.sim, system.nodes(subnet), wallets, rate=30.0,
        rng_scope=f"e7-{engine}",
    ).start()
    start_time = system.sim.now
    start_height = system.node(subnet).head().height
    system.run_for(MEASURE_SECONDS)
    workload.stop()
    duration = system.sim.now - start_time

    node = system.node(subnet)
    blocks = node.head().height - start_height
    interval_hist = system.sim.metrics.histograms.get(
        f"consensus.{subnet.path}.block_interval"
    )
    forks = sum(n.store.fork_count() for n in system.nodes(subnet))
    reorgs = system.sim.metrics.counters.get(f"chain.{subnet.path}.reorgs")
    return {
        "engine": engine,
        "blocks_per_s": blocks / duration,
        "interval_mean": interval_hist.mean() if interval_hist else math.nan,
        "interval_p95": interval_hist.percentile(95) if interval_hist else math.nan,
        "commit_latency_p50": workload.stats.latency_percentile(50),
        "throughput": workload.stats.committed / duration,
        "forks": forks,
        "reorgs": reorgs.value if reorgs else 0,
        "instant_finality": node.engine.INSTANT_FINALITY,
    }


@pytest.mark.benchmark(group="e7")
def test_e7_engine_comparison(benchmark):
    def experiment():
        return [_run_engine(engine, 700 + i) for i, engine in enumerate(ENGINES)]

    rows = run_once(benchmark, experiment)

    show_table(
        f"E7 — consensus engines under the same workload "
        f"(4 validators, target block {BLOCK_TIME}s, 30 tx/s offered)",
        ["engine", "blocks/s", "interval mean (s)", "interval p95 (s)",
         "tx commit p50 (s)", "tx/s", "forks", "reorgs", "instant finality"],
        [
            (row["engine"], row["blocks_per_s"], row["interval_mean"],
             row["interval_p95"], row["commit_latency_p50"], row["throughput"],
             row["forks"], row["reorgs"], row["instant_finality"])
            for row in rows
        ],
    )

    write_bench_json("e7_consensus", rows=rows)
    by = {row["engine"]: row for row in rows}
    # Slot engines hit the target interval tightly.
    for engine in ("poa", "pos"):
        assert abs(by[engine]["interval_mean"] - BLOCK_TIME) < 0.1
        assert by[engine]["forks"] == 0
    # Tendermint: fork-free, commits within a few block times.
    assert by["tendermint"]["forks"] == 0
    assert by["tendermint"]["commit_latency_p50"] < 5 * BLOCK_TIME
    # Mir multiplies block rate (4 leaders by default).
    assert by["mir"]["blocks_per_s"] > 2.5 * by["poa"]["blocks_per_s"]
    # PoW: exponential intervals (p95 >> mean), and only PoW forks.
    assert by["pow"]["interval_p95"] > 1.5 * by["pow"]["interval_mean"]
    assert not by["pow"]["instant_finality"]
    # Everyone sustains the offered load within slack.
    for row in rows:
        assert row["throughput"] > 20.0

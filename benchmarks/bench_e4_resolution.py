"""E4 — Content resolution protocol: push vs pull (Fig. 4, §IV-C).

Two configurations of the same bottom-up transfer workload:

- **push**: destination peers cache the batches pushed when checkpoints
  are submitted, so at application time content is already local;
- **pull**: destination peers discard pushes (peers "may choose to …
  discard them"), forcing an explicit pull round trip to the source subnet.

Expected shape: both configurations deliver everything; pull adds pubsub
round trips (visible in the message counters) and a small latency penalty
relative to the checkpoint-dominated end-to-end time.
"""

import pytest

from repro.hierarchy import ROOTNET

from common import build_hierarchy, run_once, show_table, write_bench_json

BLOCK_TIME = 0.25
PERIOD = 8
N_TRANSFERS = 10


def _run_mode(seed: int, drop_pushes: bool):
    system, (subnet,) = build_hierarchy(
        seed=seed, n_subnets=1, subnet_block_time=BLOCK_TIME,
        checkpoint_period=PERIOD,
    )
    if drop_pushes:
        for node in system.nodes(ROOTNET):
            node.resolution.cache_pushes = False
    system.provision_treasury(subnet, 10**9)
    treasury = system.treasury

    latencies = []
    for i in range(N_TRANSFERS):
        sink = system.create_wallet(f"e4-{'pull' if drop_pushes else 'push'}-{i}")
        start = system.sim.now
        system.cross_send(treasury, subnet, ROOTNET, sink.address, 100)
        ok = system.wait_for(
            lambda: system.balance(ROOTNET, sink.address) == 100, timeout=120.0
        )
        if not ok:
            raise RuntimeError("transfer lost")
        latencies.append(system.sim.now - start)
    metrics = system.sim.metrics
    return {
        "latencies": latencies,
        "push_stored": metrics.counter("resolution.push_stored").value,
        "pull_sent": metrics.counter("resolution.pull_sent").value,
        "pull_served": metrics.counter("resolution.pull_served").value,
        "resolved": metrics.counter("resolution.resolved").value,
    }


@pytest.mark.benchmark(group="e4")
def test_e4_push_vs_pull_resolution(benchmark):
    def experiment():
        return {
            "push": _run_mode(411, drop_pushes=False),
            "pull": _run_mode(412, drop_pushes=True),
        }

    results = run_once(benchmark, experiment)

    show_table(
        "E4 — content resolution: push vs pull "
        f"({N_TRANSFERS} bottom-up transfers, window {BLOCK_TIME * PERIOD:.1f}s)",
        ["mode", "mean latency (s)", "max latency (s)",
         "pushes stored", "pulls sent", "pulls served", "resolves recvd"],
        [
            (
                mode,
                sum(results[mode]["latencies"]) / len(results[mode]["latencies"]),
                max(results[mode]["latencies"]),
                results[mode]["push_stored"], results[mode]["pull_sent"],
                results[mode]["pull_served"], results[mode]["resolved"],
            )
            for mode in ("push", "pull")
        ],
    )

    write_bench_json("e4_resolution", rows=results)
    push, pull = results["push"], results["pull"]
    # Push mode: destination cached pushes; essentially no pull traffic
    # needed for delivery (the pool may still race a request before the
    # push lands, but content arrives either way).
    assert push["push_stored"] > 0
    # Pull mode: pushes were discarded at the destination; delivery required
    # explicit pull round trips that the source served.
    assert pull["pull_sent"] > 0
    assert pull["pull_served"] > 0
    assert pull["resolved"] > 0
    # Both modes deliver; pull pays extra messages, not orders of magnitude
    # of latency (the checkpoint window dominates end-to-end time).
    assert len(push["latencies"]) == len(pull["latencies"]) == N_TRANSFERS
    push_mean = sum(push["latencies"]) / N_TRANSFERS
    pull_mean = sum(pull["latencies"]) / N_TRANSFERS
    assert pull_mean < push_mean + 3 * BLOCK_TIME * PERIOD

"""Shared helpers for the experiment benchmarks (E1–E10).

Each ``bench_eN_*.py`` module regenerates one figure/claim from the paper
(see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results).  Benchmarks print a result table and assert the
*shape* the paper implies — who wins, roughly by how much, where the
crossovers are — not absolute numbers, since the substrate is a simulator.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.workloads import PaymentWorkload


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def show_table(title, columns, rows) -> Table:
    """Build, print and return a result table — the shared emitter every
    bench uses instead of repeating the Table/add_row/show boilerplate."""
    table = Table(title, columns)
    for row in rows:
        table.add_row(*row)
    table.show()
    return table


DISPATCH_COLUMNS = ("event label", "events", "wall ms", "mean µs", "max µs")


def dispatch_rows(sim, top: int = 8) -> list[tuple]:
    """Busiest per-label dispatch stats from the sim's instrumented bus.

    Also publishes them as ``sim.dispatch.*`` gauges on ``sim.metrics`` so
    the run's metrics snapshot carries per-event-label counts/timings.
    """
    sim.dispatch.publish()
    return [
        (
            row["label"],
            row["events"],
            row["wall_s"] * 1e3,
            row["mean_s"] * 1e6,
            row["max_s"] * 1e6,
        )
        for row in sim.dispatch.summary()[:top]
    ]


def show_dispatch_table(sim, top: int = 8, title: str = "event-dispatch profile") -> Table:
    return show_table(title, DISPATCH_COLUMNS, dispatch_rows(sim, top=top))


def build_hierarchy(
    seed: int,
    n_subnets: int,
    subnet_validators: int = 3,
    subnet_block_time: float = 0.25,
    checkpoint_period: int = 10,
    engine: str = "poa",
    max_block_messages: int = 500,
    root_block_time: float = 0.5,
    wallet_funds=None,
):
    """A rootnet plus *n_subnets* sibling subnets, started."""
    system = HierarchicalSystem(
        seed=seed,
        root_validators=3,
        root_block_time=root_block_time,
        checkpoint_period=checkpoint_period,
        wallet_funds=wallet_funds or {},
    ).start()
    subnets = []
    for i in range(n_subnets):
        subnets.append(
            system.spawn_subnet(
                SubnetConfig(
                    name=f"s{i}",
                    validators=subnet_validators,
                    engine=engine,
                    block_time=subnet_block_time,
                    checkpoint_period=checkpoint_period,
                    max_block_messages=max_block_messages,
                )
            )
        )
    return system, subnets


def fund_subnet_senders(system, subnet, n_senders: int, funds: int, tag: str):
    """Create and fund *n_senders* wallets inside *subnet* (in-protocol)."""
    wallets = [
        system.create_wallet(f"{tag}-{subnet.name}-{i}") for i in range(n_senders)
    ]
    for wallet in wallets:
        system.fund_subnet(system.treasury, subnet, wallet.address, funds)
    ok = system.wait_for(
        lambda: all(system.balance(subnet, w.address) >= funds for w in wallets),
        timeout=120.0,
    )
    if not ok:
        raise RuntimeError(f"funding senders in {subnet} timed out")
    return wallets


def start_subnet_payments(system, subnet, wallets, rate: float) -> PaymentWorkload:
    return PaymentWorkload(
        system.sim,
        system.nodes(subnet),
        wallets,
        rate=rate,
        rng_scope=f"bench-{subnet.path}",
    ).start()

"""Shared helpers for the experiment benchmarks (E1–E10).

Each ``bench_eN_*.py`` module regenerates one figure/claim from the paper
(see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results).  Benchmarks print a result table and assert the
*shape* the paper implies — who wins, roughly by how much, where the
crossovers are — not absolute numbers, since the substrate is a simulator.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro.analysis import Table
from repro.crypto.cid import cid_cache_stats
from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.telemetry import write_chrome_trace
from repro.workloads import PaymentWorkload

# Stashed by run_once / capture_sim so write_bench_json can snapshot the
# run without every experiment function having to thread them through.
LAST_WALL_SECONDS = None
LAST_SIM = None
LAST_SYSTEM = None


def capture_sim(sim):
    """Remember *sim* as the run to snapshot in ``write_bench_json``.

    ``build_hierarchy`` captures automatically; benches that build systems
    or baselines directly call this on the run they want exported.
    """
    global LAST_SIM
    LAST_SIM = sim
    return sim


def capture_system(system):
    """Remember *system* so a crashing bench can dump a postmortem bundle."""
    global LAST_SYSTEM
    previous = LAST_SYSTEM
    if previous is not None and previous is not system:
        # A lingering sampler from an earlier system in the same process
        # would keep profiling (and taxing) this run's thread.
        profiler = getattr(previous, "profiler", None)
        if profiler is not None:
            profiler.stop()
    LAST_SYSTEM = system
    capture_sim(system.sim)
    return system


def profile_enabled(default: bool = False) -> bool:
    """Whether benches should profile: $BENCH_PROFILE overrides *default*."""
    flag = os.environ.get("BENCH_PROFILE")
    if flag is None or flag == "":
        return default
    return flag != "0"


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    If the experiment raises and the last captured system has a flight
    recorder, a postmortem bundle is dumped before the error propagates —
    the crash site's recent history lands next to the BENCH artifacts.
    """

    def timed():
        global LAST_WALL_SECONDS
        started = time.perf_counter()
        try:
            result = fn()
        except BaseException:
            recorder = getattr(LAST_SYSTEM, "flight_recorder", None)
            if recorder is not None:
                recorder.dump(reason="benchmark-exception")
            raise
        LAST_WALL_SECONDS = time.perf_counter() - started
        return result

    return benchmark.pedantic(timed, rounds=1, iterations=1)


def bench_out_dir() -> str:
    """Where BENCH_*.json (and telemetry exports) land: $BENCH_OUT_DIR or cwd."""
    path = os.environ.get("BENCH_OUT_DIR", ".")
    os.makedirs(path, exist_ok=True)
    return path


def _json_sanitize(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {str(k): _json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_sanitize(v) for v in value]
    return value


def write_bench_json(name: str, rows=None, sim=None, extra=None) -> str:
    """Write ``BENCH_<name>.json``: result rows + metrics snapshot + timing.

    Machine-readable companion to the printed tables, so CI can archive
    every run and regressions are diffable.  *sim* defaults to the last
    captured simulator (see :func:`capture_sim`).
    """
    sim = sim if sim is not None else LAST_SIM
    document = {
        "schema": "repro.bench/v1",
        "bench": name,
        "wall_seconds": LAST_WALL_SECONDS,
        "rows": _json_sanitize(rows),
    }
    if extra:
        document["extra"] = _json_sanitize(extra)
    profiler = None
    if LAST_SYSTEM is not None and sim is not None and LAST_SYSTEM.sim is sim:
        profiler = getattr(LAST_SYSTEM, "profiler", None)
    if profiler is not None:
        # Stop before snapshotting so mem/alloc accounting is final, then
        # export gauges ahead of the metrics snapshot below.
        profiler.stop()
        profiler.publish(sim.metrics)
        document["profile"] = _json_sanitize(profiler.snapshot())
        out = bench_out_dir()
        profiler.write_collapsed(os.path.join(out, f"PROFILE_{name}.collapsed"))
        write_chrome_trace(
            os.path.join(out, f"TRACE_{name}_profile.json"),
            sim,
            getattr(LAST_SYSTEM, "span_tracer", None),
            profiler=profiler,
        )
    if sim is not None:
        sim.dispatch.publish()
        # CID memoization effectiveness.  The underlying stats are
        # process-global, so publish them as catch-up deltas onto this
        # sim's monotone counters (single publish point per run).
        stats = cid_cache_stats()
        for kind in ("hits", "misses"):
            counter = sim.metrics.counter(f"cid.cache.{kind}")
            counter.inc(max(0, stats[kind] - counter.value))
        document["sim"] = {
            "now": sim.now,
            "events_executed": sim.events_executed,
            "seed": sim.seed,
            "tie_shuffle": getattr(sim, "tie_shuffle", None),
        }
        if LAST_SYSTEM is not None and LAST_SYSTEM.sim is sim:
            # Semantic end-state digest (heads, state roots, supplies):
            # invariant across tie-shuffle seeds — CI's sanitize job runs a
            # bench under several REPRO_TIE_SHUFFLE values and diffs this.
            document["sim"]["state_digest"] = LAST_SYSTEM.end_state_digest()
        document["metrics"] = _json_sanitize(sim.metrics.snapshot())
        document["dispatch"] = _json_sanitize(sim.dispatch.summary()[:16])
    path = os.path.join(bench_out_dir(), f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, allow_nan=False)
        handle.write("\n")
    print(f"\n[bench] wrote {path}")
    return path


def committed_blocks(sim) -> int:
    """Total blocks committed across every chain in *sim*.

    Sums the ``chain.<subnet>.blocks`` commit marks, so forked/orphaned
    blocks don't count — this is canonical chain growth.
    """
    total = 0.0
    for name, series in sim.metrics.series.items():
        if name.startswith("chain.") and name.endswith(".blocks"):
            total += sum(v for _, v in series.points)
    return int(total)


def perf_snapshot(sim, wall_seconds) -> dict:
    """The committed-perf-trajectory metrics for one run.

    ``blocks_per_wall_sec`` — simulated blocks committed per wall-clock
    second — is the simulation-speed figure the CI perf-compare job diffs
    against the trajectory committed at the repo root.
    """
    blocks = committed_blocks(sim)
    return {
        "wall_seconds": wall_seconds,
        "blocks_committed": blocks,
        "blocks_per_wall_sec": (
            blocks / wall_seconds if wall_seconds else None
        ),
    }


def show_table(title, columns, rows) -> Table:
    """Build, print and return a result table — the shared emitter every
    bench uses instead of repeating the Table/add_row/show boilerplate."""
    table = Table(title, columns)
    for row in rows:
        table.add_row(*row)
    table.show()
    return table


DISPATCH_COLUMNS = ("event label", "events", "wall ms", "mean µs", "max µs")


def dispatch_rows(sim, top: int = 8) -> list[tuple]:
    """Busiest per-label dispatch stats from the sim's instrumented bus.

    Also publishes them as ``sim.dispatch.*`` gauges on ``sim.metrics`` so
    the run's metrics snapshot carries per-event-label counts/timings.
    """
    sim.dispatch.publish()
    return [
        (
            row["label"],
            row["events"],
            row["wall_s"] * 1e3,
            row["mean_s"] * 1e6,
            row["max_s"] * 1e6,
        )
        for row in sim.dispatch.summary()[:top]
    ]


def show_dispatch_table(sim, top: int = 8, title: str = "event-dispatch profile") -> Table:
    return show_table(title, DISPATCH_COLUMNS, dispatch_rows(sim, top=top))


def build_hierarchy(
    seed: int,
    n_subnets: int,
    subnet_validators: int = 3,
    subnet_block_time: float = 0.25,
    checkpoint_period: int = 10,
    engine: str = "poa",
    max_block_messages: int = 500,
    root_block_time: float = 0.5,
    wallet_funds=None,
    monitors: bool = True,
    profile=None,
):
    """A rootnet plus *n_subnets* sibling subnets, started.

    Benchmarks run with live invariant monitors on by default (digest- and
    latency-neutral); postmortem bundles land in the bench output dir.
    ``profile=None`` defers to ``$BENCH_PROFILE``; ``True`` starts the
    sampling profiler (``write_bench_json`` stops it and emits the
    ``profile`` section plus collapsed-stack/Perfetto artifacts).
    """
    system = HierarchicalSystem(
        seed=seed,
        root_validators=3,
        root_block_time=root_block_time,
        checkpoint_period=checkpoint_period,
        wallet_funds=wallet_funds or {},
    ).start()
    capture_system(system)
    if profile is None:
        profile = profile_enabled()
    if monitors or profile:
        system.enable_telemetry(
            monitors=monitors, postmortem_dir=bench_out_dir(), profile=profile
        )
    subnets = []
    for i in range(n_subnets):
        subnets.append(
            system.spawn_subnet(
                SubnetConfig(
                    name=f"s{i}",
                    validators=subnet_validators,
                    engine=engine,
                    block_time=subnet_block_time,
                    checkpoint_period=checkpoint_period,
                    max_block_messages=max_block_messages,
                )
            )
        )
    return system, subnets


def fund_subnet_senders(system, subnet, n_senders: int, funds: int, tag: str):
    """Create and fund *n_senders* wallets inside *subnet* (in-protocol)."""
    wallets = [
        system.create_wallet(f"{tag}-{subnet.name}-{i}") for i in range(n_senders)
    ]
    for wallet in wallets:
        system.fund_subnet(system.treasury, subnet, wallet.address, funds)
    ok = system.wait_for(
        lambda: all(system.balance(subnet, w.address) >= funds for w in wallets),
        timeout=120.0,
    )
    if not ok:
        raise RuntimeError(f"funding senders in {subnet} timed out")
    return wallets


def start_subnet_payments(system, subnet, wallets, rate: float) -> PaymentWorkload:
    return PaymentWorkload(
        system.sim,
        system.nodes(subnet),
        wallets,
        rate=rate,
        rng_scope=f"bench-{subnet.path}",
    ).start()

"""Tests for workload generators and analysis helpers."""

import math

import pytest

from repro.analysis import Table, mean, percentile, stdev, summarize
from repro.baselines import SingleChainBaseline
from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig
from repro.workloads import CrossNetWorkload, PaymentWorkload, sender_fund_spec


def test_payment_workload_measures_latency():
    funds = sender_fund_spec(3, scope="wl1")
    baseline = SingleChainBaseline(seed=21, validators=3, block_time=0.5,
                                   wallet_funds=funds).start()
    senders = [baseline.wallets[n] for n in funds]
    workload = PaymentWorkload(baseline.sim, baseline.nodes, senders, rate=10.0).start()
    baseline.run_for(15.0)
    workload.stop()
    stats = workload.stats
    assert stats.submitted >= 140
    assert stats.committed > 0.8 * stats.submitted
    # Latency at most a few block times under light load.
    assert 0 < stats.latency_percentile(50) < 3 * 0.5 + 1.0


def test_payment_workload_rejects_bad_rate():
    funds = sender_fund_spec(1, scope="wl2")
    baseline = SingleChainBaseline(seed=23, wallet_funds=funds)
    with pytest.raises(ValueError):
        PaymentWorkload(baseline.sim, baseline.nodes, [], rate=0.0)


def test_crossnet_workload_end_to_end():
    system = HierarchicalSystem(
        seed=25, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        wallet_funds={"alice": 10_000_000},
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="wl", validators=3, block_time=0.25, checkpoint_period=5)
    )
    alice = system.wallets["alice"]
    workload = CrossNetWorkload(
        system, from_subnet=ROOTNET, to_subnet=sub, sender=alice, rate=2.0, value=10
    ).start()
    system.run_for(30.0)
    workload.stop()
    system.run_for(10.0)
    stats = workload.stats
    assert stats.submitted >= 55
    assert stats.committed > 0
    assert stats.latency_percentile(50) > 0


def test_stats_helpers():
    values = list(range(1, 101))
    assert mean(values) == pytest.approx(50.5)
    assert percentile(values, 50) == pytest.approx(50.5)
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert stdev([1.0, 1.0, 1.0]) == 0.0
    assert math.isnan(mean([]))
    with pytest.raises(ValueError):
        percentile(values, 101)
    summary = summarize(values)
    assert summary["count"] == 100 and summary["max"] == 100


def test_table_renders():
    table = Table("demo", ["a", "b"])
    table.add_row(1, 2.5)
    table.add_row("long-value", float("nan"))
    text = table.render()
    assert "demo" in text and "long-value" in text and "-" in text
    with pytest.raises(ValueError):
        table.add_row(1)


def test_workload_stats_empty_latency_is_nan():
    from repro.workloads import WorkloadStats

    stats = WorkloadStats()
    assert math.isnan(stats.latency_percentile(50))
    assert stats.throughput(0) == 0.0

"""The acceptance gate: the real tree lints clean against the committed
baseline, and every baseline entry both matches something and is justified."""

import os

from repro.lint import lint_paths, load_baseline

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "LINT_BASELINE.txt")


def test_tree_has_zero_non_baselined_findings():
    baseline = load_baseline(BASELINE)
    report = lint_paths([SRC], baseline=baseline)
    assert report.parse_errors == []
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.ok


def test_baseline_has_no_stale_entries_and_all_are_justified():
    baseline = load_baseline(BASELINE)
    report = lint_paths([SRC], baseline=baseline)
    assert report.stale_baseline == [], report.stale_baseline
    for entry, why in baseline.entries.items():
        assert why.strip(), f"baseline entry lacks a justifying comment: {entry}"
        assert "TODO" not in why, f"unjustified placeholder baseline entry: {entry}"


def test_lint_package_is_itself_clean():
    report = lint_paths([os.path.join(SRC, "lint")])
    assert report.ok and report.findings == []

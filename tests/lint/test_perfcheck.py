"""Tests for the perf-trajectory comparison tool (repro.perfcheck)."""

import json

import pytest

from repro.perfcheck import PerfCheckError, compare, committed_entry, fresh_metric, main


def _trajectory(bps, tolerance=0.2):
    return {
        "schema": "repro.perf-trajectory/v1",
        "bench": "e1_scaling",
        "metric": "blocks_per_wall_sec",
        "tolerance": tolerance,
        "trajectory": [
            {"label": "old", "blocks_per_wall_sec": bps / 3},
            {"label": "new", "blocks_per_wall_sec": bps},
        ],
    }


def _bench(bps):
    return {"schema": "repro.bench/v1", "extra": {"perf": {"blocks_per_wall_sec": bps}}}


def test_within_tolerance_passes():
    result = compare(_bench(590.0), _trajectory(700.0))
    assert result["ok"]
    assert result["committed"] == 700.0
    assert result["measured"] == 590.0


def test_regression_beyond_tolerance_fails():
    result = compare(_bench(500.0), _trajectory(700.0))
    assert not result["ok"]
    assert result["floor"] == pytest.approx(560.0)


def test_newest_entry_is_the_baseline():
    entry = committed_entry(_trajectory(700.0))
    assert entry["label"] == "new"


def test_explicit_tolerance_overrides_file():
    assert not compare(_bench(660.0), _trajectory(700.0), tolerance=0.01)["ok"]
    assert compare(_bench(660.0), _trajectory(700.0), tolerance=0.1)["ok"]


def test_improvement_always_passes():
    assert compare(_bench(2100.0), _trajectory(700.0))["ok"]


def test_malformed_inputs_raise():
    with pytest.raises(PerfCheckError):
        fresh_metric({"extra": {}})
    with pytest.raises(PerfCheckError):
        committed_entry({"schema": "something-else", "trajectory": [{}]})
    with pytest.raises(PerfCheckError):
        committed_entry({"schema": "repro.perf-trajectory/v1", "trajectory": []})
    with pytest.raises(PerfCheckError):
        compare(_bench(1.0), _trajectory(1.0), tolerance=1.5)


def test_cli_end_to_end(tmp_path, capsys):
    fresh = tmp_path / "fresh.json"
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps(_trajectory(700.0)))

    fresh.write_text(json.dumps(_bench(690.0)))
    assert main([str(fresh), str(committed)]) == 0
    assert "OK" in capsys.readouterr().out

    fresh.write_text(json.dumps(_bench(100.0)))
    assert main([str(fresh), str(committed)]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    assert main([str(fresh), str(tmp_path / "missing.json")]) == 2

"""Tests for the perf-trajectory comparison tool (repro.perfcheck)."""

import json

import pytest

from repro.perfcheck import (
    PerfCheckError,
    compare,
    committed_entry,
    culprit_report,
    fresh_metric,
    main,
)


def _trajectory(bps, tolerance=0.2):
    return {
        "schema": "repro.perf-trajectory/v1",
        "bench": "e1_scaling",
        "metric": "blocks_per_wall_sec",
        "tolerance": tolerance,
        "trajectory": [
            {"label": "old", "blocks_per_wall_sec": bps / 3},
            {"label": "new", "blocks_per_wall_sec": bps},
        ],
    }


def _bench(bps):
    return {"schema": "repro.bench/v1", "extra": {"perf": {"blocks_per_wall_sec": bps}}}


def test_within_tolerance_passes():
    result = compare(_bench(590.0), _trajectory(700.0))
    assert result["ok"]
    assert result["committed"] == 700.0
    assert result["measured"] == 590.0


def test_regression_beyond_tolerance_fails():
    result = compare(_bench(500.0), _trajectory(700.0))
    assert not result["ok"]
    assert result["floor"] == pytest.approx(560.0)


def test_newest_entry_is_the_baseline():
    entry = committed_entry(_trajectory(700.0))
    assert entry["label"] == "new"


def test_explicit_tolerance_overrides_file():
    assert not compare(_bench(660.0), _trajectory(700.0), tolerance=0.01)["ok"]
    assert compare(_bench(660.0), _trajectory(700.0), tolerance=0.1)["ok"]


def test_improvement_always_passes():
    assert compare(_bench(2100.0), _trajectory(700.0))["ok"]


def test_malformed_inputs_raise():
    with pytest.raises(PerfCheckError):
        fresh_metric({"extra": {}})
    with pytest.raises(PerfCheckError):
        committed_entry({"schema": "something-else", "trajectory": [{}]})
    with pytest.raises(PerfCheckError):
        committed_entry({"schema": "repro.perf-trajectory/v1", "trajectory": []})
    with pytest.raises(PerfCheckError):
        compare(_bench(1.0), _trajectory(1.0), tolerance=1.5)


def _mini_profile(share_by_label):
    total = 100
    return {
        "schema": "repro.profile/v1",
        "samples": total,
        "active_s": 1.0,
        "interval_s": 0.005,
        "labels": {
            label: {
                "samples": int(share * total),
                "cpu_share": share,
                "alloc_bytes": 0,
                "alloc_events": 0,
                "top_frames": [],
            }
            for label, share in share_by_label.items()
        },
    }


def test_culprit_report_requires_profiles_on_both_sides():
    fresh, committed = _bench(100.0), _trajectory(700.0)
    assert culprit_report(fresh, committed) is None
    fresh["profile"] = _mini_profile({"hot": 0.8, "cold": 0.2})
    assert culprit_report(fresh, committed) is None  # committed side bare
    committed["trajectory"][-1]["profile"] = _mini_profile({"hot": 0.3, "cold": 0.7})
    report = culprit_report(fresh, committed)
    assert report is not None
    assert "profile culprit report" in report
    assert "hot" in report and "+50.0pp" in report


def test_cli_prints_culprit_report_on_regression(tmp_path, capsys):
    fresh_doc = _bench(100.0)
    fresh_doc["profile"] = _mini_profile({"hot": 0.9, "cold": 0.1})
    committed_doc = _trajectory(700.0)
    committed_doc["trajectory"][-1]["profile"] = _mini_profile({"hot": 0.5, "cold": 0.5})
    fresh = tmp_path / "fresh.json"
    committed = tmp_path / "committed.json"
    fresh.write_text(json.dumps(fresh_doc))
    committed.write_text(json.dumps(committed_doc))
    assert main([str(fresh), str(committed)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "profile culprit report" in out
    assert "worst regression first" in out

    # Within tolerance: no culprit chatter on healthy runs.
    fresh.write_text(json.dumps({**fresh_doc, "extra": {"perf": {"blocks_per_wall_sec": 690.0}}}))
    assert main([str(fresh), str(committed)]) == 0
    assert "culprit" not in capsys.readouterr().out


def test_cli_end_to_end(tmp_path, capsys):
    fresh = tmp_path / "fresh.json"
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps(_trajectory(700.0)))

    fresh.write_text(json.dumps(_bench(690.0)))
    assert main([str(fresh), str(committed)]) == 0
    assert "OK" in capsys.readouterr().out

    fresh.write_text(json.dumps(_bench(100.0)))
    assert main([str(fresh), str(committed)]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    assert main([str(fresh), str(tmp_path / "missing.json")]) == 2

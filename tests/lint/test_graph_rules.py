"""Whole-program graph rules (MSG/MET/SCN) over golden fixture mini-trees.

Each rule has a ``fixtures/graph/<rule>_bad/`` directory that must light
it up (with both endpoints of the broken edge in the message) and a
``<rule>_clean/`` sibling that must stay silent.  The clean trees also
exercise dataflow-lite resolution: topic helpers, f-string wildcards and
wildcard catalog families.
"""

import json
import os
import subprocess
import sys

from repro.lint import lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "graph")


def run_fixture(name, rules=None):
    return lint_paths([os.path.join(FIXTURES, name)], rules=rules)


def _write(tmp_path, rel, content):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")
    return str(path)


# ----------------------------------------------------------------------
# MSG001 — orphan publish
# ----------------------------------------------------------------------
def test_msg001_bad_reports_both_endpoints():
    report = run_fixture("msg001_bad")
    # The mismatched pair breaks the edge in both directions.
    assert sorted(f.rule_id for f in report.findings) == ["MSG001", "MSG002"]
    (finding,) = [f for f in report.findings if f.rule_id == "MSG001"]
    assert finding.path.endswith("producer.py")
    assert "gossip.publish" in finding.source_line
    assert "'blocks:new'" in finding.message
    # The nearest-subscription endpoint is named, file and line.
    assert "'blocks:old'" in finding.message
    assert "consumer.py:5" in finding.message


def test_msg001_clean_topic_helper_resolves():
    report = run_fixture("msg001_clean")
    assert report.findings == []
    # The helper call really was resolved (not skipped as unresolved).
    assert {s.pattern for s in report.graph.topics_published} == {"blocks:*"}
    assert report.graph.unresolved == []


# ----------------------------------------------------------------------
# MSG002 — dead subscription
# ----------------------------------------------------------------------
def test_msg002_bad_reports_both_endpoints():
    report = run_fixture("msg002_bad")
    (finding,) = report.findings
    assert finding.rule_id == "MSG002"
    assert finding.path.endswith("consumer.py")
    assert "'votes:legacy'" in finding.message
    assert "'votes:final'" in finding.message
    assert "producer.py:5" in finding.message


def test_msg002_clean():
    assert run_fixture("msg002_clean").findings == []


# ----------------------------------------------------------------------
# MSG003 — unserved RPC call
# ----------------------------------------------------------------------
def test_msg003_bad_reports_both_endpoints():
    report = run_fixture("msg003_bad")
    (finding,) = report.findings
    assert finding.rule_id == "MSG003"
    assert finding.path.endswith("client.py")
    assert "'chain:block'" in finding.message
    assert "'chain:blocks'" in finding.message
    assert "server.py:5" in finding.message


def test_msg003_clean():
    assert run_fixture("msg003_clean").findings == []


# ----------------------------------------------------------------------
# MET001 — metric/catalog agreement, both directions
# ----------------------------------------------------------------------
def test_met001_bad_fires_both_directions():
    report = run_fixture("met001_bad")
    assert sorted(f.rule_id for f in report.findings) == ["MET001", "MET001"]
    by_path = {os.path.basename(f.path): f for f in report.findings}
    emitted = by_path["emitter.py"]
    assert "'app.request'" in emitted.message
    assert "catalog.py" in emitted.message  # far endpoint: the catalog
    declared = by_path["catalog.py"]
    assert "'app.stale.family'" in declared.message
    assert "never emitted" in declared.message


def test_met001_clean_wildcard_family_covers_fstring():
    report = run_fixture("met001_clean")
    assert report.findings == []
    assert "app.latency.*" in {s.pattern for s in report.graph.metrics_emitted}


# ----------------------------------------------------------------------
# SCN001 — scenario references resolve against the registries
# ----------------------------------------------------------------------
def test_scn001_bad_flags_toml_typos_with_declaration_endpoint():
    report = run_fixture("scn001_bad")
    assert sorted(f.rule_id for f in report.findings) == ["SCN001", "SCN001"]
    messages = " | ".join(f.message for f in report.findings)
    assert "unknown auditor 'suply'" in messages
    assert "unknown fault kind 'partion'" in messages
    # Declared-side endpoints point at the registry module.
    assert "registry.py" in messages
    assert all(f.path.endswith("spec.toml") for f in report.findings)


def test_scn001_clean_python_and_toml_refs():
    report = run_fixture("scn001_clean")
    assert report.findings == []
    assert {s.pattern for s in report.graph.auditors_referenced} == {"supply"}
    assert {s.pattern for s in report.graph.fault_kinds_referenced} == {"partition"}


# ----------------------------------------------------------------------
# Partial-tree gating: one side of a seam alone proves nothing
# ----------------------------------------------------------------------
def test_graph_rules_gate_off_on_partial_trees(tmp_path):
    _write(
        tmp_path,
        "producer.py",
        'def f(gossip, n, p):\n    gossip.publish(n, "solo:topic", p)\n',
    )
    report = lint_paths([str(tmp_path)])
    assert report.findings == []  # no subscriptions in view -> MSG001 skipped


# ----------------------------------------------------------------------
# Satellite: pragma suppression at each endpoint of an edge
# ----------------------------------------------------------------------
def test_pragma_suppresses_msg_rules_at_their_endpoint(tmp_path):
    _write(
        tmp_path,
        "producer.py",
        "def f(gossip, n, p):\n"
        '    gossip.publish(n, "t:orphan", p)  # lint: disable=MSG001\n',
    )
    _write(
        tmp_path,
        "consumer.py",
        "def g(gossip, n, h):\n"
        '    gossip.subscribe(n, "t:dead", h)  # lint: disable=MSG002\n',
    )
    report = lint_paths([str(tmp_path)])
    # Both edges are broken, both endpoints carry their pragma: silence.
    assert report.findings == []
    # Removing either pragma brings its finding back.
    _write(
        tmp_path,
        "producer.py",
        'def f(gossip, n, p):\n    gossip.publish(n, "t:orphan", p)\n',
    )
    report2 = lint_paths([str(tmp_path)])
    assert [f.rule_id for f in report2.findings] == ["MSG001"]


def test_pragma_suppresses_met001_at_either_endpoint(tmp_path):
    catalog = (
        "METRIC_CATALOG = {\n"
        '    "app.a": ("counter", "declared but unemitted"),\n'
        "}\n"
    )
    emitter = 'def f(sim):\n    sim.metrics.counter("app.b").inc()\n'
    _write(tmp_path, "catalog.py", catalog)
    _write(tmp_path, "emitter.py", emitter)
    report = lint_paths([str(tmp_path)])
    assert sorted(f.rule_id for f in report.findings) == ["MET001", "MET001"]

    # Pragma at the emit endpoint kills only the emitted-not-declared edge.
    _write(
        tmp_path,
        "emitter.py",
        "def f(sim):\n"
        '    sim.metrics.counter("app.b").inc()  # lint: disable=MET001\n',
    )
    report2 = lint_paths([str(tmp_path)])
    assert [os.path.basename(f.path) for f in report2.findings] == ["catalog.py"]

    # Pragma at the catalog endpoint kills the declared-not-emitted edge too.
    _write(
        tmp_path,
        "catalog.py",
        "METRIC_CATALOG = {\n"
        '    "app.a": ("counter", "unemitted"),  # lint: disable=MET001\n'
        "}\n",
    )
    report3 = lint_paths([str(tmp_path)])
    assert report3.findings == []


def test_pragma_suppresses_scn001_in_toml(tmp_path):
    _write(
        tmp_path,
        "registry.py",
        "class Fault:\n    KIND = \"\"\n\n\n"
        "class PartitionFault(Fault):\n    KIND = \"partition\"\n",
    )
    _write(
        tmp_path,
        "spec.toml",
        "[scenario]\nname = \"s\"\n\n[[faults]]\n"
        "kind = \"partion\"  # lint: disable=SCN001\n",
    )
    report = lint_paths([str(tmp_path)])
    assert report.findings == []
    _write(
        tmp_path,
        "spec.toml",
        "[scenario]\nname = \"s\"\n\n[[faults]]\nkind = \"partion\"\n",
    )
    report2 = lint_paths([str(tmp_path)])
    assert [f.rule_id for f in report2.findings] == ["SCN001"]


# ----------------------------------------------------------------------
# CLI: --contracts dump and --format=github annotations
# ----------------------------------------------------------------------
def _cli(*argv):
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_contracts_dump():
    got = _cli(
        os.path.join(FIXTURES, "msg001_clean"), "--no-baseline", "--contracts", "-"
    )
    assert got.returncode == 0, got.stdout + got.stderr
    document = json.loads(got.stdout[: got.stdout.rindex("}") + 1])
    assert document["schema"] == "repro.contracts/v1"
    assert "blocks:*" in document["topics"]["publish"]
    assert "blocks:new" in document["topics"]["subscribe"]


def test_cli_contracts_to_file(tmp_path):
    out = tmp_path / "contracts.json"
    got = _cli(
        os.path.join(FIXTURES, "scn001_clean"),
        "--no-baseline",
        "--contracts",
        str(out),
    )
    assert got.returncode == 0, got.stdout + got.stderr
    document = json.loads(out.read_text(encoding="utf-8"))
    assert "supply" in document["auditors"]["declared"]
    assert "partition" in document["fault_kinds"]["referenced"]


def test_cli_contracts_requires_a_graph_rule():
    got = _cli(
        os.path.join(FIXTURES, "msg001_clean"),
        "--no-baseline",
        "--rules",
        "DET001",
        "--contracts",
        "-",
    )
    assert got.returncode == 2
    assert "--contracts" in got.stderr


def test_cli_github_format_annotations():
    got = _cli(os.path.join(FIXTURES, "msg003_bad"), "--no-baseline",
               "--format", "github")
    assert got.returncode == 1
    (line,) = [l for l in got.stdout.splitlines() if l.startswith("::")]
    assert line.startswith("::error file=")
    assert "title=MSG003" in line
    assert "client.py" in line
    assert "line=5" in line
    # Messages must be single-line; the fix hint rides along in brackets.
    assert "[match the call's method string" in line


def test_cli_github_format_clean_tree_exits_zero():
    got = _cli(os.path.join(FIXTURES, "msg003_clean"), "--no-baseline",
               "--format", "github")
    assert got.returncode == 0, got.stdout + got.stderr
    assert "::error" not in got.stdout

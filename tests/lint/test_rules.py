"""Golden-fixture tests: each rule fires on its bad fixture, stays silent
on its clean one.  Fixtures are real files under ``tests/lint/fixtures/``
checked under *fake* repro paths, so rule scoping is exercised too."""

import os

import pytest

from repro.lint import LintEngine

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

# rule id -> (fake path the fixture pretends to live at, expected minimum hits)
CASES = {
    "DET001": ("src/repro/hierarchy/fixture.py", 4),
    "DET002": ("src/repro/consensus/fixture.py", 3),
    "DET003": ("src/repro/hierarchy/gateway.py", 3),
    "LAY001": ("src/repro/sim/fixture.py", 1),
    "SIM001": ("src/repro/runtime/fixture.py", 3),
}

CLEAN_PATHS = {
    "DET001": "src/repro/hierarchy/fixture.py",
    "DET002": "src/repro/consensus/fixture.py",
    "DET003": "src/repro/hierarchy/gateway.py",
    "LAY001": "src/repro/hierarchy/fixture.py",
    "SIM001": "src/repro/runtime/fixture.py",
}


def _read(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_fires(rule_id):
    path, min_hits = CASES[rule_id]
    source = _read(f"{rule_id.lower()}_bad.py")
    findings = LintEngine().check_source(path, source)
    hits = [f for f in findings if f.rule_id == rule_id]
    assert len(hits) >= min_hits, (
        f"{rule_id} should fire >= {min_hits} times on its bad fixture, "
        f"got {[f.render() for f in findings]}"
    )
    for finding in hits:
        assert finding.path == path
        assert finding.line > 0
        assert finding.message
        assert finding.fix_hint
        assert finding.source_line  # content captured for baseline matching


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_clean_fixture_is_silent(rule_id):
    source = _read(f"{rule_id.lower()}_clean.py")
    findings = LintEngine().check_source(CLEAN_PATHS[rule_id], source)
    same_rule = [f for f in findings if f.rule_id == rule_id]
    assert same_rule == [], [f.render() for f in same_rule]


def test_bad_fixtures_fire_only_their_own_rule():
    """Scoping sanity: the DET003 bad fixture checked outside the value-
    accounting files must not fire DET003."""
    source = _read("det003_bad.py")
    findings = LintEngine().check_source("src/repro/consensus/fixture.py", source)
    assert not any(f.rule_id == "DET003" for f in findings)


def test_noqa_pragma_suppresses():
    source = "import time\nt = time.time()  # lint: disable=DET001\n"
    findings = LintEngine().check_source("src/repro/hierarchy/fixture.py", source)
    assert findings == []


def test_layering_allows_same_layer_edges():
    # chain and consensus share a rank: the edge is legal in both directions.
    source = "from repro.chain.block import FullBlock\n"
    findings = LintEngine().check_source("src/repro/consensus/fixture.py", source)
    assert findings == []


def test_layering_flags_observability_leak_into_protocol():
    source = "from repro.telemetry import SpanTracer\n"
    findings = LintEngine().check_source("src/repro/hierarchy/fixture.py", source)
    assert [f.rule_id for f in findings] == ["LAY001"]

"""LAY001 golden fixture: an upward module-scope import (fires).

Checked under a fake path inside ``repro/sim/`` — the bottom layer
importing the top one.
"""
from repro.telemetry import SpanTracer


def install(sim):
    return SpanTracer(sim).install()

"""DET001 golden fixture: wall-clock and entropy reads (every line fires)."""
import os
import random
import time
from datetime import datetime


def timestamp_block(block):
    block["ts"] = time.time()
    block["day"] = datetime.now()
    return block


def pick_leader(validators):
    return random.choice(validators)


def make_nonce():
    return os.urandom(8)

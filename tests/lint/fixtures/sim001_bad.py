"""SIM001 golden fixture: scheduler-state mutation outside sim/ (fires)."""


def fast_forward(sim, target):
    sim.now = target


def sneak_event(sim, callback):
    sim.queue.push(sim.now + 1.0, callback)


def purge(sim):
    sim.queue._heap.clear()

"""DET002 golden fixture: canonical orderings (must stay silent)."""


def assemble(pending_ids):
    chosen = set(pending_ids)
    batch = []
    for msg_id in sorted(chosen):
        batch.append(msg_id)
    return batch


def diff_members(before, after):
    return sorted(after.keys() - before.keys())


def count(validators):
    unique = {v.lower() for v in validators}
    return sum(1 for v in unique)

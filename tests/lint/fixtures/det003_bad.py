"""DET003 golden fixture: float arithmetic in value accounting (fires)."""


def charge_fee(value):
    fee = value * 0.01
    return value - fee


def split(value, ways):
    return value / ways


def to_units(raw):
    return float(raw)

"""DET001 golden fixture: the sanctioned idioms (must stay silent)."""
import random
import time


def timestamp_block(sim, block):
    block["ts"] = sim.now
    return block


def pick_leader(sim, validators):
    rng = sim.rng("leader-election")
    return validators[rng.randrange(len(validators))]


def explicit_seeded(seed):
    return random.Random(seed).randrange(100)


def profile(fn):
    start = time.perf_counter()  # wall profiling is digest-neutral
    fn()
    return time.perf_counter() - start

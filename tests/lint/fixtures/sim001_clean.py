"""SIM001 golden fixture: the dispatch API (must stay silent)."""


def fast_forward(sim, target):
    sim.run_until(target)


def add_event(sim, callback):
    return sim.schedule(1.0, callback, label="clean")


def heartbeat(sim, callback):
    stop = sim.every(5.0, callback, on_error="log")
    deadline = sim.now + 60.0
    sim.schedule_at(deadline, stop)
    return stop

"""LAY001 golden fixture: downward + lazy-upward imports (must stay silent).

Checked under a fake path inside ``repro/hierarchy/``.
"""
from repro.chain.block import FullBlock
from repro.crypto.cid import cid_of


def enable_telemetry(system):
    # The sanctioned escape hatch: optional upward wiring imports lazily.
    from repro.telemetry import SpanTracer

    return SpanTracer(system.sim).install()


def head_cid(block: FullBlock):
    return cid_of(block)

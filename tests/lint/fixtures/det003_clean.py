"""DET003 golden fixture: integer value accounting (must stay silent)."""

FEE_BPS = 100  # basis points


def charge_fee(value):
    fee = value * FEE_BPS // 10_000
    return value - fee


def split(value, ways):
    share = value // ways
    remainder = value - share * ways
    return share, remainder

"""DET002 golden fixture: ordering-sensitive set iteration (fires)."""


def assemble(pending_ids):
    chosen = set(pending_ids)
    batch = []
    for msg_id in chosen:
        batch.append(msg_id)
    return batch


def diff_members(before, after):
    return [addr for addr in after.keys() - before.keys()]


def freeze(validators):
    return list({v.lower() for v in validators})

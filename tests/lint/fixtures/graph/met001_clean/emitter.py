"""Every emitted family is declared; the f-string lands in a wildcard family."""


def serve(sim, phase):
    sim.metrics.counter("app.requests").inc()
    sim.metrics.histogram(f"app.latency.{phase}").observe(0.5)

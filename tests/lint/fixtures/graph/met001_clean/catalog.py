"""A local exporter catalog covering every emitted family."""

METRIC_CATALOG = {
    "app.requests": ("counter", "requests served"),
    "app.latency.*": ("histogram", "per-phase latency"),
}

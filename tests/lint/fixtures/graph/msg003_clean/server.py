"""Serves the block-fetch RPC endpoint."""


def register(rpc, node_id, handler):
    rpc.expose(node_id, "chain:blocks", handler)

"""Calls the endpoint the server actually exposes."""


def fetch(rpc, src, dst):
    return rpc.call(src, dst, "chain:blocks", {"from": 0})

"""Publishes a topic nobody subscribes to (MSG001)."""


def announce(gossip, node_id, payload):
    gossip.publish(node_id, "blocks:new", payload)

"""Subscribes to a different topic than the producer publishes."""


def wire(gossip, node_id):
    gossip.subscribe(node_id, "blocks:old", lambda env: None)

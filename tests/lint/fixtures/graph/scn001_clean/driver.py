"""Python-side references resolve against the same registries."""


def build(expectation, fault_from_spec):
    expectation.violates("supply")
    return fault_from_spec({"kind": "partition"})

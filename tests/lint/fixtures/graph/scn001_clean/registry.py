"""Declares the auditor and fault registries the scenario keys into."""


class Auditor:
    name = ""


class Fault:
    KIND = ""


class SupplyAuditor(Auditor):
    name = "supply"


class PartitionFault(Fault):
    KIND = "partition"

"""One live subscription, one dead one (MSG002 on 'votes:legacy')."""


def wire(gossip, node_id, handler):
    gossip.subscribe(node_id, "votes:final", handler)
    gossip.subscribe(node_id, "votes:legacy", handler)

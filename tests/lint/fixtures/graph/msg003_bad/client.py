"""Calls a singular endpoint name the server never exposed (MSG003)."""


def fetch(rpc, src, dst):
    return rpc.call(src, dst, "chain:block", {"from": 0})

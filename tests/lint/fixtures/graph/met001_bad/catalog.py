"""A local exporter catalog: one live family, one stale one."""

METRIC_CATALOG = {
    "app.requests": ("counter", "requests served"),
    "app.stale.family": ("gauge", "leftover after a rename — never emitted"),
}

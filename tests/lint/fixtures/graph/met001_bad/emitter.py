"""Emits one declared family and one typo'd undeclared one (MET001 both ways)."""


def serve(sim):
    sim.metrics.counter("app.requests").inc()
    sim.metrics.counter("app.request").inc()  # typo: singular, undeclared

"""Publishes only the final-votes topic."""


def broadcast(gossip, node_id, vote):
    gossip.publish(node_id, "votes:final", vote)

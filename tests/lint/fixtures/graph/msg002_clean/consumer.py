"""Every subscription has a matching publisher."""


def wire(gossip, node_id, handler):
    gossip.subscribe(node_id, "votes:final", handler)

"""Publishes via the helper; resolves to the 'blocks:*' family."""

from topics import block_topic


def announce(gossip, node_id, height, payload):
    gossip.publish(node_id, block_topic(height), payload)

"""Topic naming helper shared by producer and consumer."""


def block_topic(height):
    return f"blocks:{height}"

"""Subscribes with a literal that the published 'blocks:*' family covers."""


def wire(gossip, node_id):
    gossip.subscribe(node_id, "blocks:new", lambda env: None)

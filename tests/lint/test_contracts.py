"""Unit tests for pass 1: dataflow-lite resolution and pattern matching."""

import ast

from repro.lint.contracts import (
    Site,
    build_contract_graph,
    closest_patterns,
    metric_patterns_compatible,
    patterns_compatible,
    site_suppressed,
)


def graph_of(*sources, toml=()):
    modules = []
    for i, source in enumerate(sources):
        path = f"mod{i}.py"
        modules.append((path, ast.parse(source), source.splitlines()))
    return build_contract_graph(modules, toml)


# ----------------------------------------------------------------------
# Pattern language
# ----------------------------------------------------------------------
def test_whole_string_patterns():
    assert patterns_compatible("blocks:new", "blocks:new")
    assert patterns_compatible("blocks:*", "blocks:new")
    assert patterns_compatible("subnet:/root/s0", "subnet:*")
    assert not patterns_compatible("blocks:new", "blocks:old")


def test_metric_patterns_mid_star_is_one_segment():
    assert metric_patterns_compatible("a.*.c", "a.b.c")
    assert not metric_patterns_compatible("a.*.c", "a.b.x.c")
    assert not metric_patterns_compatible("a.b", "a.b.c")


def test_metric_patterns_final_star_is_greedy():
    assert metric_patterns_compatible("xnet.hop.*", "xnet.hop.submit.L2")
    assert metric_patterns_compatible("xnet.hop.submit.L2", "xnet.hop.*")
    assert not metric_patterns_compatible("xnet.hop.*", "xnet.e2e.path")


def test_embedded_wildcard_chunks():
    # A partially-interpolated segment still matches by prefix/suffix.
    assert metric_patterns_compatible("checkpoint.lag.L*", "checkpoint.lag.L2")
    assert not metric_patterns_compatible("checkpoint.lag.L*", "checkpoint.lag.M2")


def test_closest_patterns_rank_by_common_prefix():
    pool = ["consensus.height", "consensus.rounds", "chain.reorgs"]
    assert closest_patterns("consensus.round", pool, limit=2) == [
        "consensus.rounds",
        "consensus.height",
    ]


def test_site_suppressed_reads_the_raw_line():
    site = Site("p.py", 1, 0, "t", 'publish("t")  # lint: disable=MSG001')
    assert site_suppressed(site, "MSG001")
    assert not site_suppressed(site, "MSG002")
    blanket = Site("p.py", 1, 0, "t", 'publish("t")  # lint: disable=all')
    assert site_suppressed(blanket, "MSG001")


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_module_constant_flows_through_self_attribute():
    graph = graph_of(
        "TOPIC = 'sync:blocks'\n"
        "class Syncer:\n"
        "    def __init__(self):\n"
        "        self.topic = TOPIC\n"
        "    def go(self, gossip, n, p):\n"
        "        gossip.publish(n, self.topic, p)\n"
    )
    assert [s.pattern for s in graph.topics_published] == ["sync:blocks"]
    assert graph.unresolved == []


def test_conditional_expression_unions_both_arms():
    graph = graph_of(
        "def go(gossip, n, p, final):\n"
        "    topic = 'votes:final' if final else 'votes:pre'\n"
        "    gossip.publish(n, topic, p)\n"
    )
    assert {s.pattern for s in graph.topics_published} == {
        "votes:final",
        "votes:pre",
    }


def test_fstring_interpolation_becomes_wildcard():
    graph = graph_of(
        "def wire(gossip, n, subnet, h):\n"
        "    gossip.subscribe(n, f'subnet:{subnet}', h)\n"
    )
    assert [s.pattern for s in graph.topics_subscribed] == ["subnet:*"]


def test_fully_unresolvable_key_lands_in_unresolved():
    graph = graph_of(
        "def go(gossip, n, topic, p):\n    gossip.publish(n, topic, p)\n"
    )
    assert graph.topics_published == []
    (lost,) = graph.unresolved
    assert lost.detail == "topic publish"
    assert lost.line == 2


def test_metric_helper_substituted_across_files():
    graph = graph_of(
        "class Engine:\n"
        "    def _metric(self, name):\n"
        "        return self.sim.metrics.counter(f'consensus.{self.sub}.{name}')\n",
        "class PoA(Engine):\n"
        "    def on_propose(self):\n"
        "        self._metric('proposed')\n",
    )
    assert [s.pattern for s in graph.metrics_emitted] == ["consensus.*.proposed"]
    # The helper's own parameterised emit is not double-counted.
    assert graph.unresolved == []


def test_local_metric_alias_is_recognised():
    graph = graph_of(
        "class Exporter:\n"
        "    def flush(self):\n"
        "        gauge = self.metrics.gauge\n"
        "        gauge('mem.allocated_blocks').set(1)\n"
    )
    (site,) = graph.metrics_emitted
    assert site.pattern == "mem.allocated_blocks"
    assert site.detail == "gauge"


def test_dispatch_labels_and_simulator_slots():
    graph = graph_of(
        "def install(sim, tracer, fn):\n"
        "    sim.round_tracer = tracer\n"
        "    sim.schedule(1.0, fn, label='tick:block')\n"
        "    return getattr(sim, 'round_tracer', None)\n"
    )
    assert [s.pattern for s in graph.dispatch_labels] == ["tick:block"]
    assert [s.pattern for s in graph.slot_writes] == ["round_tracer"]
    assert [s.pattern for s in graph.slot_reads] == ["round_tracer"]


def test_catalog_extracted_with_kind_detail():
    graph = graph_of(
        "METRIC_CATALOG = {\n"
        "    'net.sent': ('counter', 'messages sent'),\n"
        "}\n"
    )
    (entry,) = graph.metric_catalog
    assert (entry.pattern, entry.detail) == ("net.sent", "counter")


# ----------------------------------------------------------------------
# TOML scenario documents
# ----------------------------------------------------------------------
def test_toml_scenario_references_extracted_with_lines():
    text = (
        "[scenario]\n"
        'name = "s"\n'
        "expect = 'violates(\"finality\")'\n"
        'tolerate = ["exactly_once"]\n'
        "\n"
        "[[faults]]\n"
        'kind = "partition"\n'
    )
    graph = graph_of(toml=[("spec.toml", text)])
    assert {s.pattern for s in graph.auditors_referenced} == {
        "finality",
        "exactly_once",
    }
    (fault,) = graph.fault_kinds_referenced
    assert (fault.pattern, fault.line) == ("partition", 7)


def test_non_scenario_toml_is_ignored():
    graph = graph_of(toml=[("pyproject.toml", "[tool.x]\nname = 'y'\n")])
    assert graph.fault_kinds_referenced == []
    assert graph.auditors_referenced == []


def test_malformed_toml_is_skipped_silently():
    graph = graph_of(toml=[("broken.toml", "[scenario\nkind=")])
    assert graph.auditors_referenced == []


def test_to_json_shape():
    graph = graph_of(
        "def go(gossip, n, p, h):\n"
        "    gossip.publish(n, 'a:b', p)\n"
        "    gossip.subscribe(n, 'a:b', h)\n"
    )
    document = graph.to_json()
    assert document["schema"] == "repro.contracts/v1"
    assert document["files"] == 1
    assert document["topics"]["publish"]["a:b"] == [{"at": "mod0.py:2"}]
    assert document["topics"]["subscribe"]["a:b"] == [{"at": "mod0.py:3"}]

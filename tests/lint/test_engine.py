"""Engine, baseline and CLI behaviour."""

import os
import subprocess
import sys

from repro.lint import LintEngine, lint_paths, load_baseline
from repro.lint.baseline import Baseline, format_baseline_entry, write_baseline
from repro.lint.findings import Finding, Severity

BAD_SOURCE = "import time\n\n\ndef stamp(block):\n    block['ts'] = time.time()\n    return block\n"


def _write(tmp_path, rel, content):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")
    return str(path)


def test_run_collects_and_sorts_findings(tmp_path):
    _write(tmp_path, "repro/hierarchy/b.py", BAD_SOURCE)
    _write(tmp_path, "repro/hierarchy/a.py", BAD_SOURCE)
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 2
    assert [f.path.endswith("a.py") for f in report.findings] == [True, False]
    assert all(f.rule_id == "DET001" for f in report.findings)
    assert not report.ok


def test_baseline_matches_by_content_not_line_number(tmp_path):
    bad = _write(tmp_path, "repro/hierarchy/mod.py", BAD_SOURCE)
    report = lint_paths([str(tmp_path)])
    (finding,) = report.findings
    entry = format_baseline_entry(finding)

    baseline = Baseline(entries={entry: "known benign"})
    report2 = lint_paths([str(tmp_path)], baseline=baseline)
    assert report2.findings == []
    assert len(report2.baselined) == 1
    assert report2.ok

    # Shift the offending line down: content match must survive the drift.
    with open(bad, "w", encoding="utf-8") as handle:
        handle.write("# a new comment line\n" + BAD_SOURCE)
    report3 = lint_paths([str(tmp_path)], baseline=baseline)
    assert report3.findings == []
    assert report3.ok

    # Editing the flagged line itself invalidates the entry.
    with open(bad, "w", encoding="utf-8") as handle:
        handle.write(BAD_SOURCE.replace("block['ts']", "block['when']"))
    report4 = lint_paths([str(tmp_path)], baseline=baseline)
    assert len(report4.findings) == 1
    assert report4.stale_baseline == [entry]


def test_baseline_survives_whitespace_only_reformat(tmp_path):
    bad = _write(tmp_path, "repro/hierarchy/mod.py", BAD_SOURCE)
    report = lint_paths([str(tmp_path)])
    (finding,) = report.findings
    baseline = Baseline(entries={format_baseline_entry(finding): "benign"})

    # Re-indent the flagged line: entries match on the *stripped* content.
    reformatted = BAD_SOURCE.replace(
        "    block['ts'] = time.time()", "        block['ts'] = time.time()"
    ).replace("def stamp(block):", "def stamp(block):\n    if True:")
    with open(bad, "w", encoding="utf-8") as handle:
        handle.write(reformatted)
    report2 = lint_paths([str(tmp_path)], baseline=baseline)
    assert report2.findings == []
    assert len(report2.baselined) == 1
    assert report2.stale_baseline == []


def test_dead_baseline_entry_is_reported_stale(tmp_path):
    _write(tmp_path, "repro/hierarchy/mod.py", "x = 1\n")
    ghost = "DET001|repro/hierarchy/deleted.py|t = time.time()"
    baseline = Baseline(entries={ghost: "file was removed"})
    report = lint_paths([str(tmp_path)], baseline=baseline)
    # Nothing matches the entry any more: surfaced for pruning, run still ok.
    assert report.stale_baseline == [ghost]
    assert report.findings == []
    assert report.ok


def test_load_baseline_parses_comments_as_justification(tmp_path):
    path = tmp_path / "LINT_BASELINE.txt"
    path.write_text(
        "# header noise\n\n"
        "# this one is fine because reasons\n"
        "DET001|src/repro/x.py|t = time.time()\n",
        encoding="utf-8",
    )
    baseline = load_baseline(str(path))
    assert len(baseline) == 1
    finding = Finding(
        rule_id="DET001", severity=Severity.ERROR, path="src/repro/x.py",
        line=99, col=0, message="m", source_line="t = time.time()",
    )
    assert baseline.matches(finding)
    assert "because reasons" in baseline.justification(finding)


def test_load_missing_baseline_is_empty():
    baseline = load_baseline("/nonexistent/LINT_BASELINE.txt")
    assert len(baseline) == 0


def test_write_baseline_round_trips(tmp_path):
    _write(tmp_path, "repro/hierarchy/mod.py", BAD_SOURCE)
    report = lint_paths([str(tmp_path)])
    out = tmp_path / "LINT_BASELINE.txt"
    count = write_baseline(str(out), report.findings)
    assert count == 1
    reloaded = load_baseline(str(out))
    report2 = lint_paths([str(tmp_path)], baseline=reloaded)
    assert report2.ok


def test_parse_errors_fail_the_run(tmp_path):
    _write(tmp_path, "repro/hierarchy/broken.py", "def f(:\n")
    report = lint_paths([str(tmp_path)])
    assert report.parse_errors and not report.ok


def test_engine_rule_subset():
    engine = LintEngine(rules=[r for r in LintEngine().rules if r.rule_id == "DET003"])
    findings = engine.check_source(
        "src/repro/hierarchy/firewall.py", "import time\nx = 1 / 2\nt = time.time()\n"
    )
    assert [f.rule_id for f in findings] == ["DET003"]


def test_cli_exit_codes(tmp_path):
    _write(tmp_path, "repro/hierarchy/mod.py", BAD_SOURCE)
    env = dict(os.environ, PYTHONPATH="src")
    bad = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path), "--no-baseline"],
        capture_output=True, text=True, env=env,
    )
    assert bad.returncode == 1
    assert "DET001" in bad.stdout

    clean = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path), "--rules", "LAY001"],
        capture_output=True, text=True, env=env,
    )
    assert clean.returncode == 0, clean.stdout

    as_json = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path), "--no-baseline",
         "--format", "json"],
        capture_output=True, text=True, env=env,
    )
    assert as_json.returncode == 1
    import json

    payload = json.loads(as_json.stdout)
    assert payload["findings"][0]["rule"] == "DET001"
    assert payload["ok"] is False

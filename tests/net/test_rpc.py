"""Unit tests for the RPC channel."""

from repro.net.rpc import RpcChannel
from repro.net.topology import Topology
from repro.net.transport import Transport
from repro.sim.scheduler import Simulator


def make_rpc(seed=1, timeout=5.0):
    sim = Simulator(seed=seed)
    transport = Transport(sim, Topology())
    return sim, transport, RpcChannel(sim, transport, timeout=timeout)


def test_call_returns_result():
    sim, _, rpc = make_rpc()
    rpc.expose("server", "add", lambda caller, params: params[0] + params[1])
    results = []
    rpc.call("client", "server", "add", (2, 3), lambda r, e: results.append((r, e)))
    sim.run_until(1.0)
    assert results == [(5, None)]


def test_unknown_method_is_error():
    sim, _, rpc = make_rpc()
    rpc.register_peer("server")
    results = []
    rpc.call("client", "server", "nope", None, lambda r, e: results.append((r, e)))
    sim.run_until(1.0)
    assert results[0][0] is None
    assert "no such method" in results[0][1]


def test_server_exception_becomes_error():
    sim, _, rpc = make_rpc()

    def boom(caller, params):
        raise RuntimeError("kaput")

    rpc.expose("server", "boom", boom)
    results = []
    rpc.call("client", "server", "boom", None, lambda r, e: results.append((r, e)))
    sim.run_until(1.0)
    assert results[0][0] is None
    assert "kaput" in results[0][1]


def test_unreachable_target_errors_immediately():
    sim, _, rpc = make_rpc()
    results = []
    rpc.call("client", "ghost", "m", None, lambda r, e: results.append((r, e)))
    sim.run_until(1.0)
    assert results[0][0] is None
    assert "unreachable" in results[0][1]


def test_timeout_fires_when_partitioned_after_send():
    sim, transport, rpc = make_rpc(timeout=2.0)
    rpc.expose("server", "slow", lambda caller, params: "late")
    # Partition *after* registration so send succeeds but response cannot
    # come back... actually partition before call: send fails -> unreachable.
    # Instead simulate response loss: unregister the client's rpc endpoint.
    results = []
    rpc.call("client", "server", "slow", None, lambda r, e: results.append((r, e)))
    transport.unregister("rpc:client")
    sim.run_until(5.0)
    assert results == [(None, "timeout")]


def test_callback_fires_exactly_once():
    sim, _, rpc = make_rpc(timeout=1.0)
    rpc.expose("server", "echo", lambda caller, params: params)
    results = []
    rpc.call("client", "server", "echo", "x", lambda r, e: results.append((r, e)))
    sim.run_until(10.0)  # long after the timeout would have fired
    assert results == [("x", None)]


def test_caller_identity_passed_to_server():
    sim, _, rpc = make_rpc()
    rpc.expose("server", "who", lambda caller, params: caller)
    results = []
    rpc.call("alice", "server", "who", None, lambda r, e: results.append(r))
    sim.run_until(1.0)
    assert results == ["alice"]


def test_concurrent_calls_are_matched():
    sim, _, rpc = make_rpc()
    rpc.expose("server", "double", lambda caller, params: params * 2)
    results = {}
    for i in range(5):
        rpc.call(
            "client", "server", "double", i,
            lambda r, e, i=i: results.__setitem__(i, r),
        )
    sim.run_until(2.0)
    assert results == {i: i * 2 for i in range(5)}


def test_rpc_respects_partitions():
    """RPC endpoints share their peer's physical link: a partition keyed on
    the bare peer id must block ``rpc:``-namespaced traffic too."""
    sim, transport, rpc = make_rpc()
    rpc.expose("server", "echo", lambda caller, params: params)
    handle = transport.topology.partition_groups((frozenset(("server",)),))
    results = []
    rpc.call("client", "server", "echo", "x", lambda r, e: results.append((r, e)))
    sim.run_until(1.0)
    assert results == [(None, "unreachable: server")]
    transport.topology.heal(handle)
    rpc.call("client", "server", "echo", "y", lambda r, e: results.append((r, e)))
    sim.run_until(2.0)
    assert results[1] == ("y", None)

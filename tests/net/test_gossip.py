"""Unit tests for the gossip pubsub fabric."""

from repro.net.gossip import GossipNetwork, GossipParams
from repro.net.topology import Topology, UniformLatency
from repro.net.transport import Transport
from repro.sim.scheduler import Simulator


def make_network(n_peers, seed=1, loss_rate=0.0, params=None):
    sim = Simulator(seed=seed)
    topology = Topology(UniformLatency(base=0.02, jitter=0.01), loss_rate=loss_rate)
    network = GossipNetwork(sim, Transport(sim, topology), params)
    inboxes = {f"p{i}": [] for i in range(n_peers)}
    for peer, inbox in inboxes.items():
        network.subscribe(peer, "topic", inbox.append)
    return sim, network, inboxes


def test_publish_reaches_all_subscribers():
    sim, network, inboxes = make_network(10)
    network.publish("p0", "topic", "hello")
    sim.run_until(2.0)
    for peer, inbox in inboxes.items():
        assert [e.data for e in inbox] == ["hello"], f"{peer} missed the message"


def test_messages_not_duplicated():
    sim, network, inboxes = make_network(8)
    for i in range(5):
        network.publish("p0", "topic", f"m{i}")
    sim.run_until(3.0)
    for inbox in inboxes.values():
        assert sorted(e.data for e in inbox) == [f"m{i}" for i in range(5)]


def test_publisher_receives_own_message():
    sim, network, inboxes = make_network(3)
    network.publish("p1", "topic", "self")
    sim.run_until(1.0)
    assert [e.data for e in inboxes["p1"]] == ["self"]


def test_non_subscriber_can_publish():
    sim, network, inboxes = make_network(5)
    network.add_peer("outsider")
    network.publish("outsider", "topic", "from-outside")
    sim.run_until(2.0)
    for inbox in inboxes.values():
        assert [e.data for e in inbox] == ["from-outside"]


def test_unsubscribed_peer_stops_receiving():
    sim, network, inboxes = make_network(5)
    network.unsubscribe("p3", "topic")
    network.publish("p0", "topic", "after-leave")
    sim.run_until(2.0)
    assert inboxes["p3"] == []
    assert [e.data for e in inboxes["p4"]] == ["after-leave"]


def test_topics_are_isolated():
    sim = Simulator(seed=2)
    network = GossipNetwork(sim, Transport(sim, Topology()))
    inbox_a, inbox_b = [], []
    network.subscribe("x", "topic-a", inbox_a.append)
    network.subscribe("x", "topic-b", inbox_b.append)
    network.subscribe("y", "topic-a", lambda e: None)
    network.subscribe("y", "topic-b", lambda e: None)
    network.publish("y", "topic-a", "only-a")
    sim.run_until(1.0)
    assert [e.data for e in inbox_a] == ["only-a"]
    assert inbox_b == []


def test_lazy_gossip_heals_loss():
    """With heavy loss, heartbeat IHAVE/IWANT still propagates the message."""
    sim, network, inboxes = make_network(
        12, seed=5, loss_rate=0.35, params=GossipParams(degree=3, lazy_degree=4)
    )
    network.publish("p0", "topic", "resilient")
    sim.run_until(30.0)
    got = sum(1 for inbox in inboxes.values() if any(e.data == "resilient" for e in inbox))
    assert got == 12


def test_mesh_is_symmetric_and_bounded():
    _, network, _ = make_network(20, params=GossipParams(degree=4))
    for peer_id, state in network._peers.items():
        for neighbour in state.mesh.get("topic", set()):
            assert peer_id in network._peers[neighbour].mesh["topic"]


def test_envelope_metadata():
    sim, network, inboxes = make_network(3)
    msg_id = network.publish("p0", "topic", "meta")
    sim.run_until(1.0)
    envelope = inboxes["p1"][0]
    assert envelope.msg_id == msg_id
    assert envelope.publisher == "p0"
    assert envelope.topic == "topic"
    assert envelope.published_at == 0.0


def test_remove_peer_cleans_up():
    sim, network, inboxes = make_network(5)
    network.remove_peer("p2")
    network.publish("p0", "topic", "post-removal")
    sim.run_until(2.0)
    assert inboxes["p2"] == []
    assert "p2" not in network.subscribers("topic")


def test_two_peer_topic():
    sim, network, inboxes = make_network(2)
    network.publish("p0", "topic", "pair")
    sim.run_until(1.0)
    assert [e.data for e in inboxes["p1"]] == ["pair"]


def test_deterministic_gossip_run():
    def run():
        sim, network, inboxes = make_network(10, seed=77)
        for i in range(3):
            network.publish(f"p{i}", "topic", f"m{i}")
        sim.run_until(5.0)
        return sim.trace.digest(), {
            p: sorted(e.data for e in inbox) for p, inbox in inboxes.items()
        }

    assert run() == run()


def test_shutdown_stops_heartbeat():
    sim, network, _ = make_network(4)
    network.shutdown()
    sim.run_until(10.0)
    # After shutdown and queue drain, no recurring heartbeat remains.
    assert sim.queue.peek_time() is None

"""Unit tests for topology and transport."""

import pytest

from repro.net.topology import RegionLatency, Topology, UniformLatency
from repro.net.transport import Transport
from repro.sim.scheduler import Simulator


def make_transport(seed=1, **topology_kwargs):
    sim = Simulator(seed=seed)
    transport = Transport(sim, Topology(**topology_kwargs))
    return sim, transport


def test_send_delivers_after_latency():
    sim, transport = make_transport()
    received = []
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: received.append((sim.now, m.payload)))
    assert transport.send("a", "b", "test", "hello")
    sim.run()
    assert len(received) == 1
    time, payload = received[0]
    assert payload == "hello"
    assert time > 0


def test_send_to_unknown_peer_fails():
    _, transport = make_transport()
    transport.register("a", lambda m: None)
    assert not transport.send("a", "ghost", "test", "x")


def test_duplicate_registration_rejected():
    _, transport = make_transport()
    transport.register("a", lambda m: None)
    with pytest.raises(ValueError):
        transport.register("a", lambda m: None)


def test_unregister_then_reregister():
    _, transport = make_transport()
    transport.register("a", lambda m: None)
    transport.unregister("a")
    transport.register("a", lambda m: None)
    assert transport.is_registered("a")


def test_partition_blocks_send():
    sim, transport = make_transport()
    received = []
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: received.append(m))
    handle = transport.topology.partition({"a"})
    assert not transport.send("a", "b", "test", "x")
    transport.topology.heal(handle)
    assert transport.send("a", "b", "test", "x")
    sim.run()
    assert len(received) == 1


def test_partition_allows_intra_group_traffic():
    sim, transport = make_transport()
    received = []
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: received.append(m))
    transport.topology.partition({"a", "b"})
    assert transport.send("a", "b", "test", "x")
    sim.run()
    assert len(received) == 1


def test_heal_all():
    _, transport = make_transport()
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: None)
    transport.topology.partition({"a"})
    transport.topology.partition({"b"})
    transport.topology.heal_all()
    assert transport.send("a", "b", "t", "x")


def test_loss_rate_drops_messages():
    sim, transport = make_transport(loss_rate=0.5)
    delivered = []
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: delivered.append(m))
    sent = sum(1 for _ in range(200) if transport.send("a", "b", "t", "x"))
    sim.run()
    assert sent < 200  # some dropped at send
    assert len(delivered) == sent  # the rest all arrive


def test_invalid_loss_rate():
    with pytest.raises(ValueError):
        Topology(loss_rate=1.0)


def test_uniform_latency_bounds():
    import random

    model = UniformLatency(base=0.1, jitter=0.05)
    rng = random.Random(0)
    samples = [model.sample("a", "b", rng) for _ in range(100)]
    assert all(0.05 <= s <= 0.15 for s in samples)


def test_uniform_latency_zero_jitter_is_constant():
    import random

    model = UniformLatency(base=0.1, jitter=0.0)
    assert model.sample("a", "b", random.Random(0)) == 0.1


def test_uniform_latency_rejects_negative():
    with pytest.raises(ValueError):
        UniformLatency(base=0.01, jitter=0.05)


def test_region_latency_matrix():
    import random

    model = RegionLatency(
        regions={"a": "us", "b": "us", "c": "eu"},
        matrix={("us", "us"): 0.01, ("eu", "us"): 0.1},
        jitter_fraction=0.0,
    )
    rng = random.Random(0)
    assert model.sample("a", "b", rng) == 0.01
    assert model.sample("a", "c", rng) == 0.1
    assert model.sample("c", "a", rng) == 0.1  # symmetric
    # Unknown pair falls back to the default.
    model.regions["d"] = "asia"
    assert model.sample("a", "d", rng) == model.default


def test_metrics_are_recorded():
    sim, transport = make_transport()
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: None)
    transport.send("a", "b", "t", "x")
    sim.run()
    assert sim.metrics.counter("net.sent").value == 1
    assert sim.metrics.counter("net.delivered").value == 1
    assert sim.metrics.histogram("net.latency").count == 1


def test_transport_partition_and_heal_helpers():
    sim, transport = make_transport()
    received = []
    for peer in ("a", "b", "c"):
        transport.register(peer, lambda m: received.append(m))
    handle = transport.partition({"a", "b"})
    assert transport.send("a", "b", "t", "x")  # intra-group ok
    assert not transport.send("a", "c", "t", "x")  # cross-group cut
    transport.heal(handle)
    assert transport.send("a", "c", "t", "x")
    sim.run()
    assert len(received) == 2


def test_transport_partition_accepts_bare_peer_id():
    _, transport = make_transport()
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: None)
    transport.partition("a")  # string, not iterable-of-ids
    assert not transport.send("a", "b", "t", "x")


def test_transport_partition_multiple_groups():
    _, transport = make_transport()
    for peer in ("a", "b", "c", "d"):
        transport.register(peer, lambda m: None)
    transport.partition({"a", "b"}, {"c"})
    assert transport.send("a", "b", "t", "x")
    assert not transport.send("b", "c", "t", "x")
    # Unlisted peers form the implicit remainder group.
    assert not transport.send("d", "a", "t", "x")


def test_transport_partition_needs_a_group():
    _, transport = make_transport()
    with pytest.raises(ValueError):
        transport.partition()


def test_transport_heal_without_handle_restores_pristine_network():
    _, transport = make_transport()
    for peer in ("a", "b", "c"):
        transport.register(peer, lambda m: None)
    transport.partition("a")
    transport.partition("b")
    transport.set_link("a", "b", loss=0.5)
    transport.heal()
    assert transport.topology.link_profile("a", "b") is None
    assert transport.send("a", "b", "t", "x")  # partitions gone, loss cleared
    assert transport.send("b", "c", "t", "x")


def test_transport_set_link_loss_and_latency():
    sim, transport = make_transport()
    arrivals = []
    transport.register("a", lambda m: None)
    transport.register("b", lambda m: arrivals.append(sim.now))
    transport.set_link("a", "b", loss=0.9)
    sent = sum(1 for _ in range(100) if transport.send("a", "b", "t", "x"))
    assert sent < 50  # heavy per-link loss drops most sends

    transport.set_link("a", "b", loss=0.0, extra_latency=1.0)
    sim.run()
    start = sim.now
    assert transport.send("a", "b", "t", "x")
    sim.run()
    assert arrivals[-1] - start >= 1.0  # override adds onto the model

    transport.set_link("a", "b", loss=0.0, extra_latency=0.0)
    assert transport.topology.link_profile("a", "b") is None  # all-zero removed


def test_transport_set_link_is_symmetric_and_groupwise():
    _, transport = make_transport()
    for peer in ("a", "b", "c"):
        transport.register(peer, lambda m: None)
    transport.set_link({"a"}, {"b", "c"}, loss=0.25)
    topology = transport.topology
    assert topology.link_profile("a", "b").loss == 0.25
    assert topology.link_profile("b", "a").loss == 0.25  # symmetric key
    assert topology.link_profile("a", "c").loss == 0.25
    assert topology.link_profile("b", "c") is None  # untouched pair


def test_deterministic_delivery_times():
    def run():
        sim, transport = make_transport(seed=42)
        arrivals = []
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: arrivals.append(sim.now))
        for _ in range(10):
            transport.send("a", "b", "t", "x")
        sim.run()
        return arrivals

    assert run() == run()

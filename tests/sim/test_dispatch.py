"""Unit tests for the instrumented event-dispatch bus."""

import pytest

from repro.sim.scheduler import SimulationError, Simulator
from repro.sim.scheduler import DispatchBus


def test_dispatch_counts_per_label():
    sim = Simulator()
    sim.schedule(1.0, lambda: None, label="tick")
    sim.schedule(2.0, lambda: None, label="tick")
    sim.schedule(3.0, lambda: None, label="other")
    sim.run()
    assert sim.dispatch.counts == {"tick": 2, "other": 1}
    assert sim.dispatch.wall_seconds["tick"] >= 0.0
    assert sim.dispatch.max_wall_seconds["tick"] >= 0.0


def test_dispatch_label_falls_back_to_callback_name():
    sim = Simulator()

    def my_callback():
        pass

    sim.schedule(1.0, my_callback)
    sim.run()
    assert sim.dispatch.counts == {"my_callback": 1}


def test_pre_dispatch_hook_sees_events_and_can_suppress():
    """A pre-dispatch hook cancelling the event is the fault-injection point."""
    sim = Simulator()
    fired = []
    seen = []

    def drop_deliveries(event):
        seen.append(sim.dispatch.label_of(event))
        if event.label == "net:deliver":
            event.cancel()

    remove = sim.dispatch.on_pre_dispatch(drop_deliveries)
    sim.schedule(1.0, lambda: fired.append("a"), label="net:deliver")
    sim.schedule(2.0, lambda: fired.append("b"), label="tick")
    sim.run()
    assert fired == ["b"]
    assert seen == ["net:deliver", "tick"]
    assert sim.dispatch.suppressed == {"net:deliver": 1}
    assert sim.dispatch.counts == {"tick": 1}
    assert sim.trace.count("dispatch.suppressed") == 1

    remove()
    sim.schedule(1.0, lambda: fired.append("c"), label="net:deliver")
    sim.run()
    assert fired == ["b", "c"]


def test_post_dispatch_hook_receives_elapsed_and_runs_on_error():
    sim = Simulator()
    observed = []
    sim.dispatch.on_post_dispatch(
        lambda event, elapsed: observed.append((sim.dispatch.label_of(event), elapsed))
    )
    sim.schedule(1.0, lambda: None, label="ok")

    def boom():
        raise RuntimeError("exploded")

    sim.schedule(2.0, boom, label="bad")
    with pytest.raises(RuntimeError):
        sim.run()
    labels = [label for label, _ in observed]
    assert labels == ["ok", "bad"]
    assert all(elapsed >= 0.0 for _, elapsed in observed)
    # The failing event is still accounted.
    assert sim.dispatch.counts == {"ok": 1, "bad": 1}


def test_summary_sorted_busiest_first():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i), lambda: None, label="busy")
    sim.schedule(5.0, lambda: None, label="rare")
    sim.run()
    rows = sim.dispatch.summary()
    assert [row["label"] for row in rows] == ["busy", "rare"]
    busy = rows[0]
    assert busy["events"] == 3
    assert busy["wall_s"] >= busy["mean_s"] >= 0.0
    assert busy["max_s"] >= busy["mean_s"]


def test_publish_exports_gauges_to_sim_metrics():
    sim = Simulator()
    sim.schedule(1.0, lambda: None, label="tick")
    sim.run()
    sim.dispatch.publish()
    snapshot = sim.metrics.snapshot()
    assert snapshot["gauges"]["sim.dispatch.tick.events"] == 1
    assert snapshot["gauges"]["sim.dispatch.tick.wall_s"] >= 0.0
    assert snapshot["gauges"]["sim.dispatch.tick.wall_max_s"] >= 0.0


def test_publish_without_registry_raises():
    bus = DispatchBus()
    with pytest.raises(SimulationError):
        bus.publish()


def test_reset_clears_statistics_but_keeps_hooks():
    sim = Simulator()
    calls = []
    sim.dispatch.on_pre_dispatch(lambda event: calls.append(event.label))
    sim.schedule(1.0, lambda: None, label="tick")
    sim.run()
    sim.dispatch.reset()
    assert sim.dispatch.counts == {}
    sim.schedule(1.0, lambda: None, label="tick")
    sim.run()
    assert sim.dispatch.counts == {"tick": 1}
    assert calls == ["tick", "tick"]


def test_current_dispatch_label_inside_and_outside_events():
    """The profiler's attribution slot tracks the executing event's label."""
    from repro.sim.scheduler import current_dispatch_label

    seen = []
    sim = Simulator()
    assert current_dispatch_label() is None
    sim.schedule(1.0, lambda: seen.append(current_dispatch_label()), label="tick")
    sim.schedule(2.0, lambda: seen.append(current_dispatch_label()), label="other")
    sim.run()
    assert seen == ["tick", "other"]
    # Cleared once dispatch returns — outside code attributes to no label.
    assert current_dispatch_label() is None


def test_current_dispatch_label_nests_and_unwinds():
    from repro.sim.events import Event
    from repro.sim.scheduler import current_dispatch_label

    sim = Simulator()
    seen = []

    def inner():
        seen.append(("inner", current_dispatch_label()))

    def outer():
        seen.append(("outer-before", current_dispatch_label()))
        sim.dispatch.dispatch(Event(time=sim.now, seq=10**9, callback=inner, label="inner"))
        seen.append(("outer-after", current_dispatch_label()))

    sim.schedule(1.0, outer, label="outer")
    sim.run()
    assert seen == [
        ("outer-before", "outer"),
        ("inner", "inner"),
        ("outer-after", "outer"),
    ]
    assert current_dispatch_label() is None


def test_current_dispatch_label_cleared_after_event_error():
    from repro.sim.scheduler import current_dispatch_label

    sim = Simulator()

    def boom():
        raise RuntimeError("exploded")

    sim.schedule(1.0, boom, label="bad")
    with pytest.raises(RuntimeError):
        sim.run()
    assert current_dispatch_label() is None


def test_current_dispatch_label_not_set_for_suppressed_events():
    from repro.sim.scheduler import current_dispatch_label

    sim = Simulator()
    seen = []
    sim.dispatch.on_pre_dispatch(
        lambda event: event.cancel() if event.label == "drop" else None
    )
    sim.schedule(1.0, lambda: seen.append(current_dispatch_label()), label="drop")
    sim.schedule(2.0, lambda: seen.append(current_dispatch_label()), label="keep")
    sim.run()
    assert seen == ["keep"]
    assert current_dispatch_label() is None


def test_dispatch_instrumentation_preserves_trace_determinism():
    """Wall-clock timings must never leak into the deterministic trace."""

    def digest(seed):
        sim = Simulator(seed=seed)
        stop = sim.every(0.5, lambda: sim.trace.emit("app.tick", "t"), label="app")
        sim.run_until(5.0)
        stop()
        return sim.trace.digest()

    assert digest(9) == digest(9)

"""Unit tests for the event queue."""

import pytest

from repro.sim.events import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while queue:
        queue.pop().fire()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_in_insertion_order():
    queue = EventQueue()
    fired = []
    for i in range(10):
        queue.push(5.0, lambda i=i: fired.append(i))
    while queue:
        queue.pop().fire()
    assert fired == list(range(10))


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    event = queue.push(1.0, lambda: fired.append("cancelled"))
    queue.push(2.0, lambda: fired.append("kept"))
    event.cancel()
    queue.note_cancel()
    assert len(queue) == 1
    queue.pop().fire()
    assert fired == ["kept"]


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    queue.note_cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_len_counts_live_events():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    assert len(queue) == 5
    events[0].cancel()
    queue.note_cancel()
    assert len(queue) == 4


def test_discard_cancelled_compacts():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]
    for event in events[:9]:
        event.cancel()
        queue.note_cancel()
    queue.discard_cancelled()
    assert len(list(queue.iter_pending())) == 1


def test_event_callback_args_and_kwargs():
    queue = EventQueue()
    results = []
    queue.push(1.0, lambda a, b=0: results.append(a + b), args=(1,), kwargs={"b": 2})
    queue.pop().fire()
    assert results == [3]

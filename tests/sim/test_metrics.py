"""Unit tests for metrics."""

import math

import pytest

from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_gauge_set_and_add():
    gauge = Gauge("g")
    gauge.set(10.0)
    gauge.add(-3.0)
    assert gauge.value == 7.0


def test_histogram_summary_statistics():
    histogram = Histogram("h")
    histogram.observe_many(range(1, 101))
    assert histogram.count == 100
    assert histogram.mean() == pytest.approx(50.5)
    assert histogram.percentile(50) == pytest.approx(50.5)
    assert histogram.min() == 1
    assert histogram.max() == 100


def test_histogram_percentile_interpolates():
    histogram = Histogram("h")
    histogram.observe_many([0.0, 10.0])
    assert histogram.percentile(25) == pytest.approx(2.5)


def test_histogram_empty_is_nan():
    histogram = Histogram("h")
    assert math.isnan(histogram.mean())
    assert math.isnan(histogram.percentile(50))


def test_histogram_percentile_bounds():
    histogram = Histogram("h")
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_histogram_stdev():
    histogram = Histogram("h")
    histogram.observe_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert histogram.stdev() == pytest.approx(2.138, abs=1e-3)
    single = Histogram("s")
    single.observe(1.0)
    assert single.stdev() == 0.0


def test_histogram_summary_is_json_safe_when_empty():
    import json

    summary = Histogram("h").summary()
    assert summary["count"] == 0
    for key in ("mean", "stdev", "p50", "p95", "p99", "min", "max"):
        assert summary[key] is None
    json.dumps(summary, allow_nan=False)  # must not raise


def test_histogram_summary_values_round_trip():
    import json

    histogram = Histogram("h")
    histogram.observe_many([1.0, 2.0, 3.0])
    summary = histogram.summary()
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(2.0)
    assert summary["p50"] == pytest.approx(2.0)
    json.dumps(summary, allow_nan=False)


def test_histogram_merge_combines_samples():
    a = Histogram("a")
    a.observe_many([1.0, 2.0])
    b = Histogram("b")
    b.observe_many([3.0, 4.0])
    c = Histogram("c")
    merged = a.merge(b, c)
    assert merged is a
    assert a.count == 4
    assert a.mean() == pytest.approx(2.5)
    assert b.count == 2  # sources untouched


def test_timeseries_rate():
    series = TimeSeries("t")
    for t in range(11):
        series.record(float(t), 1.0)
    assert series.rate() == pytest.approx(11 / 10)
    assert series.rate(window=(0.0, 5.0)) == pytest.approx(6 / 5)


def test_timeseries_rate_degenerate():
    """Undefined rates are None (JSON null), like Histogram.summary()."""
    series = TimeSeries("t")
    assert series.rate() is None  # empty series
    assert series.rate(window=(0.0, 5.0)) is None  # still empty
    series.record(1.0, 1.0)
    assert series.rate() is None  # single point: no span
    assert series.rate(window=(3.0, 3.0)) is None  # zero-span window
    assert series.rate(window=(5.0, 2.0)) is None  # inverted window
    # A genuine zero: positive-span window covering no points.
    assert series.rate(window=(10.0, 20.0)) == 0.0


def test_registry_reuses_instances():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("b") is registry.histogram("b")
    assert registry.gauge("c") is registry.gauge("c")
    assert registry.timeseries("d") is registry.timeseries("d")


def test_registry_mark_uses_clock():
    time = {"now": 0.0}
    registry = MetricsRegistry(clock=lambda: time["now"])
    registry.mark("events")
    time["now"] = 2.0
    registry.mark("events")
    assert registry.timeseries("events").times() == [0.0, 2.0]


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1.0)
    registry.histogram("h").observe(1.0)
    registry.mark("s")
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"c": 1}
    assert snapshot["gauges"] == {"g": 1.0}
    assert snapshot["histograms"]["h"]["count"] == 1
    assert snapshot["series"] == {"s": 1}


def test_registry_snapshot_is_nan_safe():
    """A NaN/inf gauge snapshots as None so json.dumps(allow_nan=False)
    never chokes on a metrics snapshot."""
    import json

    registry = MetricsRegistry()
    registry.gauge("bad").set(float("nan"))
    registry.gauge("worse").set(float("inf"))
    registry.gauge("fine").set(2.0)
    snapshot = registry.snapshot()
    assert snapshot["gauges"] == {"bad": None, "worse": None, "fine": 2.0}
    json.dumps(snapshot, allow_nan=False)  # must not raise

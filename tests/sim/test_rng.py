"""Unit tests for seed derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import SeedSequence, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")


def test_derive_seed_sensitive_to_every_part():
    base = derive_seed(1, "a", "b")
    assert derive_seed(2, "a", "b") != base
    assert derive_seed(1, "x", "b") != base
    assert derive_seed(1, "a", "x") != base
    assert derive_seed(1, "a") != base


def test_rng_cached_per_scope():
    seeds = SeedSequence(5)
    assert seeds.rng("x") is seeds.rng("x")
    assert seeds.rng("x") is not seeds.rng("y")


def test_scopes_accept_mixed_types():
    seeds = SeedSequence(5)
    # Stringified scopes: 1 (int) and "1" (str) intentionally collide.
    assert seeds.seed_for(1, "a") == seeds.seed_for("1", "a")


def test_child_sequences_are_independent():
    parent = SeedSequence(9)
    child_a = parent.child("a")
    child_b = parent.child("b")
    assert child_a.root != child_b.root
    assert child_a.rng("x").random() != child_b.rng("x").random()
    # Children are reproducible from the same parent scope.
    assert parent.child("a").rng("x").random() == SeedSequence(9).child("a").rng("x").random()


@given(st.integers(), st.text(max_size=10), st.text(max_size=10))
def test_seed_is_64_bit(root, a, b):
    seed = derive_seed(root, a, b)
    assert 0 <= seed < 2**64


@given(st.integers(min_value=0, max_value=10**6))
def test_same_root_same_stream(root):
    a = SeedSequence(root).rng("s")
    b = SeedSequence(root).rng("s")
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]

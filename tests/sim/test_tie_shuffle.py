"""Tie-order semantics: documented FIFO tie-breaking, permuted-insertion
digest stability, and the tie-shuffle race detector."""

import pytest

from repro.sim.events import EventQueue, tie_mix
from repro.sim.scheduler import Simulator


# ----------------------------------------------------------------------
# Documented tie-breaking (satellite: every()/queue tie contract)
# ----------------------------------------------------------------------
def _run_trace(schedule_order):
    """Schedule labelled events (time, label) in the given order; return
    the trace digest of their firing order."""
    sim = Simulator(seed=1)
    for time, label in schedule_order:
        sim.schedule_at(
            time, lambda lbl=label: sim.trace.emit("fired", lbl), label=label
        )
    sim.run()
    return sim.trace.digest()


def test_permuted_insertion_of_distinct_times_yields_identical_digests():
    events = [(0.5, "a"), (1.0, "b"), (2.0, "c"), (3.5, "d"), (7.0, "e")]
    reference = _run_trace(events)
    assert _run_trace(list(reversed(events))) == reference
    assert _run_trace(events[2:] + events[:2]) == reference


def test_same_time_ties_fire_fifo_and_digest_tracks_insertion_order():
    ties = [(1.0, "a"), (1.0, "b"), (1.0, "c")]
    assert _run_trace(ties) == _run_trace(ties)
    # FIFO means insertion order IS the firing order, so permuting the
    # insertion of *ties* legitimately changes the schedule (and digest) —
    # exactly why tie-order dependence must be flushed out explicitly.
    assert _run_trace(ties) != _run_trace(list(reversed(ties)))


def test_every_ticks_interleave_fifo_by_registration_order():
    sim = Simulator(seed=1)
    fired = []
    sim.every(1.0, lambda: fired.append("first"))
    sim.every(1.0, lambda: fired.append("second"))
    sim.run_until(3.0)
    assert fired == ["first", "second"] * 3


# ----------------------------------------------------------------------
# tie_mix / queue mechanics
# ----------------------------------------------------------------------
def test_tie_mix_is_deterministic_and_seed_sensitive():
    assert tie_mix(7, 3) == tie_mix(7, 3)
    assert tie_mix(7, 3) != tie_mix(8, 3)
    perm_a = sorted(range(32), key=lambda s: tie_mix(1, s))
    perm_b = sorted(range(32), key=lambda s: tie_mix(2, s))
    assert perm_a != list(range(32))  # actually permutes
    assert perm_a != perm_b  # differently per seed


def test_set_tie_shuffle_requires_fresh_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    with pytest.raises(RuntimeError):
        queue.set_tie_shuffle(3)


def test_tie_shuffle_permutes_ties_but_respects_time_order():
    sim = Simulator(seed=1, tie_shuffle=1234)
    fired = []
    for i in range(16):
        sim.schedule_at(1.0, lambda i=i: fired.append(i))
    sim.schedule_at(0.5, lambda: fired.append("early"))
    sim.schedule_at(2.0, lambda: fired.append("late"))
    sim.run()
    assert fired[0] == "early" and fired[-1] == "late"
    middle = fired[1:-1]
    assert sorted(middle) == list(range(16))
    assert middle != list(range(16))  # ties actually permuted
    # Deterministic per shuffle seed:
    sim2 = Simulator(seed=1, tie_shuffle=1234)
    fired2 = []
    for i in range(16):
        sim2.schedule_at(1.0, lambda i=i: fired2.append(i))
    sim2.run()
    assert fired2 == middle


def test_tie_shuffle_env_var_wiring(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_SHUFFLE", "99")
    sim = Simulator(seed=1)
    assert sim.tie_shuffle == 99
    assert sim.queue.tie_shuffle == 99
    monkeypatch.delenv("REPRO_TIE_SHUFFLE")
    assert Simulator(seed=1).tie_shuffle is None


# ----------------------------------------------------------------------
# The race detector: order-dependent handlers change the outcome digest,
# order-independent handlers do not.
# ----------------------------------------------------------------------
def _racy_outcome(tie_shuffle):
    """A handler whose outcome depends on tie order (last writer wins)."""
    sim = Simulator(seed=1, tie_shuffle=tie_shuffle)
    state = {}
    for i in range(8):
        sim.schedule_at(1.0, lambda i=i: state.__setitem__("winner", i))
    sim.run()
    return state["winner"]


def _clean_outcome(tie_shuffle):
    """A commutative handler: any tie order yields the same end state."""
    sim = Simulator(seed=1, tie_shuffle=tie_shuffle)
    state = {"total": 0}
    for i in range(8):
        sim.schedule_at(1.0, lambda i=i: state.__setitem__("total", state["total"] + i))
    sim.run()
    return state["total"]


def test_tie_shuffle_detects_order_dependent_state():
    outcomes = {_racy_outcome(s) for s in (None, 1, 2, 3, 4)}
    assert len(outcomes) > 1, "the detector must expose last-writer-wins races"


def test_tie_shuffle_keeps_commutative_state_invariant():
    outcomes = {_clean_outcome(s) for s in (None, 1, 2, 3, 4)}
    assert outcomes == {sum(range(8))}

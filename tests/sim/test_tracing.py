"""Unit tests for the trace log."""

from repro.sim.scheduler import Simulator
from repro.sim.tracing import TraceLog


def test_emit_records_time_and_details():
    time = {"now": 1.25}
    log = TraceLog(clock=lambda: time["now"])
    log.emit("block", "subnet-a", "height=3")
    assert len(log) == 1
    record = log.records[0]
    assert record.time == 1.25
    assert record.kind == "block"
    assert record.subject == "subnet-a"
    assert record.detail == ("height=3",)


def test_filter_by_kind_and_subject():
    log = TraceLog()
    log.emit("a", "x")
    log.emit("a", "y")
    log.emit("b", "x")
    assert len(list(log.filter(kind="a"))) == 2
    assert len(list(log.filter(subject="x"))) == 2
    assert len(list(log.filter(kind="a", subject="x"))) == 1
    assert log.count("b") == 1


def test_digest_changes_with_content():
    log_a = TraceLog()
    log_a.emit("k", "s", 1)
    log_b = TraceLog()
    log_b.emit("k", "s", 2)
    assert log_a.digest() != log_b.digest()


def test_digest_equal_for_equal_logs():
    log_a = TraceLog()
    log_b = TraceLog()
    for log in (log_a, log_b):
        log.emit("k", "s", "same")
    assert log_a.digest() == log_b.digest()


def test_capacity_limits_records():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.emit("k", "s", i)
    assert len(log) == 2


def test_disabled_log_drops_records():
    log = TraceLog()
    log.enabled = False
    log.emit("k", "s")
    assert len(log) == 0


def test_identical_simulations_have_identical_digests():
    def run():
        sim = Simulator(seed=99)
        rng = sim.rng("worker")

        def tick():
            sim.trace.emit("tick", "worker", round(rng.random(), 9))

        sim.every(0.5, tick)
        sim.run_until(5.0)
        return sim.trace.digest()

    assert run() == run()

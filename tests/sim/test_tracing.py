"""Unit tests for the trace log."""

from repro.sim.scheduler import Simulator
from repro.sim.tracing import TraceLog


def test_emit_records_time_and_details():
    time = {"now": 1.25}
    log = TraceLog(clock=lambda: time["now"])
    log.emit("block", "subnet-a", "height=3")
    assert len(log) == 1
    record = log.records[0]
    assert record.time == 1.25
    assert record.kind == "block"
    assert record.subject == "subnet-a"
    assert record.detail == ("height=3",)


def test_filter_by_kind_and_subject():
    log = TraceLog()
    log.emit("a", "x")
    log.emit("a", "y")
    log.emit("b", "x")
    assert len(list(log.filter(kind="a"))) == 2
    assert len(list(log.filter(subject="x"))) == 2
    assert len(list(log.filter(kind="a", subject="x"))) == 1
    assert log.count("b") == 1


def test_digest_changes_with_content():
    log_a = TraceLog()
    log_a.emit("k", "s", 1)
    log_b = TraceLog()
    log_b.emit("k", "s", 2)
    assert log_a.digest() != log_b.digest()


def test_digest_equal_for_equal_logs():
    log_a = TraceLog()
    log_b = TraceLog()
    for log in (log_a, log_b):
        log.emit("k", "s", "same")
    assert log_a.digest() == log_b.digest()


def test_capacity_limits_records():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.emit("k", "s", i)
    # 2 real records + the one-time capacity warning marker.
    assert len(log) == 3
    assert log.dropped == 3


def test_capacity_drop_is_counted_and_announced_once():
    log = TraceLog(capacity=1)
    log.emit("k", "s", "kept")
    assert log.dropped == 0
    for i in range(4):
        log.emit("k", "s", i)
    assert log.dropped == 4
    warnings = list(log.filter(kind="trace.capacity"))
    assert len(warnings) == 1
    assert warnings[0].subject == "capacity=1"
    # The kept record is untouched and the digest stays stable under
    # further over-capacity emits.
    digest = log.digest()
    log.emit("k", "s", "late")
    assert log.dropped == 5
    assert log.digest() == digest


def test_unbounded_log_never_drops():
    log = TraceLog()
    for i in range(100):
        log.emit("k", "s", i)
    assert log.dropped == 0
    assert log.count("trace.capacity") == 0


def test_disabled_log_drops_records():
    log = TraceLog()
    log.enabled = False
    log.emit("k", "s")
    assert len(log) == 0
    assert log.dropped == 0  # disabled is intentional, not capacity pressure


def test_identical_simulations_have_identical_digests():
    def run():
        sim = Simulator(seed=99)
        rng = sim.rng("worker")

        def tick():
            sim.trace.emit("tick", "worker", round(rng.random(), 9))

        sim.every(0.5, tick)
        sim.run_until(5.0)
        return sim.trace.digest()

    assert run() == run()

"""Unit tests for the Simulator event loop."""

import pytest

from repro.sim.scheduler import SimulationError, Simulator


def test_schedule_advances_clock():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.5]
    assert sim.now == 1.5


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_executes_inclusive_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.schedule(3.0, lambda: fired.append(3))
    executed = sim.run_until(2.0)
    assert executed == 2
    assert fired == [1, 2]
    assert sim.now == 2.0


def test_run_until_advances_clock_even_when_queue_drains():
    sim = Simulator()
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("no"))
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_every_repeats_and_stops():
    sim = Simulator()
    ticks = []
    stop = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run_until(3.5)
    assert ticks == [1.0, 2.0, 3.0]
    stop()
    sim.run_until(10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_every_with_custom_start():
    sim = Simulator()
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_after=0.5)
    sim.run_until(5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_every_rejects_nonpositive_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_halt_stops_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.halt()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    # A new run resumes.
    sim.run()
    assert fired == [1, 2]


def test_run_until_max_events_guard():
    sim = Simulator()

    def spin():
        sim.schedule(0.0, spin)

    sim.schedule(0.0, spin)
    with pytest.raises(SimulationError):
        sim.run_until(1.0, max_events=100)


def test_rng_is_deterministic_and_scoped():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    assert sim_a.rng("x").random() == sim_b.rng("x").random()
    # Distinct scopes give distinct streams.
    assert sim_a.rng("y").random() != sim_a.rng("z").random()


def test_rng_scope_isolated_from_draw_order():
    sim_a = Simulator(seed=3)
    _ = sim_a.rng("first").random()
    value_after = sim_a.rng("second").random()

    sim_b = Simulator(seed=3)
    value_direct = sim_b.rng("second").random()
    assert value_after == value_direct


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


# ----------------------------------------------------------------------
# every(): error policies
# ----------------------------------------------------------------------
def test_every_callback_error_keeps_ticking_by_default():
    """Regression: one bad tick must not silently kill the recurrence."""
    sim = Simulator()
    ticks = []

    def flaky():
        ticks.append(sim.now)
        if len(ticks) == 2:
            raise ValueError("transient failure")

    sim.every(1.0, flaky, label="flaky")
    sim.run_until(4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]
    assert sim.trace.count("timer.error") == 1
    record = next(sim.trace.filter(kind="timer.error"))
    assert record.subject == "flaky"
    assert "transient failure" in record.detail
    assert sim.metrics.counter("sim.timer.errors.flaky").value == 1


def test_every_on_error_stop_ends_recurrence_and_logs():
    sim = Simulator()
    ticks = []

    def bad():
        ticks.append(sim.now)
        raise RuntimeError("fatal")

    sim.every(1.0, bad, on_error="stop", label="bad")
    sim.run_until(5.0)
    assert ticks == [1.0]
    assert sim.trace.count("timer.error") == 1


def test_every_on_error_raise_propagates():
    sim = Simulator()

    def bad():
        raise RuntimeError("boom")

    sim.every(1.0, bad, on_error="raise")
    with pytest.raises(RuntimeError, match="boom"):
        sim.run_until(5.0)
    # The recurrence died with the exception; nothing further is scheduled.
    sim.run_until(10.0)
    assert sim.trace.count("timer.error") == 0


def test_every_rejects_unknown_on_error_policy():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(1.0, lambda: None, on_error="ignore")


# ----------------------------------------------------------------------
# Scheduler edge cases
# ----------------------------------------------------------------------
def test_stop_from_inside_callback_keeps_queue_accounting():
    """Cancelling a recurring timer's in-flight event must not steal a
    live-event slot from the queue (the event was already popped)."""
    sim = Simulator()
    ticks = []
    holder = {}

    def cb():
        ticks.append(sim.now)
        if len(ticks) == 2:
            holder["stop"]()

    holder["stop"] = sim.every(1.0, cb)
    sentinel = []
    sim.schedule(10.0, lambda: sentinel.append(True))
    sim.run()
    assert ticks == [1.0, 2.0]
    assert sentinel == [True]


def test_cancel_already_fired_event_is_noop_for_queue():
    sim = Simulator()
    fired = {}

    def cb():
        fired["event"] = event

    event = sim.schedule(1.0, cb)
    later = sim.schedule(2.0, lambda: fired.setdefault("later", True))
    sim.run_until(1.0)
    sim.cancel(fired["event"])  # already executed
    assert len(sim.queue) == 1  # `later` still counted as live
    sim.run()
    assert fired.get("later") is True
    assert later.popped


def test_halt_during_run_until_leaves_clock_at_halt_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.halt()))
    sim.schedule(2.0, lambda: fired.append(2))
    executed = sim.run_until(10.0)
    assert executed == 1
    assert fired == [1]
    assert sim.now == 1.0  # not advanced to the horizon
    # Resuming picks up the remaining event and then advances the clock.
    sim.run_until(10.0)
    assert fired == [1, 2]
    assert sim.now == 10.0


def test_schedule_at_now_ordering_ties_run_in_insertion_order():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    order = []
    sim.schedule_at(sim.now, lambda: order.append("a"))
    sim.schedule_at(sim.now, lambda: order.append("b"))
    sim.schedule(0.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 1.0


def test_rng_scope_deterministic_across_runs():
    def draws(seed):
        sim = Simulator(seed=seed)
        sim.schedule(1.0, lambda: None)
        sim.run()
        rng = sim.rng("component", 3, "sub")
        return [rng.random() for _ in range(5)]

    assert draws(11) == draws(11)
    assert draws(11) != draws(12)

"""Tests for the unified node/network runtime package."""

from repro.crypto.keys import KeyPair
from repro.baselines import ShardedBaseline, SingleChainBaseline
from repro.chain.genesis import GenesisParams, build_genesis
from repro.consensus.base import ConsensusParams
from repro.hierarchy import HierarchicalSystem
from repro.hierarchy.node import SubnetNode
from repro.runtime import (
    ClusterMember,
    NetworkStack,
    NodeRuntime,
    ValidatorCluster,
    cluster_members,
)


def build_cluster(n=3, engine="poa", seed=5, block_time=0.5):
    stack = NetworkStack(seed=seed)
    keys = [KeyPair(("rt-validator", i)) for i in range(n)]
    genesis_block, genesis_vm = build_genesis(GenesisParams(subnet_id="/root"))
    cluster = ValidatorCluster.build(
        cluster_members(keys, id_prefix="/root"),
        subnet_id="/root",
        genesis_block=genesis_block,
        genesis_vm=genesis_vm,
        consensus_params=ConsensusParams(engine=engine, block_time=block_time),
        stack=stack,
    )
    return stack, cluster


def test_network_stack_composes_shared_layers():
    stack = NetworkStack(seed=3, latency=0.01, loss_rate=0.0)
    assert stack.gossip.transport is stack.transport
    assert stack.transport.sim is stack.sim
    assert stack.transport.topology is stack.topology
    stack.run_for(2.5)
    assert stack.now == 2.5
    assert stack.wait_for(lambda: stack.now >= 2.5)


def test_cluster_produces_blocks_on_shared_runtime():
    stack, cluster = build_cluster()
    cluster.start()
    stack.run_for(5.0)
    heights = [node.head().height for node in cluster]
    assert min(heights) >= 5  # PoA at 0.5s block time
    assert len(cluster) == 3
    assert cluster[0] is cluster.primary
    cluster.stop()


def test_cluster_members_naming_and_powers():
    keys = [KeyPair(("m", i)) for i in range(3)]
    members = cluster_members(keys, id_prefix="/sub", powers=[5, 1, 2])
    assert [m.node_id for m in members] == ["/sub#0", "/sub#1", "/sub#2"]
    assert [m.power for m in members] == [5, 1, 2]


def test_default_factory_instantiates_node_runtime_with_byzantine_set():
    stack = NetworkStack(seed=8)
    keys = [KeyPair(("bz", i)) for i in range(2)]
    genesis_block, genesis_vm = build_genesis(GenesisParams(subnet_id="/root"))
    cluster = ValidatorCluster.build(
        [ClusterMember("n0", keys[0]), ClusterMember("n1", keys[1])],
        subnet_id="/root",
        genesis_block=genesis_block,
        genesis_vm=genesis_vm,
        consensus_params=ConsensusParams(engine="poa"),
        stack=stack,
        byzantine={"n1": {"equivocate"}},
    )
    assert all(type(node) is NodeRuntime for node in cluster)
    assert not cluster[0].is_byzantine("equivocate")
    assert cluster[1].is_byzantine("equivocate")


def test_replay_chain_syncs_new_nodes_from_source():
    stack, cluster = build_cluster(seed=21)
    cluster.start()
    stack.run_for(5.0)
    cluster.stop()

    keys = [KeyPair(("rt-late", i)) for i in range(2)]
    genesis_block, genesis_vm = build_genesis(GenesisParams(subnet_id="/root"))
    late = ValidatorCluster.build(
        cluster_members(keys, id_prefix="/late"),
        subnet_id="/root",
        genesis_block=genesis_block,
        genesis_vm=genesis_vm,
        consensus_params=ConsensusParams(engine="poa", block_time=0.5),
        stack=stack,
    )
    late.replay_chain(cluster.primary)
    assert late.primary.head().cid == cluster.primary.head().cid


def test_every_node_flavour_shares_the_runtime():
    """SubnetNode and both baselines all run on NodeRuntime."""
    assert issubclass(SubnetNode, NodeRuntime)
    single = SingleChainBaseline(seed=2, validators=2, block_time=0.5)
    sharded = ShardedBaseline(
        seed=2, shards=2, validators_per_shard=2, block_time=0.5
    )
    assert all(isinstance(node, NodeRuntime) for node in single.nodes)
    assert all(
        isinstance(node, NodeRuntime)
        for shard in sharded.shard_nodes
        for node in shard
    )


def test_hierarchical_system_runs_on_cluster_runtime():
    system = HierarchicalSystem(seed=4, root_block_time=0.5).start()
    from repro.hierarchy import ROOTNET

    assert ROOTNET in system.clusters
    assert system.nodes_by_subnet[ROOTNET] is system.clusters[ROOTNET].nodes
    assert all(isinstance(n, NodeRuntime) for n in system.nodes(ROOTNET))
    system.run_for(3.0)
    assert system.node(ROOTNET).head().height >= 3
    # Dispatch instrumentation observed the run's event labels.
    assert system.sim.dispatch.counts
    system.stop()


def test_baselines_flow_through_instrumented_dispatch():
    baseline = SingleChainBaseline(seed=9, validators=2, block_time=0.5).start()
    baseline.run_for(3.0)
    counts = baseline.sim.dispatch.counts
    assert sum(counts.values()) == baseline.sim.events_executed
    baseline.sim.dispatch.publish()
    gauges = baseline.sim.metrics.snapshot()["gauges"]
    assert any(name.startswith("sim.dispatch.") for name in gauges)

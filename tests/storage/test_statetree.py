"""Unit and property tests for the versioned state tree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.backend import MemoryBackend, bucket_of
from repro.storage.statetree import _MAX_CHAIN_DEPTH, StateTree


def test_basic_set_get():
    tree = StateTree()
    tree.set("a", 1)
    assert tree.get("a") == 1
    assert tree.get("missing", "d") == "d"
    assert tree.has("a")
    assert not tree.has("missing")


def test_delete_hides_value():
    tree = StateTree()
    tree.set("a", 1)
    tree.delete("a")
    assert not tree.has("a")
    assert tree.get("a") is None


def test_snapshot_revert_discards_writes():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.set("a", 2)
    tree.set("b", 3)
    tree.revert(token)
    assert tree.get("a") == 1
    assert not tree.has("b")


def test_snapshot_commit_keeps_writes():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.set("a", 2)
    tree.commit(token)
    assert tree.get("a") == 2
    assert tree.depth == 0


def test_nested_snapshots():
    tree = StateTree()
    tree.set("x", 0)
    outer = tree.snapshot()
    tree.set("x", 1)
    inner = tree.snapshot()
    tree.set("x", 2)
    tree.revert(inner)
    assert tree.get("x") == 1
    tree.commit(outer)
    assert tree.get("x") == 1


def test_delete_inside_reverted_snapshot_restores():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.delete("a")
    assert not tree.has("a")
    tree.revert(token)
    assert tree.get("a") == 1


def test_delete_inside_committed_snapshot_persists():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.delete("a")
    tree.commit(token)
    assert not tree.has("a")
    assert "a" not in tree.flatten()


def test_token_mismatch_detected():
    tree = StateTree()
    tree.snapshot()
    with pytest.raises(RuntimeError):
        tree.commit(99)


def test_close_without_snapshot_is_error():
    tree = StateTree()
    with pytest.raises(RuntimeError):
        tree.revert()
    with pytest.raises(RuntimeError):
        tree.commit()


def test_keys_and_items_are_sorted_and_live():
    tree = StateTree()
    tree.set("b", 2)
    tree.set("a", 1)
    tree.set("c", 3)
    tree.delete("c")
    assert list(tree.keys()) == ["a", "b"]
    assert list(tree.items()) == [("a", 1), ("b", 2)]
    assert list(tree.keys(prefix="a")) == ["a"]


def test_root_commitment_tracks_state():
    tree = StateTree()
    tree.set("a", 1)
    root_before = tree.root()
    tree.set("b", 2)
    assert tree.root() != root_before
    tree.delete("b")
    assert tree.root() == root_before


def test_root_ignores_snapshot_layering():
    flat = StateTree()
    flat.set("a", 1)
    flat.set("b", 2)

    layered = StateTree()
    layered.set("a", 0)
    layered.snapshot()
    layered.set("a", 1)
    layered.set("b", 2)
    assert layered.root() == flat.root()


def test_copy_is_independent():
    tree = StateTree()
    tree.set("a", 1)
    clone = tree.copy()
    clone.set("a", 2)
    assert tree.get("a") == 1
    assert clone.get("a") == 2


def test_copy_flattens_snapshots():
    tree = StateTree()
    tree.set("a", 1)
    tree.snapshot()
    tree.set("b", 2)
    clone = tree.copy()
    assert clone.depth == 0
    assert clone.get("b") == 2


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "delete", "snapshot", "commit", "revert"]),
            st.sampled_from(["k1", "k2", "k3"]),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=40,
    )
)
def test_layered_tree_matches_plain_dict_model(operations):
    """The tree must behave exactly like a dict with an undo stack."""
    tree = StateTree()
    model_stack = [{}]
    for op, key, value in operations:
        if op == "set":
            tree.set(key, value)
            model_stack[-1][key] = value
        elif op == "delete":
            tree.delete(key)
            model_stack[-1][key] = None  # tombstone in the model
        elif op == "snapshot":
            tree.snapshot()
            model_stack.append(dict(model_stack[-1]))
        elif op == "commit" and len(model_stack) > 1:
            tree.commit()
            top = model_stack.pop()
            model_stack[-1] = top
        elif op == "revert" and len(model_stack) > 1:
            tree.revert()
            model_stack.pop()
        model = {k: v for k, v in model_stack[-1].items() if v is not None}
        assert tree.flatten() == model


# ----------------------------------------------------------------------
# Forks (structural sharing)
# ----------------------------------------------------------------------
def test_fork_isolation_parent_and_siblings():
    """Writes in a fork never leak to the parent or to sibling forks."""
    parent = StateTree()
    parent.set("shared", 1)
    left = parent.fork()
    right = parent.fork()
    left.set("shared", "left")
    left.set("only_left", True)
    right.delete("shared")
    parent.set("after", 2)

    assert parent.get("shared") == 1
    assert not parent.has("only_left")
    assert left.get("shared") == "left"
    assert not left.has("after")
    assert right.get("shared") is None
    assert not right.has("shared")
    assert right.get("only_left") is None


def test_fork_chain_of_forks_preserves_each_generation():
    """A per-block snapshot fork must pin the state at its creation forever
    while the live tree keeps advancing — the ChainStore usage pattern."""
    tree = StateTree()
    snapshots = []
    for i in range(10):
        tree.set(f"k{i}", i)
        tree.set("latest", i)
        snapshots.append(tree.fork())
    for i, snap in enumerate(snapshots):
        assert snap.get("latest") == i
        assert snap.has(f"k{i}")
        assert not snap.has(f"k{i + 1}")
    assert snapshots[3].flatten() == {**{f"k{j}": j for j in range(4)}, "latest": 3}


def test_fork_with_open_snapshot_leaves_transaction_stack_alone():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.set("a", 2)
    clone = tree.fork()
    assert clone.depth == 0
    assert clone.get("a") == 2
    assert tree.depth == 1
    tree.revert(token)
    assert tree.get("a") == 1
    assert clone.get("a") == 2  # the clone keeps the merged view it saw


def test_fork_compaction_preserves_content():
    tree = StateTree()
    expected = {}
    for i in range(_MAX_CHAIN_DEPTH * 2 + 5):
        key = f"k{i % 7}"
        if i % 5 == 4:
            tree.delete(key)
            expected.pop(key, None)
        else:
            tree.set(key, i)
            expected[key] = i
        tree = tree.fork()
        assert tree.chain_depth <= _MAX_CHAIN_DEPTH + 1
    assert tree.flatten() == expected


def test_backend_is_visible_through_tree_and_forks():
    backend = MemoryBackend({"floor": "value", "masked": 1})
    tree = StateTree(backend=backend)
    assert tree.get("floor") == "value"
    tree.delete("masked")
    fork = tree.fork()
    assert fork.get("floor") == "value"
    assert not fork.has("masked")
    assert dict(fork.items()) == {"floor": "value"}
    # Deep fork chains compact; the tombstone must keep masking the backend.
    for _ in range(_MAX_CHAIN_DEPTH + 2):
        fork = fork.fork()
    assert not fork.has("masked")
    assert fork.flatten() == {"floor": "value"}


# ----------------------------------------------------------------------
# Incremental root
# ----------------------------------------------------------------------
def _scratch_root(tree):
    """Recompute the root from scratch on a fresh tree with equal content."""
    fresh = StateTree(n_buckets=tree._n_buckets)
    for key, value in tree.flatten().items():
        fresh.set(key, value)
    return fresh.root()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(
                ["set", "delete", "snapshot", "commit", "revert", "fork", "root"]
            ),
            st.sampled_from(["k1", "k2", "k3", "k4"]),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=30,
    )
)
def test_incremental_root_equals_scratch_root(operations):
    """After any op sequence, the cached-bucket root == from-scratch root."""
    tree = StateTree(n_buckets=7)  # small bucket count → collisions exercised
    depth = 0
    for op, key, value in operations:
        if op == "set":
            tree.set(key, value)
        elif op == "delete":
            tree.delete(key)
        elif op == "snapshot":
            tree.snapshot()
            depth += 1
        elif op == "commit" and depth > 0:
            tree.commit()
            depth -= 1
        elif op == "revert" and depth > 0:
            tree.revert()
            depth -= 1
        elif op == "fork":
            tree = tree.fork()
            depth = 0
        elif op == "root":
            tree.root()  # populate/refresh the digest cache mid-sequence
        assert tree.root() == _scratch_root(tree)


def test_root_is_incremental_not_full_rehash():
    tree = StateTree()
    for i in range(100):
        tree.set(f"key{i}", i)
    tree.root()
    tree.set("key0", -1)
    tree.root()
    assert tree.last_root_rehashed == 1  # only key0's bucket was re-hashed


def test_root_after_revert_is_not_stale():
    tree = StateTree()
    tree.set("a", 1)
    before = tree.root()
    token = tree.snapshot()
    tree.set("a", 2)
    assert tree.root() != before  # digest cache now reflects a=2
    tree.revert(token)
    assert tree.root() == before  # ...and must be invalidated by the revert


def test_root_independent_of_fork_history_and_bucketing_stability():
    a = StateTree()
    a.set("x", 1)
    a.set("y", 2)

    b = StateTree().fork().fork()
    b.set("y", 2)
    b.snapshot()
    b.set("x", 0)
    b.set("x", 1)
    b.commit()
    assert a.root() == b.root()


def test_bucket_of_is_stable():
    # The root commitment depends on this placement: changing it silently
    # would split every node's state roots.  Pin two known values.
    assert bucket_of("balance/alice", 256) == bucket_of("balance/alice", 256)
    assert 0 <= bucket_of("anything", 16) < 16

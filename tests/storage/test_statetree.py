"""Unit and property tests for the versioned state tree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.statetree import StateTree


def test_basic_set_get():
    tree = StateTree()
    tree.set("a", 1)
    assert tree.get("a") == 1
    assert tree.get("missing", "d") == "d"
    assert tree.has("a")
    assert not tree.has("missing")


def test_delete_hides_value():
    tree = StateTree()
    tree.set("a", 1)
    tree.delete("a")
    assert not tree.has("a")
    assert tree.get("a") is None


def test_snapshot_revert_discards_writes():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.set("a", 2)
    tree.set("b", 3)
    tree.revert(token)
    assert tree.get("a") == 1
    assert not tree.has("b")


def test_snapshot_commit_keeps_writes():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.set("a", 2)
    tree.commit(token)
    assert tree.get("a") == 2
    assert tree.depth == 0


def test_nested_snapshots():
    tree = StateTree()
    tree.set("x", 0)
    outer = tree.snapshot()
    tree.set("x", 1)
    inner = tree.snapshot()
    tree.set("x", 2)
    tree.revert(inner)
    assert tree.get("x") == 1
    tree.commit(outer)
    assert tree.get("x") == 1


def test_delete_inside_reverted_snapshot_restores():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.delete("a")
    assert not tree.has("a")
    tree.revert(token)
    assert tree.get("a") == 1


def test_delete_inside_committed_snapshot_persists():
    tree = StateTree()
    tree.set("a", 1)
    token = tree.snapshot()
    tree.delete("a")
    tree.commit(token)
    assert not tree.has("a")
    assert "a" not in tree.flatten()


def test_token_mismatch_detected():
    tree = StateTree()
    tree.snapshot()
    with pytest.raises(RuntimeError):
        tree.commit(99)


def test_close_without_snapshot_is_error():
    tree = StateTree()
    with pytest.raises(RuntimeError):
        tree.revert()
    with pytest.raises(RuntimeError):
        tree.commit()


def test_keys_and_items_are_sorted_and_live():
    tree = StateTree()
    tree.set("b", 2)
    tree.set("a", 1)
    tree.set("c", 3)
    tree.delete("c")
    assert list(tree.keys()) == ["a", "b"]
    assert list(tree.items()) == [("a", 1), ("b", 2)]
    assert list(tree.keys(prefix="a")) == ["a"]


def test_root_commitment_tracks_state():
    tree = StateTree()
    tree.set("a", 1)
    root_before = tree.root()
    tree.set("b", 2)
    assert tree.root() != root_before
    tree.delete("b")
    assert tree.root() == root_before


def test_root_ignores_snapshot_layering():
    flat = StateTree()
    flat.set("a", 1)
    flat.set("b", 2)

    layered = StateTree()
    layered.set("a", 0)
    layered.snapshot()
    layered.set("a", 1)
    layered.set("b", 2)
    assert layered.root() == flat.root()


def test_copy_is_independent():
    tree = StateTree()
    tree.set("a", 1)
    clone = tree.copy()
    clone.set("a", 2)
    assert tree.get("a") == 1
    assert clone.get("a") == 2


def test_copy_flattens_snapshots():
    tree = StateTree()
    tree.set("a", 1)
    tree.snapshot()
    tree.set("b", 2)
    clone = tree.copy()
    assert clone.depth == 0
    assert clone.get("b") == 2


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "delete", "snapshot", "commit", "revert"]),
            st.sampled_from(["k1", "k2", "k3"]),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=40,
    )
)
def test_layered_tree_matches_plain_dict_model(operations):
    """The tree must behave exactly like a dict with an undo stack."""
    tree = StateTree()
    model_stack = [{}]
    for op, key, value in operations:
        if op == "set":
            tree.set(key, value)
            model_stack[-1][key] = value
        elif op == "delete":
            tree.delete(key)
            model_stack[-1][key] = None  # tombstone in the model
        elif op == "snapshot":
            tree.snapshot()
            model_stack.append(dict(model_stack[-1]))
        elif op == "commit" and len(model_stack) > 1:
            tree.commit()
            top = model_stack.pop()
            model_stack[-1] = top
        elif op == "revert" and len(model_stack) > 1:
            tree.revert()
            model_stack.pop()
        model = {k: v for k, v in model_stack[-1].items() if v is not None}
        assert tree.flatten() == model

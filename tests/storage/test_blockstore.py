"""Unit tests for the blockstore and datastore."""

import pytest

from repro.crypto.cid import cid_of
from repro.storage.blockstore import Blockstore
from repro.storage.datastore import Datastore


def test_put_returns_content_cid():
    store = Blockstore()
    cid = store.put({"a": 1})
    assert cid == cid_of({"a": 1})
    assert store.get(cid) == {"a": 1}


def test_put_is_idempotent():
    store = Blockstore()
    cid_first = store.put("v")
    cid_second = store.put("v")
    assert cid_first == cid_second
    assert len(store) == 1


def test_get_missing_raises():
    store = Blockstore()
    with pytest.raises(KeyError):
        store.get(cid_of("missing"))
    assert store.get_optional(cid_of("missing")) is None


def test_has_and_contains():
    store = Blockstore()
    cid = store.put(42)
    assert store.has(cid)
    assert cid in store
    assert not store.has(cid_of("other"))


def test_delete():
    store = Blockstore()
    cid = store.put("gone")
    assert store.delete(cid)
    assert not store.delete(cid)
    assert not store.has(cid)


def test_put_many():
    store = Blockstore()
    cids = store.put_many([1, 2, 3])
    assert [store.get(c) for c in cids] == [1, 2, 3]


def test_datastore_put_get_delete():
    store = Datastore()
    store.put("k", 1)
    assert store.get("k") == 1
    assert store.has("k")
    assert store.delete("k")
    assert store.get("k", "default") == "default"


def test_datastore_require_raises():
    store = Datastore()
    with pytest.raises(KeyError):
        store.require("nope")


def test_datastore_namespaces_share_backing():
    store = Datastore()
    sub = store.namespace("sub")
    sub.put("k", "v")
    assert store.get("sub/k") == "v"
    assert sub.get("k") == "v"


def test_datastore_keys_prefix_listing():
    store = Datastore()
    store.put("a/1", 1)
    store.put("a/2", 2)
    store.put("b/1", 3)
    assert list(store.keys("a/")) == ["a/1", "a/2"]
    sub = store.namespace("a")
    assert list(sub.keys()) == ["1", "2"]


def test_datastore_len():
    store = Datastore()
    store.put("x", 1)
    sub = store.namespace("ns")
    sub.put("y", 2)
    assert len(store) == 2
    assert len(sub) == 1

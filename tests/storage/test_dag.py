"""Unit tests for the DAG store."""

import pytest

from repro.crypto.cid import cid_of
from repro.storage.dag import DagNode, DagStore


def build_chain(store, depth):
    """Build a linked list DAG of the given depth; return the root CID."""
    cid = store.put("leaf")
    for level in range(depth):
        cid = store.put(f"level-{level}", links=[cid])
    return cid


def test_put_get_roundtrip():
    store = DagStore()
    cid = store.put("value")
    node = store.get(cid)
    assert node.value == "value"
    assert node.links == ()


def test_get_non_dag_value_is_type_error():
    store = DagStore()
    cid = store.blocks.put("raw, not a DagNode")
    with pytest.raises(TypeError):
        store.get(cid)


def test_walk_traverses_all_reachable():
    store = DagStore()
    leaf_a = store.put("a")
    leaf_b = store.put("b")
    root = store.put("root", links=[leaf_a, leaf_b])
    visited = {cid for cid, _ in store.walk(root)}
    assert visited == {root, leaf_a, leaf_b}


def test_walk_handles_shared_subgraphs():
    store = DagStore()
    shared = store.put("shared")
    mid_a = store.put("a", links=[shared])
    mid_b = store.put("b", links=[shared])
    root = store.put("root", links=[mid_a, mid_b])
    visited = [cid for cid, _ in store.walk(root)]
    assert len(visited) == 4  # shared visited once


def test_extract_and_ingest_transfer_a_dag():
    source = DagStore()
    root = build_chain(source, depth=5)
    bundle = source.extract(root)

    target = DagStore()
    assert not target.can_resolve(root)
    target.ingest(bundle)
    assert target.can_resolve(root)
    assert {c for c, _ in target.walk(root)} == set(bundle)


def test_ingest_rejects_mismatched_cid():
    store = DagStore()
    node = DagNode(value="genuine")
    with pytest.raises(ValueError):
        store.ingest({cid_of("a lie"): node})


def test_can_resolve_false_on_missing_link():
    store = DagStore()
    missing = cid_of(DagNode(value="never stored"))
    root = store.put("root", links=[missing])
    assert not store.can_resolve(root)


def test_walk_missing_link_raises():
    store = DagStore()
    missing = cid_of(DagNode(value="nope"))
    root = store.put("root", links=[missing])
    with pytest.raises(KeyError):
        list(store.walk(root))

"""Tests for the simulated PoW engine: mining races, forks, reorgs."""

import pytest


def test_pow_produces_blocks(make_cluster):
    cluster = make_cluster(4, engine="pow", block_time=1.0, seed=3).start()
    cluster.run(40.0)
    heights = cluster.heights()
    # Expected ~40 blocks; allow wide slack for exponential variance.
    assert all(15 <= h <= 80 for h in heights)


def test_pow_converges_below_head(make_cluster):
    cluster = make_cluster(4, engine="pow", block_time=1.0, seed=7).start()
    cluster.run(40.0)
    converged = cluster.converged_prefix_height()
    assert converged >= min(cluster.heights()) - 3


def test_pow_mining_power_share(make_cluster):
    cluster = make_cluster(
        2, engine="pow", block_time=0.5, powers=[3, 1], seed=11
    ).start()
    cluster.run(120.0)
    chain = cluster.nodes[0].store.canonical_chain()
    miners = [b.header.miner for b in chain[1:]]
    heavy_share = sum(1 for m in miners if m == cluster.keys[0].address) / len(miners)
    assert 0.55 <= heavy_share <= 0.95  # expected 0.75


def test_pow_forks_happen_under_latency(make_cluster):
    # Block time comparable to network latency provokes fork races.
    cluster = make_cluster(
        6, engine="pow", block_time=0.3, latency=0.15, seed=13
    ).start()
    cluster.run(90.0)
    total_forks = sum(node.store.fork_count() for node in cluster.nodes)
    assert total_forks > 0
    reorgs = cluster.sim.metrics.counter("chain./root.reorgs").value
    assert reorgs > 0


def test_pow_transactions_survive_forks(make_cluster):
    cluster = make_cluster(
        4, engine="pow", block_time=0.5, latency=0.1, seed=17
    ).start()
    cluster.run(2.0)
    for nonce in range(3):
        cluster.submit_payment(0, nonce, value=10)
    cluster.run(60.0)
    bob = cluster.user_keys[1]
    for node in cluster.nodes:
        assert node.vm.balance_of(bob.address) == 1_000_030


def test_pow_zero_power_node_syncs_without_mining(make_cluster):
    cluster = make_cluster(3, engine="pow", block_time=1.0, seed=19).start()
    # Stop node 2's engine and make it an observer by restarting with no event.
    # Simpler: verify a validator with tiny power rarely mines.
    cluster.run(30.0)
    assert cluster.converged_prefix_height() > 5


def test_pow_byzantine_withholder_excluded(make_cluster):
    cluster = make_cluster(
        3, engine="pow", block_time=1.0, seed=23,
        byzantine={"n0": {"withhold_block"}},
    ).start()
    cluster.run(40.0)
    chain = cluster.nodes[1].store.canonical_chain()
    miners = {b.header.miner for b in chain[1:]}
    assert cluster.keys[0].address not in miners
    assert cluster.heights()[1] > 5  # others still make progress


def test_pow_deterministic(make_cluster):
    def run():
        cluster = make_cluster(3, engine="pow", seed=29).start()
        cluster.run(20.0)
        return [b.cid for b in cluster.nodes[0].store.canonical_chain()]

    assert run() == run()


def test_pow_final_height_lags_head(make_cluster):
    cluster = make_cluster(3, engine="pow", block_time=0.5, seed=31).start()
    cluster.run(30.0)
    node = cluster.nodes[0]
    assert node.engine.final_height() == node.head().height - node.engine.params.finality_depth

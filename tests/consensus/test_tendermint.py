"""Tests for the Tendermint BFT engine."""

import pytest

from repro.consensus.base import Validator, ValidatorSet


def test_tendermint_commits_blocks(make_cluster):
    cluster = make_cluster(4, engine="tendermint", block_time=1.0).start()
    cluster.run(15.0)
    assert all(h >= 5 for h in cluster.heights())


def test_tendermint_instant_finality_no_forks(make_cluster):
    cluster = make_cluster(4, engine="tendermint").start()
    cluster.run(15.0)
    for node in cluster.nodes:
        assert node.store.fork_count() == 0
    assert cluster.converged_prefix_height() >= min(cluster.heights()) - 1


def test_tendermint_transactions_execute(make_cluster):
    cluster = make_cluster(4, engine="tendermint").start()
    cluster.run(1.0)
    for nonce in range(3):
        cluster.submit_payment(0, nonce, value=7)
    cluster.run(15.0)
    bob = cluster.user_keys[1]
    for node in cluster.nodes:
        assert node.vm.balance_of(bob.address) == 1_000_021


def test_tendermint_tolerates_one_faulty_of_four(make_cluster):
    cluster = make_cluster(
        4, engine="tendermint",
        byzantine={"n0": {"withhold_block", "withhold_vote"}},
    ).start()
    cluster.run(30.0)
    # n = 4 tolerates f = 1: progress continues (round changes skip n0).
    honest_heights = cluster.heights()[1:]
    assert all(h >= 3 for h in honest_heights)


def test_tendermint_stalls_beyond_fault_threshold(make_cluster):
    cluster = make_cluster(
        4, engine="tendermint",
        byzantine={
            "n0": {"withhold_vote", "withhold_block"},
            "n1": {"withhold_vote", "withhold_block"},
        },
    ).start()
    cluster.run(30.0)
    # Two faulty of four exceeds f=1: no quorum, no commits.
    assert all(h == 0 for h in cluster.heights())


def test_tendermint_equivocation_detected(make_cluster):
    cluster = make_cluster(
        4, engine="tendermint",
        byzantine={"n3": {"equivocate_vote"}},
    ).start()
    cluster.run(20.0)
    # Progress continues and honest engines record evidence.
    assert all(h >= 3 for h in cluster.heights())
    evidence = [e for node in cluster.nodes[:3] for e in node.engine.equivocation_evidence]
    assert any(voter == "n3" for voter, _, _ in evidence)


def test_tendermint_rounds_advance_without_proposer(make_cluster):
    cluster = make_cluster(
        4, engine="tendermint", byzantine={"n0": {"withhold_block"}},
    ).start()
    cluster.run(30.0)
    commit_rounds = cluster.sim.metrics.histogram("consensus./root.commit_round")
    # Some heights needed round > 0 (whenever n0 was the proposer).
    assert commit_rounds.max() >= 1


def test_tendermint_survives_lossy_window_and_recovers(make_cluster):
    """Regression for the lossy-links liveness stall: a 50% loss window
    used to wedge the cluster *permanently* — timeouts phase-shifted the
    validators into disjoint round cadences, and a round-0 lock split
    could never resolve because reproposals of the locked block (carrying
    the original miner's address) failed the proposer-eligibility check.
    With f+1 round catch-up and validRound reproposal, every validator
    must commit fresh heights once the links heal."""
    cluster = make_cluster(4, engine="tendermint", block_time=0.5, seed=3).start()
    cluster.run(3.0)
    ids = [f"n{i}" for i in range(4)]
    cluster.stack.transport.set_link(ids, ids, loss=0.5)
    cluster.run(12.0)
    cluster.stack.transport.set_link(ids, ids, loss=0.0)
    wedged_at = max(cluster.heights())
    cluster.run(10.0)
    assert min(cluster.heights()) > wedged_at
    for node in cluster.nodes:
        assert node.store.fork_count() == 0


def test_tendermint_deterministic(make_cluster):
    def run():
        cluster = make_cluster(4, engine="tendermint", seed=41).start()
        cluster.run(12.0)
        return [b.cid for b in cluster.nodes[0].store.canonical_chain()]

    chain_a, chain_b = run(), run()
    assert chain_a == chain_b and len(chain_a) > 3


def test_validator_set_quorum_math():
    validators = ValidatorSet(
        Validator(node_id=f"n{i}", address=__import__("repro.crypto.keys", fromlist=["KeyPair"]).KeyPair(f"v{i}").address, power=1)
        for i in range(4)
    )
    assert validators.total_power == 4
    assert validators.quorum_power == 3
    assert validators.max_faulty == 1


def test_validator_set_rejects_bad_input():
    from repro.crypto.keys import KeyPair

    with pytest.raises(ValueError):
        ValidatorSet([])
    with pytest.raises(ValueError):
        ValidatorSet(
            [
                Validator(node_id="a", address=KeyPair("a").address, power=1),
                Validator(node_id="a", address=KeyPair("a").address, power=1),
            ]
        )
    with pytest.raises(ValueError):
        ValidatorSet([Validator(node_id="a", address=KeyPair("a").address, power=0)])

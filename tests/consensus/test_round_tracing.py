"""Every engine feeds the round tracer; Tendermint's hard paths too.

The tracer is duck-typed (``sim.round_tracer``), so these tests install a
real :class:`~repro.telemetry.rounds.RoundTracer` on the cluster simulator
and assert the engines narrate their round/slot machinery into it —
including the paths that only fire under faults: propose timeouts and the
f+1 round catch-up skip.
"""

import pytest

from repro.consensus.tendermint import Vote
from repro.telemetry import RoundTracer


@pytest.mark.parametrize("engine", ["poa", "pos", "pow", "mir", "tendermint"])
def test_every_engine_feeds_the_round_tracer(make_cluster, engine):
    cluster = make_cluster(4, engine=engine, block_time=0.5)
    tracer = RoundTracer(cluster.sim).install()
    cluster.start().run(10.0)
    assert min(cluster.heights()) >= 1

    entry = tracer.summary()["subnets"]["/root"]
    assert entry["counts"]["commit"] >= 1
    assert entry["frontier_height"] >= 1
    # The proposer narrated its own block; every validator has a timeline.
    assert entry["counts"]["propose"] >= 1
    assert entry["validators"] == [f"n{i}" for i in range(4)]
    kinds = {kind for _, kind, _ in tracer.timeline("/root", "n0")}
    if engine == "tendermint":
        assert {"round_start", "vote", "lock", "commit"} <= kinds
        assert entry["quorum_power"] == 3
    else:
        assert "commit" in kinds


def test_tendermint_timeouts_are_traced(make_cluster):
    cluster = make_cluster(
        4, engine="tendermint", byzantine={"n0": {"withhold_block"}}
    )
    tracer = RoundTracer(cluster.sim).install()
    cluster.start().run(20.0)
    # n0's proposer slots time out: the propose-timeout path narrates.
    assert cluster.sim.metrics.counter("consensus.round./root.timeouts").value > 0
    timeline = tracer.timeline("/root", "n1")
    timeouts = [fields for _, kind, fields in timeline if kind == "timeout"]
    assert timeouts
    assert all(entry["step"] in ("propose", "prevote", "precommit")
               for entry in timeouts)


def test_tendermint_round_skip_on_f_plus_1_future_votes(make_cluster):
    """The catch-up rule (arXiv:1807.04938 line 55): f+1 power messaging
    at a higher round pulls a stale validator forward — and the jump is
    traced as ``round_skip``, not ``round_start``."""
    cluster = make_cluster(4, engine="tendermint")
    tracer = RoundTracer(cluster.sim).install()
    cluster.start()
    engine = cluster.nodes[0].engine
    # Land in an active step (not the commit-wait pacing gap).
    cluster.run(0.3)
    for _ in range(30):
        if engine.step != "commit-wait":
            break
        cluster.run(0.1)
    assert engine.step != "commit-wait"

    target = engine.round + 2
    height = engine.height
    # One future-round vote is f power: not enough, no skip.
    engine._on_vote(Vote(height, target, "prevote", None, "n1"))
    assert engine.round < target
    # A second distinct voter crosses f+1 (4 // 3 + 1 = 2): skip.
    engine._on_vote(Vote(height, target, "prevote", None, "n2"))
    assert engine.round == target
    skips = [fields for _, kind, fields in tracer.timeline("/root", "n0")
             if kind == "round_skip"]
    assert any(entry["round"] == target and entry["height"] == height
               for entry in skips)
    assert cluster.sim.metrics.counter("consensus.round./root.skips").value >= 1


def test_tendermint_commit_wait_ignores_future_round_votes(make_cluster):
    """Between a commit and the next height's start the round counter is
    meaningless; catch-up must not fire from the pacing gap."""
    cluster = make_cluster(4, engine="tendermint", block_time=2.0)
    cluster.start()
    engine = cluster.nodes[0].engine
    cluster.run(0.5)
    for _ in range(40):
        if engine.step == "commit-wait":
            break
        cluster.run(0.1)
    assert engine.step == "commit-wait"
    round_before = engine.round
    engine._on_vote(Vote(engine.height, round_before + 5, "prevote", None, "n1"))
    engine._on_vote(Vote(engine.height, round_before + 5, "prevote", None, "n2"))
    assert engine.round == round_before
    assert engine.step == "commit-wait"

"""Shared cluster harness for consensus tests."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyPair
from repro.chain.genesis import GenesisParams, build_genesis
from repro.consensus.base import ConsensusParams
from repro.runtime import ClusterMember, NetworkStack, ValidatorCluster
from repro.vm.message import Message, SignedMessage


class Cluster:
    """N validator nodes running one subnet chain under one engine."""

    def __init__(
        self,
        n_nodes: int,
        engine: str = "poa",
        seed: int = 1,
        block_time: float = 1.0,
        latency: float = 0.02,
        byzantine: dict = None,
        powers: list = None,
        allocations: dict = None,
        consensus_overrides: dict = None,
    ) -> None:
        self.stack = NetworkStack(seed=seed, latency=latency)
        self.sim = self.stack.sim
        self.gossip = self.stack.gossip
        self.keys = [KeyPair(f"validator-{i}") for i in range(n_nodes)]
        powers = powers or [1] * n_nodes
        self.user_keys = [KeyPair(f"user-{i}") for i in range(4)]
        genesis_allocations = {k.address: 1_000_000 for k in self.user_keys}
        if allocations:
            genesis_allocations.update(allocations)
        genesis_block, genesis_vm = build_genesis(
            GenesisParams(subnet_id="/root", allocations=genesis_allocations)
        )
        params_kwargs = {"engine": engine, "block_time": block_time}
        params_kwargs.update(consensus_overrides or {})
        self.cluster = ValidatorCluster.build(
            [
                ClusterMember(node_id=f"n{i}", keypair=self.keys[i], power=powers[i])
                for i in range(n_nodes)
            ],
            subnet_id="/root",
            genesis_block=genesis_block,
            genesis_vm=genesis_vm,
            consensus_params=ConsensusParams(**params_kwargs),
            stack=self.stack,
            byzantine=byzantine or {},
        )
        self.nodes = self.cluster.nodes
        self.genesis_block = genesis_block

    def start(self):
        self.cluster.start()
        return self

    def run(self, seconds: float):
        self.stack.run_for(seconds)
        return self

    def submit_payment(self, user_index: int, nonce: int, to=None, value: int = 1, node_index: int = 0):
        key = self.user_keys[user_index]
        to_addr = to or self.user_keys[(user_index + 1) % len(self.user_keys)].address
        message = Message(from_addr=key.address, to_addr=to_addr, value=value, nonce=nonce)
        signed = SignedMessage.create(message, key)
        return self.nodes[node_index].submit_message(signed)

    def heads(self):
        return [node.head() for node in self.nodes]

    def heights(self):
        return [node.head().height for node in self.nodes]

    def converged_prefix_height(self) -> int:
        """Highest height at which all nodes agree on the canonical block."""
        min_height = min(self.heights())
        for height in range(min_height, -1, -1):
            cids = {
                node.store.block_at_height(height).cid
                for node in self.nodes
                if node.store.block_at_height(height) is not None
            }
            if len(cids) == 1:
                return height
        return -1


@pytest.fixture
def make_cluster():
    clusters = []

    def factory(*args, **kwargs):
        cluster = Cluster(*args, **kwargs)
        clusters.append(cluster)
        return cluster

    yield factory

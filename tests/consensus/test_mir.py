"""Tests for the Mir-style multi-leader engine."""

import pytest

from repro.vm.message import Message, SignedMessage


def test_mir_multiplies_block_rate(make_cluster):
    single = make_cluster(4, engine="poa", block_time=1.0, seed=3).start()
    single.run(20.5)
    multi = make_cluster(
        4, engine="mir", block_time=1.0, seed=3, consensus_overrides={"mir_leaders": 4}
    ).start()
    multi.run(20.5)
    # Mir with L=4 leaders should produce ~4x the blocks of single-leader.
    ratio = multi.heights()[0] / single.heights()[0]
    assert ratio >= 3.0


def test_mir_converges(make_cluster):
    cluster = make_cluster(4, engine="mir", seed=5).start()
    cluster.run(10.0)
    assert cluster.converged_prefix_height() >= min(cluster.heights()) - 2


def test_mir_leaders_interleave(make_cluster):
    cluster = make_cluster(4, engine="mir", seed=7).start()
    cluster.run(10.0)
    chain = cluster.nodes[0].store.canonical_chain()
    miners = {b.header.miner for b in chain[1:]}
    assert len(miners) == 4


def test_mir_bucket_partitioning_no_duplicates(make_cluster):
    cluster = make_cluster(
        4, engine="mir", seed=9, consensus_overrides={"mir_leaders": 4}
    ).start()
    cluster.run(0.5)
    for nonce in range(10):
        for user in range(4):
            cluster.submit_payment(user, nonce, value=1)
    cluster.run(15.0)
    chain = cluster.nodes[0].store.canonical_chain()
    seen = set()
    for block in chain:
        for signed in block.messages:
            assert signed.cid not in seen, "message included twice"
            seen.add(signed.cid)
    assert len(seen) == 40


def test_mir_buckets_are_disjoint_per_epoch(make_cluster):
    cluster = make_cluster(4, engine="mir", seed=11).start()
    engine = cluster.nodes[0].engine
    senders = [f"f1sender{i}" for i in range(50)]
    for epoch in (0, 1, 5):
        buckets = {s: engine.bucket_of(s, epoch) for s in senders}
        assert set(buckets.values()) <= set(range(engine.leaders))
    # Rotation: bucket assignment changes between epochs.
    assert any(
        engine.bucket_of(s, 0) != engine.bucket_of(s, 1) for s in senders
    )


def test_mir_transactions_execute(make_cluster):
    cluster = make_cluster(4, engine="mir", seed=13).start()
    cluster.run(0.5)
    for nonce in range(4):
        cluster.submit_payment(0, nonce, value=5)
    cluster.run(8.0)
    bob = cluster.user_keys[1]
    for node in cluster.nodes:
        assert node.vm.balance_of(bob.address) == 1_000_020


def test_mir_single_leader_degenerates_to_round_robin(make_cluster):
    cluster = make_cluster(
        3, engine="mir", block_time=1.0, seed=15, consensus_overrides={"mir_leaders": 1}
    ).start()
    cluster.run(10.5)
    assert 8 <= cluster.heights()[0] <= 11


def test_mir_leaders_capped_at_validator_count(make_cluster):
    cluster = make_cluster(
        2, engine="mir", seed=17, consensus_overrides={"mir_leaders": 8}
    ).start()
    assert cluster.nodes[0].engine.leaders == 2

"""Tests for the round-robin PoA and PoS lottery engines."""

import pytest


def test_poa_produces_blocks(make_cluster):
    cluster = make_cluster(4, engine="poa", block_time=1.0).start()
    cluster.run(10.5)
    assert all(h >= 8 for h in cluster.heights())


def test_poa_all_nodes_converge(make_cluster):
    cluster = make_cluster(4, engine="poa").start()
    cluster.run(10.0)
    assert cluster.converged_prefix_height() >= 8
    # Heads are within one propagation delay of each other.
    assert max(cluster.heights()) - min(cluster.heights()) <= 1


def test_poa_leaders_rotate(make_cluster):
    cluster = make_cluster(3, engine="poa").start()
    cluster.run(9.5)
    chain = cluster.nodes[0].store.canonical_chain()
    miners = [block.header.miner for block in chain[1:]]
    assert len(set(miners)) == 3  # every validator led at least once


def test_poa_transactions_execute(make_cluster):
    cluster = make_cluster(4, engine="poa").start()
    cluster.run(1.0)
    alice = cluster.user_keys[0]
    bob = cluster.user_keys[1]
    for nonce in range(5):
        assert cluster.submit_payment(0, nonce, value=100)
    cluster.run(6.0)
    for node in cluster.nodes:
        assert node.vm.balance_of(alice.address) == 1_000_000 - 500
        assert node.vm.balance_of(bob.address) == 1_000_000 + 500
        assert node.vm.nonce_of(alice.address) == 5


def test_poa_byzantine_leader_skips_slot(make_cluster):
    cluster = make_cluster(
        4, engine="poa", byzantine={"n0": {"withhold_block"}}
    ).start()
    cluster.run(12.5)
    # Chain still advances, just slower: 1/4 of slots are skipped.
    heights = cluster.heights()
    assert all(7 <= h <= 10 for h in heights)
    chain = cluster.nodes[1].store.canonical_chain()
    miners = {block.header.miner for block in chain[1:]}
    assert cluster.keys[0].address not in miners


def test_poa_single_validator(make_cluster):
    cluster = make_cluster(1, engine="poa").start()
    cluster.run(5.5)
    assert cluster.heights()[0] >= 5


def test_poa_deterministic(make_cluster):
    def run():
        cluster = make_cluster(4, engine="poa", seed=11).start()
        cluster.submit_payment(0, 0)
        cluster.run(8.0)
        return cluster.sim.trace.digest()

    assert run() == run()


def test_pos_produces_blocks_and_converges(make_cluster):
    cluster = make_cluster(4, engine="pos").start()
    cluster.run(12.0)
    assert cluster.converged_prefix_height() >= 9


def test_pos_stake_weighting_biases_leadership(make_cluster):
    cluster = make_cluster(3, engine="pos", powers=[10, 1, 1], block_time=0.5).start()
    cluster.run(60.0)
    chain = cluster.nodes[0].store.canonical_chain()
    miners = [block.header.miner for block in chain[1:]]
    heavy = sum(1 for m in miners if m == cluster.keys[0].address)
    # The heavy validator (10/12 of stake) should lead the large majority.
    assert heavy / len(miners) > 0.6


def test_pos_transactions_execute(make_cluster):
    cluster = make_cluster(3, engine="pos").start()
    cluster.run(1.0)
    cluster.submit_payment(0, 0, value=42)
    cluster.run(8.0)
    bob = cluster.user_keys[1]
    for node in cluster.nodes:
        assert node.vm.balance_of(bob.address) == 1_000_042


def test_pos_deterministic(make_cluster):
    def run():
        cluster = make_cluster(3, engine="pos", seed=5).start()
        cluster.run(10.0)
        return [b.cid for b in cluster.nodes[0].store.canonical_chain()]

    assert run() == run()


def test_block_interval_matches_target(make_cluster):
    cluster = make_cluster(4, engine="poa", block_time=2.0).start()
    cluster.run(30.0)
    chain = cluster.nodes[0].store.canonical_chain()
    intervals = [
        b.header.timestamp - a.header.timestamp for a, b in zip(chain[1:], chain[2:])
    ]
    assert all(i == pytest.approx(2.0, abs=0.01) for i in intervals)

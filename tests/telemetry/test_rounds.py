"""RoundTracer and StallDiagnoser: unit, digest-neutrality and the
partitioned-subnet integration contract.

The integration test is the acceptance scenario for the stall plane: a
Tendermint subnet is split 2-2 (no side holds the 2f+1 quorum), the
progress watchdog flags the stall, and the attached ``repro.stall/v1``
report must *name* the missing quorum members and the unreachable links.
"""

import json

from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.scenario.runner import ProgressWatchdog
from repro.sim.scheduler import Simulator
from repro.telemetry import RoundTracer, render_stall_report
from repro.telemetry.postmortem import main as postmortem_main
from repro.telemetry.postmortem import render as render_postmortem
from repro.telemetry.rounds import STALL_SCHEMA

SUBNET = "/root/a"
VAL = "/root/a#0"


def _tracer(**kwargs):
    sim = Simulator(seed=3)
    return sim, RoundTracer(sim, **kwargs).install()


def _feed(tracer, kind, time=0.0, node=VAL, **fields):
    tracer.on_round_event(SUBNET, node, kind, time, fields)


# ----------------------------------------------------------------------
# RoundTracer units
# ----------------------------------------------------------------------
def test_install_sets_and_uninstall_clears_the_slot():
    sim, tracer = _tracer()
    assert sim.round_tracer is tracer
    tracer.uninstall()
    assert sim.round_tracer is None
    # Uninstalling somebody else's tracer is a no-op.
    other = RoundTracer(sim).install()
    tracer.uninstall()
    assert sim.round_tracer is other


def test_frontier_advances_and_never_regresses():
    _sim, tracer = _tracer()
    _feed(tracer, "round_start", 1.0, height=3, round=0, quorum=3, total=4)
    assert tracer.frontier(SUBNET) == (3, 0)
    _feed(tracer, "round_skip", 2.0, height=3, round=2, quorum=3, total=4)
    assert tracer.frontier(SUBNET) == (3, 2)
    # A straggler vote for an older round must not pull the frontier back.
    _feed(tracer, "vote", 2.5, height=3, round=1, vote_type="prevote",
          voter=VAL, power=1)
    assert tracer.frontier(SUBNET) == (3, 2)
    _feed(tracer, "commit", 3.0, height=4, round=0)
    assert tracer.frontier(SUBNET) == (4, 0)


def test_votes_deduplicate_per_voter_and_round():
    _sim, tracer = _tracer()
    for observer in ("/root/a#0", "/root/a#1"):
        # Two observers report the same vote; power counts once.
        _feed(tracer, "vote", 1.0, node=observer, height=5, round=1,
              vote_type="prevote", voter="/root/a#2", power=3)
    _feed(tracer, "vote", 1.1, height=5, round=1, vote_type="prevote",
          voter="/root/a#3", power=1)
    book = tracer.votes_at(SUBNET, 5, 1, "prevote")
    assert book == {"/root/a#2": 3, "/root/a#3": 1}
    # Same voter at another round is a distinct entry.
    assert tracer.votes_at(SUBNET, 5, 2, "prevote") == {}


def test_timeline_ring_is_bounded():
    _sim, tracer = _tracer(timeline_capacity=4)
    for i in range(10):
        _feed(tracer, "timeout", float(i), height=1, round=i)
    timeline = tracer.timeline(SUBNET, VAL)
    assert len(timeline) == 4
    assert [entry[0] for entry in timeline] == [6.0, 7.0, 8.0, 9.0]


def test_round_duration_and_per_height_histograms():
    sim, tracer = _tracer()
    _feed(tracer, "round_start", 1.0, height=2, round=0, quorum=3, total=4)
    _feed(tracer, "round_skip", 3.5, height=2, round=2, quorum=3, total=4)
    duration = sim.metrics.histogram(f"consensus.round.{SUBNET}.duration")
    assert duration.samples == [2.5]
    _feed(tracer, "commit", 4.0, height=2, round=2)
    per_height = sim.metrics.histogram(f"consensus.round.{SUBNET}.per_height")
    assert per_height.samples == [3]  # rounds are 0-based: r2 = 3 rounds
    assert sim.metrics.counter(f"consensus.round.{SUBNET}.skips").value == 1


def test_summary_reports_frontier_power_and_counts():
    _sim, tracer = _tracer()
    _feed(tracer, "round_start", 1.0, height=7, round=1, quorum=3, total=4)
    for i in range(2):
        _feed(tracer, "vote", 1.2 + i, height=7, round=1,
              vote_type="prevote", voter=f"/root/a#{i}", power=1)
    _feed(tracer, "vote", 1.5, height=7, round=1, vote_type="precommit",
          voter="/root/a#0", power=1)
    summary = tracer.summary()
    entry = summary["subnets"][SUBNET]
    assert entry["frontier_height"] == 7
    assert entry["frontier_round"] == 1
    assert entry["quorum_power"] == 3
    assert entry["total_power"] == 4
    assert entry["prevote_power"] == 2
    assert entry["precommit_power"] == 1
    assert entry["validators"] == [VAL]
    assert entry["counts"] == {"round_start": 1, "vote": 3}
    assert summary["events"] == 4
    json.dumps(summary, allow_nan=False)  # exporters embed this verbatim


# ----------------------------------------------------------------------
# Digest neutrality (the tentpole's hard constraint)
# ----------------------------------------------------------------------
def _workload_digest(monkeypatch, tie_shuffle, tracing):
    if tie_shuffle is None:
        monkeypatch.delenv("REPRO_TIE_SHUFFLE", raising=False)
    else:
        monkeypatch.setenv("REPRO_TIE_SHUFFLE", str(tie_shuffle))
    system = HierarchicalSystem(
        seed=11, root_validators=3, wallet_funds={"alice": 10_000}
    ).start()
    if tracing:
        RoundTracer(system.sim).install()
    subnet = system.spawn_subnet(
        SubnetConfig(name="s0", engine="tendermint", validators=4,
                     block_time=0.5)
    )
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 2_000)
    system.run_until(15.0)
    if tracing:
        # The tracer really saw the run it must not perturb.
        assert system.sim.round_tracer.summary()["events"] > 0
    return system.end_state_digest()


def test_round_tracing_is_digest_neutral(monkeypatch):
    """FIFO and tie-shuffled schedules, tracer on vs off: the end-state
    digest is bit-identical in every combination."""
    digests = {
        (shuffle, tracing): _workload_digest(monkeypatch, shuffle, tracing)
        for shuffle in (None, 1)
        for tracing in (False, True)
    }
    assert len(set(digests.values())) == 1, digests


# ----------------------------------------------------------------------
# The partitioned-subnet stall report (acceptance scenario)
# ----------------------------------------------------------------------
def test_partitioned_tendermint_subnet_yields_named_stall_report(tmp_path, capsys):
    system = HierarchicalSystem(seed=7, root_validators=3).start()
    system.enable_telemetry(monitors=True, health_interval=1.0)
    sub = system.spawn_subnet(
        SubnetConfig(name="s0", engine="tendermint", validators=4)
    )
    system.run_for(5.0)

    watchdog = ProgressWatchdog(system, stall_after=8.0).start()
    nodes = system.nodes(sub)
    members = {node.node_id for node in nodes}
    kept = {node.node_id for node in nodes[:2]}
    cut = members - kept
    system.stack.transport.partition(sorted(cut))
    system.run_for(20.0)

    stalls = [s for s in watchdog.stalls if s["subnet"] == "/root/s0"]
    assert stalls, "watchdog never flagged the partitioned subnet"
    report = stalls[0]["report"]
    assert report["schema"] == STALL_SCHEMA
    assert report["engine"] == "tendermint"

    # The quorum analysis: no single view holds 2f+1, and the missing
    # members are exactly the far side of the observer's partition.
    quorum = report["quorum"]
    assert quorum["kind"] == "vote-quorum"
    assert quorum["held_power"] < quorum["needed_power"]
    assert quorum["missing_power"] > 0
    missing = (
        set(quorum["silent"]) | set(quorum["unreachable"])
        | {entry["voter"] for entry in quorum["misaligned"]}
    )
    observer_side = kept if quorum["observer"] in kept else cut
    assert missing == members - observer_side

    # The network section names every severed pair across the cut.
    pairs = {frozenset(pair) for pair in report["network"]["unreachable_pairs"]}
    assert pairs == {frozenset((a, b)) for a in kept for b in cut}

    # Per-validator engine snapshots and (tracer installed) round context.
    assert {v["node"] for v in report["validators"]} == members
    assert all("round" in v["state"] for v in report["validators"])
    assert report["frontier"] is not None
    assert any(report["recent_events"].values())

    # The human rendering names the subnet and every missing member.
    rendered = render_stall_report(report)
    assert "stall report: /root/s0" in rendered
    assert "short" in rendered
    for member in missing:
        assert member in rendered

    # wait_for timeout diagnostics carry the same reports end to end:
    # last_timeout -> timeout_detail() -> flight-recorder bundle ->
    # postmortem rendering.
    assert not system.wait_for(lambda: False, timeout=2.0, label="stall-test")
    assert system.last_timeout["stall_reports"]
    detail = system.timeout_detail()
    assert "quorum at h" in detail
    bundle = system.flight_recorder.bundles[-1]
    assert bundle["stall_reports"]
    assert "stall report: /root/s0" in render_postmortem(bundle)

    # The CLI renders a standalone stall-report file (the CI artifact
    # shape) without complaint.
    path = tmp_path / "stall_root_s0.json"
    path.write_text(json.dumps(report), encoding="utf-8")
    assert postmortem_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "stall report: /root/s0" in out


def test_on_demand_diagnosis_of_a_healthy_slot_subnet():
    """Slot engines have no vote books: the report falls back to the
    leader-schedule analysis instead of inventing a quorum."""
    system = HierarchicalSystem(seed=3, root_validators=3).start()
    system.enable_telemetry()
    system.spawn_subnet(SubnetConfig(name="s0", validators=3))  # PoA
    system.run_for(5.0)

    report = system.stall_diagnoser.diagnose("/root/s0")
    quorum = report["quorum"]
    assert quorum["kind"] == "leader-schedule"
    assert quorum["expected_leader"]
    assert quorum["head_spread"] is not None
    rendered = render_stall_report(report)
    assert "slot engine" in rendered
    assert "expected leader" in rendered
    json.dumps(report, allow_nan=False)

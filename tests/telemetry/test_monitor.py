"""Invariant monitor: honest-run silence, digest neutrality, auditor units."""

import pytest

from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.sim.scheduler import Simulator
from repro.telemetry import (
    ExactlyOnceAuditor,
    FinalityAuditor,
    InvariantMonitor,
    SupplyAuditor,
)


def _run_system(monitors: bool):
    """Root + one subnet; one top-down and one bottom-up transfer."""
    system = HierarchicalSystem(seed=11)
    system.start()
    if monitors:
        system.enable_telemetry(monitors=True)
    alice = system.create_wallet("alice", fund=500_000)
    sub = system.spawn_subnet(SubnetConfig(name="fast", validators=3, block_time=0.5))
    system.fund_subnet(alice, sub, alice.address, 50_000)
    system.run_for(20)
    system.cross_send(alice, sub, "/root", alice.address, 5_000)
    system.run_for(30)
    return system


@pytest.fixture(scope="module")
def monitored_system():
    return _run_system(monitors=True)


# ----------------------------------------------------------------------
# Honest end-to-end run
# ----------------------------------------------------------------------
def test_honest_run_has_zero_violations(monitored_system):
    monitor = monitored_system.invariant_monitor
    assert monitor.ok
    assert monitor.violations == []
    summary = monitor.summary()
    assert summary["violations"] == 0
    assert summary["by_auditor"] == {}
    assert summary["latest"] is None
    assert set(summary["auditors"]) == {
        "supply", "checkpoint-chain", "exactly-once", "finality", "membership",
    }
    # No violations → no postmortem bundles.
    assert monitored_system.flight_recorder.bundles == []


def test_digest_unchanged_with_monitors(monitored_system):
    plain = _run_system(monitors=False)
    assert plain.sim.trace.digest() == monitored_system.sim.trace.digest()
    assert len(plain.sim.trace) == len(monitored_system.sim.trace)


def test_enable_telemetry_is_idempotent(monitored_system):
    monitor = monitored_system.invariant_monitor
    recorder = monitored_system.flight_recorder
    monitored_system.enable_telemetry(monitors=True)
    assert monitored_system.invariant_monitor is monitor
    assert monitored_system.flight_recorder is recorder


def test_install_uninstall():
    sim = Simulator(seed=1)
    monitor = InvariantMonitor(sim=sim, auditors=[]).install()
    assert sim.invariant_monitor is monitor
    monitor.uninstall()
    assert sim.invariant_monitor is None


# ----------------------------------------------------------------------
# Violation recording
# ----------------------------------------------------------------------
def test_record_dedup_and_counters():
    sim = Simulator(seed=1)
    monitor = InvariantMonitor(sim=sim, auditors=[])
    first = monitor.record("supply", "/root", "broken", dedup_key=("k",))
    again = monitor.record("supply", "/root", "broken differently", dedup_key=("k",))
    other = monitor.record("finality", "/root", "fork")
    assert first is not None and again is None and other is not None
    assert len(monitor.violations) == 2
    assert [v.seq for v in monitor.violations] == [0, 1]
    assert sim.metrics.counter("invariant.violations").value == 2
    assert sim.metrics.counter("invariant.supply.violations").value == 1
    assert monitor.violations_for("finality") == [other]
    assert monitor.summary()["by_auditor"] == {"supply": 1, "finality": 1}
    assert monitor.summary()["latest"]["description"] == "fork"


class _StubRecorder:
    def __init__(self):
        self.bundles = []

    def dump(self, violation=None, reason=None):
        self.bundles.append(violation)


def test_violation_triggers_recorder_dump_up_to_cap():
    sim = Simulator(seed=1)
    recorder = _StubRecorder()
    monitor = InvariantMonitor(
        sim=sim, auditors=[], recorder=recorder, max_bundles=2
    )
    for i in range(4):
        monitor.record("supply", "/root", f"violation {i}")
    assert len(monitor.violations) == 4
    assert len(recorder.bundles) == 2  # capped
    assert recorder.bundles[0].description == "violation 0"


# ----------------------------------------------------------------------
# Supply auditor (event path)
# ----------------------------------------------------------------------
class _StubNode:
    def __init__(self, subnet_id="/root", node_id="n0", store=None, engine=None):
        self.subnet_id = subnet_id
        self.node_id = node_id
        self.store = store
        self.engine = engine


def test_supply_auditor_flags_firewall_refusal():
    sim = Simulator(seed=1)
    monitor = InvariantMonitor(sim=sim, auditors=[SupplyAuditor()])
    events = [("firewall.refused", ("/root/victim", 1_000_000, 10_000))]
    monitor.on_block_commit(_StubNode(), None, events)
    monitor.on_block_commit(_StubNode(node_id="n1"), None, events)  # dedups
    (violation,) = monitor.violations
    assert violation.auditor == "supply"
    assert "exceeds its circulating supply" in violation.description


# ----------------------------------------------------------------------
# Exactly-once auditor
# ----------------------------------------------------------------------
class _StubBlock:
    def __init__(self, cid, height):
        self.cid = cid
        self.height = height


class _StubChainStore:
    """Extension oracle: blocks tagged with a chain name share a chain."""

    def __init__(self, chains):
        self._chains = chains  # cid -> chain name

    def is_extension(self, old, new):
        return self._chains.get(old) == self._chains.get(new)


def test_exactly_once_flags_double_delivery_on_one_chain():
    sim = Simulator(seed=1)
    monitor = InvariantMonitor(sim=sim, auditors=[ExactlyOnceAuditor()])
    store = _StubChainStore({"b1": "main", "b2": "main"})
    node = _StubNode(store=store)
    deliver = [("crossmsg.delivered", ("addr", 5, "cd" * 16))]
    monitor.on_block_commit(node, _StubBlock("b1", 3), deliver)
    monitor.on_block_commit(node, _StubBlock("b1", 3), deliver)  # same block: ok
    assert monitor.ok
    monitor.on_block_commit(node, _StubBlock("b2", 4), deliver)  # same chain: bad
    (violation,) = monitor.violations
    assert "applied twice" in violation.description


def test_exactly_once_tolerates_fork_replay():
    sim = Simulator(seed=1)
    monitor = InvariantMonitor(sim=sim, auditors=[ExactlyOnceAuditor()])
    store = _StubChainStore({"b1": "fork-a", "b2": "fork-b"})
    node = _StubNode(store=store)
    deliver = [("crossmsg.delivered", ("addr", 5, "cd" * 16))]
    monitor.on_block_commit(node, _StubBlock("b1", 3), deliver)
    monitor.on_block_commit(node, _StubBlock("b2", 3), deliver)
    assert monitor.ok  # rival forks may both apply; not a violation
    assert sim.metrics.counter("invariant.exactly_once.fork_replays").value == 1


def test_exactly_once_nonce_rules():
    sim = Simulator(seed=1)
    monitor = InvariantMonitor(sim=sim, auditors=[ExactlyOnceAuditor()])
    node = _StubNode()

    def topdown(nonce, cid):
        return [("crossmsg.topdown",
                 ("/root/a", nonce, 7, cid, "/root/a", "addr", "user"))]

    monitor.on_block_commit(node, None, topdown(0, "aa" * 16))
    monitor.on_block_commit(node, None, topdown(1, "bb" * 16))
    monitor.on_block_commit(node, None, topdown(1, "bb" * 16))  # re-observation
    assert monitor.ok
    monitor.on_block_commit(node, None, topdown(1, "cc" * 16))  # reuse, new cid
    monitor.on_block_commit(node, None, topdown(0, "dd" * 16))  # also reuse
    assert len(monitor.violations) == 2
    assert all("nonce" in v.description for v in monitor.violations)
    # A forward gap is counted, not convicted (monitor may attach mid-run).
    monitor.on_block_commit(node, None, topdown(5, "ee" * 16))
    assert len(monitor.violations) == 2
    assert sim.metrics.counter("invariant.exactly_once.nonce_gaps").value == 1


# ----------------------------------------------------------------------
# Finality auditor
# ----------------------------------------------------------------------
class _StubEngine:
    SUPPORTS_FORKS = True

    class params:
        finality_depth = 5


def test_finality_auditor_flags_deep_reorg():
    sim = Simulator(seed=1)
    monitor = InvariantMonitor(sim=sim, auditors=[FinalityAuditor()])
    node = _StubNode(engine=_StubEngine())
    monitor.on_reorg(node, "old", _StubBlock("new", 30), depth=3)
    assert monitor.ok  # within finality depth
    monitor.on_reorg(node, "old", _StubBlock("new", 40), depth=9)
    (violation,) = monitor.violations
    assert violation.auditor == "finality"
    assert "deeper than the finality depth" in violation.description

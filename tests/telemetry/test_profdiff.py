"""Profdiff CLI: golden output + document-shape handling + error paths.

The inputs are hand-written ``repro.profile/v1`` documents (no sampling
involved), so the rendered culprit report is byte-deterministic and lives
as a golden file.  Regenerate with
``UPDATE_GOLDENS=1 pytest tests/telemetry/test_profdiff.py``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.telemetry import diff_profiles, render_diff
from repro.telemetry.profdiff import (
    ProfDiffError,
    extract_profile,
    load_profile,
    main as profdiff_main,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def _profile(samples, active_s, labels):
    """A minimal repro.profile/v1 document: {label: (samples, alloc, frames)}."""
    return {
        "schema": "repro.profile/v1",
        "interval_s": 0.005,
        "memory": False,
        "samples": samples,
        "active_s": active_s,
        "sampler_s": 0.01,
        "labels": {
            label: {
                "samples": count,
                "cpu_share": count / samples,
                "alloc_bytes": alloc,
                "alloc_events": count,
                "top_frames": frames,
            }
            for label, (count, alloc, frames) in labels.items()
        },
        "mem": {"rss_bytes": 1, "rss_peak_bytes": 1, "rss_points": 2,
                "allocated_blocks": 1},
    }


# Baseline: consensus-heavy.  Candidate: state-root work doubled (the
# "regression" profdiff must rank first) while consensus share shrank.
OLD = _profile(1000, 10.0, {
    "poa:/root#0": (600, 4096, [["repro/consensus/poa.py:_on_slot", 500],
                                ["repro/runtime/node.py:assemble_block", 100]]),
    "state:root": (250, 8192, [["repro/storage/statetree.py:root", 250]]),
    "gossip:heartbeat": (150, 1024, [["repro/net/gossip.py:beat", 150]]),
})
NEW = _profile(2000, 10.0, {
    "poa:/root#0": (900, 8192, [["repro/consensus/poa.py:_on_slot", 700],
                                ["repro/runtime/node.py:assemble_block", 200]]),
    "state:root": (1000, 65536, [["repro/storage/statetree.py:root", 900],
                                 ["repro/storage/statetree.py:_rehash", 100]]),
    "ckpt:seal": (100, 2048, [["repro/hierarchy/checkpoint.py:seal", 100]]),
})


def _check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("UPDATE_GOLDENS"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
    golden = path.read_text(encoding="utf-8")
    assert text == golden, f"{name} drifted from golden (UPDATE_GOLDENS=1 to accept)"


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


def test_diff_ranks_regressions_first():
    diff = diff_profiles(OLD, NEW)
    assert diff["schema"] == "repro.profdiff/v1"
    rows = {row["label"]: row for row in diff["labels"]}
    # state:root grew 25% -> 50%: the worst regression leads the table.
    assert diff["labels"][0]["label"] == "state:root"
    assert rows["state:root"]["delta_share"] == pytest.approx(0.25)
    assert rows["state:root"]["delta_alloc_bytes"] == 65536 - 8192
    # gossip:heartbeat vanished: present with new share 0.
    assert rows["gossip:heartbeat"]["new_share"] == 0.0
    # ckpt:seal is new: old share 0.
    assert rows["ckpt:seal"]["old_share"] == 0.0
    # Frames: statetree.py:root grew from 25% to 45% of samples.
    assert diff["frames"][0]["frame"] == "repro/storage/statetree.py:root"
    assert diff["frames"][0]["delta_share"] == pytest.approx(0.45 - 0.25)


def test_cli_golden_report(tmp_path, capsys):
    old = _write(tmp_path, "old.json", OLD)
    new = _write(tmp_path, "new.json", NEW)
    assert profdiff_main([old, new]) == 0
    _check_golden("profdiff.txt", capsys.readouterr().out)


def test_cli_json_flag_round_trips(tmp_path, capsys):
    old = _write(tmp_path, "old.json", OLD)
    new = _write(tmp_path, "new.json", NEW)
    assert profdiff_main([old, new, "--json"]) == 0
    diff = json.loads(capsys.readouterr().out)
    assert diff == diff_profiles(OLD, NEW)
    assert diff["old"]["samples"] == 1000 and diff["new"]["samples"] == 2000


def test_cli_top_truncates_tables(tmp_path, capsys):
    old = _write(tmp_path, "old.json", OLD)
    new = _write(tmp_path, "new.json", NEW)
    assert profdiff_main([old, new, "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "state:root" in out  # worst regression survives the cut
    assert "gossip:heartbeat" not in out


def test_accepts_bench_and_trajectory_wrappers(tmp_path):
    bench = {"schema": "repro.bench/v1", "bench": "x", "profile": OLD}
    trajectory = {
        "schema": "repro.perf-trajectory/v1",
        "trajectory": [{"note": "older, unprofiled"}, {"profile": NEW}],
    }
    assert extract_profile(bench) is OLD
    assert extract_profile(trajectory) is NEW
    assert extract_profile(OLD) is OLD
    assert extract_profile({"schema": "repro.bench/v1"}) is None
    assert load_profile(_write(tmp_path, "b.json", bench)) == OLD


def test_no_regressed_frames_message():
    # New run strictly improved: every frame shrank.
    improved = _profile(1000, 10.0, {
        "state:root": (100, 0, [["repro/storage/statetree.py:root", 100]]),
        "poa:/root#0": (300, 0, [["repro/consensus/poa.py:_on_slot", 300]]),
    })
    shrunk = diff_profiles(NEW, improved)
    assert "no regressed frames" in render_diff(shrunk)


def test_cli_missing_file_exits_2(tmp_path, capsys):
    assert profdiff_main([str(tmp_path / "absent.json"), str(tmp_path / "b.json")]) == 2
    err = capsys.readouterr().err
    assert "profdiff: error: cannot read" in err
    assert len(err.strip().splitlines()) == 1  # one line, no traceback


def test_cli_unprofiled_input_exits_2(tmp_path, capsys):
    bare = _write(tmp_path, "bare.json", {"schema": "repro.bench/v1", "rows": []})
    new = _write(tmp_path, "new.json", NEW)
    assert profdiff_main([bare, new]) == 2
    assert "carries no profile section" in capsys.readouterr().err


def test_load_profile_raises_typed_error(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ProfDiffError):
        load_profile(str(path))

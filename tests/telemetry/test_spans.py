"""Span tracer: lifecycle across a 2-level hierarchy, determinism, digest."""

import pytest

from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.sim.scheduler import Simulator
from repro.telemetry import SpanTracer, route_shape, subnet_level


def _run_system(telemetry: bool):
    """Root + one subnet; one top-down and one bottom-up transfer."""
    system = HierarchicalSystem(seed=11)
    system.start()
    if telemetry:
        system.enable_telemetry()
    alice = system.create_wallet("alice", fund=500_000)
    sub = system.spawn_subnet(SubnetConfig(name="fast", validators=3, block_time=0.5))
    system.fund_subnet(alice, sub, alice.address, 50_000)
    system.run_for(20)
    system.cross_send(alice, sub, "/root", alice.address, 5_000)
    system.run_for(30)
    return system


@pytest.fixture(scope="module")
def traced_system():
    return _run_system(telemetry=True)


def _trace_by_value(tracer, value):
    for trace_id, info in tracer.trace_info.items():
        if info.get("value") == value:
            return tracer.trace(trace_id), info
    raise AssertionError(f"no trace with value {value}")


# ----------------------------------------------------------------------
# Path helpers
# ----------------------------------------------------------------------
def test_subnet_level():
    assert subnet_level("/root") == 0
    assert subnet_level("/root/a") == 1
    assert subnet_level("/root/a/b") == 2


def test_route_shape():
    assert route_shape("/root", "/root/a") == "topdown"
    assert route_shape("/root/a/b", "/root") == "bottomup"
    assert route_shape("/root/a", "/root/b") == "path"


# ----------------------------------------------------------------------
# Lifecycle across a 2-level hierarchy
# ----------------------------------------------------------------------
def test_topdown_span_lifecycle(traced_system):
    events, info = _trace_by_value(traced_system.span_tracer, 50_000)
    assert [e.phase for e in events] == ["submit", "enqueue", "deliver"]
    assert [e.subnet for e in events] == ["/root", "/root", "/root/fast"]
    assert info["status"] == "delivered"
    assert info["shape"] == "topdown"
    assert info["to_subnet"] == "/root/fast"
    times = [e.time for e in events]
    assert times == sorted(times)


def test_bottomup_span_lifecycle(traced_system):
    events, info = _trace_by_value(traced_system.span_tracer, 5_000)
    assert [e.phase for e in events] == ["submit", "enqueue", "deliver"]
    assert [e.subnet for e in events] == ["/root/fast", "/root/fast", "/root"]
    assert info["status"] == "delivered"
    assert info["shape"] == "bottomup"
    # Bottom-up rides a checkpoint window: the delivery hop dominates.
    assert events[2].time - events[1].time > 1.0


def test_hop_histograms_populated(traced_system):
    histograms = traced_system.sim.metrics.histograms
    for name in (
        "xnet.hop.submit.L0",
        "xnet.hop.submit.L1",
        "xnet.hop.topdown.L1",
        "xnet.hop.bottomup.L0",
        "xnet.e2e.topdown",
        "xnet.e2e.bottomup",
        "checkpoint.lag",
        "checkpoint.lag.L1",
        "checkpoint.hop.seal_to_submit",
        "checkpoint.hop.submit_to_commit",
    ):
        assert name in histograms, f"missing histogram {name}"
        assert histograms[name].count > 0, f"empty histogram {name}"
    summary = histograms["xnet.e2e.bottomup"].summary()
    assert summary["p50"] is not None and summary["p99"] >= summary["p50"]


def test_span_counters_consistent(traced_system):
    tracer = traced_system.span_tracer
    metrics = traced_system.sim.metrics
    assert metrics.counter("xnet.spans.started").value == len(tracer.traces)
    assert metrics.counter("xnet.spans.delivered").value == tracer.delivered_count()
    summary = tracer.summary()
    assert summary["delivered"] + summary["failed"] + summary["in_flight"] == summary["traces"]
    assert summary["checkpoints"] > 0


def test_checkpoints_observed_seal_submit_commit(traced_system):
    entries = traced_system.span_tracer.checkpoints.values()
    complete = [
        e for e in entries
        if e.get("sealed") is not None
        and e.get("submitted") is not None
        and e.get("committed") is not None
    ]
    assert complete, "no checkpoint observed through its whole lifecycle"
    for entry in complete:
        assert entry["sealed"] <= entry["submitted"] <= entry["committed"]
        assert entry["source"] == "/root/fast"
        assert entry["parent"] == "/root"


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_hop_latencies_deterministic_under_fixed_seed(traced_system):
    def shape(system):
        tracer = system.span_tracer
        return {
            trace_id: [(e.phase, e.subnet, e.time) for e in events]
            for trace_id, events in tracer.traces.items()
        }

    assert shape(_run_system(telemetry=True)) == shape(traced_system)


def test_digest_unchanged_with_telemetry(traced_system):
    plain = _run_system(telemetry=False)
    assert plain.sim.trace.digest() == traced_system.sim.trace.digest()
    # And telemetry wrote nothing to the trace log itself.
    assert len(plain.sim.trace) == len(traced_system.sim.trace)


# ----------------------------------------------------------------------
# Unit behaviour on a bare simulator
# ----------------------------------------------------------------------
def _topdown_event(cid="ab" * 16, value=7, kind="user"):
    return (
        "crossmsg.topdown",
        ("/root/a", 0, value, cid, "/root/a", "addr-1", kind),
    )


def test_duplicate_commits_deduplicate():
    sim = Simulator(seed=1)
    tracer = SpanTracer(sim).install()
    for node in ("n0", "n1", "n2"):
        tracer.on_block_commit("/root", node, None, [_topdown_event()])
    assert len(tracer.traces) == 1
    (events,) = tracer.traces.values()
    assert len(events) == 1
    assert sim.metrics.counter("xnet.spans.started").value == 1


def test_note_submit_binds_fifo_to_first_user_enqueue():
    sim = Simulator(seed=1)
    tracer = SpanTracer(sim).install()
    sim.now = 1.0
    tracer.note_submit("/root", "/root/a", "addr-1", 7)
    sim.now = 2.0
    tracer.note_submit("/root", "/root/a", "addr-1", 7)
    sim.now = 5.0
    tracer.on_block_commit("/root", "n0", None, [_topdown_event(cid="aa" * 16)])
    tracer.on_block_commit("/root", "n0", None, [_topdown_event(cid="bb" * 16)])
    first = tracer.trace("aa" * 16)
    second = tracer.trace("bb" * 16)
    assert [e.phase for e in first] == ["submit", "enqueue"]
    assert first[0].time == 1.0  # FIFO: oldest submission binds first
    assert second[0].time == 2.0
    assert sim.metrics.histogram("xnet.hop.submit.L0").count == 2


def test_internal_messages_get_no_submit_binding():
    sim = Simulator(seed=1)
    tracer = SpanTracer(sim).install()
    sim.now = 1.0
    tracer.note_submit("/root", "/root/a", "addr-1", 7)
    sim.now = 3.0
    tracer.on_block_commit(
        "/root", "n0", None, [_topdown_event(kind="revert")]
    )
    (events,) = tracer.traces.values()
    assert [e.phase for e in events] == ["enqueue"]  # submission not consumed
    assert tracer._pending_submits  # still waiting for a user enqueue


def test_uninstall_detaches():
    sim = Simulator(seed=1)
    tracer = SpanTracer(sim).install()
    assert sim.span_tracer is tracer
    tracer.uninstall()
    assert sim.span_tracer is None

"""Exporter golden files + report CLI.

The scenario is synthetic — the tracer is fed hand-written observations at
hand-set simulated times, with no scheduled events — so every exporter
output is byte-deterministic and can be compared against a golden file.
Regenerate with ``UPDATE_GOLDENS=1 pytest tests/telemetry/test_exporters.py``.
"""

import json
import os
from pathlib import Path

from repro.sim.scheduler import Simulator
from repro.telemetry import (
    RoundTracer,
    SpanTracer,
    telemetry_snapshot,
    to_chrome_trace,
    to_prometheus,
    write_json,
)
from repro.telemetry.report import main as report_main

GOLDEN_DIR = Path(__file__).parent / "golden"

MSG_A = "aa" * 16
MSG_B = "bb" * 16
CKPT = "cc" * 16


def _synthetic():
    """One delivered top-down transfer, one failed bottom-up message, one
    fully-anchored checkpoint — all at hand-picked simulated times."""
    sim = Simulator(seed=5)
    tracer = SpanTracer(sim).install()

    sim.now = 1.0
    tracer.note_submit("/root", "/root/a", "addr-1", 100)
    sim.now = 2.0
    tracer.on_block_commit("/root", "n0", None, [
        ("crossmsg.topdown", ("/root/a", 0, 100, MSG_A, "/root/a", "addr-1", "user")),
    ])
    sim.now = 3.5
    tracer.on_block_commit("/root/a", "m0", None, [
        ("crossmsg.delivered", ("addr-1", 100, MSG_A)),
        ("checkpoint.sealed", (0, CKPT)),
    ])
    sim.now = 3.75
    tracer.checkpoint_submitted(CKPT, "/root/a", 0)
    sim.now = 4.5
    tracer.on_block_commit("/root", "n0", None, [
        ("checkpoint.committed", ("/root/a", CKPT)),
    ])
    sim.now = 5.0
    tracer.on_block_commit("/root/a", "m0", None, [
        ("crossmsg.bottomup", (0, 0, 50, MSG_B, "/root", "addr-2", "user")),
    ])
    sim.now = 6.0
    tracer.on_block_commit("/root", "n0", None, [
        ("crossmsg.failed", ("addr-2", "out of gas", MSG_B)),
    ])

    sim.metrics.gauge("demo.gauge").set(2.5)
    sim.metrics.histogram("demo.empty")  # summary must export as nulls
    series = sim.metrics.timeseries("demo.series")
    series.record(1.0, 1.0)
    series.record(2.0, 3.0)

    # The profiling plane's gauge families (hand-set, no sampler thread):
    # mem.* plus profile.* with a dispatch label full of characters the
    # exposition format must sanitise out of the family name.
    sim.metrics.gauge("mem.rss_bytes").set(42_000_000)
    sim.metrics.gauge("mem.allocated_blocks").set(123456)
    sim.metrics.gauge("profile.samples").set(200)
    sim.metrics.gauge("profile.interval_s").set(0.005)
    sim.metrics.gauge("profile.cpu_share.poa:/root/a#0").set(0.625)
    sim.metrics.gauge("profile.alloc_bytes.poa:/root/a#0").set(2048)

    # A consensus round on /root/a: validator 0 times out of round 0,
    # skips to round 1 (f+1 catch-up), then the proposal arrives, the
    # quorum prevotes, the polka locks and the height commits.
    rounds = RoundTracer(sim).install()
    val = "/root/a#0"

    def feed(time, kind, **fields):
        rounds.on_round_event("/root/a", val, kind, time, fields)

    feed(1.0, "round_start", height=3, round=0, proposer=val,
         quorum=3, total=4)
    feed(2.0, "timeout", height=3, round=0, step="propose")
    feed(2.1, "round_skip", height=3, round=1, proposer="/root/a#1",
         quorum=3, total=4)
    feed(2.2, "proposal", height=3, round=1, proposer="/root/a#1",
         cid="dd" * 8)
    for i in range(3):
        feed(2.3 + i / 10, "vote", height=3, round=1, vote_type="prevote",
             voter=f"/root/a#{i}", power=1, cid="dd" * 8)
    feed(2.6, "lock", height=3, round=1, cid="dd" * 8)
    feed(2.7, "commit", height=3, round=1, cid="dd" * 8)
    return sim, tracer


def _check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("UPDATE_GOLDENS"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
    golden = path.read_text(encoding="utf-8")
    assert text == golden, f"{name} drifted from golden (UPDATE_GOLDENS=1 to accept)"


def test_prometheus_golden():
    sim, _tracer = _synthetic()
    _check_golden("synthetic.prom", to_prometheus(sim))


def test_chrome_trace_golden():
    sim, tracer = _synthetic()
    document = to_chrome_trace(sim, tracer)
    _check_golden(
        "synthetic_trace.json",
        json.dumps(document, indent=2, allow_nan=False) + "\n",
    )


def test_chrome_trace_shape():
    sim, tracer = _synthetic()
    document = to_chrome_trace(sim, tracer)
    events = document["traceEvents"]
    spans = [e for e in events if e["ph"] == "X" and e.get("cat") == "xnet"]
    # submit→enqueue and enqueue→deliver of MSG_A, enqueue→fail of MSG_B
    assert len(spans) == 3
    assert all(e["dur"] > 0 for e in spans)
    ckpt = [e for e in events if e.get("cat") == "checkpoint"]
    assert len(ckpt) == 1
    assert ckpt[0]["dur"] == (4.5 - 3.5) * 1e6
    # One named track per subnet appearing in any span.
    names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
    }
    assert names == {"/root", "/root/a"}


def test_snapshot_json_round_trip(tmp_path):
    sim, tracer = _synthetic()
    snapshot = telemetry_snapshot(sim, tracer=tracer, wall_seconds=0.5)
    path = write_json(str(tmp_path / "dump.json"), snapshot)
    loaded = json.loads(Path(path).read_text(encoding="utf-8"))
    assert loaded["schema"] == "repro.telemetry/v1"
    assert loaded["spans"] == {
        "traces": 2, "delivered": 1, "failed": 1, "in_flight": 0, "checkpoints": 1,
    }
    assert loaded["histograms"]["demo.empty"]["mean"] is None
    assert loaded["histograms"]["xnet.e2e.topdown"]["count"] == 1
    assert loaded["counters"]["xnet.spans.failed"] == 1
    assert loaded["gauges"]["demo.gauge"] == 2.5
    assert loaded["series"]["demo.series"] == {
        "points": 2, "first": [1.0, 1.0], "last": [2.0, 3.0],
    }


def test_prometheus_declares_profiler_families():
    """mem.*/profile.* gauges export with HELP/TYPE and sanitised names —
    the dispatch label's /, # survive only in the HELP line."""
    sim, _tracer = _synthetic()
    text = to_prometheus(sim)
    assert "# TYPE mem_rss_bytes gauge" in text
    assert "mem_rss_bytes 42000000" in text
    assert "# TYPE profile_samples gauge" in text
    assert "# TYPE profile_cpu_share_poa:_root_a_0 gauge" in text
    assert "profile_cpu_share_poa:_root_a_0 0.625" in text
    assert "# HELP profile_cpu_share_poa:_root_a_0 profile.cpu_share.poa:/root/a#0" in text


def test_prometheus_declares_round_families():
    """consensus.round.* gauges/counters/histograms export with HELP/TYPE."""
    sim, _tracer = _synthetic()
    text = to_prometheus(sim)
    assert "# TYPE consensus_round__root_a_height gauge" in text
    assert "# HELP consensus_round__root_a_height consensus.round./root/a.height" in text
    assert "consensus_round__root_a_height 3" in text
    assert "consensus_round__root_a_number 1" in text
    assert "# TYPE consensus_round__root_a_quorum_power gauge" in text
    assert "consensus_round__root_a_quorum_power 3" in text
    assert "consensus_round__root_a_prevote_power 3" in text
    assert "# TYPE consensus_round__root_a_skips counter" in text
    assert "consensus_round__root_a_skips 1" in text
    assert "consensus_round__root_a_timeouts 1" in text
    assert "consensus_round__root_a_locks 1" in text
    assert "# TYPE consensus_round__root_a_duration summary" in text
    assert "# TYPE consensus_round__root_a_per_height summary" in text
    assert "consensus_round__root_a_per_height_count 1" in text


def test_chrome_trace_round_tracks():
    """Round events render as one pid-4 track per validator: slices for
    rounds, instants for votes/locks/commits inside them."""
    sim, tracer = _synthetic()
    events = to_chrome_trace(sim, tracer)["traceEvents"]
    rounds = [e for e in events if e["pid"] == 4]
    names = {
        e["args"]["name"] for e in rounds
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names == {"/root/a#0"}
    slices = [e for e in rounds if e["ph"] == "X"]
    assert [s["name"] for s in slices] == ["h3 r0", "h3 r1 (skip)"]
    assert all(s["dur"] > 0 for s in slices)
    instants = [e["name"] for e in rounds if e["ph"] == "i"]
    assert instants == [
        "timeout", "proposal", "vote", "vote", "vote", "lock", "commit",
    ]


def test_prometheus_sanitizes_names():
    sim, _tracer = _synthetic()
    sim.metrics.counter("weird.name-with/slash").inc()
    text = to_prometheus(sim)
    assert "weird_name_with_slash 1" in text
    # The dotted original survives only in the HELP line.
    assert "# HELP weird_name_with_slash weird.name-with/slash" in text


def test_prometheus_lint_clean():
    """Every family has HELP before TYPE and nothing else starts with #."""
    sim, _tracer = _synthetic()
    lines = to_prometheus(sim).strip().splitlines()
    families = set()
    for i, line in enumerate(lines):
        if line.startswith("# TYPE "):
            name, kind = line.split()[2:4]
            assert kind in ("counter", "gauge", "summary")
            assert lines[i - 1].startswith(f"# HELP {name} "), name
            assert name not in families, f"duplicate family {name}"
            families.add(name)
        elif line.startswith("#"):
            assert line.startswith("# HELP "), f"stray comment: {line}"
    # Every sample line belongs to a declared family.
    for line in lines:
        if not line.startswith("#"):
            sample = line.split("{")[0].split()[0]
            base = sample
            for suffix in ("_count", "_sum"):
                if sample.endswith(suffix) and sample[: -len(suffix)] in families:
                    base = sample[: -len(suffix)]
            assert base in families, f"sample {sample} without TYPE"


def test_prometheus_escaping_helpers():
    from repro.telemetry.export import _escape_help, _escape_label_value

    assert _escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
    assert _escape_help("back\\slash\nnewline") == "back\\\\slash\\nnewline"


def test_report_cli_renders_dump(tmp_path, capsys):
    sim, tracer = _synthetic()
    path = str(tmp_path / "dump.json")
    write_json(path, telemetry_snapshot(sim, tracer=tracer))
    assert report_main([path]) == 0
    out = capsys.readouterr().out
    assert "cross-net spans: 2 traced, 1 delivered, 1 failed" in out
    assert "cross-net hop latency by hierarchy level" in out
    assert "topdown" in out and "L1" in out
    assert "checkpoint.lag" in out


def test_report_cli_missing_file(tmp_path, capsys):
    assert report_main([str(tmp_path / "absent.json")]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_report_cli_unparseable_file(tmp_path, capsys):
    path = tmp_path / "garbage.json"
    path.write_text("{not json", encoding="utf-8")
    assert report_main([str(path)]) == 1
    err = capsys.readouterr().err
    assert "cannot read" in err
    assert len(err.strip().splitlines()) == 1  # one line, no traceback


def test_report_cli_json_flag(tmp_path, capsys):
    sim, tracer = _synthetic()
    path = str(tmp_path / "dump.json")
    write_json(path, telemetry_snapshot(sim, tracer=tracer, wall_seconds=0.5))
    assert report_main([path, "--json"]) == 0
    out = capsys.readouterr().out
    summary = json.loads(out)  # machine-readable
    assert summary["spans"]["delivered"] == 1
    assert summary["wall_seconds"] == 0.5
    assert any(h["hop"] == "topdown" and h["level"] == "L1" for h in summary["hops"])
    assert "topdown" in summary["e2e"]
    assert "checkpoint.lag" in summary["checkpoints"]


def test_report_renders_invariant_counters_and_caches(tmp_path, capsys):
    sim, tracer = _synthetic()
    sim.metrics.counter("invariant.supply.violations").inc(2)
    sim.metrics.counter("cid.cache.hits").inc(90)
    sim.metrics.counter("cid.cache.misses").inc(10)
    sim.metrics.gauge("state.root.buckets_rehashed").set(7)
    path = str(tmp_path / "dump.json")
    write_json(path, telemetry_snapshot(sim, tracer=tracer))
    assert report_main([path]) == 0
    out = capsys.readouterr().out
    assert "invariant counters" in out
    assert "invariant.supply.violations" in out
    assert "caches & state-root work" in out
    assert "cid.cache.hit_rate" in out and "0.9" in out
    assert "state.root.buckets_rehashed" in out

    assert report_main([path, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["invariant_counters"] == {"invariant.supply.violations": 2}
    assert summary["caches"]["cid.cache.hits"] == 90
    assert summary["caches"]["cid.cache.hit_rate"] == 0.9
    assert summary["caches"]["state.root.buckets_rehashed"] == 7


def test_report_renders_profile_section(tmp_path, capsys):
    from repro.telemetry import SamplingProfiler

    sim, tracer = _synthetic()
    profiler = SamplingProfiler(sim, interval=0.001).start()
    sim.schedule(1.0, lambda: __import__("time").sleep(0.03), label="busy")
    sim.run()
    profiler.stop()
    path = str(tmp_path / "dump.json")
    write_json(path, telemetry_snapshot(sim, tracer=tracer, profiler=profiler))
    assert report_main([path]) == 0
    out = capsys.readouterr().out
    assert "CPU profile —" in out and "samples" in out

    assert report_main([path, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["profile"]["schema"] == "repro.profile/v1"
    assert summary["profile"]["samples"] == sum(
        row["samples"] for row in summary["profile"]["labels"].values()
    )


def test_report_renders_rounds_section(tmp_path, capsys):
    sim, tracer = _synthetic()
    path = str(tmp_path / "dump.json")
    write_json(path, telemetry_snapshot(sim, tracer=tracer))
    assert report_main([path]) == 0
    out = capsys.readouterr().out
    assert "consensus rounds per subnet" in out
    assert "h3 r1" in out

    assert report_main([path, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    entry = summary["rounds"]["subnets"]["/root/a"]
    assert entry["frontier_height"] == 3
    assert entry["frontier_round"] == 1
    assert entry["quorum_power"] == 3
    assert entry["prevote_power"] == 3
    assert entry["counts"]["round_skip"] == 1
    assert "consensus.round./root/a.duration" in summary["round_histograms"]


def test_report_renders_invariants_section(tmp_path, capsys):
    sim, tracer = _synthetic()
    from repro.telemetry import InvariantMonitor

    monitor = InvariantMonitor(sim=sim, auditors=[]).install()
    monitor.record("supply", "/root", "demo violation")
    path = str(tmp_path / "dump.json")
    write_json(path, telemetry_snapshot(sim, tracer=tracer, monitor=monitor))
    assert report_main([path]) == 0
    out = capsys.readouterr().out
    assert "invariants: 1 violation(s) across 0 auditors" in out
    assert "demo violation" in out

"""Flight recorder bundles and the postmortem CLI."""

import json
from pathlib import Path

import pytest

from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.telemetry.postmortem import main as postmortem_main
from repro.telemetry.postmortem import render


def _run_system(postmortem_dir=None, poke=False):
    system = HierarchicalSystem(seed=23)
    system.start()
    system.enable_telemetry(
        health_interval=2.0, monitors=True, postmortem_dir=postmortem_dir
    )
    alice = system.create_wallet("alice", fund=500_000)
    sub = system.spawn_subnet(SubnetConfig(name="pm", validators=3, block_time=0.5))
    system.fund_subnet(alice, sub, alice.address, 50_000)
    system.run_for(12)
    if poke:
        # Inject a synthetic violation mid-run so the dump happens at a
        # deterministic simulated time with live rings.
        system.invariant_monitor.record(
            "supply", "/root", "synthetic violation for the recorder test"
        )
    system.run_for(8)
    return system


@pytest.fixture(scope="module")
def poked(tmp_path_factory):
    out = tmp_path_factory.mktemp("bundles")
    return _run_system(postmortem_dir=str(out), poke=True), out


def test_violation_dumps_bundle_to_disk(poked):
    system, _out = poked
    recorder = system.flight_recorder
    assert len(recorder.bundles) == 1
    assert len(recorder.paths) == 1
    bundle = recorder.bundles[0]
    assert bundle["schema"] == "repro.postmortem/v1"
    assert bundle["reason"] == "invariant-violation"
    assert bundle["violation"]["auditor"] == "supply"
    assert bundle["sim"]["seed"] == 23
    assert bundle["trace_tail"], "trace ring should not be empty mid-run"
    assert bundle["dispatch_recent"], "dispatch ring should not be empty"
    assert bundle["heads"]["/root"]["height"] > 0
    assert bundle["heads"]["/root/pm"]["height"] > 0
    # The on-disk artifact round-trips.
    with open(recorder.paths[0], encoding="utf-8") as fh:
        loaded = json.load(fh)
    assert loaded["violation"]["description"] == bundle["violation"]["description"]


def test_bundle_body_is_deterministic(poked):
    """Same seed, same poke → byte-identical bundle (no wall clock inside)."""
    system, _out = poked
    repeat = _run_system(poke=True)
    a = json.dumps(system.flight_recorder.bundles[0], sort_keys=True, default=str)
    b = json.dumps(repeat.flight_recorder.bundles[0], sort_keys=True, default=str)
    assert a == b


def test_on_demand_dump(poked):
    system, _out = poked
    before = len(system.flight_recorder.bundles)
    bundle = system.flight_recorder.dump(reason="benchmark-exception")
    assert bundle["reason"] == "benchmark-exception"
    assert bundle["violation"] is None
    # An on-demand dump still carries the run's accumulated violations.
    assert bundle["violations"]
    assert len(system.flight_recorder.bundles) == before + 1


def test_render_sections(poked):
    system, _out = poked
    text = render(system.flight_recorder.bundles[0])
    assert "postmortem: reason=invariant-violation" in text
    assert "synthetic violation for the recorder test" in text
    assert "subnet heads" in text
    assert "-- trace tail" in text
    assert "-- dispatch tail" in text


def test_cli_renders_bundle(poked, capsys):
    system, out = poked
    path = system.flight_recorder.paths[0]
    assert Path(path).parent == Path(str(out))
    assert postmortem_main([str(path)]) == 0
    captured = capsys.readouterr()
    assert "postmortem: reason=invariant-violation" in captured.out
    assert postmortem_main([str(path), "--tail", "5"]) == 0


def test_cli_missing_file_is_one_line_error(capsys):
    assert postmortem_main(["/nonexistent/bundle.json"]) == 1
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "cannot read postmortem bundle" in captured.err
    assert len(captured.err.strip().splitlines()) == 1


def test_health_ring_fed_by_probe(poked):
    system, _out = poked
    # enable_telemetry wired HealthProbe.on_sample → recorder.note_health.
    bundle = system.flight_recorder.dump(reason="health-check")
    assert bundle["health_recent"], "health samples should reach the ring"
    latest = bundle["health_recent"][-1]
    assert "/root/pm" in latest
    assert "height" in latest["/root/pm"]

"""Unit tests for the sampling profiler (`repro.telemetry.profiler`).

Covers the three pillars: label attribution of CPU samples, tracemalloc
bucket accounting through the dispatch hooks, and the snapshot/publish/
collapsed-stack/Perfetto export surfaces — plus the determinism contract
(profiling must not move `end_state_digest` under any tie order).
"""

import time

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig
from repro.sim.scheduler import Simulator
from repro.telemetry import SamplingProfiler, to_chrome_trace
from repro.telemetry.profiler import OUTSIDE_DISPATCH, PROFILE_SCHEMA, read_rss_bytes


def _spin(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def _run_hot_cold(interval: float = 0.001, hot_s: float = 0.25, cold_s: float = 0.02):
    """A sim run whose wall-clock time is dominated by the ``hot`` label."""
    sim = Simulator(seed=1)
    sim.schedule(1.0, _spin, hot_s, label="hot")
    sim.schedule(2.0, _spin, cold_s, label="cold")
    profiler = SamplingProfiler(sim, interval=interval).start()
    sim.run()
    return sim, profiler.stop()


def test_label_attribution_hot_vs_cold():
    _, profiler = _run_hot_cold()
    shares = profiler.label_shares()
    assert profiler.snapshot()["samples"] > 0
    assert "hot" in shares, shares
    # 0.25s vs 0.02s of spinning: the hot label must dominate decisively.
    assert shares["hot"] > 3 * shares.get("cold", 0.0), shares
    assert shares["hot"] > 0.5, shares
    assert abs(sum(shares.values()) - 1.0) < 1e-9


def test_samples_outside_dispatch_get_the_outside_label():
    sim = Simulator(seed=2)
    profiler = SamplingProfiler(sim, interval=0.001).start()
    _spin(0.05)  # on the target thread, but not inside any event
    profiler.stop()
    shares = profiler.label_shares()
    assert shares, "sampler took no samples in 50ms at 1ms interval"
    assert OUTSIDE_DISPATCH in shares


def test_start_stop_idempotent_and_restart_accumulates():
    sim = Simulator(seed=3)
    profiler = SamplingProfiler(sim, interval=0.001)
    assert not profiler.running
    assert profiler.start() is profiler
    assert profiler.start() is profiler  # second start: no-op
    assert profiler.running
    _spin(0.03)
    profiler.stop()
    profiler.stop()  # second stop: no-op
    assert not profiler.running
    first = profiler.snapshot()["samples"]
    assert first > 0

    profiler.start()
    _spin(0.03)
    profiler.stop()
    second = profiler.snapshot()["samples"]
    assert second > first  # restart accumulates, not resets
    assert profiler.snapshot()["active_s"] >= 0.06 * 0.5


def test_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        SamplingProfiler(Simulator(), interval=0.0)


def test_tracemalloc_buckets_allocations_per_label():
    sim = Simulator(seed=4)
    sink = []

    def allocate():
        sink.append(bytearray(512 * 1024))

    sim.schedule(1.0, allocate, label="alloc-heavy")
    sim.schedule(2.0, lambda: None, label="idle")
    profiler = SamplingProfiler(sim, interval=0.05, memory=True).start()
    sim.run()
    profiler.stop()

    snap = profiler.snapshot()
    heavy = snap["labels"]["alloc-heavy"]
    assert heavy["alloc_bytes"] >= 512 * 1024
    assert heavy["alloc_events"] == 1
    idle = snap["labels"]["idle"]
    assert idle["alloc_events"] == 1
    assert idle["alloc_bytes"] < heavy["alloc_bytes"]
    # Whole-run accounting captured at stop.
    assert snap["mem"]["traced_bytes"] >= 0
    assert snap["mem"]["traced_peak_bytes"] >= snap["mem"]["traced_bytes"]
    assert snap["alloc_top"], "memory mode must record top allocation sites"
    site, size = snap["alloc_top"][0]
    assert isinstance(site, str) and ":" in site and size > 0
    # Hooks are removed at stop: further dispatches are not accounted.
    sim.schedule(1.0, allocate, label="late")
    sim.run()
    assert "late" not in profiler.snapshot()["labels"]


def test_suppressed_events_do_not_corrupt_memory_accounting():
    sim = Simulator(seed=5)
    sim.dispatch.on_pre_dispatch(
        lambda event: event.cancel() if event.label == "dropped" else None
    )
    sink = []
    sim.schedule(1.0, lambda: None, label="dropped")
    sim.schedule(2.0, lambda: sink.append(bytearray(256 * 1024)), label="kept")
    profiler = SamplingProfiler(sim, interval=0.05, memory=True).start()
    sim.run()
    profiler.stop()
    snap = profiler.snapshot()
    # The suppressed event ran pre- but not post-dispatch; its stale stack
    # frame must not steal or distort the kept event's delta.
    assert "dropped" not in snap["labels"] or snap["labels"]["dropped"]["alloc_events"] == 0
    assert snap["labels"]["kept"]["alloc_events"] == 1
    assert snap["labels"]["kept"]["alloc_bytes"] >= 256 * 1024


def test_snapshot_schema_and_share_normalization():
    _, profiler = _run_hot_cold(hot_s=0.1, cold_s=0.05)
    snap = profiler.snapshot(top_frames=3)
    assert snap["schema"] == PROFILE_SCHEMA
    assert snap["interval_s"] == 0.001
    assert snap["memory"] is False
    assert snap["samples"] == sum(row["samples"] for row in snap["labels"].values())
    assert abs(sum(row["cpu_share"] for row in snap["labels"].values()) - 1.0) < 1e-9
    for row in snap["labels"].values():
        assert len(row["top_frames"]) <= 3
        for frame, count in row["top_frames"]:
            assert isinstance(frame, str) and count > 0
    assert snap["mem"]["rss_points"] >= 2  # at least the start/stop points
    assert snap["mem"]["allocated_blocks"] > 0
    assert snap["sampler_s"] < snap["active_s"]


def test_publish_exports_profile_and_mem_gauges():
    sim, profiler = _run_hot_cold(hot_s=0.1, cold_s=0.02)
    profiler.publish(sim.metrics)
    gauges = sim.metrics.snapshot()["gauges"]
    assert gauges["profile.samples"] == profiler.snapshot()["samples"]
    assert gauges["profile.interval_s"] == 0.001
    assert gauges["profile.cpu_share.hot"] > 0.0
    assert gauges["mem.allocated_blocks"] > 0
    if read_rss_bytes() is not None:
        assert gauges["mem.rss_bytes"] > 0


def test_collapsed_stack_format(tmp_path):
    _, profiler = _run_hot_cold(hot_s=0.1, cold_s=0.02)
    lines = profiler.collapsed_stacks()
    assert lines
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert int(count) > 0
        frames = stack.split(";")
        assert len(frames) >= 2  # label root + at least one real frame
    # The hottest line belongs to the dominant label and is label-rooted.
    assert lines[0].startswith("hot;")
    path = tmp_path / "profile.collapsed"
    profiler.write_collapsed(str(path))
    assert path.read_text().splitlines() == lines


def test_perfetto_export_grows_profiler_track():
    sim, profiler = _run_hot_cold(hot_s=0.1, cold_s=0.02)
    trace = to_chrome_trace(sim, profiler=profiler)
    prof = [e for e in trace["traceEvents"] if e.get("pid") == 3]
    assert prof, "profiler track missing from Perfetto export"
    slices = [e for e in prof if e.get("ph") == "X"]
    assert any(e["name"] == "hot" for e in slices)
    for e in slices:
        assert e["dur"] > 0
        assert e["args"]["samples"] > 0
        assert 0.0 <= e["args"]["cpu_share"] <= 1.0
    counters = [e for e in prof if e.get("ph") == "C"]
    if profiler.rss_series():
        assert counters and all(e["args"]["bytes"] > 0 for e in counters)
    # Without a profiler the track is absent entirely.
    bare = to_chrome_trace(sim)
    assert not [e for e in bare["traceEvents"] if e.get("pid") == 3]


def _digest_scenario(monkeypatch, tie_shuffle, profile: bool) -> str:
    """Compact spawn/fund/cross-send run; returns the end-state digest."""
    if tie_shuffle is None:
        monkeypatch.delenv("REPRO_TIE_SHUFFLE", raising=False)
    else:
        monkeypatch.setenv("REPRO_TIE_SHUFFLE", str(tie_shuffle))
    system = HierarchicalSystem(
        seed=11, root_validators=3, root_block_time=0.5,
        checkpoint_period=4, wallet_funds={"alice": 10_000},
    ).start()
    if profile:
        system.enable_telemetry(profile=True, profile_interval=0.001,
                                profile_memory=True)
        assert system.profiler is not None and system.profiler.running
    subnet = system.spawn_subnet(
        SubnetConfig(name="s0", validators=3, block_time=0.25, checkpoint_period=4)
    )
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 2_000)
    assert system.wait_for(
        lambda: system.balance(subnet, alice.address) >= 2_000, timeout=60.0
    )
    bob = system.create_wallet("bob")
    system.cross_send(alice, subnet, ROOTNET, bob.address, 300)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, bob.address) == 300, timeout=120.0
    )
    system.run_until(25.0)
    if profile:
        system.profiler.stop()
    return system.end_state_digest()


def test_profiling_is_digest_neutral_across_tie_orders(monkeypatch):
    """enable_telemetry(profile=True) must not move the end-state digest —
    neither under FIFO tie order nor under shuffled schedules."""
    digests = set()
    for tie_shuffle in (None, 1, 2):
        digests.add(_digest_scenario(monkeypatch, tie_shuffle, profile=False))
        digests.add(_digest_scenario(monkeypatch, tie_shuffle, profile=True))
    assert len(digests) == 1, digests

"""HealthProbe: periodic per-subnet vitals on the metrics time series."""

import pytest

from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.telemetry.health import FIELDS, HealthProbe


@pytest.fixture(scope="module")
def probed_system():
    system = HierarchicalSystem(seed=23)
    system.start()
    system.enable_telemetry(health_interval=1.0)
    system.spawn_subnet(SubnetConfig(name="fast", validators=3, block_time=0.5))
    system.run_for(15)
    return system


def test_probe_samples_every_subnet(probed_system):
    latest = probed_system.health_probe.latest
    assert set(latest) == {"/root", "/root/fast"}
    for sample in latest.values():
        for field in FIELDS:
            assert field in sample


def test_probe_records_time_series(probed_system):
    series = probed_system.sim.metrics.series
    heights = series["health./root/fast.height"]
    assert len(heights.points) >= 10  # one per second of simulated time
    times = heights.times()
    assert times == sorted(times)
    # Chains advance: height samples are non-decreasing and end positive.
    values = [v for _, v in heights.points]
    assert values == sorted(values)
    assert values[-1] > 0


def test_checkpoint_lag_semantics(probed_system):
    latest = probed_system.health_probe.latest
    assert latest["/root"]["checkpoint_lag"] is None  # root anchors to nothing
    lag = latest["/root/fast"]["checkpoint_lag"]
    assert isinstance(lag, int) and lag >= 0
    assert "health./root.checkpoint_lag" not in probed_system.sim.metrics.series


def test_probe_stop_halts_sampling(probed_system):
    probe = probed_system.health_probe
    probe.stop()
    before = len(probed_system.sim.metrics.series["health./root.height"].points)
    probed_system.run_for(5)
    after = len(probed_system.sim.metrics.series["health./root.height"].points)
    assert after == before
    probe.start()  # re-arm for any later test using the fixture


def test_standalone_probe_without_installing_tracer():
    system = HierarchicalSystem(seed=29)
    system.start()
    probe = HealthProbe(system, interval=0.5).start()
    system.run_for(4)
    assert probe.latest["/root"]["height"] > 0
    assert system.sim.span_tracer is None

"""End-to-end atomic execution across sibling subnets (§IV-D, Fig. 5)."""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SCA_ADDRESS, SubnetConfig
from repro.hierarchy.atomic import AtomicExecutionClient, AtomicParty, asset_owner


def build_system(seed=11):
    system = HierarchicalSystem(
        seed=seed,
        root_validators=3,
        root_block_time=0.5,
        checkpoint_period=6,
        wallet_funds={"alice": 1_000_000, "bob": 1_000_000},
    ).start()
    for name in ("x", "y"):
        system.spawn_subnet(
            SubnetConfig(name=name, validators=3, engine="poa", block_time=0.25,
                         checkpoint_period=6)
        )
    return system


@pytest.fixture(scope="module")
def swap_setup():
    system = build_system()
    alice, bob = system.wallets["alice"], system.wallets["bob"]
    sub_x, sub_y = ROOTNET.child("x"), ROOTNET.child("y")
    # Parties need gas-free presence only; assets are SCA records.
    for wallet, subnet, asset in ((alice, sub_x, "gem"), (bob, sub_y, "coin")):
        wallet.send(
            system.node(subnet), SCA_ADDRESS,
            method="create_asset", params={"name": asset},
        )
    system.wait_for(
        lambda: asset_owner(system, sub_x, "gem") == alice.address.raw
        and asset_owner(system, sub_y, "coin") == bob.address.raw,
        timeout=20.0,
    )
    return system, alice, bob, sub_x, sub_y


def test_happy_path_swap_commits(swap_setup):
    system, alice, bob, sub_x, sub_y = swap_setup
    client = AtomicExecutionClient(
        system,
        exec_id="swap-happy",
        parties=[
            AtomicParty(wallet=alice, subnet=sub_x, assets=("gem",)),
            AtomicParty(wallet=bob, subnet=sub_y, assets=("coin",)),
        ],
    )
    assert client.lca == ROOTNET  # closest common parent coordinates
    status = client.run_to_completion(timeout=240.0)
    assert status == "committed"
    # Atomicity: both sides applied the swap.
    assert asset_owner(system, sub_x, "gem") == bob.address.raw
    assert asset_owner(system, sub_y, "coin") == alice.address.raw
    # Locks released.
    for subnet, asset in ((sub_x, "gem"), (sub_y, "coin")):
        record = system.sca_state(subnet, f"asset/{asset}")
        assert record["locked_by"] is None


def test_abort_reverts_everywhere(swap_setup):
    system, alice, bob, sub_x, sub_y = swap_setup
    for wallet, subnet, asset in ((alice, sub_x, "gem2"), (bob, sub_y, "coin2")):
        wallet.send(system.node(subnet), SCA_ADDRESS,
                    method="create_asset", params={"name": asset})
    system.run_for(3.0)
    client = AtomicExecutionClient(
        system,
        exec_id="swap-abort",
        parties=[
            AtomicParty(wallet=alice, subnet=sub_x, assets=("gem2",)),
            AtomicParty(wallet=bob, subnet=sub_y, assets=("coin2",)),
        ],
    )
    assert client.initialize(timeout=60.0)
    # Bob walks away and aborts instead of submitting.
    client.abort(party_index=1)
    assert system.wait_for(lambda: client.status_at_lca() == "aborted", timeout=30.0)
    assert client.wait_terminated(timeout=120.0)
    # Inputs unlocked, ownership unchanged — full revert.
    assert asset_owner(system, sub_x, "gem2") == alice.address.raw
    assert asset_owner(system, sub_y, "coin2") == bob.address.raw
    for subnet, asset in ((sub_x, "gem2"), (sub_y, "coin2")):
        assert system.sca_state(subnet, f"asset/{asset}")["locked_by"] is None


def test_mismatching_outputs_abort(swap_setup):
    system, alice, bob, sub_x, sub_y = swap_setup
    for wallet, subnet, asset in ((alice, sub_x, "gem3"), (bob, sub_y, "coin3")):
        wallet.send(system.node(subnet), SCA_ADDRESS,
                    method="create_asset", params={"name": asset})
    system.run_for(3.0)
    client = AtomicExecutionClient(
        system,
        exec_id="swap-mismatch",
        parties=[
            AtomicParty(wallet=alice, subnet=sub_x, assets=("gem3",)),
            AtomicParty(wallet=bob, subnet=sub_y, assets=("coin3",)),
        ],
    )
    assert client.initialize(timeout=60.0)
    client.execute_offchain()
    # Bob submits a self-serving output: everything becomes his.
    dishonest = {"owners": {"gem3": bob.address.raw, "coin3": bob.address.raw}}
    client.submit_outputs(dissenting_outputs={1: dishonest})
    assert system.wait_for(lambda: client.status_at_lca() == "aborted", timeout=30.0)
    assert client.wait_terminated(timeout=120.0)
    # Unforgeability: the dishonest output never applied anywhere.
    assert asset_owner(system, sub_x, "gem3") == alice.address.raw
    assert asset_owner(system, sub_y, "coin3") == bob.address.raw

"""Integration: the §II firewall property under an actual subnet compromise."""

import pytest

from repro.crypto.keys import KeyPair
from repro.hierarchy import (
    ROOTNET,
    CompromisedSubnet,
    HierarchicalSystem,
    SubnetConfig,
    audit_system,
)


def build_system(seed=31):
    system = HierarchicalSystem(
        seed=seed,
        root_validators=3,
        root_block_time=0.5,
        checkpoint_period=5,
        wallet_funds={"alice": 1_000_000},
    ).start()
    system.spawn_subnet(
        SubnetConfig(name="victim", validators=3, block_time=0.25, checkpoint_period=5)
    )
    return system


def test_forged_extraction_bounded_by_circulating_supply():
    system = build_system()
    sub = ROOTNET.child("victim")
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 10_000)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 10_000, timeout=30.0)
    circulating_before = system.child_record(ROOTNET, sub)["circulating"]

    attacker = KeyPair("attacker").address
    adversary = CompromisedSubnet(system, sub)
    # The adversary claims 100x the genuine injections.
    adversary.forge_extraction(attacker, value=circulating_before * 100)
    system.run_for(60.0)

    extracted = system.balance(ROOTNET, attacker)
    # Firewall: nothing beyond the circulating supply ever leaves.
    assert extracted <= circulating_before
    audit = audit_system(system)
    assert audit.ok, audit.violations


def test_forged_extraction_gets_at_most_supply_with_split_messages():
    system = build_system(seed=37)
    sub = ROOTNET.child("victim")
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 5_000)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 5_000, timeout=30.0)
    supply = system.child_record(ROOTNET, sub)["circulating"]

    attacker = KeyPair("attacker2").address
    adversary = CompromisedSubnet(system, sub)
    # Splitting the claim into many messages: everything under the supply
    # drains, the remainder is refused.
    adversary.forge_extraction(attacker, value=supply * 3, count=6)
    system.run_for(60.0)
    extracted = system.balance(ROOTNET, attacker)
    assert extracted <= supply
    # Refusals were recorded by the firewall.
    refused = system.sim.metrics.counters.get("crossmsg./root.bottomup_ok")
    audit = audit_system(system)
    assert audit.ok, audit.violations


def test_supply_monitor_flags_forged_extraction_with_postmortem():
    """E6's attack with live monitors: the supply auditor fires as the
    forged release hits the parent, and the flight recorder dumps a
    renderable postmortem bundle."""
    system = build_system()
    system.enable_telemetry(monitors=True)
    sub = ROOTNET.child("victim")
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 10_000)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 10_000, timeout=30.0)
    circulating = system.child_record(ROOTNET, sub)["circulating"]

    attacker = KeyPair("attacker-mon").address
    CompromisedSubnet(system, sub).forge_extraction(attacker, value=circulating * 100)
    system.run_for(60.0)

    monitor = system.invariant_monitor
    supply_violations = monitor.violations_for("supply")
    assert supply_violations, "live supply auditor missed the forged extraction"
    assert any("circulating supply" in v.description for v in supply_violations)
    assert monitor.summary()["by_auditor"]["supply"] >= 1
    # The firewall still held — books are sound even though the alarm rang.
    assert system.balance(ROOTNET, attacker) <= circulating
    assert audit_system(system).ok

    # The violation produced a postmortem bundle that renders.
    from repro.telemetry.postmortem import render

    bundles = system.flight_recorder.bundles
    assert bundles, "violation should have dumped a bundle"
    text = render(bundles[0])
    assert "postmortem: reason=invariant-violation" in text
    assert "circulating supply" in text
    assert "/root/victim" in text


def test_honest_users_unaffected_in_other_subnets():
    system = HierarchicalSystem(
        seed=41, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        wallet_funds={"alice": 1_000_000, "bob": 1_000_000},
    ).start()
    victim = system.spawn_subnet(
        SubnetConfig(name="victim", validators=3, block_time=0.25, checkpoint_period=5)
    )
    healthy = system.spawn_subnet(
        SubnetConfig(name="healthy", validators=3, block_time=0.25, checkpoint_period=5)
    )
    alice, bob = system.wallets["alice"], system.wallets["bob"]
    system.fund_subnet(alice, victim, alice.address, 2_000)
    system.fund_subnet(bob, healthy, bob.address, 50_000)
    assert system.wait_for(
        lambda: system.balance(healthy, bob.address) >= 50_000, timeout=30.0
    )

    attacker = KeyPair("attacker3").address
    CompromisedSubnet(system, victim).forge_extraction(attacker, value=10**9)
    system.run_for(40.0)

    # The healthy subnet's books and traffic are untouched.
    assert system.child_record(ROOTNET, healthy)["circulating"] >= 50_000
    carol = system.create_wallet("carol-fw")
    system.cross_send(bob, healthy, ROOTNET, carol.address, 1_234)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, carol.address) == 1_234, timeout=90.0
    )
    # Attack impact bounded by the victim's circulating supply.
    assert system.balance(ROOTNET, attacker) <= 2_000

"""Integration: deep hierarchies and path messages (§IV-A)."""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig, audit_system


@pytest.fixture(scope="module")
def deep_system():
    """/root → /root/a → /root/a/b, plus a sibling /root/c."""
    system = HierarchicalSystem(
        seed=23,
        root_validators=3,
        root_block_time=0.5,
        checkpoint_period=5,
        wallet_funds={"alice": 2_000_000, "bob": 2_000_000},
    ).start()
    system.spawn_subnet(
        SubnetConfig(name="a", validators=3, block_time=0.25, checkpoint_period=5)
    )
    system.spawn_subnet(
        SubnetConfig(
            name="b", parent=ROOTNET.child("a"), validators=3,
            block_time=0.25, checkpoint_period=5,
        )
    )
    system.spawn_subnet(
        SubnetConfig(name="c", validators=3, block_time=0.25, checkpoint_period=5)
    )
    return system


def test_grandchild_subnet_exists_and_runs(deep_system):
    grandchild = ROOTNET.child("a").child("b")
    assert grandchild in deep_system.nodes_by_subnet
    height = deep_system.node(grandchild).head().height
    deep_system.run_for(3.0)
    assert deep_system.node(grandchild).head().height > height


def test_multihop_topdown_fund(deep_system):
    """Funds injected at the root traverse two top-down hops."""
    system = deep_system
    alice = system.wallets["alice"]
    grandchild = ROOTNET.child("a").child("b")
    system.fund_subnet(system.wallets["alice"], ROOTNET.child("a"), alice.address, 200_000)
    assert system.wait_for(
        lambda: system.balance(ROOTNET.child("a"), alice.address) >= 200_000,
        timeout=60.0,
    )
    # From /root/a, fund the grandchild.
    system.fund_subnet(alice, grandchild, alice.address, 80_000)
    assert system.wait_for(
        lambda: system.balance(grandchild, alice.address) >= 80_000, timeout=60.0
    )
    # Circulating supplies recorded level by level.
    assert system.child_record(ROOTNET, "/root/a")["circulating"] >= 200_000
    assert system.child_record(ROOTNET.child("a"), "/root/a/b")["circulating"] >= 80_000


def test_multihop_bottomup_release(deep_system):
    """Value climbs two levels through two checkpoint relays."""
    system = deep_system
    alice = system.wallets["alice"]
    carol = system.create_wallet("carol-deep")
    grandchild = ROOTNET.child("a").child("b")
    system.cross_send(alice, grandchild, ROOTNET, carol.address, 5_000)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, carol.address) == 5_000, timeout=180.0
    ), "two-hop bottom-up transfer never arrived"


def test_path_message_between_siblings(deep_system):
    """A cross-msg from /root/a/b to /root/c: up two hops, down one (§IV-A)."""
    system = deep_system
    alice = system.wallets["alice"]
    dave = system.create_wallet("dave-path")
    grandchild = ROOTNET.child("a").child("b")
    sibling = ROOTNET.child("c")
    system.cross_send(alice, grandchild, sibling, dave.address, 3_000)
    assert system.wait_for(
        lambda: system.balance(sibling, dave.address) == 3_000, timeout=240.0
    ), "path message never arrived at the sibling subnet"
    # The sibling's circulating supply grew by the path transfer.
    assert system.child_record(ROOTNET, "/root/c")["circulating"] >= 3_000


def test_supply_invariants_after_routing(deep_system):
    deep_system.run_for(10.0)
    audit = audit_system(deep_system)
    assert audit.ok, audit.violations


def test_every_subnet_converges(deep_system):
    deep_system.run_for(5.0)
    for subnet in deep_system.subnets:
        nodes = deep_system.nodes(subnet)
        heights = [n.head().height for n in nodes]
        assert max(heights) - min(heights) <= 2, f"{subnet} diverged"

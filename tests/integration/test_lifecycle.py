"""Integration: subnet lifecycle — leave, inactive, kill, save, claim (§III-C)."""

import pytest

from repro.crypto.merkle import MerkleTree
from repro.hierarchy import (
    ROOTNET,
    HierarchicalSystem,
    SCA_ADDRESS,
    SubnetConfig,
)


def build_system(seed):
    system = HierarchicalSystem(
        seed=seed, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        wallet_funds={"alice": 1_000_000},
    ).start()
    system.spawn_subnet(
        SubnetConfig(
            name="doomed", validators=3, block_time=0.25, checkpoint_period=5,
            stake_per_validator=100, activation_collateral=250,
        )
    )
    return system


def test_leave_drops_to_inactive_and_refuses_crossnet():
    system = build_system(seed=51)
    sub = ROOTNET.child("doomed")
    val_wallets = system.validator_wallets(sub)
    sa_addr = system.sa_address(sub)

    # Two of three validators leave: collateral 300 → 100, below min 100?
    # min_collateral defaults to 100, so dropping to 100 stays active;
    # a third leave pushes to 0 → inactive.
    for wallet in val_wallets[:2]:
        wallet.send(system.node(ROOTNET), sa_addr, method="leave")
    assert system.wait_for(
        lambda: (system.child_record(ROOTNET, sub) or {}).get("collateral") == 100,
        timeout=30.0,
    )
    assert system.child_record(ROOTNET, sub)["status"] == "active"
    val_wallets[2].send(system.node(ROOTNET), sa_addr, method="leave")
    assert system.wait_for(
        lambda: system.child_record(ROOTNET, sub)["status"] == "inactive",
        timeout=30.0,
    )
    # Cross-net traffic toward the inactive subnet is refused.
    alice = system.wallets["alice"]
    balance_before = system.balance(ROOTNET, alice.address)
    system.fund_subnet(alice, sub, alice.address, 1_000)
    system.run_for(5.0)
    assert system.child_record(ROOTNET, sub)["circulating"] == 0
    # Alice keeps her funds (the fund call aborted).
    assert system.balance(ROOTNET, alice.address) == balance_before


def test_leaver_gets_stake_back():
    system = build_system(seed=53)
    sub = ROOTNET.child("doomed")
    wallet = system.validator_wallets(sub)[0]
    before = system.balance(ROOTNET, wallet.address)
    wallet.send(system.node(ROOTNET), system.sa_address(sub), method="leave")
    assert system.wait_for(
        lambda: system.balance(ROOTNET, wallet.address) == before + 100, timeout=30.0
    )


def test_kill_and_claim_saved_funds():
    system = build_system(seed=55)
    sub = ROOTNET.child("doomed")
    alice = system.wallets["alice"]
    sa_addr = system.sa_address(sub)

    # Fund alice inside the subnet.
    system.fund_subnet(alice, sub, alice.address, 7_500)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 7_500, timeout=30.0)

    # Any participant persists the state: a balances merkle snapshot (§III-C).
    subnet_vm = system.node(sub).vm
    balances = sorted(
        (key[len("balance/"):], subnet_vm.state.get(key))
        for key in subnet_vm.state.keys("balance/")
    )
    tree = MerkleTree(balances)
    epoch = system.node(sub).head().height
    alice_index = [i for i, (addr, _) in enumerate(balances) if addr == alice.address.raw][0]
    proof = tree.prove(alice_index)

    val_wallets = system.validator_wallets(sub)
    val_wallets[0].send(
        system.node(ROOTNET), SCA_ADDRESS, method="save_state",
        params={
            "subnet_path": sub.path, "epoch": epoch,
            "state_cid": subnet_vm.state_root(), "balances_root": tree.root,
        },
    )
    # All validators vote to kill.
    for wallet in val_wallets:
        wallet.send(system.node(ROOTNET), sa_addr, method="vote_kill")
    assert system.wait_for(
        lambda: system.child_record(ROOTNET, sub)["status"] == "killed", timeout=30.0
    )

    # Alice proves her balance under the saved snapshot and recovers funds.
    root_balance_before = system.balance(ROOTNET, alice.address)
    alice.send(
        system.node(ROOTNET), SCA_ADDRESS, method="claim_saved_funds",
        params={"subnet_path": sub.path, "balance": 7_500, "proof": proof},
    )
    assert system.wait_for(
        lambda: system.balance(ROOTNET, alice.address) == root_balance_before + 7_500,
        timeout=30.0,
    )
    # Double claims are rejected.
    alice.send(
        system.node(ROOTNET), SCA_ADDRESS, method="claim_saved_funds",
        params={"subnet_path": sub.path, "balance": 7_500, "proof": proof},
    )
    system.run_for(5.0)
    assert system.balance(ROOTNET, alice.address) == root_balance_before + 7_500


def test_claim_with_forged_balance_fails():
    system = build_system(seed=57)
    sub = ROOTNET.child("doomed")
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 2_000)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 2_000, timeout=30.0)

    subnet_vm = system.node(sub).vm
    balances = sorted(
        (key[len("balance/"):], subnet_vm.state.get(key))
        for key in subnet_vm.state.keys("balance/")
    )
    tree = MerkleTree(balances)
    alice_index = [i for i, (addr, _) in enumerate(balances) if addr == alice.address.raw][0]
    proof = tree.prove(alice_index)

    val_wallets = system.validator_wallets(sub)
    val_wallets[0].send(
        system.node(ROOTNET), SCA_ADDRESS, method="save_state",
        params={"subnet_path": sub.path, "epoch": 1,
                "state_cid": subnet_vm.state_root(), "balances_root": tree.root},
    )
    for wallet in val_wallets:
        wallet.send(system.node(ROOTNET), sa_addr := system.sa_address(sub), method="vote_kill")
    assert system.wait_for(
        lambda: system.child_record(ROOTNET, sub)["status"] == "killed", timeout=30.0
    )
    before = system.balance(ROOTNET, alice.address)
    # Claim 10x her genuine balance with the genuine proof: must fail.
    alice.send(
        system.node(ROOTNET), SCA_ADDRESS, method="claim_saved_funds",
        params={"subnet_path": sub.path, "balance": 20_000, "proof": proof},
    )
    system.run_for(5.0)
    assert system.balance(ROOTNET, alice.address) == before

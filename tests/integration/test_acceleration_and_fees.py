"""Integration: accelerated cross-msgs (§IV-A) and miner fee economics (§II)."""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig


def build_accelerated_system(seed=101, period=12):
    system = HierarchicalSystem(
        seed=seed, root_validators=3, root_block_time=0.5,
        checkpoint_period=period, accelerate_root=True,
        wallet_funds={"alice": 10**9},
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="quick", validators=3, block_time=0.25,
                     checkpoint_period=period, accelerate=True)
    )
    return system, subnet


def test_pending_certificate_races_the_checkpoint():
    """Tentative credit shows up well before bottom-up settlement."""
    system, subnet = build_accelerated_system()
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 100_000)
    assert system.wait_for(lambda: system.balance(subnet, alice.address) >= 100_000, timeout=30.0)

    sink = system.create_wallet("accel-sink")
    root_node = system.node(ROOTNET)
    t0 = system.sim.now
    system.cross_send(alice, subnet, ROOTNET, sink.address, 9_000)

    assert system.wait_for(
        lambda: root_node.acceleration.pending_for(sink.address) == 9_000,
        timeout=30.0,
    ), "pending certificate never reached the destination"
    pending_at = system.sim.now - t0

    assert system.wait_for(
        lambda: system.balance(ROOTNET, sink.address) == 9_000, timeout=120.0
    )
    settled_at = system.sim.now - t0
    # The certificate must beat the checkpoint-bound settlement clearly.
    assert pending_at < settled_at / 2
    # After settlement the tentative entry clears.
    system.run_for(2.0)
    assert root_node.acceleration.pending_for(sink.address) == 0
    assert system.sim.metrics.counter("accel.settled").value >= 1


def test_pending_requires_certifier_quorum():
    system, subnet = build_accelerated_system(seed=103)
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 50_000)
    assert system.wait_for(lambda: system.balance(subnet, alice.address) >= 50_000, timeout=30.0)
    sink = system.create_wallet("accel-q")
    root_node = system.node(ROOTNET)
    root_node.acceleration.quorum = 99  # unreachable quorum
    system.cross_send(alice, subnet, ROOTNET, sink.address, 1_000)
    # Check before checkpoint settlement clears the tentative entry.
    system.run_for(2.5)
    assert root_node.acceleration.pending_for(sink.address) == 0
    # Certificates arrived, they just do not meet the bar.
    details = root_node.acceleration.pending_details(sink.address)
    assert details and all(count < 99 for _, count in details)


def test_forged_certificate_rejected():
    from repro.crypto.keys import KeyPair
    from repro.crypto.signature import Signature
    from repro.hierarchy.acceleration import PendingCertificate, acceleration_topic
    from repro.hierarchy.crossmsg import CrossMsg

    system, subnet = build_accelerated_system(seed=105)
    attacker = KeyPair("accel-attacker")
    sink = system.create_wallet("accel-forged")
    message = CrossMsg(
        from_subnet=subnet, from_addr=attacker.address,
        to_subnet=ROOTNET, to_addr=sink.address, value=10**6,
    )
    forged = PendingCertificate(
        message=message, window=0, certifier=attacker.address,
        signature=Signature(signer=attacker.address, public=attacker.public,
                            tag=b"\x00" * 32),
    )
    system.gossip.publish("adversary", acceleration_topic(ROOTNET), forged)
    system.run_for(3.0)
    root_node = system.node(ROOTNET)
    assert root_node.acceleration.pending_for(sink.address) == 0
    assert system.sim.metrics.counter("accel.bad_certificates").value >= 1


def test_subnet_miners_earn_fees():
    """§II: 'Miners in subnets are rewarded with fees for the transactions
    executed in the subnet.'"""
    system = HierarchicalSystem(
        seed=107, root_validators=3, root_block_time=0.5, checkpoint_period=10,
        wallet_funds={"alice": 10**9},
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="feemarket", validators=3, block_time=0.25,
                     checkpoint_period=10, gas_price=1)
    )
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 10**8)
    assert system.wait_for(lambda: system.balance(subnet, alice.address) >= 10**8, timeout=30.0)

    bob = system.create_wallet("fee-bob")
    miner_addresses = [n.miner_address for n in system.nodes(subnet)]
    fees_before = sum(system.balance(subnet, a) for a in miner_addresses)
    for _ in range(10):
        system.transfer(alice, subnet, bob.address, 100)
    system.run_for(10.0)
    fees_after = sum(system.balance(subnet, a) for a in miner_addresses)
    assert system.balance(subnet, bob.address) == 1_000
    paid = fees_after - fees_before
    assert paid > 0, "miners earned no fees"
    # Fees equal gas used x price, deducted from the sender.
    alice_balance = system.balance(subnet, alice.address)
    assert alice_balance == 10**8 - 1_000 - paid


def test_zero_gas_price_charges_nothing():
    system = HierarchicalSystem(
        seed=109, root_validators=3, root_block_time=0.5, checkpoint_period=10,
        wallet_funds={"alice": 10**6},
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="freefees", validators=3, block_time=0.25,
                     checkpoint_period=10, gas_price=0)
    )
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 10_000)
    assert system.wait_for(lambda: system.balance(subnet, alice.address) >= 10_000, timeout=30.0)
    bob = system.create_wallet("free-bob")
    system.transfer(alice, subnet, bob.address, 100)
    system.wait_for(lambda: system.balance(subnet, bob.address) == 100, timeout=15.0)
    assert system.balance(subnet, alice.address) == 10_000 - 100

"""Failure injection: partitions, message loss, and byzantine checkpointing
behaviours, asserting the system degrades and recovers as designed."""

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig, audit_system


def test_subnet_recovers_from_internal_partition():
    """A minority validator partitioned away rejoins and catches up."""
    system = HierarchicalSystem(
        seed=81, root_validators=3, root_block_time=0.5, checkpoint_period=5,
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="part", validators=3, block_time=0.25, checkpoint_period=5)
    )
    system.run_for(2.0)
    transport = system.stack.transport
    isolated = system.nodes(sub)[2]
    handle = transport.partition(isolated.node_id)
    system.run_for(5.0)
    majority_height = system.node(sub).head().height
    lagging_height = isolated.head().height
    assert majority_height > lagging_height  # majority kept going
    transport.heal(handle)
    system.run_for(10.0)
    # Lazy gossip (IHAVE/IWANT) heals the gap; the node catches up.
    assert isolated.head().height >= system.node(sub).head().height - 2


def test_crossnet_traffic_survives_lossy_network():
    system = HierarchicalSystem(
        seed=83, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        loss_rate=0.10, wallet_funds={"alice": 10**6},
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="lossy", validators=3, block_time=0.25, checkpoint_period=5)
    )
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 50_000)
    assert system.wait_for(
        lambda: system.balance(sub, alice.address) >= 50_000, timeout=90.0
    )
    sink = system.create_wallet("lossy-sink")
    system.cross_send(alice, sub, ROOTNET, sink.address, 5_000)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, sink.address) == 5_000, timeout=240.0
    )
    assert audit_system(system).ok


def test_checkpointing_survives_parent_partition():
    """Cut the subnet off from the parent's gossip; checkpoints resume
    after healing (the fallback submitter retries)."""
    system = HierarchicalSystem(
        seed=85, root_validators=3, root_block_time=0.5, checkpoint_period=4,
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="cut", validators=3, block_time=0.25, checkpoint_period=4)
    )
    system.run_for(5.0)
    window_before = system.node(ROOTNET).vm.state.get(
        f"actor/{system.sa_address(sub).raw}/last_ckpt_window", -1
    )
    transport = system.stack.transport
    subnet_ids = {n.node_id for n in system.nodes(sub)}
    handle = transport.partition(subnet_ids)
    system.run_for(10.0)
    transport.heal(handle)
    system.run_for(30.0)
    window_after = system.node(ROOTNET).vm.state.get(
        f"actor/{system.sa_address(sub).raw}/last_ckpt_window", -1
    )
    assert window_after > window_before, "checkpointing never recovered"


def test_withheld_checkpoint_signatures_respect_policy():
    """With threshold 2-of-3 and one signature withholder, checkpoints
    still commit; with two withholders they cannot."""
    working = HierarchicalSystem(
        seed=87, root_validators=3, root_block_time=0.5, checkpoint_period=4,
    ).start()
    sub_ok = working.spawn_subnet(
        SubnetConfig(
            name="onesilent", validators=3, block_time=0.25, checkpoint_period=4,
            byzantine={0: {"withhold_checkpoint_sig"}},
        )
    )
    assert working.wait_for(
        lambda: working.child_record(ROOTNET, sub_ok)["last_ckpt_cid"] != "00" * 32,
        timeout=60.0,
    )

    broken = HierarchicalSystem(
        seed=89, root_validators=3, root_block_time=0.5, checkpoint_period=4,
    ).start()
    sub_bad = broken.spawn_subnet(
        SubnetConfig(
            name="twosilent", validators=3, block_time=0.25, checkpoint_period=4,
            byzantine={0: {"withhold_checkpoint_sig"}, 1: {"withhold_checkpoint_sig"}},
        )
    )
    broken.run_for(30.0)
    assert broken.child_record(ROOTNET, sub_bad)["last_ckpt_cid"] == "00" * 32


def test_partition_with_monitors_keeps_supply_invariants():
    """The internal-partition scenario with live monitors on: whatever the
    engines do while the network is split, the supply and checkpoint-chain
    auditors stay silent and a full audit passes after healing."""
    system = HierarchicalSystem(
        seed=81, root_validators=3, root_block_time=0.5, checkpoint_period=5,
    ).start()
    system.enable_telemetry(monitors=True)
    sub = system.spawn_subnet(
        SubnetConfig(name="part", validators=3, block_time=0.25, checkpoint_period=5)
    )
    system.run_for(2.0)
    transport = system.stack.transport
    isolated = system.nodes(sub)[2]
    handle = transport.partition(isolated.node_id)
    system.run_for(5.0)
    assert audit_system(system).ok  # books stay sound while split
    transport.heal(handle)
    system.run_for(10.0)
    monitor = system.invariant_monitor
    # Partitions may legitimately trip liveness-adjacent auditors (e.g. a
    # quorum-less engine producing solo blocks), but never value safety.
    assert monitor.violations_for("supply") == []
    assert monitor.violations_for("checkpoint-chain") == []
    assert audit_system(system).ok


def test_audit_holds_mid_reorg_on_pow_subnet():
    """Partition a PoW subnet so both sides mine, heal, and audit while the
    minority reorgs back onto the majority chain; the reorg-depth histogram
    records the abandoned blocks."""
    system = HierarchicalSystem(
        seed=93, root_validators=3, root_block_time=0.5, checkpoint_period=5,
    ).start()
    system.enable_telemetry(monitors=True)
    sub = system.spawn_subnet(
        SubnetConfig(name="fork", validators=3, engine="pow", block_time=0.4,
                     checkpoint_period=5)
    )
    system.run_for(4.0)
    transport = system.stack.transport
    isolated = system.nodes(sub)[2]
    handle = transport.partition(isolated.node_id)
    system.run_for(4.0)
    transport.heal(handle)
    # Audit repeatedly through the healing window — mid-reorg state included.
    for _ in range(8):
        system.run_for(0.5)
        assert audit_system(system).ok
    system.run_for(8.0)
    assert audit_system(system).ok
    monitor = system.invariant_monitor
    assert monitor.violations_for("supply") == []
    assert monitor.violations_for("checkpoint-chain") == []
    reorgs = system.sim.metrics.counters.get(f"chain.{sub.path}.reorgs")
    if reorgs is not None and reorgs.value > 0:
        depth = system.sim.metrics.histograms[f"chain.{sub.path}.reorg.depth"]
        assert depth.count == reorgs.value
        assert depth.summary()["max"] >= 1


def test_deterministic_full_system_run():
    """Identical seeds produce identical traces for a full hierarchy run."""

    def run():
        system = HierarchicalSystem(
            seed=91, root_validators=3, root_block_time=0.5, checkpoint_period=5,
            wallet_funds={"alice": 10**6},
        ).start()
        sub = system.spawn_subnet(
            SubnetConfig(name="det", validators=3, block_time=0.25, checkpoint_period=5)
        )
        alice = system.wallets["alice"]
        system.fund_subnet(alice, sub, alice.address, 10_000)
        system.run_for(20.0)
        return system.sim.trace.digest()

    assert run() == run()

"""Integration: a PoW rootnet (present-day-Filecoin-style anchor, §II)
hosting a BFT subnet — checkpoints and cross-msgs survive probabilistic
finality and occasional reorgs on the parent."""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig, audit_system


@pytest.fixture(scope="module")
def system():
    system = HierarchicalSystem(
        seed=131,
        root_validators=3,
        root_engine="pow",
        root_block_time=0.5,
        checkpoint_period=6,
        wallet_funds={"alice": 10**9},
    ).start()
    system.spawn_subnet(
        SubnetConfig(name="bft", validators=4, engine="tendermint",
                     block_time=0.25, checkpoint_period=6)
    )
    return system


def test_subnet_spawns_on_pow_root(system):
    subnet = ROOTNET.child("bft")
    assert subnet in system.nodes_by_subnet
    system.run_for(5.0)
    assert system.node(subnet).head().height > 5
    assert system.node(ROOTNET).engine.NAME == "pow"


def test_crossnet_roundtrip_over_pow_root(system):
    subnet = ROOTNET.child("bft")
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 100_000)
    assert system.wait_for(
        lambda: system.balance(subnet, alice.address) >= 100_000, timeout=90.0
    )
    sink = system.create_wallet("pow-sink")
    system.cross_send(alice, subnet, ROOTNET, sink.address, 12_345)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, sink.address) == 12_345, timeout=240.0
    )


def test_checkpoints_commit_on_pow_root(system):
    assert system.wait_for(
        lambda: system.child_record(ROOTNET, "/root/bft")["last_ckpt_cid"] != "00" * 32,
        timeout=90.0,
    )


def test_supply_invariants_on_pow_root(system):
    system.run_for(10.0)
    audit = audit_system(system)
    assert audit.ok, audit.violations

"""Deep-gap catch-up: a node down longer than gossip's IHAVE history can
advertise must recover via the direct ``chain:blocks`` RPC sync.

These pin the failure the scenario campaign's short churn windows never
hit — at ``block_time=0.25`` an 8-second outage produces far more message
ids than the lazy-gossip advertisement window carries, so IHAVE/IWANT
repair alone leaves the restarted node orphaned forever.
"""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig, audit_system


def _deep_outage(engine: str, seed: int = 42) -> None:
    system = HierarchicalSystem(seed=seed).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="deep", validators=4, engine=engine, block_time=0.25)
    )
    system.run_for(5.0)
    nodes = system.nodes(sub)
    straggler = nodes[2]
    straggler.stop()
    system.run_for(8.0)  # ~32 blocks of proposals/votes — past the IHAVE window
    straggler.restart()
    system.run_for(8.0)
    heads = [n.head().height for n in nodes]
    assert max(heads) - min(heads) <= 1, f"straggler after restart: {heads}"
    assert system.sim.metrics.counter(f"chain.{sub}.sync_blocks").value > 0
    assert audit_system(system).ok


@pytest.mark.parametrize("engine", ["tendermint", "poa", "pos"])
def test_deep_outage_restart_catches_up(engine):
    _deep_outage(engine)


def test_serve_block_range_refuses_while_stopped():
    """Down (or still-syncing) nodes abstain from serving sync requests."""
    system = HierarchicalSystem(seed=7).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="serve", validators=3, engine="poa", block_time=0.25)
    )
    system.run_for(3.0)
    server, client = system.nodes(sub)[:2]
    server.stop()
    results = []
    system.stack.gossip.rpc.call(
        client.node_id,
        server.node_id,
        "chain:blocks",
        (1, 3),
        lambda r, e: results.append((r, e)),
    )
    system.run_for(1.0)
    assert len(results) == 1 and results[0][0] is None
    assert results[0][1] is not None


def test_serve_block_range_returns_ascending_canonical_blocks():
    system = HierarchicalSystem(seed=9).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="range", validators=3, engine="poa", block_time=0.25)
    )
    system.run_for(4.0)
    server, client = system.nodes(sub)[:2]
    results = []
    system.stack.gossip.rpc.call(
        client.node_id,
        server.node_id,
        "chain:blocks",
        (2, 5),
        lambda r, e: results.append((r, e)),
    )
    system.run_for(1.0)
    blocks, error = results[0]
    assert error is None
    assert [b.height for b in blocks] == [2, 3, 4, 5]
    # Each block links to its predecessor — a chain segment, not a sample.
    for parent, child in zip(blocks, blocks[1:]):
        assert child.header.parent == parent.cid


def test_sync_respects_partitions():
    """A partitioned straggler cannot sync through the cut; it catches up
    only after healing."""
    system = HierarchicalSystem(seed=11).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="cutsync", validators=4, engine="tendermint", block_time=0.25)
    )
    system.run_for(3.0)
    transport = system.stack.transport
    straggler = system.nodes(sub)[2]
    straggler.stop()
    system.run_for(8.0)
    handle = transport.partition(straggler.node_id)
    straggler.restart()
    system.run_for(5.0)
    majority = system.node(sub).head().height
    assert straggler.head().height < majority  # the cut blocked catch-up
    transport.heal(handle)
    system.run_for(8.0)
    heads = [n.head().height for n in system.nodes(sub)]
    assert max(heads) - min(heads) <= 1, f"no catch-up after heal: {heads}"

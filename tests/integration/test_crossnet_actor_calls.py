"""Integration: cross-net messages that invoke actors (§IV-A 'arbitrary
messages'), carrying the original sender's identity into the callee."""

import pytest

from repro.crypto.keys import Address
from repro.hierarchy import ROOTNET, HierarchicalSystem, SCA_ADDRESS, SubnetConfig


@pytest.fixture(scope="module")
def system():
    system = HierarchicalSystem(
        seed=141, root_validators=3, root_block_time=0.5, checkpoint_period=6,
        wallet_funds={"alice": 10**6, "bob": 10**6},
    ).start()
    system.spawn_subnet(
        SubnetConfig(name="caller", validators=3, block_time=0.25, checkpoint_period=6)
    )
    return system


def test_crossnet_asset_creation_attributed_to_sender(system):
    """Alice, operating from the subnet, creates an asset on the ROOTNET's
    SCA via a bottom-up cross-net call — and owns it there."""
    subnet = ROOTNET.child("caller")
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 10_000)
    assert system.wait_for(lambda: system.balance(subnet, alice.address) >= 10_000, timeout=30.0)

    system.cross_send(
        alice, subnet, ROOTNET, SCA_ADDRESS, 0,
        method="create_asset", params={"name": "crossnet-deed"},
    )
    assert system.wait_for(
        lambda: (system.sca_state(ROOTNET, "asset/crossnet-deed") or {}).get("owner")
        is not None,
        timeout=90.0,
    )
    record = system.sca_state(ROOTNET, "asset/crossnet-deed")
    # The caller identity that reached create_asset was alice, not the SCA.
    assert record["owner"] == alice.address.raw


def test_topdown_actor_call_with_value(system):
    """A rootnet user calls the subnet's faucet-like actor cross-net with
    attached value; caller identity and value both arrive."""
    subnet = ROOTNET.child("caller")
    bob = system.wallets["bob"]
    # bob creates an asset in the subnet without ever holding subnet funds.
    system.cross_send(
        bob, ROOTNET, subnet, SCA_ADDRESS, 0,
        method="create_asset", params={"name": "topdown-deed"},
    )
    assert system.wait_for(
        lambda: (system.node(subnet).vm.state.get(
            f"actor/{SCA_ADDRESS.raw}/asset/topdown-deed") or {}).get("owner")
        is not None,
        timeout=60.0,
    )
    record = system.node(subnet).vm.state.get(
        f"actor/{SCA_ADDRESS.raw}/asset/topdown-deed"
    )
    assert record["owner"] == bob.address.raw


def test_failed_crossnet_call_reverts_value(system):
    """A cross-net call that aborts at the destination returns its value."""
    subnet = ROOTNET.child("caller")
    alice = system.wallets["alice"]
    balance_before = system.balance(subnet, alice.address)
    assert balance_before >= 5_000
    # create_asset with a duplicate name aborts (asset exists).
    system.cross_send(
        alice, subnet, ROOTNET, SCA_ADDRESS, 3_000,
        method="create_asset", params={"name": "crossnet-deed"},
    )
    # Value leaves, delivery fails at the root, the revert brings it back.
    assert system.wait_for(
        lambda: system.balance(subnet, alice.address) == balance_before,
        timeout=180.0,
    ), "revert never restored the sender's balance"

"""Capstone integration: a wide, mixed-engine hierarchy under concurrent
cross-net traffic, audited end to end.

Builds Fig. 1 at its fullest: five subnets across two levels running four
different consensus engines, with simultaneous top-down, bottom-up and
path transfers plus intra-subnet payment load — then checks every supply
invariant and that every chain converged.
"""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig, audit_system
from repro.workloads import PaymentWorkload


@pytest.fixture(scope="module")
def world():
    system = HierarchicalSystem(
        seed=151, root_validators=3, root_block_time=0.5, checkpoint_period=6,
        wallet_funds={"whale": 10**12},
    ).start()
    subnets = {
        "poa": system.spawn_subnet(
            SubnetConfig(name="poa", validators=3, engine="poa",
                         block_time=0.25, checkpoint_period=6)),
        "tm": system.spawn_subnet(
            SubnetConfig(name="tm", validators=4, engine="tendermint",
                         block_time=0.5, checkpoint_period=6)),
        "mir": system.spawn_subnet(
            SubnetConfig(name="mir", validators=4, engine="mir",
                         block_time=0.5, checkpoint_period=6)),
        "pow": system.spawn_subnet(
            SubnetConfig(name="pow", validators=3, engine="pow",
                         block_time=0.4, checkpoint_period=6, finality_depth=3)),
    }
    subnets["deep"] = system.spawn_subnet(
        SubnetConfig(name="deep", parent=subnets["poa"], validators=3,
                     engine="poa", block_time=0.25, checkpoint_period=6)
    )
    return system, subnets


def test_whole_world_runs_and_audits(world):
    system, subnets = world
    whale = system.wallets["whale"]

    # Fund the whale in every subnet (multi-hop for the deep one).
    for subnet in subnets.values():
        system.provision_treasury(subnet, 10**7)
        system.fund_subnet(system.treasury, subnet, whale.address, 10**6)
    assert system.wait_for(
        lambda: all(system.balance(s, whale.address) >= 10**6 for s in subnets.values()),
        timeout=240.0,
    )

    # Concurrent cross-net traffic in every direction.
    sinks = {}
    sinks["up"] = system.create_wallet("stress-up")
    system.cross_send(whale, subnets["tm"], ROOTNET, sinks["up"].address, 11_000)
    sinks["path"] = system.create_wallet("stress-path")
    system.cross_send(whale, subnets["mir"], subnets["pow"], sinks["path"].address, 7_000)
    sinks["deep-path"] = system.create_wallet("stress-deep")
    system.cross_send(whale, subnets["deep"], subnets["tm"], sinks["deep-path"].address, 5_000)
    sinks["down"] = system.create_wallet("stress-down")
    system.cross_send(whale, ROOTNET, subnets["deep"], sinks["down"].address, 0)  # zero-value ping
    system.fund_subnet(system.treasury, subnets["poa"], sinks["down"].address, 3_000)

    # Plus background payment load on two subnets.
    load = [
        PaymentWorkload(system.sim, system.nodes(subnets["poa"]), [whale],
                        rate=10.0, rng_scope="stress-poa").start(),
        PaymentWorkload(system.sim, system.nodes(subnets["mir"]), [whale],
                        rate=10.0, rng_scope="stress-mir").start(),
    ]

    assert system.wait_for(
        lambda: system.balance(ROOTNET, sinks["up"].address) == 11_000, timeout=240.0
    ), "bottom-up transfer lost"
    assert system.wait_for(
        lambda: system.balance(subnets["pow"], sinks["path"].address) == 7_000,
        timeout=400.0,
    ), "sibling path transfer lost"
    assert system.wait_for(
        lambda: system.balance(subnets["tm"], sinks["deep-path"].address) == 5_000,
        timeout=400.0,
    ), "deep path transfer lost"
    assert system.wait_for(
        lambda: system.balance(subnets["poa"], sinks["down"].address) == 3_000,
        timeout=120.0,
    ), "top-down transfer lost"

    system.run_for(10.0)
    for workload in load:
        workload.stop()
    system.run_for(3.0)  # drain in-flight payments

    # Every chain converged across its validators.
    for subnet in list(subnets.values()) + [ROOTNET]:
        nodes = system.nodes(subnet)
        final_lag = 2 + (nodes[0].engine.params.finality_depth
                         if nodes[0].engine.SUPPORTS_FORKS else 0)
        heights = [n.head().height for n in nodes]
        assert max(heights) - min(heights) <= final_lag, f"{subnet} diverged"

    # The payment load actually committed.
    assert all(w.stats.committed > 50 for w in load)

    # And the books balance everywhere.
    audit = audit_system(system)
    assert audit.ok, audit.violations


def test_world_checkpoint_chains_intact(world):
    system, subnets = world
    for subnet in subnets.values():
        parent = subnet.parent()
        record = system.child_record(parent, subnet)
        assert record["last_ckpt_cid"] != "00" * 32, f"{subnet} never checkpointed"

"""Integration: subnet consensus power follows SA stakes (§III-A policies)."""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig


def test_pos_subnet_weights_leaders_by_join_stake():
    system = HierarchicalSystem(
        seed=121, root_validators=3, root_block_time=0.5, checkpoint_period=20,
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="staked", validators=3, engine="pos", block_time=0.25,
                     checkpoint_period=20, stake_per_validator=100)
    )
    # Validator 0 tops up its stake 9x via the SA after activation.
    heavy = system.validator_wallets(subnet)[0]
    system.transfer(system.treasury, ROOTNET, heavy.address, 10_000)
    system.wait_for(lambda: system.balance(ROOTNET, heavy.address) >= 900)
    heavy.send(system.node(ROOTNET), system.sa_address(subnet), method="join", value=900)
    system.run_for(3.0)
    # NOTE: power is sampled at subnet instantiation; this test asserts the
    # instantiation-time weighting instead by spawning a second subnet
    # where stakes differ from the start (join amounts are uniform through
    # spawn_subnet, so we check the recorded powers match SA stakes).
    node = system.node(subnet)
    sa_validators = system.node(ROOTNET).vm.state.get(
        f"actor/{system.sa_address(subnet).raw}/validators"
    )
    assert sa_validators[heavy.address.raw] == 1000
    recorded = {v.address.raw: v.power for v in node.validators}
    # The engine's validator set reflects the stakes at instantiation time.
    for wallet in system.validator_wallets(subnet):
        assert recorded[wallet.address.raw] >= 100


def test_subnet_validator_powers_recorded_from_stakes():
    system = HierarchicalSystem(
        seed=123, root_validators=3, root_block_time=0.5, checkpoint_period=20,
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="flat", validators=4, engine="pos", block_time=0.25,
                     checkpoint_period=20, stake_per_validator=250)
    )
    node = system.node(subnet)
    assert all(v.power == 250 for v in node.validators)
    assert node.validators.total_power == 1000

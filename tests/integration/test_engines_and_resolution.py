"""Integration: per-subnet consensus diversity, resolution pull path,
checkpoint equivocation slashing, and threshold-signed checkpoints."""

import pytest

from repro.hierarchy import (
    ROOTNET,
    HierarchicalSystem,
    SignaturePolicy,
    SubnetConfig,
)


def test_each_subnet_runs_its_own_engine():
    """§I: 'Each subnet can run its own independent consensus algorithm.'"""
    system = HierarchicalSystem(
        seed=61, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        wallet_funds={"alice": 1_000_000},
    ).start()
    tm = system.spawn_subnet(
        SubnetConfig(name="tm", validators=4, engine="tendermint", block_time=0.5,
                     checkpoint_period=5)
    )
    mir = system.spawn_subnet(
        SubnetConfig(name="mir", validators=4, engine="mir", block_time=0.5,
                     checkpoint_period=5)
    )
    system.run_for(15.0)
    assert system.node(tm).engine.NAME == "tendermint"
    assert system.node(mir).engine.NAME == "mir"
    assert system.node(tm).head().height > 5
    # Mir produces ~4x block rate at equal block_time.
    assert system.node(mir).head().height > system.node(tm).head().height

    # Cross-net transfers work regardless of engines on either side.
    alice = system.wallets["alice"]
    system.fund_subnet(alice, tm, alice.address, 10_000)
    assert system.wait_for(lambda: system.balance(tm, alice.address) >= 10_000, timeout=60.0)
    bob = system.create_wallet("bob-x")
    system.cross_send(alice, tm, mir, bob.address, 2_500)
    assert system.wait_for(lambda: system.balance(mir, bob.address) == 2_500, timeout=240.0)


def test_pull_resolution_when_pushes_dropped():
    """§IV-C: peers that missed the push resolve via pull from the source."""
    system = HierarchicalSystem(
        seed=63, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        wallet_funds={"alice": 1_000_000},
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(name="droppy", validators=3, block_time=0.25, checkpoint_period=5)
    )
    # Make every ROOT node discard pushes, forcing the pull path for
    # bottom-up content arriving at the rootnet.
    for node in system.nodes(ROOTNET):
        node.resolution.cache_pushes = False
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 10_000)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 10_000, timeout=30.0)
    carol = system.create_wallet("carol-pull")
    system.cross_send(alice, sub, ROOTNET, carol.address, 4_000)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, carol.address) == 4_000, timeout=120.0
    ), "bottom-up transfer failed despite pull path"
    assert system.sim.metrics.counter("resolution.pull_sent").value > 0
    assert system.sim.metrics.counter("resolution.pull_served").value > 0


def test_equivocating_checkpoint_signer_gets_subnet_slashed():
    """§III-B: conflicting policy-valid checkpoints → fraud proof → slash."""
    system = HierarchicalSystem(
        seed=65, root_validators=3, root_block_time=0.5, checkpoint_period=4,
        wallet_funds={"alice": 1_000_000},
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(
            name="cheater", validators=3, block_time=0.25, checkpoint_period=4,
            policy=SignaturePolicy(kind="single"),
            byzantine={0: {"equivocate_checkpoint"}},
        )
    )
    collateral_before = system.child_record(ROOTNET, sub)["collateral"]
    system.run_for(30.0)
    record = system.child_record(ROOTNET, sub)
    assert record["slashed_total"] > 0, "equivocation was never slashed"
    assert record["collateral"] < collateral_before
    assert system.sim.metrics.counter(f"checkpoint.{sub.path}.fraud_proofs").value >= 1


def test_threshold_signed_checkpoints_commit():
    system = HierarchicalSystem(
        seed=67, root_validators=3, root_block_time=0.5, checkpoint_period=4,
        wallet_funds={"alice": 1_000_000},
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(
            name="tss", validators=4, block_time=0.25, checkpoint_period=4,
            policy=SignaturePolicy(kind="threshold", threshold=3),
        )
    )
    assert system.wait_for(
        lambda: system.child_record(ROOTNET, sub)["last_ckpt_cid"] != "00" * 32,
        timeout=60.0,
    ), "threshold-signed checkpoint never committed"
    # Cross-net still works under the threshold policy.
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 5_000)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 5_000, timeout=30.0)
    dave = system.create_wallet("dave-tss")
    system.cross_send(alice, sub, ROOTNET, dave.address, 1_000)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, dave.address) == 1_000, timeout=120.0
    )


def test_pow_subnet_checkpoints_after_finality():
    system = HierarchicalSystem(
        seed=69, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        wallet_funds={"alice": 1_000_000},
    ).start()
    sub = system.spawn_subnet(
        SubnetConfig(
            name="powsub", validators=3, engine="pow", block_time=0.3,
            checkpoint_period=5, finality_depth=3,
        )
    )
    assert system.wait_for(
        lambda: system.child_record(ROOTNET, sub)["last_ckpt_cid"] != "00" * 32,
        timeout=120.0,
    ), "PoW subnet never checkpointed"
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 5_000)
    assert system.wait_for(lambda: system.balance(sub, alice.address) >= 5_000, timeout=90.0)

"""End-to-end integration: spawn a subnet, fund it, send value back up."""

import pytest

from repro.hierarchy import (
    ROOTNET,
    HierarchicalSystem,
    SubnetConfig,
    audit_system,
)


@pytest.fixture(scope="module")
def system():
    system = HierarchicalSystem(
        seed=7,
        root_validators=3,
        root_block_time=0.5,
        checkpoint_period=6,
        wallet_funds={"alice": 1_000_000, "bob": 1_000_000},
    ).start()
    system.spawn_subnet(
        SubnetConfig(name="fast", validators=3, engine="poa", block_time=0.25,
                     checkpoint_period=6)
    )
    yield system


def test_subnet_spawns_and_produces_blocks(system):
    sub = ROOTNET.child("fast")
    assert sub in system.nodes_by_subnet
    height_before = system.node(sub).head().height
    system.run_for(5.0)
    assert system.node(sub).head().height > height_before


def test_child_record_active_with_collateral(system):
    record = system.child_record(ROOTNET, "/root/fast")
    assert record["status"] == "active"
    assert record["collateral"] == 300  # 3 validators x 100 stake


def test_topdown_fund_arrives(system):
    sub = ROOTNET.child("fast")
    alice = system.wallets["alice"]
    system.fund_subnet(alice, sub, alice.address, 50_000)
    ok = system.wait_for(
        lambda: system.balance(sub, alice.address) >= 50_000, timeout=30.0
    )
    assert ok, "top-down funds never arrived in the subnet"


def test_intra_subnet_payment(system):
    sub = ROOTNET.child("fast")
    alice, bob = system.wallets["alice"], system.wallets["bob"]
    before = system.balance(sub, bob.address)
    system.transfer(alice, sub, bob.address, 1_000)
    ok = system.wait_for(
        lambda: system.balance(sub, bob.address) == before + 1_000, timeout=15.0
    )
    assert ok


def test_bottomup_release_arrives(system):
    sub = ROOTNET.child("fast")
    bob = system.wallets["bob"]
    carol = system.create_wallet("carol")
    system.cross_send(bob, sub, ROOTNET, carol.address, 700)
    ok = system.wait_for(
        lambda: system.balance(ROOTNET, carol.address) == 700, timeout=60.0
    )
    assert ok, "bottom-up release never arrived on the rootnet"


def test_checkpoints_committed_on_parent(system):
    record = system.child_record(ROOTNET, "/root/fast")
    assert record["last_ckpt_cid"] != "00" * 32


def test_supply_invariants_hold(system):
    system.run_for(10.0)
    audit = audit_system(system)
    assert audit.ok, audit.violations


def test_all_subnet_nodes_converge(system):
    sub = ROOTNET.child("fast")
    system.run_for(3.0)
    heights = [node.head().height for node in system.nodes(sub)]
    assert max(heights) - min(heights) <= 2
    cids = {
        node.store.block_at_height(min(heights) - 1).cid
        for node in system.nodes(sub)
    }
    assert len(cids) == 1

"""Unit tests for threshold signatures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.threshold import ThresholdScheme


def test_combine_with_exactly_k_shares():
    scheme = ThresholdScheme("grp", threshold=3, participants=5)
    partials = [
        ThresholdScheme.partial_sign(scheme.share_for(i), "msg") for i in (1, 3, 5)
    ]
    signature = scheme.combine(partials, "msg")
    assert scheme.verify(signature, "msg")


def test_combine_with_more_than_k_shares():
    scheme = ThresholdScheme("grp", threshold=2, participants=4)
    partials = [
        ThresholdScheme.partial_sign(scheme.share_for(i), "msg") for i in (1, 2, 3, 4)
    ]
    assert scheme.verify(scheme.combine(partials, "msg"), "msg")


def test_fewer_than_k_shares_fails():
    scheme = ThresholdScheme("grp", threshold=3, participants=5)
    partials = [
        ThresholdScheme.partial_sign(scheme.share_for(i), "msg") for i in (1, 2)
    ]
    with pytest.raises(ValueError):
        scheme.combine(partials, "msg")


def test_duplicate_shares_do_not_count_twice():
    scheme = ThresholdScheme("grp", threshold=2, participants=3)
    partial = ThresholdScheme.partial_sign(scheme.share_for(1), "msg")
    with pytest.raises(ValueError):
        scheme.combine([partial, partial], "msg")


def test_signature_bound_to_message():
    scheme = ThresholdScheme("grp", threshold=2, participants=3)
    partials = [
        ThresholdScheme.partial_sign(scheme.share_for(i), "msg-a") for i in (1, 2)
    ]
    signature = scheme.combine(partials, "msg-a")
    assert not scheme.verify(signature, "msg-b")


def test_partials_cannot_be_replayed_across_messages():
    scheme = ThresholdScheme("grp", threshold=2, participants=3)
    partials_a = [
        ThresholdScheme.partial_sign(scheme.share_for(i), "msg-a") for i in (1, 2)
    ]
    # Combine claims message b while partials signed message a: the
    # reconstructed secret is wrong, so verification fails.
    signature = scheme.combine(partials_a, "msg-b")
    assert not scheme.verify(signature, "msg-b")


def test_foreign_group_partials_rejected():
    scheme_a = ThresholdScheme("a", threshold=2, participants=3)
    scheme_b = ThresholdScheme("b", threshold=2, participants=3)
    partials = [
        ThresholdScheme.partial_sign(scheme_b.share_for(i), "msg") for i in (1, 2)
    ]
    with pytest.raises(ValueError):
        scheme_a.combine(partials, "msg")


def test_wrong_group_signature_rejected():
    scheme_a = ThresholdScheme("a", threshold=1, participants=1)
    scheme_b = ThresholdScheme("b", threshold=1, participants=1)
    partial = ThresholdScheme.partial_sign(scheme_a.share_for(1), "msg")
    signature = scheme_a.combine([partial], "msg")
    assert not scheme_b.verify(signature, "msg")


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ThresholdScheme("grp", threshold=0, participants=3)
    with pytest.raises(ValueError):
        ThresholdScheme("grp", threshold=4, participants=3)


@given(
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=1000),
)
def test_any_k_subset_reconstructs(k_raw, extra, seed):
    n = min(7, k_raw + extra)
    k = min(k_raw, n)
    scheme = ThresholdScheme("grp", threshold=k, participants=n, seed=seed)
    import random

    rng = random.Random(seed)
    subset = rng.sample(range(1, n + 1), k)
    partials = [
        ThresholdScheme.partial_sign(scheme.share_for(i), ("m", seed)) for i in subset
    ]
    signature = scheme.combine(partials, ("m", seed))
    assert scheme.verify(signature, ("m", seed))

"""Unit tests for keys, signatures and multisignatures."""

from repro.crypto.keys import Address, KeyPair
from repro.crypto.multisig import aggregate, verify_multisig
from repro.crypto.signature import Signature, sign, verify


def test_keypair_is_deterministic():
    assert KeyPair("alice").address == KeyPair("alice").address
    assert KeyPair("alice").address != KeyPair("bob").address


def test_address_forms():
    key_addr = KeyPair("alice").address
    assert key_addr.raw.startswith("f1")
    assert not key_addr.is_system_actor
    actor_addr = Address.actor(64)
    assert actor_addr.raw == "f064"
    assert actor_addr.is_system_actor


def test_sign_and_verify():
    keypair = KeyPair("alice")
    signature = sign(keypair, {"amount": 10})
    assert verify(signature, {"amount": 10})
    assert verify(signature, {"amount": 10}, keypair=keypair)


def test_verify_rejects_different_message():
    keypair = KeyPair("alice")
    signature = sign(keypair, "msg-a")
    assert not verify(signature, "msg-b")


def test_fabricated_tag_fails_verification():
    keypair = KeyPair("alice")
    forged = Signature(signer=keypair.address, public=keypair.public, tag=b"\x00" * 32)
    assert not verify(forged, "anything")


def test_signature_with_mismatched_address_fails():
    alice, bob = KeyPair("alice"), KeyPair("bob")
    signature = sign(alice, "msg")
    tampered = Signature(signer=bob.address, public=alice.public, tag=signature.tag)
    assert not verify(tampered, "msg")


def test_replaying_tag_on_other_message_fails():
    keypair = KeyPair("alice")
    signature = sign(keypair, "original")
    replay = Signature(signer=keypair.address, public=keypair.public, tag=signature.tag)
    assert not verify(replay, "different")
    assert verify(replay, "original")  # same message still fine


def test_aggregate_dedupes_and_sorts():
    keys = [KeyPair(f"k{i}") for i in range(3)]
    signatures = [sign(k, "m") for k in keys] + [sign(keys[0], "m")]
    multisig = aggregate(signatures)
    assert len(multisig) == 3
    assert list(multisig.signers) == sorted(multisig.signers)


def test_aggregate_is_order_independent():
    keys = [KeyPair(f"k{i}") for i in range(4)]
    signatures = [sign(k, "m") for k in keys]
    forward = aggregate(signatures)
    backward = aggregate(reversed(signatures))
    assert forward == backward


def test_multisig_threshold_met():
    keys = [KeyPair(f"k{i}") for i in range(4)]
    authorized = [k.address for k in keys]
    multisig = aggregate(sign(k, "m") for k in keys[:3])
    assert verify_multisig(multisig, "m", authorized, threshold=3)
    assert not verify_multisig(multisig, "m", authorized, threshold=4)


def test_multisig_ignores_unauthorized_signers():
    keys = [KeyPair(f"k{i}") for i in range(3)]
    outsider = KeyPair("outsider")
    authorized = [k.address for k in keys]
    multisig = aggregate([sign(keys[0], "m"), sign(outsider, "m")])
    assert verify_multisig(multisig, "m", authorized, threshold=1)
    assert not verify_multisig(multisig, "m", authorized, threshold=2)


def test_multisig_rejects_wrong_message():
    keys = [KeyPair(f"k{i}") for i in range(2)]
    multisig = aggregate(sign(k, "m") for k in keys)
    assert not verify_multisig(multisig, "other", [k.address for k in keys], threshold=1)


def test_multisig_threshold_must_be_positive():
    import pytest

    with pytest.raises(ValueError):
        verify_multisig(aggregate([]), "m", [], threshold=0)

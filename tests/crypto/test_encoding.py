"""Unit and property tests for canonical encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.encoding import EncodingError, canonical_encode


def test_primitives_encode():
    for value in (None, True, False, 0, -5, 3.14, "text", b"bytes"):
        assert isinstance(canonical_encode(value), bytes)


def test_dict_ordering_is_canonical():
    assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})


def test_set_ordering_is_canonical():
    assert canonical_encode({3, 1, 2}) == canonical_encode({2, 3, 1})


def test_distinct_types_encode_differently():
    assert canonical_encode(1) != canonical_encode("1")
    assert canonical_encode(b"1") != canonical_encode("1")
    assert canonical_encode(True) != canonical_encode(1)
    assert canonical_encode([]) != canonical_encode({})


def test_nested_structures():
    value = {"k": [1, "two", {"inner": b"x"}], "l": (None, True)}
    assert canonical_encode(value) == canonical_encode(value)


def test_object_with_to_canonical():
    class Thing:
        def to_canonical(self):
            return ("thing", 42)

    assert canonical_encode(Thing()) == canonical_encode(Thing())


def test_unknown_type_is_error():
    class Opaque:
        pass

    with pytest.raises(EncodingError):
        canonical_encode(Opaque())


def test_length_prefix_prevents_concatenation_ambiguity():
    assert canonical_encode(["ab", "c"]) != canonical_encode(["a", "bc"])


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(json_like)
def test_encoding_is_deterministic(value):
    assert canonical_encode(value) == canonical_encode(value)


@given(json_like, json_like)
def test_distinct_values_encode_distinctly(a, b):
    if a != b:
        assert canonical_encode(a) != canonical_encode(b)

"""Unit and property tests for merkle trees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleTree


def test_root_depends_on_content():
    assert MerkleTree([1, 2, 3]).root != MerkleTree([1, 2, 4]).root


def test_root_depends_on_order():
    assert MerkleTree([1, 2]).root != MerkleTree([2, 1]).root


def test_single_leaf_tree():
    tree = MerkleTree(["only"])
    proof = tree.prove(0)
    assert tree.verify("only", proof)


def test_empty_tree_has_defined_root():
    assert MerkleTree([]).root == MerkleTree([]).root
    assert len(MerkleTree([])) == 0


def test_proofs_verify_for_all_leaves():
    values = [f"item-{i}" for i in range(7)]  # odd count exercises duplication
    tree = MerkleTree(values)
    for i, value in enumerate(values):
        proof = tree.prove(i)
        assert tree.verify(value, proof)


def test_proof_fails_for_wrong_value():
    tree = MerkleTree(["a", "b", "c", "d"])
    proof = tree.prove(1)
    assert not tree.verify("x", proof)


def test_proof_fails_against_other_tree():
    tree_a = MerkleTree(["a", "b", "c", "d"])
    tree_b = MerkleTree(["a", "b", "c", "e"])
    proof = tree_a.prove(0)
    assert not tree_b.verify("a", proof)


def test_stateless_verification():
    tree = MerkleTree(["a", "b", "c"])
    proof = tree.prove(2)
    assert MerkleTree.verify_against_root("c", proof, tree.root)
    assert not MerkleTree.verify_against_root("c", proof, b"\x00" * 32)


def test_prove_out_of_range():
    tree = MerkleTree(["a"])
    with pytest.raises(IndexError):
        tree.prove(1)
    with pytest.raises(IndexError):
        tree.prove(-1)


def test_root_cid_matches_root():
    tree = MerkleTree([1, 2, 3])
    assert tree.root_cid.digest == tree.root


@given(st.lists(st.integers(), min_size=1, max_size=40), st.data())
def test_every_leaf_provable(values, data):
    tree = MerkleTree(values)
    index = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    proof = tree.prove(index)
    assert tree.verify(values[index], proof)


@given(st.lists(st.integers(), min_size=2, max_size=20))
def test_proof_position_binding(values):
    """A proof for index i does not verify a value from a different index."""
    tree = MerkleTree(values)
    proof = tree.prove(0)
    for other_index in range(1, len(values)):
        if values[other_index] != values[0]:
            assert not tree.verify(values[other_index], proof)

"""Unit tests for CIDs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cid import CID, cid_of


def test_equal_content_equal_cid():
    assert cid_of({"a": 1}) == cid_of({"a": 1})


def test_different_content_different_cid():
    assert cid_of("x") != cid_of("y")


def test_cid_is_hashable_and_usable_as_key():
    mapping = {cid_of(1): "one"}
    assert mapping[cid_of(1)] == "one"


def test_cid_roundtrips_hex():
    cid = cid_of("roundtrip")
    assert CID.from_hex(cid.hex()) == cid
    assert CID.from_hex(str(cid)) == cid


def test_cid_requires_32_bytes():
    with pytest.raises(ValueError):
        CID(b"short")


def test_cid_is_immutable():
    cid = cid_of("x")
    with pytest.raises(AttributeError):
        cid.digest = b"0" * 32


def test_cid_short_form_is_prefix():
    cid = cid_of("abc")
    assert str(cid).startswith(cid.short())


def test_cid_ordering_is_total():
    cids = sorted([cid_of(i) for i in range(10)])
    assert cids == sorted(cids)


def test_cid_embeds_in_canonical_encoding():
    cid = cid_of("inner")
    assert cid_of({"link": cid}) == cid_of({"link": cid})


@given(st.integers() | st.text(max_size=30))
def test_cid_deterministic(value):
    assert cid_of(value) == cid_of(value)

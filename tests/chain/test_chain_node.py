"""Focused unit tests for NodeRuntime's chain behaviour: orphans, reorgs,
commit notifications, mempool hygiene and state-root enforcement."""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import KeyPair
from repro.chain.block import BlockHeader, FullBlock
from repro.chain.genesis import GenesisParams, build_genesis
from repro.runtime.node import NodeRuntime, subnet_topic
from repro.consensus.base import ConsensusParams, Validator, ValidatorSet
from repro.net.gossip import GossipNetwork
from repro.net.topology import Topology, UniformLatency
from repro.net.transport import Transport
from repro.sim.scheduler import Simulator
from repro.vm.message import Message, SignedMessage


def make_node(engine="poa", seed=1, n_validators=1):
    sim = Simulator(seed=seed)
    gossip = GossipNetwork(sim, Transport(sim, Topology(UniformLatency(0.01, 0.005))))
    keys = [KeyPair(f"cn-{i}") for i in range(n_validators)]
    user = KeyPair("cn-user")
    genesis_block, genesis_vm = build_genesis(
        GenesisParams(subnet_id="/root", allocations={user.address: 1_000_000})
    )
    validators = ValidatorSet(
        Validator(node_id=f"cn#{i}", address=keys[i].address, power=1)
        for i in range(n_validators)
    )
    node = NodeRuntime(
        sim=sim, node_id="cn#0", keypair=keys[0], subnet_id="/root",
        genesis_block=genesis_block, genesis_vm=genesis_vm, gossip=gossip,
        validators=validators, consensus_params=ConsensusParams(engine=engine),
    )
    return sim, node, user


def make_child(node, parent_block, tag="a", messages=()):
    """Assemble a valid child block through the node itself."""
    return node.assemble_block(
        height=parent_block.height + 1,
        parent_cid=parent_block.cid,
        consensus_data={"engine": "poa", "slot": parent_block.height + 1, "tag": tag},
    )


def test_orphan_blocks_parked_and_retried():
    sim, node, _ = make_node()
    genesis = node.head()
    block1 = make_child(node, genesis)
    # Build block2 on block1 without giving the node block1 yet.
    node.receive_block(block1, final=True)
    block2 = make_child(node, block1)
    fresh_sim, fresh_node, _ = make_node(seed=2)
    assert not fresh_node.receive_block(block2, final=True)  # orphan: parked
    assert fresh_node.head().height == 0
    assert fresh_node.receive_block(block1, final=True)
    # The orphan was retried automatically once its parent arrived.
    assert fresh_node.head().height == 2


def test_commit_listener_fires_once_per_block_in_order():
    sim, node, _ = make_node()
    seen = []
    node.on_commit(lambda b: seen.append(b.height))
    genesis = node.head()
    block1 = make_child(node, genesis)
    node.receive_block(block1, final=True)
    block2 = make_child(node, block1)
    node.receive_block(block2, final=True)
    node.receive_block(block2, final=True)  # duplicate delivery
    assert seen == [1, 2]


def test_state_root_mismatch_rejected():
    sim, node, user = make_node()
    genesis = node.head()
    good = make_child(node, genesis)
    tampered_header = BlockHeader(
        subnet_id=good.header.subnet_id,
        height=good.header.height,
        parent=good.header.parent,
        state_root=cid_of("wrong state"),
        messages_root=good.header.messages_root,
        timestamp=good.header.timestamp,
        miner=good.header.miner,
        consensus_data=good.header.consensus_data,
    )
    bad = FullBlock(header=tampered_header, messages=good.messages,
                    cross_messages=good.cross_messages)
    assert not node.receive_block(bad, final=True)
    assert sim.metrics.counter("chain./root.state_mismatch").value == 1


def test_submitted_messages_selected_and_cleared():
    sim, node, user = make_node()
    message = Message(from_addr=user.address, to_addr=KeyPair("rcpt").address,
                      value=10, nonce=0)
    signed = SignedMessage.create(message, user)
    assert node.submit_message(signed)
    assert len(node.mempool) == 1
    block = make_child(node, node.head())
    assert len(block.messages) == 1
    node.receive_block(block, final=True)
    assert len(node.mempool) == 0
    assert node.vm.balance_of(KeyPair("rcpt").address) == 10


def test_duplicate_submit_rejected():
    sim, node, user = make_node()
    message = Message(from_addr=user.address, to_addr=user.address, value=0, nonce=0)
    signed = SignedMessage.create(message, user)
    assert node.submit_message(signed)
    assert not node.submit_message(signed)


def test_cross_messages_rejected_on_base_chain():
    from repro.chain.validation import ValidationError

    sim, node, _ = make_node()
    with pytest.raises(ValidationError):
        node.apply_cross_message(node.vm, object(), node.miner_address)


def test_base_node_gossip_topic_naming():
    assert subnet_topic("/root/a") == "subnet:/root/a"


def test_assemble_respects_message_filter():
    sim, node, user = make_node()
    for nonce in range(3):
        message = Message(from_addr=user.address, to_addr=user.address,
                          value=0, nonce=nonce)
        node.submit_message(SignedMessage.create(message, user))
    block = node.assemble_block(
        height=1, parent_cid=node.head().cid,
        consensus_data={"engine": "poa", "slot": 1},
        message_filter=lambda s: False,
    )
    assert block.messages == ()


def test_reorg_counted_and_head_state_switches():
    sim, node, user = make_node(engine="pow")
    genesis = node.head()
    main1 = make_child(node, genesis, tag="main")
    assert node.receive_block(main1, final=False)
    fork1 = make_child(node, genesis, tag="fork")
    fork_child = FullBlock(  # manually extend the fork to outweigh main
        header=BlockHeader(
            subnet_id="/root", height=2, parent=fork1.cid,
            state_root=fork1.header.state_root,  # no messages -> same state?
            messages_root=FullBlock.compute_messages_root((), ()),
            timestamp=sim.now, miner=node.miner_address,
            consensus_data={"engine": "pow", "ticket": 42},
        ),
    )
    assert node.receive_block(fork1, final=False)
    # fork_child's state root must match actual execution; recompute via
    # the node's own assembly instead of guessing.
    node2_head = node.store.get(fork1.cid)
    proper_child = node.assemble_block(
        height=2, parent_cid=fork1.cid,
        consensus_data={"engine": "pow", "ticket": 42},
    )
    assert node.receive_block(proper_child, final=False)
    assert node.head().cid == proper_child.cid
    assert sim.metrics.counter("chain./root.reorgs").value >= 1

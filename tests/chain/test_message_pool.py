"""Unit tests for the mempool."""

import pytest

from repro.crypto.keys import KeyPair
from repro.chain.message_pool import MessagePool
from repro.vm.message import Message, SignedMessage


def signed_payment(sender_seed, nonce, value=1):
    key = KeyPair(sender_seed)
    message = Message(
        from_addr=key.address,
        to_addr=KeyPair("recipient").address,
        value=value,
        nonce=nonce,
    )
    return SignedMessage.create(message, key)


def test_add_and_len():
    pool = MessagePool()
    assert pool.add(signed_payment("a", 0))
    assert len(pool) == 1


def test_duplicate_rejected():
    pool = MessagePool()
    signed = signed_payment("a", 0)
    assert pool.add(signed)
    assert not pool.add(signed)
    assert len(pool) == 1


def test_same_nonce_first_seen_wins():
    pool = MessagePool()
    first = signed_payment("a", 0, value=1)
    second = signed_payment("a", 0, value=2)
    assert pool.add(first)
    assert not pool.add(second)
    assert pool.pending_for(first.message.from_addr) == [first]


def test_capacity_enforced():
    pool = MessagePool(capacity=2)
    assert pool.add(signed_payment("a", 0))
    assert pool.add(signed_payment("a", 1))
    assert not pool.add(signed_payment("a", 2))


def test_bad_signature_rejected():
    from dataclasses import replace

    pool = MessagePool()
    signed = signed_payment("a", 0)
    tampered = SignedMessage(
        message=replace(signed.message, value=99), signature=signed.signature
    )
    assert not pool.add(tampered)


def test_select_respects_nonce_order():
    pool = MessagePool()
    for nonce in (2, 0, 1):
        pool.add(signed_payment("a", nonce))
    selected = pool.select(nonce_of=lambda a: 0)
    assert [s.message.nonce for s in selected] == [0, 1, 2]


def test_select_skips_gapped_nonces():
    pool = MessagePool()
    pool.add(signed_payment("a", 0))
    pool.add(signed_payment("a", 2))  # gap at 1
    selected = pool.select(nonce_of=lambda a: 0)
    assert [s.message.nonce for s in selected] == [0]


def test_select_starts_at_chain_nonce():
    pool = MessagePool()
    for nonce in range(4):
        pool.add(signed_payment("a", nonce))
    selected = pool.select(nonce_of=lambda a: 2)
    assert [s.message.nonce for s in selected] == [2, 3]


def test_select_round_robin_fairness():
    pool = MessagePool()
    for nonce in range(10):
        pool.add(signed_payment("spammy", nonce))
    pool.add(signed_payment("quiet", 0))
    selected = pool.select(nonce_of=lambda a: 0, max_messages=4)
    senders = {s.message.from_addr for s in selected}
    assert len(senders) == 2  # the quiet sender got in


def test_select_cap():
    pool = MessagePool()
    for nonce in range(10):
        pool.add(signed_payment("a", nonce))
    assert len(pool.select(nonce_of=lambda a: 0, max_messages=3)) == 3


def test_remove_included():
    pool = MessagePool()
    messages = [signed_payment("a", n) for n in range(3)]
    for signed in messages:
        pool.add(signed)
    removed = pool.remove_included(messages[:2])
    assert removed == 2
    assert len(pool) == 1


def test_remove_included_ignores_unknown():
    pool = MessagePool()
    assert pool.remove_included([signed_payment("a", 0)]) == 0


def test_drop_stale():
    pool = MessagePool()
    for nonce in range(5):
        pool.add(signed_payment("a", nonce))
    dropped = pool.drop_stale(nonce_of=lambda a: 3)
    assert dropped == 3
    remaining = pool.pending_for(signed_payment("a", 0).message.from_addr)
    assert [s.message.nonce for s in remaining] == [3, 4]


def test_pending_for_unknown_sender_empty():
    pool = MessagePool()
    assert pool.pending_for(KeyPair("ghost").address) == []

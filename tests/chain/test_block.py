"""Unit tests for blocks and validation rules."""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import KeyPair
from repro.chain.block import BlockHeader, FullBlock, ZERO_CID
from repro.chain.validation import ValidationError, validate_block_shape
from repro.vm.message import Message, SignedMessage


def make_header(height=0, parent=ZERO_CID, subnet="/root", timestamp=0.0, miner=None, **extra):
    return BlockHeader(
        subnet_id=subnet,
        height=height,
        parent=parent,
        state_root=cid_of("state"),
        messages_root=FullBlock.compute_messages_root((), ()),
        timestamp=timestamp,
        miner=miner or KeyPair("miner").address,
        consensus_data=extra,
    )


def make_signed(nonce=0, value=1):
    key = KeyPair("sender")
    message = Message(
        from_addr=key.address, to_addr=KeyPair("recipient").address,
        value=value, nonce=nonce,
    )
    return SignedMessage.create(message, key)


def test_header_cid_is_content_addressed():
    assert make_header().cid == make_header().cid
    assert make_header(height=1, parent=cid_of("p")).cid != make_header().cid


def test_genesis_detection():
    assert make_header().is_genesis
    assert not make_header(height=1, parent=cid_of("p")).is_genesis
    assert not make_header(height=0, parent=cid_of("p")).is_genesis


def test_messages_root_commits_to_payload():
    signed = make_signed()
    root_with = FullBlock.compute_messages_root((signed,), ())
    root_without = FullBlock.compute_messages_root((), ())
    assert root_with != root_without


def test_messages_root_matches_detects_tamper():
    signed = make_signed()
    header = make_header()
    block = FullBlock(header=header, messages=(signed,))
    assert not block.messages_root_matches()  # header committed to empty


def test_validate_genesis():
    genesis = FullBlock(header=make_header())
    validate_block_shape(genesis, None, "/root")


def test_validate_genesis_with_parent_rejected():
    genesis = FullBlock(header=make_header())
    with pytest.raises(ValidationError):
        validate_block_shape(genesis, genesis, "/root")


def test_validate_wrong_subnet():
    genesis = FullBlock(header=make_header())
    with pytest.raises(ValidationError, match="subnet"):
        validate_block_shape(genesis, None, "/root/a")


def test_validate_child_block():
    genesis = FullBlock(header=make_header())
    child = FullBlock(header=make_header(height=1, parent=genesis.cid, timestamp=1.0))
    validate_block_shape(child, genesis, "/root")


def test_validate_height_gap_rejected():
    genesis = FullBlock(header=make_header())
    skip = FullBlock(header=make_header(height=2, parent=genesis.cid, timestamp=1.0))
    with pytest.raises(ValidationError, match="height"):
        validate_block_shape(skip, genesis, "/root")


def test_validate_parent_mismatch_rejected():
    genesis = FullBlock(header=make_header())
    child = FullBlock(header=make_header(height=1, parent=cid_of("other"), timestamp=1.0))
    with pytest.raises(ValidationError):
        validate_block_shape(child, genesis, "/root")


def test_validate_timestamp_regression_rejected():
    genesis = FullBlock(header=make_header(timestamp=5.0))
    child = FullBlock(header=make_header(height=1, parent=genesis.cid, timestamp=1.0))
    with pytest.raises(ValidationError, match="timestamp"):
        validate_block_shape(child, genesis, "/root")


def test_validate_missing_parent_rejected():
    child = FullBlock(header=make_header(height=1, parent=cid_of("gone"), timestamp=1.0))
    with pytest.raises(ValidationError, match="parent"):
        validate_block_shape(child, None, "/root")


def test_validate_bad_signature_rejected():
    from dataclasses import replace

    genesis = FullBlock(header=make_header())
    signed = make_signed()
    # Tamper with the inner message after signing.
    tampered = SignedMessage(
        message=replace(signed.message, value=999), signature=signed.signature
    )
    header = BlockHeader(
        subnet_id="/root",
        height=1,
        parent=genesis.cid,
        state_root=cid_of("state"),
        messages_root=FullBlock.compute_messages_root((tampered,), ()),
        timestamp=1.0,
        miner=KeyPair("miner").address,
    )
    block = FullBlock(header=header, messages=(tampered,))
    with pytest.raises(ValidationError, match="signature"):
        validate_block_shape(block, genesis, "/root")


def test_validate_capacity():
    genesis = FullBlock(header=make_header())
    signed = make_signed()
    header = BlockHeader(
        subnet_id="/root", height=1, parent=genesis.cid,
        state_root=cid_of("s"),
        messages_root=FullBlock.compute_messages_root((signed,), ()),
        timestamp=1.0, miner=KeyPair("m").address,
    )
    block = FullBlock(header=header, messages=(signed,))
    with pytest.raises(ValidationError, match="capacity"):
        validate_block_shape(block, genesis, "/root", max_messages=0)

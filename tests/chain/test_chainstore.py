"""Unit tests for the chain store: heads, forks, reorgs."""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import KeyPair
from repro.chain.block import BlockHeader, FullBlock, ZERO_CID
from repro.chain.chainstore import ChainStore


def make_block(height, parent_cid, tag=""):
    header = BlockHeader(
        subnet_id="/root",
        height=height,
        parent=parent_cid,
        state_root=cid_of(("state", height, tag)),
        messages_root=FullBlock.compute_messages_root((), ()),
        timestamp=float(height),
        miner=KeyPair("m").address,
        consensus_data={"tag": tag},
    )
    return FullBlock(header=header)


@pytest.fixture
def store_with_genesis():
    store = ChainStore()
    genesis = make_block(0, ZERO_CID)
    store.add_block(genesis)
    return store, genesis


def test_genesis_becomes_head(store_with_genesis):
    store, genesis = store_with_genesis
    assert store.head.cid == genesis.cid
    assert store.genesis.cid == genesis.cid
    assert store.height == 0


def test_extension_advances_head(store_with_genesis):
    store, genesis = store_with_genesis
    child = make_block(1, genesis.cid)
    assert store.add_block(child)
    assert store.head.cid == child.cid
    assert store.height == 1


def test_duplicate_add_is_noop(store_with_genesis):
    store, genesis = store_with_genesis
    child = make_block(1, genesis.cid)
    store.add_block(child)
    assert not store.add_block(child)
    assert len(store) == 2


def test_orphan_rejected(store_with_genesis):
    store, _ = store_with_genesis
    orphan = make_block(5, cid_of("unknown-parent"))
    with pytest.raises(KeyError):
        store.add_block(orphan)


def test_second_genesis_rejected(store_with_genesis):
    store, _ = store_with_genesis
    with pytest.raises(ValueError):
        store.add_block(make_block(0, ZERO_CID, tag="other"))


def test_fork_does_not_move_head_on_tie(store_with_genesis):
    store, genesis = store_with_genesis
    main = make_block(1, genesis.cid, tag="main")
    fork = make_block(1, genesis.cid, tag="fork")
    store.add_block(main)
    assert not store.add_block(fork)  # same weight: incumbent wins
    assert store.head.cid == main.cid
    assert store.fork_count() == 1


def test_heavier_fork_reorgs(store_with_genesis):
    store, genesis = store_with_genesis
    main1 = make_block(1, genesis.cid, tag="main")
    store.add_block(main1)
    fork1 = make_block(1, genesis.cid, tag="fork")
    fork2 = make_block(2, fork1.cid, tag="fork")
    store.add_block(fork1)
    changed = store.add_block(fork2)
    assert changed
    assert store.head.cid == fork2.cid
    assert store.is_canonical(fork1.cid)
    assert not store.is_canonical(main1.cid)


def test_canonical_chain_order(store_with_genesis):
    store, genesis = store_with_genesis
    parent = genesis
    for height in range(1, 5):
        parent_new = make_block(height, parent.cid)
        store.add_block(parent_new)
        parent = parent_new
    chain = store.canonical_chain()
    assert [b.height for b in chain] == [0, 1, 2, 3, 4]
    assert chain[0].cid == genesis.cid


def test_block_at_height_follows_canonical(store_with_genesis):
    store, genesis = store_with_genesis
    main1 = make_block(1, genesis.cid, tag="main")
    store.add_block(main1)
    fork1 = make_block(1, genesis.cid, tag="fork")
    fork2 = make_block(2, fork1.cid, tag="fork")
    store.add_block(fork1)
    store.add_block(fork2)
    assert store.block_at_height(1).cid == fork1.cid
    assert store.block_at_height(2).cid == fork2.cid
    assert store.block_at_height(99) is None


def test_head_change_listener_fires(store_with_genesis):
    store, genesis = store_with_genesis
    changes = []
    store.on_head_change(lambda old, new: changes.append((old, new)))
    child = make_block(1, genesis.cid)
    store.add_block(child)
    assert changes == [(genesis.cid, child.cid)]


def test_is_extension(store_with_genesis):
    store, genesis = store_with_genesis
    main1 = make_block(1, genesis.cid, tag="main")
    fork1 = make_block(1, genesis.cid, tag="fork")
    store.add_block(main1)
    store.add_block(fork1)
    assert store.is_extension(genesis.cid, main1.cid)
    assert not store.is_extension(main1.cid, fork1.cid)
    assert store.is_extension(None, main1.cid)


def test_ancestors_stops_at_genesis(store_with_genesis):
    store, genesis = store_with_genesis
    child = make_block(1, genesis.cid)
    store.add_block(child)
    ancestry = list(store.ancestors(child.cid))
    assert [b.height for b in ancestry] == [1, 0]


def test_state_snapshots_pruned(store_with_genesis):
    store, genesis = store_with_genesis
    store.prune_depth = 3
    parent = genesis
    store.put_state(genesis.cid, {"h": 0})
    for height in range(1, 10):
        block = make_block(height, parent.cid)
        store.put_state(block.cid, {"h": height})
        store.add_block(block)
        parent = block
    assert store.get_state(genesis.cid) is None  # pruned
    assert store.get_state(parent.cid) == {"h": 9}


def test_weight_of_unknown_is_zero(store_with_genesis):
    store, _ = store_with_genesis
    assert store.weight_of(cid_of("nothing")) == 0

"""VM-level tests for SA signature policies and fraud-proof slashing."""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import Address, KeyPair
from repro.crypto.signature import sign
from repro.crypto.threshold import ThresholdScheme
from repro.hierarchy.checkpoint import Checkpoint, SignedCheckpoint, ZERO_CHECKPOINT
from repro.hierarchy.gateway import SCA_ADDRESS, STATUS_INACTIVE
from repro.hierarchy.subnet_actor import SignaturePolicy, register_threshold_scheme
from repro.hierarchy.subnet_id import SubnetID
from repro.vm.exitcode import ExitCode
from repro.vm.vm import VM

from tests.hierarchy.conftest import call, fund, hierarchy_registry, sca_state

SUB = SubnetID("/root/sub")


def make_parent(policy, n_miners=3):
    vm = VM(subnet_id="/root", registry=hierarchy_registry())
    vm.create_actor(
        SCA_ADDRESS, "sca",
        params={"subnet_path": "/root", "min_collateral": 100, "checkpoint_period": 10},
    )
    sa_addr = Address("f2sub")
    vm.create_actor(
        sa_addr, "subnet-actor",
        params={
            "subnet_path": "/root/sub", "consensus": "poa",
            "checkpoint_period": 10, "activation_collateral": 100,
            "policy": policy, "min_validators": 1,
        },
    )
    miners = [KeyPair(f"miner-{i}") for i in range(n_miners)]
    for miner in miners:
        fund(vm, miner.address, 1000)
        receipt = call(vm, miners[miners.index(miner)], sa_addr, "join", value=100)
        assert receipt.ok, receipt.error
    return vm, sa_addr, miners


def make_checkpoint(window=0, prev=ZERO_CHECKPOINT, tag="a"):
    return Checkpoint(
        source=SUB, proof=cid_of(("proof", tag, window)), prev=prev,
        window=window, epoch=(window + 1) * 10,
    )


def submit(vm, sa_addr, submitter, signed):
    return call(vm, submitter, sa_addr, "submit_checkpoint", params={"signed": signed})


def test_multisig_policy_accepts_quorum():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="multisig", threshold=2))
    checkpoint = make_checkpoint()
    signatures = tuple(sign(m, checkpoint.cid.hex()) for m in miners[:2])
    receipt = submit(vm, sa_addr, miners[0], SignedCheckpoint(checkpoint, signatures))
    assert receipt.ok, receipt.error
    assert sca_state(vm, "child//root/sub")["last_ckpt_cid"] == checkpoint.cid.hex()


def test_multisig_policy_rejects_below_threshold():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="multisig", threshold=3))
    checkpoint = make_checkpoint()
    signatures = tuple(sign(m, checkpoint.cid.hex()) for m in miners[:2])
    receipt = submit(vm, sa_addr, miners[0], SignedCheckpoint(checkpoint, signatures))
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN


def test_multisig_rejects_outsider_signatures():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="multisig", threshold=2))
    outsiders = [KeyPair(f"outsider-{i}") for i in range(2)]
    checkpoint = make_checkpoint()
    signatures = tuple(sign(o, checkpoint.cid.hex()) for o in outsiders)
    receipt = submit(vm, sa_addr, miners[0], SignedCheckpoint(checkpoint, signatures))
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN


def test_single_policy_accepts_any_validator():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="single"))
    checkpoint = make_checkpoint()
    signed = SignedCheckpoint(checkpoint, (sign(miners[2], checkpoint.cid.hex()),))
    receipt = submit(vm, sa_addr, miners[0], signed)
    assert receipt.ok, receipt.error


def test_threshold_policy():
    scheme = ThresholdScheme("tss:/root/sub", threshold=2, participants=3, seed=7)
    register_threshold_scheme(scheme)
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="threshold", threshold=2))
    checkpoint = make_checkpoint()
    partials = [
        ThresholdScheme.partial_sign(scheme.share_for(i), checkpoint.cid.hex())
        for i in (1, 3)
    ]
    combined = scheme.combine(partials, checkpoint.cid.hex())
    receipt = submit(vm, sa_addr, miners[0], SignedCheckpoint(checkpoint, combined))
    assert receipt.ok, receipt.error


def test_threshold_policy_rejects_foreign_group():
    scheme = ThresholdScheme("tss:/root/sub", threshold=2, participants=3, seed=7)
    wrong = ThresholdScheme("tss:/root/evil", threshold=2, participants=3, seed=9)
    register_threshold_scheme(scheme)
    register_threshold_scheme(wrong)
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="threshold", threshold=2))
    checkpoint = make_checkpoint()
    partials = [
        ThresholdScheme.partial_sign(wrong.share_for(i), checkpoint.cid.hex())
        for i in (1, 2)
    ]
    combined = wrong.combine(partials, checkpoint.cid.hex())
    receipt = submit(vm, sa_addr, miners[0], SignedCheckpoint(checkpoint, combined))
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN


def test_window_replay_rejected():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="single"))
    checkpoint = make_checkpoint(window=0)
    signed = SignedCheckpoint(checkpoint, (sign(miners[0], checkpoint.cid.hex()),))
    assert submit(vm, sa_addr, miners[0], signed).ok
    receipt = submit(vm, sa_addr, miners[1], signed)
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_policy_validation():
    with pytest.raises(ValueError):
        SignaturePolicy(kind="zk")
    with pytest.raises(ValueError):
        SignaturePolicy(kind="multisig", threshold=0)


def test_fraud_proof_slashes_collateral():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="single"))
    prev = ZERO_CHECKPOINT
    first = make_checkpoint(window=0, prev=prev, tag="a")
    second = make_checkpoint(window=0, prev=prev, tag="b")  # conflicting!
    signed_a = SignedCheckpoint(first, (sign(miners[0], first.cid.hex()),))
    signed_b = SignedCheckpoint(second, (sign(miners[0], second.cid.hex()),))
    collateral_before = sca_state(vm, "child//root/sub")["collateral"]
    receipt = call(
        vm, miners[1], sa_addr, "submit_fraud_proof",
        params={"first": signed_a, "second": signed_b, "slash_amount": 150},
    )
    assert receipt.ok, receipt.error
    assert receipt.return_value == 150
    record = sca_state(vm, "child//root/sub")
    assert record["collateral"] == collateral_before - 150
    assert record["slashed_total"] == 150


def test_fraud_proof_can_deactivate_subnet():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="single"))
    first = make_checkpoint(tag="a")
    second = make_checkpoint(tag="b")
    signed_a = SignedCheckpoint(first, (sign(miners[0], first.cid.hex()),))
    signed_b = SignedCheckpoint(second, (sign(miners[0], second.cid.hex()),))
    call(
        vm, miners[1], sa_addr, "submit_fraud_proof",
        params={"first": signed_a, "second": signed_b, "slash_amount": 250},
    )
    assert sca_state(vm, "child//root/sub")["status"] == STATUS_INACTIVE


def test_fraud_proof_requires_conflict():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="single"))
    checkpoint = make_checkpoint()
    signed = SignedCheckpoint(checkpoint, (sign(miners[0], checkpoint.cid.hex()),))
    receipt = call(
        vm, miners[1], sa_addr, "submit_fraud_proof",
        params={"first": signed, "second": signed, "slash_amount": 100},
    )
    assert not receipt.ok


def test_fraud_proof_requires_policy_valid_evidence():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="single"))
    outsider = KeyPair("outsider")
    first = make_checkpoint(tag="a")
    second = make_checkpoint(tag="b")
    signed_a = SignedCheckpoint(first, (sign(outsider, first.cid.hex()),))
    signed_b = SignedCheckpoint(second, (sign(outsider, second.cid.hex()),))
    receipt = call(
        vm, miners[1], sa_addr, "submit_fraud_proof",
        params={"first": signed_a, "second": signed_b, "slash_amount": 100},
    )
    assert not receipt.ok


def test_slashing_burns_from_frozen_pool():
    vm, sa_addr, miners = make_parent(SignaturePolicy(kind="single"))
    burned_before = vm.total_burned
    first = make_checkpoint(tag="a")
    second = make_checkpoint(tag="b")
    signed_a = SignedCheckpoint(first, (sign(miners[0], first.cid.hex()),))
    signed_b = SignedCheckpoint(second, (sign(miners[0], second.cid.hex()),))
    call(
        vm, miners[1], sa_addr, "submit_fraud_proof",
        params={"first": signed_a, "second": signed_b, "slash_amount": 100},
    )
    assert vm.total_burned == burned_before + 100

"""VM-level tests for SA membership policies (§III-A)."""

import pytest

from repro.crypto.keys import Address, KeyPair
from repro.vm.exitcode import ExitCode
from repro.vm.vm import VM

from tests.hierarchy.conftest import call, fund, hierarchy_registry
from repro.hierarchy.gateway import SCA_ADDRESS


MINERS = [KeyPair(f"policy-miner-{i}") for i in range(4)]


def make_parent(**sa_params):
    vm = VM(subnet_id="/root", registry=hierarchy_registry())
    vm.create_actor(
        SCA_ADDRESS, "sca",
        params={"subnet_path": "/root", "min_collateral": 100, "checkpoint_period": 10},
    )
    sa_addr = Address("f2policysub")
    params = {
        "subnet_path": "/root/policied", "consensus": "poa",
        "checkpoint_period": 10, "activation_collateral": 100,
    }
    params.update(sa_params)
    vm.create_actor(sa_addr, "subnet-actor", params=params)
    for miner in MINERS:
        fund(vm, miner.address, 10_000)
    return vm, sa_addr


def test_permissioned_join_requires_allowlist():
    vm, sa = make_parent(
        permissioned=True,
        allowlist=(MINERS[0].address.raw, MINERS[1].address.raw),
    )
    assert call(vm, MINERS[0], sa, "join", value=100).ok
    receipt = call(vm, MINERS[2], sa, "join", value=100)
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN
    assert call(vm, MINERS[1], sa, "join", value=100).ok


def test_min_join_stake_enforced():
    vm, sa = make_parent(min_join_stake=500)
    receipt = call(vm, MINERS[0], sa, "join", value=499)
    assert receipt.exit_code == ExitCode.USR_INSUFFICIENT_FUNDS
    assert call(vm, MINERS[0], sa, "join", value=500).ok


def test_max_validators_cap():
    vm, sa = make_parent(max_validators=2)
    assert call(vm, MINERS[0], sa, "join", value=100).ok
    assert call(vm, MINERS[1], sa, "join", value=100).ok
    receipt = call(vm, MINERS[2], sa, "join", value=100)
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN
    # Existing validators can still top up their stake.
    assert call(vm, MINERS[0], sa, "join", value=50).ok


def test_min_remaining_validators_blocks_leave():
    vm, sa = make_parent(min_remaining_validators=2)
    for miner in MINERS[:3]:
        assert call(vm, miner, sa, "join", value=100).ok
    # 3 -> 2 is allowed; 2 -> 1 is not.
    assert call(vm, MINERS[0], sa, "leave").ok
    receipt = call(vm, MINERS[1], sa, "leave")
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_default_policies_are_permissionless():
    vm, sa = make_parent()
    stranger = KeyPair("policy-stranger")
    fund(vm, stranger.address, 1_000)
    assert call(vm, stranger, sa, "join", value=100).ok


def test_policy_parameters_validated():
    vm = VM(subnet_id="/root", registry=hierarchy_registry())
    vm.create_actor(
        SCA_ADDRESS, "sca",
        params={"subnet_path": "/root", "min_collateral": 100, "checkpoint_period": 10},
    )
    receipt = vm.create_actor(
        Address("f2badpolicy"), "subnet-actor",
        params={
            "subnet_path": "/root/bad", "consensus": "poa",
            "checkpoint_period": 10, "activation_collateral": 100,
            "max_validators": -1,
        },
    )
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_ARGUMENT

"""Focused tests for the node-side services: cross-msg pool, resolution
service and checkpoint service, exercised through a small live system."""

import pytest

from repro.crypto.cid import cid_of
from repro.hierarchy import (
    ROOTNET,
    CrossMsg,
    HierarchicalSystem,
    SCA_ADDRESS,
    SubnetConfig,
    SubnetID,
)


@pytest.fixture(scope="module")
def system():
    system = HierarchicalSystem(
        seed=71, root_validators=3, root_block_time=0.5, checkpoint_period=5,
        wallet_funds={"alice": 10**9},
    ).start()
    system.spawn_subnet(
        SubnetConfig(name="svc", validators=3, block_time=0.25, checkpoint_period=5)
    )
    return system


SUB = SubnetID("/root/svc")


def test_crosspool_sees_parent_topdown_queue(system):
    alice = system.wallets["alice"]
    node = system.node(SUB)
    seen_before = node.crosspool._td_scanned
    system.fund_subnet(alice, SUB, alice.address, 1_000)
    system.wait_for(lambda: node.crosspool._td_scanned > seen_before, timeout=20.0)
    assert node.crosspool._td_scanned > seen_before


def test_crosspool_prunes_applied_entries(system):
    alice = system.wallets["alice"]
    node = system.node(SUB)
    system.fund_subnet(alice, SUB, alice.address, 1_000)
    balance = system.balance(SUB, alice.address)
    system.wait_for(lambda: system.balance(SUB, alice.address) > balance, timeout=20.0)
    system.run_for(2.0)
    # Applied entries are dropped from the cache.
    applied = node.vm.state.get(f"actor/{SCA_ADDRESS.raw}/td_applied_nonce")
    assert all(nonce >= applied for nonce in node.crosspool._topdown)


def test_resolution_store_rejects_wrong_cid(system):
    node = system.node(SUB)
    messages = (
        CrossMsg(
            from_subnet=SUB, from_addr=system.wallets["alice"].address,
            to_subnet=ROOTNET, to_addr=system.wallets["alice"].address, value=1,
        ),
    )
    assert not node.resolution.store(cid_of("something else"), messages)
    assert node.resolution.store(cid_of(messages), messages)
    assert node.resolution.resolve_local(cid_of(messages)) == messages


def test_resolution_request_callback_immediate_when_local(system):
    node = system.node(SUB)
    messages = (
        CrossMsg(
            from_subnet=SUB, from_addr=system.wallets["alice"].address,
            to_subnet=ROOTNET, to_addr=system.wallets["alice"].address, value=2,
        ),
    )
    cid = cid_of(messages)
    node.resolution.store(cid, messages)
    got = []
    node.resolution.request(ROOTNET, cid, on_resolved=got.append)
    assert got == [messages]


def test_resolution_pull_roundtrip_between_subnets(system):
    """A root node pulls a batch only the subnet has."""
    subnet_node = system.node(SUB)
    root_node = system.node(ROOTNET)
    messages = (
        CrossMsg(
            from_subnet=SUB, from_addr=system.wallets["alice"].address,
            to_subnet=ROOTNET, to_addr=system.wallets["alice"].address, value=3,
        ),
    )
    cid = cid_of(messages)
    subnet_node.resolution.store(cid, messages)
    got = []
    root_node.resolution.request(SUB, cid, on_resolved=got.append)
    system.run_for(1.0)
    assert got and got[0] == messages


def test_checkpoint_service_rotates_designated_submitter(system):
    services = [n.checkpoints for n in system.nodes(SUB)]
    count = len(services)
    for window in range(count * 2):
        designated = [
            s.config.validator_index
            for s in services
            if s._is_designated_submitter(window)
        ]
        assert designated == [window % count]


def test_checkpoint_windows_seal_sequentially(system):
    system.run_for(10.0)
    node = system.node(SUB)
    sealed = node.vm.state.get(f"actor/{SCA_ADDRESS.raw}/last_window_sealed")
    assert sealed >= 1
    for window in range(sealed + 1):
        checkpoint = node.vm.state.get(f"actor/{SCA_ADDRESS.raw}/ckpt/{window}")
        assert checkpoint is not None
        assert checkpoint.window == window
    # The checkpoint chain links prev -> cid in order.
    previous = None
    for window in range(sealed + 1):
        checkpoint = node.vm.state.get(f"actor/{SCA_ADDRESS.raw}/ckpt/{window}")
        if previous is not None:
            assert checkpoint.prev == previous.cid
        previous = checkpoint


def test_all_validators_derive_identical_checkpoints(system):
    system.run_for(5.0)
    nodes = system.nodes(SUB)
    sealed = min(
        n.vm.state.get(f"actor/{SCA_ADDRESS.raw}/last_window_sealed") for n in nodes
    )
    for window in range(sealed + 1):
        cids = {
            n.vm.state.get(f"actor/{SCA_ADDRESS.raw}/ckpt/{window}").cid
            for n in nodes
        }
        assert len(cids) == 1, f"window {window} diverged across validators"


def test_subnet_node_rejects_unknown_cross_payload(system):
    from repro.chain.validation import ValidationError

    node = system.node(SUB)
    with pytest.raises(ValidationError):
        node.apply_cross_message(node.vm, "garbage", node.miner_address)

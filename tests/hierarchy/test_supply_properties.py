"""Property tests: supply invariants under random cross-net traffic.

Drives a hand-wired parent/child VM pair through arbitrary sequences of
protocol operations (fund, bottom-up sends, window seals, checkpoint
commits, batch applications, failing deliveries) and asserts the firewall
ledger invariants after every step:

- parent SCA balance ≥ collateral + circulating (frozen-pool solvency);
- released_total ≤ injected_total (the cumulative firewall bound);
- circulating == injected − released ≥ 0;
- child minted ≤ injected; child burned ≤ minted + local supply;
- no token creation: global (minted − burned) across both chains equals
  net injected value.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.cid import cid_of
from repro.crypto.keys import Address, KeyPair
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_id import SubnetID
from repro.vm.message import Message
from repro.vm.vm import SYSTEM_ADDRESS, VM

from tests.hierarchy.conftest import hierarchy_registry

ROOT = SubnetID("/root")
SUB = SubnetID("/root/sub")
USERS = [KeyPair(f"prop-user-{i}") for i in range(3)]
COLLATERAL = 200


class Harness:
    """A parent/child pair plus manual drivers for each protocol step."""

    def __init__(self):
        self.parent = VM(subnet_id="/root", registry=hierarchy_registry())
        self.parent.create_actor(
            SCA_ADDRESS, "sca",
            params={"subnet_path": "/root", "min_collateral": 100,
                    "checkpoint_period": 10},
        )
        self.sa_addr = Address("f2propsub")
        self.parent.create_actor(
            self.sa_addr, "subnet-actor",
            params={"subnet_path": SUB.path, "consensus": "poa",
                    "checkpoint_period": 10, "activation_collateral": COLLATERAL},
        )
        miner = KeyPair("prop-miner")
        self.parent.mint(miner.address, COLLATERAL)
        receipt = self.parent.apply_message(
            Message(from_addr=miner.address, to_addr=self.sa_addr,
                    value=COLLATERAL, method="join",
                    nonce=0)
        )
        assert receipt.ok, receipt.error
        for user in USERS:
            self.parent.mint(user.address, 10_000)

        self.child = VM(subnet_id=SUB.path, registry=hierarchy_registry())
        self.child.create_actor(
            SCA_ADDRESS, "sca",
            params={"subnet_path": SUB.path, "min_collateral": 100,
                    "checkpoint_period": 10},
        )
        self.next_window = 0
        self.td_applied = 0

    # -- protocol steps -------------------------------------------------
    def user_call(self, vm, user, method, params, value):
        message = Message(
            from_addr=user.address, to_addr=SCA_ADDRESS, value=value,
            method=method, params=params, nonce=vm.nonce_of(user.address),
        )
        return vm.apply_message(message)

    def fund(self, user_index, amount):
        user = USERS[user_index]
        amount = min(amount, self.parent.balance_of(user.address))
        if amount <= 0:
            return
        self.user_call(
            self.parent, user, "fund",
            {"subnet_path": SUB.path, "to_addr": user.address.raw}, amount,
        )

    def pump_topdown(self):
        while True:
            message = self.parent.state.get(
                f"actor/{SCA_ADDRESS.raw}/td_msg/{SUB.path}/{self.td_applied}"
            )
            if message is None:
                return
            receipt = self.child.apply_implicit(
                SYSTEM_ADDRESS, SCA_ADDRESS, "apply_topdown",
                {"message": message, "nonce": self.td_applied},
            )
            assert receipt.ok, receipt.error
            self.td_applied += 1

    def send_up(self, user_index, amount, poison=False):
        user = USERS[user_index]
        amount = min(amount, self.child.balance_of(user.address))
        if amount <= 0:
            return
        self.user_call(
            self.child, user, "send_crossmsg",
            {"to_subnet": "/root", "to_addr": user.address.raw,
             "method": "no_such_method" if poison else "send"},
            amount,
        )

    def seal_and_commit(self):
        window = self.next_window
        receipt = self.child.apply_implicit(
            SYSTEM_ADDRESS, SCA_ADDRESS, "seal_window",
            {"window": window, "proof_cid": cid_of(("blk", window))},
        )
        assert receipt.ok, receipt.error
        self.next_window += 1
        # Advance the child epoch into the new window so later sends land there.
        self.child.epoch = self.next_window * 10
        checkpoint = self.child.state.get(f"actor/{SCA_ADDRESS.raw}/ckpt/{window}")
        commit = self.parent.apply_implicit(
            self.sa_addr, SCA_ADDRESS, "commit_child_checkpoint",
            {"checkpoint": checkpoint},
        )
        assert commit.ok, commit.error

    def apply_bottomups(self):
        while True:
            nonce = self.parent.state.get(f"actor/{SCA_ADDRESS.raw}/bu_applied_nonce")
            entry = self.parent.state.get(f"actor/{SCA_ADDRESS.raw}/bu_meta/{nonce}")
            if entry is None:
                return
            meta = entry["meta"]
            messages = self.child.state.get(
                f"actor/{SCA_ADDRESS.raw}/registry/{meta.msgs_cid.hex()}"
            )
            receipt = self.parent.apply_implicit(
                SYSTEM_ADDRESS, SCA_ADDRESS, "apply_bottomup",
                {"nonce": nonce, "messages": messages},
            )
            assert receipt.ok, receipt.error

    # -- invariants -------------------------------------------------------
    def check_invariants(self):
        record = self.parent.state.get(f"actor/{SCA_ADDRESS.raw}/child/{SUB.path}")
        circulating = record["circulating"]
        injected = record["injected_total"]
        released = record["released_total"]
        assert released <= injected, "firewall breached: released > injected"
        assert circulating == injected - released
        assert circulating >= 0
        pool = self.parent.balance_of(SCA_ADDRESS)
        assert pool >= record["collateral"] + circulating, "frozen pool insolvent"
        assert self.child.total_minted <= injected
        # Exact conservation identity: top-down application is the child's
        # only mint source, so minted == injected − (queued, not yet
        # applied).  Value burned in the child but not yet released at the
        # parent is in flight inside a checkpoint window; the frozen-pool
        # check above keeps it backed throughout.
        assert self.child.total_minted == injected - self._pending_topdown_value()
        child_alive = self.child.total_minted - self.child.total_burned
        assert 0 <= child_alive <= injected

    def _pending_topdown_value(self):
        total = 0
        nonce = self.td_applied
        while True:
            message = self.parent.state.get(
                f"actor/{SCA_ADDRESS.raw}/td_msg/{SUB.path}/{nonce}"
            )
            if message is None:
                return total
            total += message.value
            nonce += 1


operation = st.one_of(
    st.tuples(st.just("fund"), st.integers(0, 2), st.integers(1, 3000)),
    st.tuples(st.just("pump"), st.just(0), st.just(0)),
    st.tuples(st.just("send_up"), st.integers(0, 2), st.integers(1, 3000)),
    st.tuples(st.just("poison_up"), st.integers(0, 2), st.integers(1, 500)),
    st.tuples(st.just("seal"), st.just(0), st.just(0)),
    st.tuples(st.just("apply"), st.just(0), st.just(0)),
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(operation, max_size=25))
def test_supply_invariants_hold_under_random_traffic(operations):
    harness = Harness()
    for op, index, amount in operations:
        if op == "fund":
            harness.fund(index, amount)
        elif op == "pump":
            harness.pump_topdown()
        elif op == "send_up":
            harness.send_up(index, amount)
        elif op == "poison_up":
            harness.send_up(index, amount, poison=True)
        elif op == "seal":
            harness.seal_and_commit()
        elif op == "apply":
            harness.apply_bottomups()
        harness.check_invariants()
    # Drain everything and re-check at quiescence.
    harness.pump_topdown()
    harness.seal_and_commit()
    harness.apply_bottomups()
    harness.pump_topdown()
    harness.check_invariants()


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5000), st.integers(1, 20000))
def test_forged_extraction_never_exceeds_supply(injected, claimed):
    """Direct property form of E6: any forged claim pays ≤ injected."""
    from repro.hierarchy.checkpoint import Checkpoint, CrossMsgMeta, ZERO_CHECKPOINT
    from repro.hierarchy.crossmsg import CrossMsg

    harness = Harness()
    harness.fund(0, min(injected, 10_000))
    record = harness.parent.state.get(f"actor/{SCA_ADDRESS.raw}/child/{SUB.path}")
    supply = record["circulating"]
    attacker = KeyPair("prop-attacker").address
    forged = (
        CrossMsg(from_subnet=SUB, from_addr=attacker, to_subnet=ROOT,
                 to_addr=attacker, value=claimed),
    )
    meta = CrossMsgMeta(from_subnet=SUB, to_subnet=ROOT, nonce=0,
                        msgs_cid=cid_of(forged), count=1, value=claimed)
    checkpoint = Checkpoint(source=SUB, proof=cid_of("f"), prev=ZERO_CHECKPOINT,
                            cross_meta=(meta,), window=0, epoch=10)
    commit = harness.parent.apply_implicit(
        harness.sa_addr, SCA_ADDRESS, "commit_child_checkpoint",
        {"checkpoint": checkpoint},
    )
    assert commit.ok
    receipt = harness.parent.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "apply_bottomup",
        {"nonce": 0, "messages": forged},
    )
    assert receipt.ok
    extracted = harness.parent.balance_of(attacker)
    assert extracted <= supply
    harness.check_invariants()

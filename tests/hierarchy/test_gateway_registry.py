"""VM-level tests for SCA child registration, collateral and lifecycle."""

import pytest

from repro.crypto.keys import Address
from repro.hierarchy.gateway import (
    SCA_ADDRESS,
    STATUS_ACTIVE,
    STATUS_INACTIVE,
    STATUS_KILLED,
)
from repro.vm.exitcode import ExitCode

from tests.hierarchy.conftest import call, fund, sca_state


def join(vm, users, sa_addr, who="miner1", stake=150):
    fund(vm, users[who].address, stake * 10)
    return call(vm, users[who], sa_addr, "join", value=stake)


def test_join_activates_and_registers(root_vm, users, deployed_sa):
    receipt = join(root_vm, users, deployed_sa)
    assert receipt.ok, receipt.error
    assert receipt.return_value == "active"
    record = sca_state(root_vm, "child//root/sub")
    assert record["status"] == STATUS_ACTIVE
    assert record["collateral"] == 150
    assert record["sa_addr"] == deployed_sa.raw
    # Collateral is frozen in the SCA's balance.
    assert root_vm.balance_of(SCA_ADDRESS) == 150


def test_join_below_activation_stays_instantiated(root_vm, users, deployed_sa):
    fund(root_vm, users["miner1"].address, 1000)
    receipt = call(root_vm, users["miner1"], deployed_sa, "join", value=50)
    assert receipt.ok
    assert receipt.return_value == "instantiated"
    assert sca_state(root_vm, "child//root/sub") is None


def test_two_joins_reach_activation(root_vm, users, deployed_sa):
    fund(root_vm, users["miner1"].address, 1000)
    fund(root_vm, users["miner2"].address, 1000)
    call(root_vm, users["miner1"], deployed_sa, "join", value=60)
    receipt = call(root_vm, users["miner2"], deployed_sa, "join", value=60)
    assert receipt.return_value == "active"
    assert sca_state(root_vm, "child//root/sub")["collateral"] == 120


def test_join_after_activation_adds_collateral(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa, stake=150)
    fund(root_vm, users["miner2"].address, 1000)
    receipt = call(root_vm, users["miner2"], deployed_sa, "join", value=70)
    assert receipt.ok
    assert sca_state(root_vm, "child//root/sub")["collateral"] == 220


def test_leave_releases_stake(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa, who="miner1", stake=100)
    fund(root_vm, users["miner2"].address, 1000)
    call(root_vm, users["miner2"], deployed_sa, "join", value=100)
    balance_before = root_vm.balance_of(users["miner1"].address)
    receipt = call(root_vm, users["miner1"], deployed_sa, "leave")
    assert receipt.ok
    assert receipt.return_value == 100
    assert root_vm.balance_of(users["miner1"].address) == balance_before + 100
    # Remaining collateral still >= min: stays active.
    assert sca_state(root_vm, "child//root/sub")["status"] == STATUS_ACTIVE


def test_leave_below_min_collateral_deactivates(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa, who="miner1", stake=80)
    fund(root_vm, users["miner2"].address, 1000)
    call(root_vm, users["miner2"], deployed_sa, "join", value=80)
    call(root_vm, users["miner1"], deployed_sa, "leave")
    record = sca_state(root_vm, "child//root/sub")
    assert record["status"] == STATUS_INACTIVE
    assert record["collateral"] == 80


def test_rejoin_reactivates(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa, who="miner1", stake=80)
    fund(root_vm, users["miner2"].address, 1000)
    call(root_vm, users["miner2"], deployed_sa, "join", value=80)
    call(root_vm, users["miner1"], deployed_sa, "leave")
    receipt = call(root_vm, users["miner1"], deployed_sa, "join", value=50)
    assert receipt.ok
    assert sca_state(root_vm, "child//root/sub")["status"] == STATUS_ACTIVE


def test_leave_by_non_validator_fails(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa)
    fund(root_vm, users["bob"].address, 100)
    receipt = call(root_vm, users["bob"], deployed_sa, "leave")
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN


def test_kill_requires_unanimity(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa, who="miner1", stake=100)
    fund(root_vm, users["miner2"].address, 1000)
    call(root_vm, users["miner2"], deployed_sa, "join", value=100)
    first = call(root_vm, users["miner1"], deployed_sa, "vote_kill")
    assert first.return_value == "pending"
    assert sca_state(root_vm, "child//root/sub")["status"] == STATUS_ACTIVE
    second = call(root_vm, users["miner2"], deployed_sa, "vote_kill")
    assert second.return_value == "killed"
    assert sca_state(root_vm, "child//root/sub")["status"] == STATUS_KILLED


def test_kill_refunds_stake_pro_rata(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa, who="miner1", stake=100)
    fund(root_vm, users["miner2"].address, 1000)
    call(root_vm, users["miner2"], deployed_sa, "join", value=300)
    m1_before = root_vm.balance_of(users["miner1"].address)
    m2_before = root_vm.balance_of(users["miner2"].address)
    call(root_vm, users["miner1"], deployed_sa, "vote_kill")
    call(root_vm, users["miner2"], deployed_sa, "vote_kill")
    assert root_vm.balance_of(users["miner1"].address) == m1_before + 100
    assert root_vm.balance_of(users["miner2"].address) == m2_before + 300
    assert root_vm.balance_of(SCA_ADDRESS) == 0


def test_killed_subnet_refuses_crossmsgs(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa)
    call(root_vm, users["miner1"], deployed_sa, "vote_kill")
    fund(root_vm, users["alice"].address, 1000)
    receipt = call(
        root_vm, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/sub", "to_addr": users["alice"].address.raw},
        value=100,
    )
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_register_directly_requires_sa_collateral(root_vm, users):
    # A user calling register directly becomes "the SA" but must still pay.
    fund(root_vm, users["alice"].address, 1000)
    receipt = call(
        root_vm, users["alice"], SCA_ADDRESS, "register",
        params={"subnet_path": "/root/direct", "checkpoint_period": 5},
        value=50,
    )
    assert receipt.exit_code == ExitCode.USR_INSUFFICIENT_FUNDS


def test_register_wrong_parent_rejected(root_vm, users):
    fund(root_vm, users["alice"].address, 1000)
    receipt = call(
        root_vm, users["alice"], SCA_ADDRESS, "register",
        params={"subnet_path": "/root/a/b", "checkpoint_period": 5},
        value=200,
    )
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_ARGUMENT


def test_duplicate_registration_rejected(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa)
    fund(root_vm, users["alice"].address, 1000)
    receipt = call(
        root_vm, users["alice"], SCA_ADDRESS, "register",
        params={"subnet_path": "/root/sub", "checkpoint_period": 5},
        value=200,
    )
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_release_collateral_requires_sa_caller(root_vm, users, deployed_sa):
    join(root_vm, users, deployed_sa)
    fund(root_vm, users["bob"].address, 100)
    receipt = call(
        root_vm, users["bob"], SCA_ADDRESS, "release_collateral",
        params={"subnet_path": "/root/sub", "to_addr": users["bob"].address.raw, "amount": 10},
    )
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN

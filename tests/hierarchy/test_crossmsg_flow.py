"""VM-level tests of the full cross-msg fund semantics (§IV-A/B).

Two hand-wired VMs (parent /root, child /root/sub) play out the protocol
steps that the consensus layer automates, asserting the paper's fund
semantics: freeze on top-down commitment, mint on top-down application,
burn on bottom-up departure, release on bottom-up application, and the
firewall bound on release.
"""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import Address, KeyPair
from repro.hierarchy.checkpoint import Checkpoint, CrossMsgMeta, ZERO_CHECKPOINT
from repro.hierarchy.crossmsg import CrossMsg
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_id import SubnetID
from repro.vm.exitcode import ExitCode
from repro.vm.vm import SYSTEM_ADDRESS, VM

from tests.hierarchy.conftest import call, fund, hierarchy_registry, sca_state


ROOT = SubnetID("/root")
SUB = SubnetID("/root/sub")


@pytest.fixture
def pair(users):
    """(parent_vm, child_vm) with the child registered and active."""
    parent = VM(subnet_id="/root", registry=hierarchy_registry())
    parent.create_actor(
        SCA_ADDRESS, "sca",
        params={"subnet_path": "/root", "min_collateral": 100, "checkpoint_period": 10},
    )
    sa_addr = Address("f2sub")
    parent.create_actor(
        sa_addr, "subnet-actor",
        params={
            "subnet_path": "/root/sub", "consensus": "poa",
            "checkpoint_period": 10, "activation_collateral": 100,
        },
    )
    fund(parent, users["miner1"].address, 1000)
    receipt = call(parent, users["miner1"], sa_addr, "join", value=200)
    assert receipt.ok and receipt.return_value == "active"

    child = VM(subnet_id="/root/sub", registry=hierarchy_registry())
    child.create_actor(
        SCA_ADDRESS, "sca",
        params={"subnet_path": "/root/sub", "min_collateral": 100, "checkpoint_period": 10},
    )
    return parent, child, sa_addr


def pump_topdown(parent, child, child_path="/root/sub"):
    """Manually play the consensus role: apply parent-queued top-down msgs."""
    applied = []
    next_apply = child.state.get(f"actor/{SCA_ADDRESS.raw}/td_applied_nonce", 0)
    while True:
        message = parent.state.get(f"actor/{SCA_ADDRESS.raw}/td_msg/{child_path}/{next_apply}")
        if message is None:
            break
        receipt = child.apply_implicit(
            SYSTEM_ADDRESS, SCA_ADDRESS, "apply_topdown",
            {"message": message, "nonce": next_apply},
        )
        assert receipt.ok, receipt.error
        applied.append(message)
        next_apply += 1
    return applied


def seal_child_window(child, window=0, proof=None):
    receipt = child.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "seal_window",
        {"window": window, "proof_cid": proof or cid_of(("block", window))},
    )
    assert receipt.ok, receipt.error
    return child.state.get(f"actor/{SCA_ADDRESS.raw}/ckpt/{window}")


def commit_checkpoint_via_sa(parent, sa_addr, checkpoint):
    """Parent-side commitment, bypassing signature policy (tested separately)."""
    from repro.vm.message import Message

    # Call the SCA directly as the SA would (the SA address is the caller).
    receipt = parent.apply_implicit(
        sa_addr, SCA_ADDRESS, "commit_child_checkpoint", {"checkpoint": checkpoint}
    )
    return receipt


def apply_bottomup(parent, nonce, messages):
    return parent.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "apply_bottomup",
        {"nonce": nonce, "messages": tuple(messages)},
    )


def test_fund_freezes_and_assigns_nonce(pair, users):
    parent, child, _ = pair
    fund(parent, users["alice"].address, 1000)
    receipt = call(
        parent, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/sub", "to_addr": users["alice"].address.raw},
        value=400,
    )
    assert receipt.ok, receipt.error
    assert parent.balance_of(users["alice"].address) == 600
    # Funds frozen in the SCA (200 collateral + 400 injected).
    assert parent.balance_of(SCA_ADDRESS) == 600
    record = sca_state(parent, "child//root/sub")
    assert record["circulating"] == 400
    queued = parent.state.get(f"actor/{SCA_ADDRESS.raw}/td_msg//root/sub/0")
    assert queued.value == 400
    assert parent.state.get(f"actor/{SCA_ADDRESS.raw}/td_nonce//root/sub") == 1


def test_topdown_application_mints_in_child(pair, users):
    parent, child, _ = pair
    fund(parent, users["alice"].address, 1000)
    call(
        parent, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/sub", "to_addr": users["bob"].address.raw},
        value=400,
    )
    applied = pump_topdown(parent, child)
    assert len(applied) == 1
    assert child.balance_of(users["bob"].address) == 400
    assert child.total_minted == 400


def test_topdown_nonce_order_enforced(pair, users):
    parent, child, _ = pair
    fund(parent, users["alice"].address, 1000)
    for value in (10, 20):
        call(
            parent, users["alice"], SCA_ADDRESS, "fund",
            params={"subnet_path": "/root/sub", "to_addr": users["bob"].address.raw},
            value=value,
        )
    msg1 = parent.state.get(f"actor/{SCA_ADDRESS.raw}/td_msg//root/sub/1")
    # Applying nonce 1 before 0 must fail.
    receipt = child.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "apply_topdown", {"message": msg1, "nonce": 1}
    )
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE
    # Replay of an applied nonce must fail too.
    pump_topdown(parent, child)
    receipt = child.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "apply_topdown", {"message": msg1, "nonce": 1}
    )
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_bottomup_burn_and_release_roundtrip(pair, users):
    parent, child, sa_addr = pair
    # Inject 400 for alice in the child.
    fund(parent, users["alice"].address, 1000)
    call(
        parent, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/sub", "to_addr": users["alice"].address.raw},
        value=400,
    )
    pump_topdown(parent, child)

    # Alice sends 150 back up to bob on the rootnet.
    receipt = call(
        child, users["alice"], SCA_ADDRESS, "send_crossmsg",
        params={"to_subnet": "/root", "to_addr": users["bob"].address.raw},
        value=150,
    )
    assert receipt.ok, receipt.error
    assert child.balance_of(users["alice"].address) == 250
    assert child.total_burned == 150  # burned in the child (§IV-A)

    checkpoint = seal_child_window(child, window=0)
    assert len(checkpoint.cross_meta) == 1
    meta = checkpoint.cross_meta[0]
    assert meta.to_subnet == ROOT and meta.value == 150

    commit = commit_checkpoint_via_sa(parent, sa_addr, checkpoint)
    assert commit.ok, commit.error
    entry = sca_state(parent, "bu_meta/0")
    assert entry["via_child"] == "/root/sub"

    messages = child.state.get(f"actor/{SCA_ADDRESS.raw}/registry/{meta.msgs_cid.hex()}")
    receipt = apply_bottomup(parent, 0, messages)
    assert receipt.ok, receipt.error
    assert receipt.return_value["delivered"] == 1
    assert parent.balance_of(users["bob"].address) == 150
    # Circulating supply reduced by the released amount.
    assert sca_state(parent, "child//root/sub")["circulating"] == 250
    # Frozen pool shrank accordingly: 200 collateral + 400 − 150.
    assert parent.balance_of(SCA_ADDRESS) == 450


def test_firewall_refuses_excess_release(pair, users):
    """A compromised child claims more value than was ever injected (§II)."""
    parent, child, sa_addr = pair
    fund(parent, users["alice"].address, 1000)
    call(
        parent, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/sub", "to_addr": users["alice"].address.raw},
        value=100,
    )
    # Forged batch: the attacker claims 10_000 without burning anything.
    forged = (
        CrossMsg(
            from_subnet=SUB, from_addr=users["carol"].address,
            to_subnet=ROOT, to_addr=users["carol"].address,
            value=10_000,
        ),
    )
    meta = CrossMsgMeta(
        from_subnet=SUB, to_subnet=ROOT, nonce=0,
        msgs_cid=cid_of(forged), count=1, value=10_000,
    )
    checkpoint = Checkpoint(
        source=SUB, proof=cid_of("fake"), prev=ZERO_CHECKPOINT,
        cross_meta=(meta,), window=0, epoch=10,
    )
    commit = commit_checkpoint_via_sa(parent, sa_addr, checkpoint)
    assert commit.ok, commit.error  # metas are accepted unverified…
    receipt = apply_bottomup(parent, 0, forged)
    assert receipt.ok
    assert receipt.return_value["refused"] == 1  # …but application is firewalled
    assert parent.balance_of(users["carol"].address) == 0
    # The injected 100 remains intact for legitimate users.
    assert sca_state(parent, "child//root/sub")["circulating"] == 100


def test_firewall_allows_up_to_circulating(pair, users):
    parent, child, sa_addr = pair
    fund(parent, users["alice"].address, 1000)
    call(
        parent, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/sub", "to_addr": users["alice"].address.raw},
        value=100,
    )
    forged = (
        CrossMsg(
            from_subnet=SUB, from_addr=users["carol"].address,
            to_subnet=ROOT, to_addr=users["carol"].address,
            value=100,
        ),
    )
    meta = CrossMsgMeta(
        from_subnet=SUB, to_subnet=ROOT, nonce=0,
        msgs_cid=cid_of(forged), count=1, value=100,
    )
    checkpoint = Checkpoint(
        source=SUB, proof=cid_of("fake"), prev=ZERO_CHECKPOINT,
        cross_meta=(meta,), window=0, epoch=10,
    )
    commit_checkpoint_via_sa(parent, sa_addr, checkpoint)
    receipt = apply_bottomup(parent, 0, forged)
    # Exactly the circulating supply is extractable — the §II bound.
    assert receipt.return_value["delivered"] == 1
    assert parent.balance_of(users["carol"].address) == 100
    assert sca_state(parent, "child//root/sub")["circulating"] == 0


def test_bottomup_rejects_wrong_payload(pair, users):
    parent, child, sa_addr = pair
    genuine = (
        CrossMsg(
            from_subnet=SUB, from_addr=users["alice"].address,
            to_subnet=ROOT, to_addr=users["bob"].address, value=1,
        ),
    )
    meta = CrossMsgMeta(
        from_subnet=SUB, to_subnet=ROOT, nonce=0,
        msgs_cid=cid_of(genuine), count=1, value=1,
    )
    checkpoint = Checkpoint(
        source=SUB, proof=cid_of("b"), prev=ZERO_CHECKPOINT,
        cross_meta=(meta,), window=0, epoch=10,
    )
    commit_checkpoint_via_sa(parent, sa_addr, checkpoint)
    tampered = (
        CrossMsg(
            from_subnet=SUB, from_addr=users["alice"].address,
            to_subnet=ROOT, to_addr=users["carol"].address, value=1,
        ),
    )
    receipt = apply_bottomup(parent, 0, tampered)
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_ARGUMENT


def test_checkpoint_chain_integrity_enforced(pair, users):
    parent, child, sa_addr = pair
    first = seal_child_window(child, window=0)
    commit = commit_checkpoint_via_sa(parent, sa_addr, first)
    assert commit.ok
    # A second checkpoint must chain from the first.
    bogus = Checkpoint(
        source=SUB, proof=cid_of("x"), prev=ZERO_CHECKPOINT, window=1, epoch=20,
    )
    receipt = commit_checkpoint_via_sa(parent, sa_addr, bogus)
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE
    # The genuine continuation commits fine.
    second = seal_child_window(child, window=1)
    assert second.prev == first.cid
    receipt = commit_checkpoint_via_sa(parent, sa_addr, second)
    assert receipt.ok


def test_seal_windows_must_be_sequential(pair, users):
    parent, child, _ = pair
    seal_child_window(child, window=0)
    receipt = child.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "seal_window",
        {"window": 2, "proof_cid": cid_of("skip")},
    )
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_crossmsg_to_unregistered_child_fails(pair, users):
    parent, _, _ = pair
    fund(parent, users["alice"].address, 1000)
    receipt = call(
        parent, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/ghost", "to_addr": users["alice"].address.raw},
        value=10,
    )
    assert receipt.exit_code == ExitCode.USR_NOT_FOUND


def test_failed_delivery_triggers_revert(pair, users):
    """§IV-B: a cross-msg that cannot be applied reverts to its source."""
    parent, child, sa_addr = pair
    # Inject funds to alice in the child, then alice sends a cross-msg that
    # will fail at the rootnet (calling a method that does not exist).
    fund(parent, users["alice"].address, 1000)
    call(
        parent, users["alice"], SCA_ADDRESS, "fund",
        params={"subnet_path": "/root/sub", "to_addr": users["alice"].address.raw},
        value=300,
    )
    pump_topdown(parent, child)
    call(
        child, users["alice"], SCA_ADDRESS, "send_crossmsg",
        params={
            "to_subnet": "/root", "to_addr": users["bob"].address.raw,
            "method": "no_such_method",
        },
        value=120,
    )
    checkpoint = seal_child_window(child, window=0)
    commit_checkpoint_via_sa(parent, sa_addr, checkpoint)
    meta = checkpoint.cross_meta[0]
    messages = child.state.get(f"actor/{SCA_ADDRESS.raw}/registry/{meta.msgs_cid.hex()}")
    receipt = apply_bottomup(parent, 0, messages)
    assert receipt.ok
    # Delivery failed; bob got nothing; a revert top-down msg was enqueued
    # back toward the child carrying the 120.
    assert parent.balance_of(users["bob"].address) == 0
    revert = parent.state.get(f"actor/{SCA_ADDRESS.raw}/td_msg//root/sub/1")
    assert revert is not None
    assert revert.kind == "revert"
    assert revert.value == 120
    assert revert.to_addr == users["alice"].address
    # Applying the revert in the child restores alice's balance.
    pump_topdown(parent, child)
    assert child.balance_of(users["alice"].address) == 300  # 300 − 120 + 120

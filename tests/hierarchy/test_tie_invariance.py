"""End-state digest invariance under tie-shuffled schedules (the runtime
sanitizer's integration contract).

A full hierarchical run — spawn, fund, cross-send, checkpoint — executed
under FIFO tie order and under several shuffled tie orders must converge
to the same :meth:`HierarchicalSystem.end_state_digest`.  The trace digest
legitimately differs (the schedule changed); the value-level end state
must not.
"""

import pytest

from repro.hierarchy import ROOTNET, HierarchicalSystem, SubnetConfig


def _run_scenario(monkeypatch, tie_shuffle):
    if tie_shuffle is None:
        monkeypatch.delenv("REPRO_TIE_SHUFFLE", raising=False)
    else:
        monkeypatch.setenv("REPRO_TIE_SHUFFLE", str(tie_shuffle))
    system = HierarchicalSystem(
        seed=7, root_validators=3, root_block_time=0.5,
        checkpoint_period=4, wallet_funds={"alice": 10_000},
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="s0", validators=3, block_time=0.25, checkpoint_period=4)
    )
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 2_000)
    assert system.wait_for(
        lambda: system.balance(subnet, alice.address) >= 2_000, timeout=60.0
    )
    bob = system.create_wallet("bob")
    system.cross_send(alice, subnet, ROOTNET, bob.address, 300)
    assert system.wait_for(
        lambda: system.balance(ROOTNET, bob.address) == 300, timeout=120.0
    )
    system.run_until(30.0)
    return system


def test_end_state_digest_invariant_across_tie_shuffles(monkeypatch):
    digests = {}
    traces = {}
    for seed in (None, 1, 2):
        system = _run_scenario(monkeypatch, seed)
        digests[seed] = system.end_state_digest()
        traces[seed] = system.sim.trace.digest()
    assert len(set(digests.values())) == 1, digests
    # Sanity: the shuffled schedules really were different schedules.
    assert traces[1] != traces[None] or traces[2] != traces[None]


def test_same_shuffle_seed_reproduces_byte_identical_runs(monkeypatch):
    first = _run_scenario(monkeypatch, 5)
    second = _run_scenario(monkeypatch, 5)
    assert first.sim.trace.digest() == second.sim.trace.digest()
    assert first.end_state_digest() == second.end_state_digest()


@pytest.mark.parametrize("seed", [None, 3])
def test_digest_is_stable_for_idle_system(monkeypatch, seed):
    if seed is None:
        monkeypatch.delenv("REPRO_TIE_SHUFFLE", raising=False)
    else:
        monkeypatch.setenv("REPRO_TIE_SHUFFLE", str(seed))
    system = HierarchicalSystem(seed=3, root_validators=3).start()
    system.run_for(5.0)
    before = system.end_state_digest()
    # Digesting must not mutate state.
    assert system.end_state_digest() == before

"""Unit and property tests for SubnetID."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hierarchy.subnet_id import ROOTNET, SubnetID


def test_parse_and_render():
    subnet = SubnetID("/root/a/b")
    assert subnet.path == "/root/a/b"
    assert subnet.segments == ("root", "a", "b")
    assert subnet.name == "b"
    assert str(subnet) == "/root/a/b"


def test_invalid_paths_rejected():
    for bad in ("", "root", "/", "/root//a", "/root/UPPER", "/root/sp ace"):
        with pytest.raises(ValueError):
            SubnetID(bad)


def test_immutability():
    subnet = SubnetID("/root")
    with pytest.raises(AttributeError):
        subnet.segments = ("x",)


def test_root_properties():
    assert ROOTNET.is_root
    assert ROOTNET.depth == 0
    with pytest.raises(ValueError):
        ROOTNET.parent()


def test_parent_child_roundtrip():
    child = ROOTNET.child("a").child("b")
    assert child.path == "/root/a/b"
    assert child.parent().path == "/root/a"
    assert child.depth == 2


def test_ancestors_nearest_first():
    subnet = SubnetID("/root/a/b/c")
    assert [a.path for a in subnet.ancestors()] == ["/root/a/b", "/root/a", "/root"]
    assert ROOTNET.ancestors() == []


def test_ancestor_descendant_relations():
    a = SubnetID("/root/a")
    ab = SubnetID("/root/a/b")
    assert a.is_ancestor_of(ab)
    assert ab.is_descendant_of(a)
    assert not a.is_ancestor_of(a)  # proper
    assert not ab.is_ancestor_of(a)
    assert not SubnetID("/root/x").is_ancestor_of(ab)


def test_common_ancestor():
    ab = SubnetID("/root/a/b")
    ac = SubnetID("/root/a/c")
    assert ab.common_ancestor(ac).path == "/root/a"
    assert ab.common_ancestor(SubnetID("/root/x")).path == "/root"
    assert ab.common_ancestor(ab).path == "/root/a/b"
    assert ab.common_ancestor(SubnetID("/root/a")).path == "/root/a"


def test_down_path():
    root = ROOTNET
    target = SubnetID("/root/a/b")
    assert [s.path for s in root.down_path(target)] == ["/root/a", "/root/a/b"]
    assert root.down_path(root) == []
    with pytest.raises(ValueError):
        SubnetID("/root/x").down_path(target)


def test_next_hop_down():
    assert ROOTNET.next_hop_down(SubnetID("/root/a/b")).path == "/root/a"
    with pytest.raises(ValueError):
        ROOTNET.next_hop_down(ROOTNET)


def test_route_pure_topdown():
    up, down = ROOTNET.route(SubnetID("/root/a/b"))
    assert up == []
    assert [s.path for s in down] == ["/root/a", "/root/a/b"]


def test_route_pure_bottomup():
    up, down = SubnetID("/root/a/b").route(ROOTNET)
    assert [s.path for s in up] == ["/root/a", "/root"]
    assert down == []


def test_route_path_message():
    up, down = SubnetID("/root/a/b").route(SubnetID("/root/c"))
    assert [s.path for s in up] == ["/root/a", "/root"]
    assert [s.path for s in down] == ["/root/c"]


def test_different_roots_have_no_lca():
    with pytest.raises(ValueError):
        SubnetID("/root/a").common_ancestor(SubnetID("/other/b"))


def test_ordering_and_hashing():
    a, b = SubnetID("/root/a"), SubnetID("/root/b")
    assert a < b
    assert len({a, b, SubnetID("/root/a")}) == 2


segments = st.lists(
    st.from_regex(r"[a-z0-9][a-z0-9_-]{0,5}", fullmatch=True), min_size=0, max_size=4
)


@given(segments, segments, segments)
def test_lca_is_commutative_and_prefix(sa, sb, common):
    a = SubnetID(["root"] + common + sa)
    b = SubnetID(["root"] + common + sb)
    lca_ab = a.common_ancestor(b)
    lca_ba = b.common_ancestor(a)
    assert lca_ab == lca_ba
    # The LCA is an ancestor-or-self of both.
    for node in (a, b):
        assert lca_ab == node or lca_ab.is_ancestor_of(node)
    # It extends the constructed common prefix.
    assert len(lca_ab.segments) >= 1 + len(common)


@given(segments, segments)
def test_route_legs_reconnect(sa, sb):
    a = SubnetID(["root"] + sa)
    b = SubnetID(["root"] + sb)
    up, down = a.route(b)
    lca = a.common_ancestor(b)
    if a == lca:
        assert up == []
    else:
        assert up[-1] == lca
    if b == lca:
        assert down == []
    else:
        assert down[-1] == b
    # Walking up then down lands exactly at b.
    position = a
    for hop in up:
        position = position.parent()
        assert position == hop
    for hop in down:
        assert hop.parent() == position
        position = hop
    assert position == b

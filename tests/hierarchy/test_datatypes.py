"""Unit tests for cross-msg/checkpoint datatypes and routing helpers."""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import KeyPair
from repro.hierarchy.checkpoint import Checkpoint, CrossMsgMeta, ZERO_CHECKPOINT
from repro.hierarchy.crossmsg import (
    ApplyBottomUp,
    ApplyTopDown,
    CrossMsg,
    Direction,
    classify,
)
from repro.hierarchy.subnet_id import ROOTNET, SubnetID

A = SubnetID("/root/a")
AB = SubnetID("/root/a/b")
C = SubnetID("/root/c")
ALICE = KeyPair("dt-alice").address
BOB = KeyPair("dt-bob").address


def make_msg(src=AB, dst=ROOTNET, value=10, **kwargs):
    return CrossMsg(from_subnet=src, from_addr=ALICE,
                    to_subnet=dst, to_addr=BOB, value=value, **kwargs)


def test_classify_directions():
    assert classify(ROOTNET, A) == Direction.TOP_DOWN
    assert classify(ROOTNET, AB) == Direction.TOP_DOWN
    assert classify(A, ROOTNET) == Direction.BOTTOM_UP
    assert classify(A, C) == Direction.BOTTOM_UP  # sibling: leaves upward
    assert classify(A, A) == Direction.LOCAL


def test_crossmsg_validation():
    with pytest.raises(ValueError):
        make_msg(value=-1)
    with pytest.raises(ValueError):
        make_msg(src=A, dst=A)


def test_crossmsg_cid_is_content_addressed():
    assert make_msg().cid == make_msg().cid
    assert make_msg(value=11).cid != make_msg(value=10).cid
    assert make_msg(origin_nonce=1).cid != make_msg(origin_nonce=2).cid


def test_direction_at():
    message = make_msg(src=AB, dst=C)
    assert message.direction_at(AB) == Direction.BOTTOM_UP
    assert message.direction_at(ROOTNET) == Direction.TOP_DOWN
    assert message.direction_at(C) == Direction.LOCAL


def test_make_revert_swaps_endpoints():
    original = make_msg(src=AB, dst=ROOTNET, value=42, method="do_thing")
    revert = original.make_revert()
    assert revert.from_subnet == ROOTNET and revert.to_subnet == AB
    assert revert.from_addr == BOB and revert.to_addr == ALICE
    assert revert.value == 42
    assert revert.kind == "revert"
    assert revert.method == "send"  # reverts are plain refunds


def test_apply_wrappers_have_distinct_cids():
    message = make_msg()
    td = ApplyTopDown(message=message, nonce=0)
    bu = ApplyBottomUp(nonce=0, messages=(message,))
    assert td.cid != bu.cid
    assert ApplyTopDown(message=message, nonce=1).cid != td.cid


def test_checkpoint_meta_filters():
    meta_root = CrossMsgMeta(from_subnet=AB, to_subnet=ROOTNET, nonce=0,
                             msgs_cid=cid_of("x"), count=1, value=1)
    meta_sibling = CrossMsgMeta(from_subnet=AB, to_subnet=C, nonce=1,
                                msgs_cid=cid_of("y"), count=1, value=2)
    checkpoint = Checkpoint(
        source=A, proof=cid_of("p"), prev=ZERO_CHECKPOINT,
        cross_meta=(meta_root, meta_sibling), window=0, epoch=10,
    )
    assert checkpoint.metas_for(ROOTNET) == [meta_root]
    assert checkpoint.metas_not_for(ROOTNET) == [meta_sibling]


def test_checkpoint_cid_covers_children_and_metas():
    base = Checkpoint(source=A, proof=cid_of("p"), prev=ZERO_CHECKPOINT,
                      window=0, epoch=10)
    with_child = Checkpoint(source=A, proof=cid_of("p"), prev=ZERO_CHECKPOINT,
                            children=(("x", cid_of("c")),), window=0, epoch=10)
    assert base.cid != with_child.cid


def test_meta_cid_distinct_per_nonce():
    a = CrossMsgMeta(from_subnet=AB, to_subnet=ROOTNET, nonce=0,
                     msgs_cid=cid_of("x"), count=1, value=1)
    b = CrossMsgMeta(from_subnet=AB, to_subnet=ROOTNET, nonce=1,
                     msgs_cid=cid_of("x"), count=1, value=1)
    assert a.cid != b.cid

"""VM-level tests for the atomic execution protocol (§IV-D, Fig. 5).

Exercises the SCA coordination state machine with hand-driven VMs: the
execution subnet (LCA) coordinates; party subnets hold the assets and
locks.  The network-driven end-to-end version lives in the integration
tests.
"""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import Address, KeyPair
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.vm.exitcode import ExitCode
from repro.vm.vm import SYSTEM_ADDRESS, VM

from tests.hierarchy.conftest import call, fund, hierarchy_registry


@pytest.fixture
def lca_vm():
    vm = VM(subnet_id="/root", registry=hierarchy_registry())
    vm.create_actor(
        SCA_ADDRESS, "sca",
        params={"subnet_path": "/root", "min_collateral": 100, "checkpoint_period": 10},
    )
    return vm


@pytest.fixture
def alice():
    key = KeyPair("alice")
    return key


@pytest.fixture
def bob():
    return KeyPair("bob")


PARTIES = lambda a, b: (("/root/x", a.address.raw), ("/root/y", b.address.raw))


def init(vm, key, exec_id, parties):
    return call(vm, key, SCA_ADDRESS, "init_atomic",
                params={"exec_id": exec_id, "parties": parties})


def atomic_state(vm, exec_id):
    return vm.state.get(f"actor/{SCA_ADDRESS.raw}/atomic/{exec_id}")


def test_init_and_commit_happy_path(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    fund(lca_vm, bob.address, 100)
    parties = PARTIES(alice, bob)
    assert init(lca_vm, alice, "swap-1", parties).ok

    output = {"owners": {"asset-a": bob.address.raw, "asset-b": alice.address.raw}}
    output_cid = cid_of(output)
    first = call(lca_vm, alice, SCA_ADDRESS, "submit_output",
                 params={"exec_id": "swap-1", "output_cid": output_cid, "output": output})
    assert first.ok and first.return_value == "pending"
    second = call(lca_vm, bob, SCA_ADDRESS, "submit_output",
                  params={"exec_id": "swap-1", "output_cid": output_cid, "output": output})
    assert second.ok and second.return_value == "committed"
    record = atomic_state(lca_vm, "swap-1")
    assert record["status"] == "committed"
    # Notifications were enqueued toward both party subnets… but those
    # children are not registered here, so routing failed-over to reverts;
    # the coordination state itself is what this test asserts.


def test_mismatched_outputs_abort(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    fund(lca_vm, bob.address, 100)
    init(lca_vm, alice, "swap-2", PARTIES(alice, bob))
    call(lca_vm, alice, SCA_ADDRESS, "submit_output",
         params={"exec_id": "swap-2", "output_cid": cid_of("version-a")})
    receipt = call(lca_vm, bob, SCA_ADDRESS, "submit_output",
                   params={"exec_id": "swap-2", "output_cid": cid_of("version-b")})
    assert receipt.ok and receipt.return_value == "aborted"
    assert atomic_state(lca_vm, "swap-2")["status"] == "aborted"


def test_any_party_can_abort(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    fund(lca_vm, bob.address, 100)
    init(lca_vm, alice, "swap-3", PARTIES(alice, bob))
    call(lca_vm, alice, SCA_ADDRESS, "submit_output",
         params={"exec_id": "swap-3", "output_cid": cid_of("o")})
    receipt = call(lca_vm, bob, SCA_ADDRESS, "abort_atomic", params={"exec_id": "swap-3"})
    assert receipt.ok
    assert atomic_state(lca_vm, "swap-3")["status"] == "aborted"


def test_abort_after_commit_rejected(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    fund(lca_vm, bob.address, 100)
    init(lca_vm, alice, "swap-4", PARTIES(alice, bob))
    output_cid = cid_of("agreed")
    for key in (alice, bob):
        call(lca_vm, key, SCA_ADDRESS, "submit_output",
             params={"exec_id": "swap-4", "output_cid": output_cid})
    receipt = call(lca_vm, alice, SCA_ADDRESS, "abort_atomic", params={"exec_id": "swap-4"})
    # "possible aborts are no longer taken into account" (§IV-D).
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE
    assert atomic_state(lca_vm, "swap-4")["status"] == "committed"


def test_non_party_cannot_submit_or_abort(lca_vm, alice, bob):
    eve = KeyPair("eve")
    fund(lca_vm, alice.address, 100)
    fund(lca_vm, eve.address, 100)
    init(lca_vm, alice, "swap-5", PARTIES(alice, bob))
    receipt = call(lca_vm, eve, SCA_ADDRESS, "submit_output",
                   params={"exec_id": "swap-5", "output_cid": cid_of("x")})
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN
    receipt = call(lca_vm, eve, SCA_ADDRESS, "abort_atomic", params={"exec_id": "swap-5"})
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN


def test_duplicate_exec_id_rejected(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    init(lca_vm, alice, "swap-6", PARTIES(alice, bob))
    receipt = init(lca_vm, alice, "swap-6", PARTIES(alice, bob))
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_needs_two_parties(lca_vm, alice):
    fund(lca_vm, alice.address, 100)
    receipt = init(lca_vm, alice, "solo", (("/root/x", alice.address.raw),))
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_ARGUMENT


# ----------------------------------------------------------------------
# Party-side assets and locks
# ----------------------------------------------------------------------
def test_asset_lifecycle(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    assert call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"}).ok
    # Duplicate creation fails.
    receipt = call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"})
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE
    # Plain transfer.
    assert call(lca_vm, alice, SCA_ADDRESS, "transfer_asset",
                params={"name": "nft-1", "to_addr": bob.address.raw}).ok
    asset = lca_vm.state.get(f"actor/{SCA_ADDRESS.raw}/asset/nft-1")
    assert asset["owner"] == bob.address.raw


def test_lock_prevents_transfer(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"})
    assert call(lca_vm, alice, SCA_ADDRESS, "lock_atomic",
                params={"exec_id": "e1", "assets": ("nft-1",)}).ok
    receipt = call(lca_vm, alice, SCA_ADDRESS, "transfer_asset",
                   params={"name": "nft-1", "to_addr": bob.address.raw})
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_lock_requires_ownership(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    fund(lca_vm, bob.address, 100)
    call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"})
    receipt = call(lca_vm, bob, SCA_ADDRESS, "lock_atomic",
                   params={"exec_id": "e1", "assets": ("nft-1",)})
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN


def test_double_lock_rejected(lca_vm, alice):
    fund(lca_vm, alice.address, 100)
    call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"})
    call(lca_vm, alice, SCA_ADDRESS, "lock_atomic",
         params={"exec_id": "e1", "assets": ("nft-1",)})
    receipt = call(lca_vm, alice, SCA_ADDRESS, "lock_atomic",
                   params={"exec_id": "e2", "assets": ("nft-1",)})
    assert receipt.exit_code == ExitCode.USR_ILLEGAL_STATE


def test_apply_committed_result_reassigns_owners(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"})
    call(lca_vm, alice, SCA_ADDRESS, "lock_atomic",
         params={"exec_id": "e1", "assets": ("nft-1",)})
    receipt = lca_vm.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "apply_atomic_result",
        {"exec_id": "e1", "status": "committed",
         "output": {"owners": {"nft-1": bob.address.raw}}},
    )
    assert receipt.ok, receipt.error
    asset = lca_vm.state.get(f"actor/{SCA_ADDRESS.raw}/asset/nft-1")
    assert asset["owner"] == bob.address.raw
    assert asset["locked_by"] is None


def test_apply_aborted_result_unlocks_unchanged(lca_vm, alice, bob):
    fund(lca_vm, alice.address, 100)
    call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"})
    call(lca_vm, alice, SCA_ADDRESS, "lock_atomic",
         params={"exec_id": "e1", "assets": ("nft-1",)})
    receipt = lca_vm.apply_implicit(
        SYSTEM_ADDRESS, SCA_ADDRESS, "apply_atomic_result",
        {"exec_id": "e1", "status": "aborted", "output": None},
    )
    assert receipt.ok
    asset = lca_vm.state.get(f"actor/{SCA_ADDRESS.raw}/asset/nft-1")
    assert asset["owner"] == alice.address.raw
    assert asset["locked_by"] is None


def test_user_cannot_forge_atomic_result(lca_vm, alice, bob):
    """Unforgeability (§IV-D): users cannot inject results directly."""
    fund(lca_vm, alice.address, 100)
    fund(lca_vm, bob.address, 100)
    call(lca_vm, alice, SCA_ADDRESS, "create_asset", params={"name": "nft-1"})
    call(lca_vm, alice, SCA_ADDRESS, "lock_atomic",
         params={"exec_id": "e1", "assets": ("nft-1",)})
    receipt = call(lca_vm, bob, SCA_ADDRESS, "apply_atomic_result",
                   params={"exec_id": "e1", "status": "committed",
                           "output": {"owners": {"nft-1": bob.address.raw}}})
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN

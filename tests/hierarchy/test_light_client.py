"""Unit tests for the checkpoint light client (§II)."""

import pytest

from repro.crypto.cid import cid_of
from repro.crypto.keys import KeyPair
from repro.crypto.signature import sign
from repro.crypto.threshold import ThresholdScheme
from repro.hierarchy.checkpoint import (
    Checkpoint,
    CrossMsgMeta,
    SignedCheckpoint,
    ZERO_CHECKPOINT,
)
from repro.hierarchy.crossmsg import CrossMsg
from repro.hierarchy.light_client import (
    CheckpointLightClient,
    VerificationError,
    follow_parent_chain,
)
from repro.hierarchy.subnet_actor import SignaturePolicy, register_threshold_scheme
from repro.hierarchy.subnet_id import ROOTNET, SubnetID

SUB = SubnetID("/root/watched")
VALIDATORS = [KeyPair(f"lc-val-{i}") for i in range(3)]


def make_checkpoint(window=0, prev=ZERO_CHECKPOINT, metas=(), tag="x"):
    return Checkpoint(
        source=SUB, proof=cid_of(("proof", tag, window)), prev=prev,
        cross_meta=tuple(metas), window=window, epoch=(window + 1) * 10,
    )


def signed_by(checkpoint, keypairs):
    return SignedCheckpoint(
        checkpoint=checkpoint,
        signatures=tuple(sign(k, checkpoint.cid.hex()) for k in keypairs),
    )


def make_client(threshold=2):
    return CheckpointLightClient(
        SUB,
        SignaturePolicy(kind="multisig", threshold=threshold),
        [k.address for k in VALIDATORS],
    )


def test_observe_builds_verified_chain():
    client = make_client()
    first = make_checkpoint(window=0)
    second = make_checkpoint(window=1, prev=first.cid)
    client.observe(signed_by(first, VALIDATORS[:2]))
    client.observe(signed_by(second, VALIDATORS))
    assert len(client.chain) == 2
    assert client.latest_proof == second.proof
    assert client.trust_weight == 3


def test_rejects_wrong_source():
    client = make_client()
    wrong = Checkpoint(source=ROOTNET.child("other"), proof=cid_of("p"),
                       prev=ZERO_CHECKPOINT, window=0, epoch=10)
    with pytest.raises(VerificationError, match="tracking"):
        client.observe(SignedCheckpoint(wrong, tuple()))


def test_rejects_broken_linkage():
    client = make_client()
    client.observe(signed_by(make_checkpoint(window=0), VALIDATORS[:2]))
    orphan = make_checkpoint(window=1, prev=cid_of("not the head"))
    with pytest.raises(VerificationError, match="chain"):
        client.observe(signed_by(orphan, VALIDATORS[:2]))


def test_rejects_below_policy_threshold():
    client = make_client(threshold=3)
    with pytest.raises(VerificationError, match="signatures"):
        client.observe(signed_by(make_checkpoint(), VALIDATORS[:2]))


def test_rejects_outsider_signatures():
    client = make_client(threshold=2)
    outsiders = [KeyPair(f"lc-outsider-{i}") for i in range(2)]
    with pytest.raises(VerificationError):
        client.observe(signed_by(make_checkpoint(), outsiders))


def test_rejects_stale_window():
    client = make_client()
    first = make_checkpoint(window=2)
    client.observe(signed_by(first, VALIDATORS[:2]))
    stale = make_checkpoint(window=1, prev=first.cid)
    with pytest.raises(VerificationError, match="window"):
        client.observe(signed_by(stale, VALIDATORS[:2]))


def test_observe_is_idempotent_for_head():
    client = make_client()
    signed = signed_by(make_checkpoint(), VALIDATORS[:2])
    client.observe(signed)
    client.observe(signed)
    assert len(client.chain) == 1


def test_verify_cross_batch():
    client = make_client()
    messages = (
        CrossMsg(from_subnet=SUB, from_addr=VALIDATORS[0].address,
                 to_subnet=ROOTNET, to_addr=VALIDATORS[1].address, value=5),
    )
    meta = CrossMsgMeta(from_subnet=SUB, to_subnet=ROOTNET, nonce=0,
                        msgs_cid=cid_of(messages), count=1, value=5)
    client.observe(signed_by(make_checkpoint(metas=[meta]), VALIDATORS[:2]))
    assert client.verify_cross_batch(messages)
    forged = (
        CrossMsg(from_subnet=SUB, from_addr=VALIDATORS[0].address,
                 to_subnet=ROOTNET, to_addr=VALIDATORS[1].address, value=500),
    )
    assert not client.verify_cross_batch(forged)


def test_threshold_policy_verification():
    scheme = ThresholdScheme(f"tss:{SUB.path}", threshold=2, participants=3, seed=5)
    register_threshold_scheme(scheme)
    client = CheckpointLightClient(
        SUB, SignaturePolicy(kind="threshold", threshold=2),
        [k.address for k in VALIDATORS],
    )
    checkpoint = make_checkpoint()
    partials = [
        ThresholdScheme.partial_sign(scheme.share_for(i), checkpoint.cid.hex())
        for i in (1, 2)
    ]
    combined = scheme.combine(partials, checkpoint.cid.hex())
    verified = client.observe(SignedCheckpoint(checkpoint, combined))
    assert verified.signers == (1, 2)
    # Plain multisig bundles are rejected under a threshold policy.
    bad = make_checkpoint(window=1, prev=checkpoint.cid)
    with pytest.raises(VerificationError):
        client.observe(signed_by(bad, VALIDATORS[:2]))


def test_child_checkpoint_aggregation_visible():
    client = make_client()
    grandchild_cid = cid_of("grandchild-ckpt")
    checkpoint = Checkpoint(
        source=SUB, proof=cid_of("p"), prev=ZERO_CHECKPOINT,
        children=((f"{SUB.path}/leaf", grandchild_cid),), window=0, epoch=10,
    )
    client.observe(signed_by(checkpoint, VALIDATORS[:2]))
    assert client.child_checkpoint_cids() == {f"{SUB.path}/leaf": grandchild_cid}


def test_follow_parent_chain_end_to_end():
    """The light client reconstructs the checkpoint chain from a live run."""
    from repro.hierarchy import HierarchicalSystem, SubnetConfig

    system = HierarchicalSystem(
        seed=95, root_validators=3, root_block_time=0.5, checkpoint_period=4,
    ).start()
    subnet = system.spawn_subnet(
        SubnetConfig(name="watched2", validators=3, block_time=0.25,
                     checkpoint_period=4, policy=SignaturePolicy("multisig", 2))
    )
    system.run_for(15.0)
    client = follow_parent_chain(
        system.node(ROOTNET),
        system.sa_address(subnet),
        subnet,
        SignaturePolicy("multisig", 2),
        [w.address for w in system.validator_wallets(subnet)],
    )
    assert len(client.chain) >= 2
    assert client.trust_weight >= 2
    # The light-client head matches the SCA's recorded last checkpoint.
    record = system.child_record(ROOTNET, subnet)
    assert client.head.checkpoint.cid.hex() == record["last_ckpt_cid"]

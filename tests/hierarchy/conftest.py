"""Fixtures for VM-level hierarchy tests (no network, single VM)."""

from __future__ import annotations

import pytest

from repro.crypto.keys import Address, KeyPair
from repro.hierarchy.gateway import SCA_ADDRESS, SubnetCoordinatorActor
from repro.hierarchy.subnet_actor import SubnetActor
from repro.vm.builtin import default_registry
from repro.vm.message import Message
from repro.vm.vm import SYSTEM_ADDRESS, VM


def hierarchy_registry():
    registry = default_registry()
    registry.register(SubnetCoordinatorActor)
    registry.register(SubnetActor)
    return registry


@pytest.fixture
def root_vm():
    """A rootnet VM with its SCA installed."""
    vm = VM(subnet_id="/root", registry=hierarchy_registry())
    receipt = vm.create_actor(
        SCA_ADDRESS,
        "sca",
        params={"subnet_path": "/root", "min_collateral": 100, "checkpoint_period": 10},
    )
    assert receipt.ok, receipt.error
    return vm


@pytest.fixture
def users():
    keys = {name: KeyPair(name) for name in ("alice", "bob", "carol", "miner1", "miner2")}
    return keys


def fund(vm, addr, amount):
    vm.mint(addr, amount)


def call(vm, key, to, method, params=None, value=0):
    """Apply a user message and return the receipt."""
    message = Message(
        from_addr=key.address,
        to_addr=to,
        value=value,
        method=method,
        params=params,
        nonce=vm.nonce_of(key.address),
    )
    return vm.apply_message(message)


def system_call(vm, to, method, params=None):
    return vm.apply_implicit(SYSTEM_ADDRESS, to, method, params)


def sca_state(vm, key, default=None):
    return vm.state.get(f"actor/{SCA_ADDRESS.raw}/{key}", default)


@pytest.fixture
def deployed_sa(root_vm, users):
    """An SA for /root/sub deployed on the rootnet, not yet activated."""
    sa_addr = Address("f2testsub")
    receipt = root_vm.create_actor(
        sa_addr,
        "subnet-actor",
        params={
            "subnet_path": "/root/sub",
            "consensus": "poa",
            "checkpoint_period": 10,
            "activation_collateral": 100,
            "min_validators": 1,
        },
    )
    assert receipt.ok, receipt.error
    return sa_addr

"""Unit tests for the fault DSL: triggers, selectors, inject/heal pairs.

These run against small stand-in systems (recording transports, stub
nodes) — the full-system behaviour of each fault is covered by the
scenario library integration tests.
"""

import pytest

from repro.scenario.errors import ScenarioError
from repro.scenario.faults import (
    ByzantineFault,
    CheckpointWithholdFault,
    CrashFault,
    EquivocationFault,
    FAULT_KINDS,
    FaultInjector,
    LinkDegradeFault,
    PartitionFault,
    Trigger,
    fault_from_spec,
    parse_predicate,
    select_validators,
)


# ----------------------------------------------------------------------
# Stand-ins
# ----------------------------------------------------------------------
class StubNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.byzantine = set()
        self.running = True

    def stop(self):
        self.running = False

    def restart(self, *args, **kwargs):
        self.running = True


class RecordingTransport:
    def __init__(self):
        self.partitions = []
        self.healed = []
        self.links = []

    def partition(self, group):
        self.partitions.append(tuple(sorted(group)))
        return len(self.partitions) - 1

    def heal(self, handle):
        self.healed.append(handle)

    def set_link(self, a, b, loss=0.0, extra_latency=0.0):
        self.links.append((tuple(sorted(a)), tuple(sorted(b)), loss, extra_latency))


class StubStack:
    def __init__(self):
        self.transport = RecordingTransport()


class StubSystem:
    def __init__(self, node_count=4):
        self.stack = StubStack()
        self._nodes = {
            "/root/s0": [StubNode(f"/root/s0#{i}") for i in range(node_count)],
            "/root": [StubNode(f"/root#{i}") for i in range(3)],
        }

    def nodes(self, subnet):
        return self._nodes[str(subnet)]


# ----------------------------------------------------------------------
# Triggers
# ----------------------------------------------------------------------
def test_trigger_needs_exactly_one_of_at_or_when():
    with pytest.raises(ScenarioError):
        Trigger()
    with pytest.raises(ScenarioError):
        Trigger(at=1.0, when="time >= 2")
    assert Trigger(at=0.0).at == 0.0
    assert Trigger(when="time >= 2").when == "time >= 2"


def test_trigger_rejects_bad_numbers():
    with pytest.raises(ScenarioError):
        Trigger(at=-1.0)
    with pytest.raises(ScenarioError):
        Trigger(at=1.0, duration=0.0)
    with pytest.raises(ScenarioError):
        Trigger(at=1.0, duration=-2.0)


def test_trigger_predicate_forms():
    assert Trigger(at=3.0).predicate(start_time=0.0) is None

    marker = lambda system: True  # noqa: E731
    assert Trigger(when=marker).predicate(start_time=0.0) is marker

    class Clock:
        class sim:
            now = 9.0

    predicate = Trigger(when="time >= 4").predicate(start_time=6.0)
    assert not predicate(Clock)  # 9 < 6 + 4
    Clock.sim.now = 10.5
    assert predicate(Clock)


def test_parse_predicate_height_form():
    class Head:
        height = 31

    class Node:
        @staticmethod
        def head():
            return Head

    class System:
        @staticmethod
        def node(subnet):
            assert subnet == "/root/s0"
            return Node

    predicate = parse_predicate("height >= 30 in /root/s0")
    assert predicate(System)
    Head.height = 29
    assert not predicate(System)


@pytest.mark.parametrize(
    "bad",
    ["", "time > 5", "height >= x in /root/s0", "height >= 5", "frobnicate"],
)
def test_parse_predicate_rejects_garbage(bad):
    with pytest.raises(ScenarioError):
        parse_predicate(bad)


def test_trigger_as_dict_masks_callables():
    as_dict = Trigger(when=lambda s: True, duration=2.0).as_dict()
    assert as_dict == {"at": None, "when": "<callable>", "duration": 2.0}


# ----------------------------------------------------------------------
# Selectors
# ----------------------------------------------------------------------
def test_select_validators_groups():
    system = StubSystem(node_count=4)
    nodes = system.nodes("/root/s0")
    assert select_validators(system, "/root/s0", "all") == nodes
    assert select_validators(system, "/root/s0", None) == nodes
    assert select_validators(system, "/root/s0", "leader") == [nodes[0]]
    # Largest strict minority of 4 is 1, taken from the tail.
    assert select_validators(system, "/root/s0", "minority") == [nodes[3]]
    assert select_validators(system, "/root/s0", "majority") == nodes[:3]
    assert select_validators(system, "/root/s0", 2) == [nodes[2]]
    assert select_validators(system, "/root/s0", [1, 3]) == [nodes[1], nodes[3]]


def test_minority_and_majority_partition_the_cluster():
    for count in (3, 4, 5, 7):
        system = StubSystem(node_count=count)
        minority = select_validators(system, "/root/s0", "minority")
        majority = select_validators(system, "/root/s0", "majority")
        assert len(minority) < len(majority)
        assert sorted(
            node.node_id for node in minority + majority
        ) == sorted(node.node_id for node in system.nodes("/root/s0"))


def test_select_minority_needs_enough_validators():
    with pytest.raises(ScenarioError):
        select_validators(StubSystem(node_count=1), "/root/s0", "minority")


def test_select_rejects_unknown_selector():
    with pytest.raises(ScenarioError):
        select_validators(StubSystem(), "/root/s0", "everyone")


# ----------------------------------------------------------------------
# Inject / heal pairs
# ----------------------------------------------------------------------
def test_partition_fault_heals_its_own_handle():
    system = StubSystem()
    fault = PartitionFault(Trigger(at=1.0, duration=2.0), "/root/s0", select="minority")
    fault.inject(system)
    transport = system.stack.transport
    assert transport.partitions == [("/root/s0#3",)]
    fault.heal(system)
    assert transport.healed == [0]
    fault.heal(system)  # idempotent
    assert transport.healed == [0]


def test_partition_fault_isolate_subnet_cuts_every_validator():
    system = StubSystem(node_count=3)
    fault = PartitionFault(Trigger(at=1.0), "/root/s0", isolate_subnet=True)
    fault.inject(system)
    assert system.stack.transport.partitions == [
        ("/root/s0#0", "/root/s0#1", "/root/s0#2")
    ]


def test_link_degrade_fault_reverts_overrides_on_heal():
    system = StubSystem(node_count=3)
    fault = LinkDegradeFault(
        Trigger(at=1.0, duration=2.0), "/root/s0", select=[2], loss=0.3,
        extra_latency=0.1,
    )
    fault.inject(system)
    links = system.stack.transport.links
    assert links == [(("/root/s0#2",), ("/root/s0#0", "/root/s0#1"), 0.3, 0.1)]
    fault.heal(system)
    assert links[-1] == (("/root/s0#2",), ("/root/s0#0", "/root/s0#1"), 0.0, 0.0)


def test_link_degrade_all_covers_intra_subnet_links():
    system = StubSystem(node_count=3)
    fault = LinkDegradeFault(Trigger(at=1.0), "/root/s0", select="all", loss=0.2)
    fault.inject(system)
    selected, others, loss, _ = system.stack.transport.links[0]
    assert selected == others  # every intra-subnet pair
    assert loss == 0.2


def test_crash_fault_restarts_exactly_the_crashed():
    system = StubSystem(node_count=4)
    nodes = system.nodes("/root/s0")
    fault = CrashFault(Trigger(at=1.0, duration=2.0), "/root/s0", select=[1, 2])
    fault.inject(system)
    assert [node.running for node in nodes] == [True, False, False, True]
    fault.heal(system)
    assert all(node.running for node in nodes)


def test_byzantine_fault_restores_only_added_flags():
    system = StubSystem(node_count=3)
    nodes = system.nodes("/root/s0")
    nodes[0].byzantine = {"withhold_block"}  # pre-existing, must survive
    fault = ByzantineFault(
        Trigger(at=1.0, duration=2.0), "/root/s0",
        behaviours=("withhold_block", "equivocate_vote"), select="all",
    )
    fault.inject(system)
    assert nodes[0].byzantine == {"withhold_block", "equivocate_vote"}
    assert nodes[1].byzantine == {"withhold_block", "equivocate_vote"}
    fault.heal(system)
    assert nodes[0].byzantine == {"withhold_block"}  # kept what it had
    assert nodes[1].byzantine == set()


def test_byzantine_fault_accepts_single_behaviour_string():
    fault = ByzantineFault(Trigger(at=1.0), "/root/s0", behaviours="withhold_vote")
    assert fault.behaviours == ("withhold_vote",)


def test_specialized_byzantine_faults_set_their_vocabulary():
    equivocation = EquivocationFault(Trigger(at=1.0), "/root/s0")
    assert equivocation.behaviours == ("equivocate_checkpoint",)
    assert equivocation.select == "leader"
    withhold = CheckpointWithholdFault(Trigger(at=1.0), "/root/s0")
    assert set(withhold.behaviours) == {
        "withhold_checkpoint_sig", "withhold_checkpoint",
    }


# ----------------------------------------------------------------------
# Spec loading and description
# ----------------------------------------------------------------------
def test_fault_from_spec_round_trip():
    fault = fault_from_spec(
        {
            "kind": "partition",
            "at": 4.0,
            "duration": 8.0,
            "subnet": "/root/s0",
            "select": "minority",
        }
    )
    assert isinstance(fault, PartitionFault)
    assert fault.trigger.at == 4.0
    assert fault.trigger.duration == 8.0
    assert fault.subnet == "/root/s0"
    described = fault.describe()
    assert described["kind"] == "partition"
    assert described["trigger"]["at"] == 4.0
    assert described["select"] == "minority"


def test_fault_from_spec_rejects_unknown_kind_and_bad_kwargs():
    with pytest.raises(ScenarioError):
        fault_from_spec({"kind": "meteor-strike", "at": 1.0})
    with pytest.raises(ScenarioError):
        fault_from_spec({"kind": "crash", "at": 1.0, "subnet": "/root/s0",
                         "warp_factor": 9})


def test_fault_kinds_registry_is_complete():
    assert set(FAULT_KINDS) == {
        "partition", "link-degrade", "crash", "churn", "byzantine",
        "equivocation", "checkpoint-withhold", "forged-checkpoint",
        "reorg", "crossmsg-spam", "engine-swap",
    }


# ----------------------------------------------------------------------
# The injector (against a real simulator, stub faults)
# ----------------------------------------------------------------------
class _ProbeFault(PartitionFault):
    pass


def test_injector_fires_at_triggers_and_heals_after_duration():
    from repro.sim.scheduler import Simulator

    system = StubSystem()
    system.sim = Simulator(seed=1)
    fault = _ProbeFault(Trigger(at=2.0, duration=3.0), "/root/s0")
    injector = FaultInjector(system, [fault]).arm()
    system.sim.run_until(10.0)
    assert fault.injected_at == 2.0
    assert fault.healed_at == 5.0
    events = [(entry["time"], entry["event"]) for entry in injector.log]
    assert events == [(2.0, "inject"), (5.0, "heal")]


def test_injector_polls_predicate_triggers():
    from repro.sim.scheduler import Simulator

    system = StubSystem()
    system.sim = Simulator(seed=1)
    fault = _ProbeFault(Trigger(when="time >= 1.6"), "/root/s0")
    FaultInjector(system, [fault], poll_interval=0.5).arm()
    system.sim.run_until(5.0)
    assert fault.injected_at == 2.0  # first poll tick past 1.6
    assert fault.healed_at is None  # no duration: never healed


def test_injector_disarm_heals_active_revertible_faults():
    from repro.sim.scheduler import Simulator

    system = StubSystem()
    system.sim = Simulator(seed=1)
    bounded = _ProbeFault(Trigger(at=1.0, duration=30.0), "/root/s0")
    permanent = _ProbeFault(Trigger(at=1.0), "/root/s0")
    injector = FaultInjector(system, [bounded, permanent]).arm()
    system.sim.run_until(5.0)
    injector.disarm()
    assert bounded.healed_at == 5.0  # still-open window closed
    assert permanent.healed_at is None  # permanent faults stay

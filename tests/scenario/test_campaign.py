"""Campaign runner and triage CLI tests."""

import json
import random

import pytest

from repro.scenario import report as report_cli
from repro.scenario.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignRunner,
    _jitter_schedule,
)
from repro.scenario.errors import ScenarioError
from repro.scenario.faults import PartitionFault, Trigger
from repro.scenario.spec import (
    Expectation,
    PaymentSpec,
    Scenario,
    SubnetSpec,
    TopologySpec,
    WorkloadSpec,
)


def _tiny(name="tiny-ok", expect=None, faults=None):
    def factory():
        return Scenario(
            name=name,
            topology=TopologySpec(subnets=[SubnetSpec(name="s0")]),
            workload=WorkloadSpec(
                payments=[PaymentSpec(subnet="/root/s0", rate=2.0, senders=2)]
            ),
            faults=list(faults() if faults else []),
            duration=6.0,
            expect=expect or Expectation.safe(),
        )

    return factory


def test_campaign_runs_grid_and_writes_report(tmp_path):
    lines = []
    runner = CampaignRunner(
        "unit",
        [_tiny()],
        seeds=(1, 2),
        out_dir=str(tmp_path),
        progress=lines.append,
    )
    report = runner.run()
    assert report["schema"] == CAMPAIGN_SCHEMA
    assert report["ok"]
    assert report["summary"] == {"clean": 2}
    assert [run["seed"] for run in report["runs"]] == [1, 2]
    assert lines  # progress callback saw every run
    on_disk = json.loads((tmp_path / "CAMPAIGN_unit.json").read_text())
    assert on_disk["name"] == "unit"
    assert on_disk["runs"] == report["runs"]


def test_campaign_needs_a_name():
    with pytest.raises(ScenarioError):
        CampaignRunner("", [_tiny()])


def test_campaign_rejects_bare_scenarios_on_multi_seed(tmp_path):
    bare = _tiny()()
    runner = CampaignRunner(
        "bare", [bare], seeds=(1, 2), out_dir=str(tmp_path)
    )
    with pytest.raises(ScenarioError):
        runner.run()
    # A single-seed unrandomized campaign may take a bare instance.
    single = CampaignRunner("bare1", [bare], seeds=(1,), out_dir=str(tmp_path))
    assert single.run()["ok"]


def test_jitter_is_deterministic_per_campaign_scenario_seed():
    def jittered(key):
        scenario = _tiny(
            faults=lambda: [
                PartitionFault(Trigger(at=4.0, duration=8.0), "/root/s0")
            ]
        )()
        _jitter_schedule(scenario, random.Random(key), spread=0.2)
        trigger = scenario.faults[0].trigger
        return trigger.at, trigger.duration

    assert jittered("c:s:1") == jittered("c:s:1")
    assert jittered("c:s:1") != jittered("c:s:2")
    at, duration = jittered("c:s:1")
    assert 3.2 <= at <= 4.8  # within ±20%
    assert 6.4 <= duration <= 9.6


# ----------------------------------------------------------------------
# The triage CLI
# ----------------------------------------------------------------------
def test_report_cli_passes_ok_campaign(tmp_path, capsys):
    CampaignRunner("ok", [_tiny()], seeds=(1,), out_dir=str(tmp_path)).run()
    path = str(tmp_path / "CAMPAIGN_ok.json")
    assert report_cli.main([path]) == 0
    out = capsys.readouterr().out
    assert "campaign ok: OK" in out
    assert "TRIAGE" not in out


def test_report_cli_flags_unexpected_runs(tmp_path, capsys):
    # A scenario that trips no auditor but *claims* it violates supply:
    # classified UNEXPECTED, so triage must fail the campaign.
    broken = _tiny(name="mislabeled", expect=Expectation.violates("supply"))
    CampaignRunner(
        "bad", [broken], seeds=(1,), out_dir=str(tmp_path),
        postmortem_dir=str(tmp_path / "postmortem"),
    ).run()
    path = str(tmp_path / "CAMPAIGN_bad.json")
    assert report_cli.main([path]) == 1
    out = capsys.readouterr().out
    assert "<-- TRIAGE" in out
    assert "expected violation never fired: supply" in out


def test_report_cli_json_mode(tmp_path, capsys):
    CampaignRunner("js", [_tiny()], seeds=(1,), out_dir=str(tmp_path)).run()
    path = str(tmp_path / "CAMPAIGN_js.json")
    assert report_cli.main([path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"]
    assert payload["campaigns"][0]["name"] == "js"
    assert payload["campaigns"][0]["triage"] == []


def test_report_cli_rejects_wrong_schema(tmp_path):
    path = tmp_path / "CAMPAIGN_zzz.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError):
        report_cli.load_campaign(str(path))


# ----------------------------------------------------------------------
# The canonical library registry
# ----------------------------------------------------------------------
def test_library_registry_names_and_lookup():
    from repro.scenario import library

    names = library.names()
    assert len(names) == len(library.CANONICAL) == 14
    assert "baseline-healthy" in names
    assert "round-desync" in names
    assert library.get("baseline-healthy")().name == "baseline-healthy"
    with pytest.raises(ScenarioError):
        library.get("no-such-scenario")
    # Factories return fresh objects each call (faults are stateful).
    first, second = library.get("checkpoint-withholding")(), library.get(
        "checkpoint-withholding"
    )()
    assert first is not second
    assert first.faults[0] is not second.faults[0]


def test_smoke_subset_is_canonical():
    from repro.scenario import library

    assert set(library.SMOKE) <= set(library.CANONICAL)
    assert library.baseline_healthy in library.SMOKE

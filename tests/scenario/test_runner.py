"""Runner tests: the progress watchdog, digest neutrality, and the
monitor-vs-attack integration pair from the scenario library."""

import os

from repro.scenario import library
from repro.scenario.faults import CrashFault, PartitionFault, Trigger
from repro.scenario.runner import ProgressWatchdog, ScenarioRunner
from repro.scenario.spec import (
    Expectation,
    PaymentSpec,
    Scenario,
    SubnetSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.sim.scheduler import Simulator


# ----------------------------------------------------------------------
# Watchdog (stub system, real simulator)
# ----------------------------------------------------------------------
class _StubSubnet:
    def __init__(self, path):
        self.path = path


class _StubHead:
    def __init__(self, owner):
        self._owner = owner

    @property
    def height(self):
        return self._owner.height


class _StubNode:
    def __init__(self, owner):
        self._head = _StubHead(owner)

    def head(self):
        return self._head


class _StubChain:
    def __init__(self, sim, path):
        self.sim = sim
        self.height = 0
        self.subnet = _StubSubnet(path)
        self.node = _StubNode(self)


def _watchdog_rig(stall_after=3.0):
    sim = Simulator(seed=1)
    chain = _StubChain(sim, "/root/s0")

    class System:
        pass

    system = System()
    system.sim = sim
    system.subnets = [chain.subnet]
    system.nodes_by_subnet = {chain.subnet: [chain.node]}
    watchdog = ProgressWatchdog(system, stall_after=stall_after, interval=1.0)
    return sim, chain, watchdog


def test_watchdog_flags_one_stall_per_episode_and_rearms():
    sim, chain, watchdog = _watchdog_rig(stall_after=3.0)
    watchdog.start()
    # Progress until t=4, then freeze until t=10, resume, freeze again.
    stop_growth = sim.every(1.0, lambda: setattr(chain, "height", chain.height + 1))
    sim.run_until(4.0)
    stop_growth()
    sim.run_until(10.0)
    assert len(watchdog.stalls) == 1  # one episode, flagged once
    assert watchdog.stalled_subnets() == ["/root/s0"]

    chain.height += 1  # progress re-arms the watchdog
    sim.run_until(16.0)
    assert len(watchdog.stalls) == 2  # second episode flagged again
    watchdog.stop()
    final = len(watchdog.stalls)
    sim.run_until(30.0)
    assert len(watchdog.stalls) == final  # stopped watchdog stays quiet


def test_watchdog_tracks_the_best_head_not_the_laggard():
    sim, chain, watchdog = _watchdog_rig(stall_after=3.0)
    laggard = _StubChain(sim, "/root/s0")  # height pinned at 0
    subnet = chain.subnet
    watchdog.system.nodes_by_subnet[subnet] = [chain.node, laggard.node]
    watchdog.start()
    sim.every(1.0, lambda: setattr(chain, "height", chain.height + 1))
    sim.run_until(12.0)
    assert watchdog.stalls == []  # one healthy head is enough


# ----------------------------------------------------------------------
# Digest neutrality of the instrumentation
# ----------------------------------------------------------------------
def _tiny_scenario(name="tiny", **overrides):
    defaults = dict(
        name=name,
        topology=TopologySpec(subnets=[SubnetSpec(name="s0")]),
        workload=WorkloadSpec(
            payments=[PaymentSpec(subnet="/root/s0", rate=2.0, senders=2)]
        ),
        faults=[],
        duration=6.0,
        expect=Expectation.safe(),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def test_monitoring_is_digest_neutral():
    """The monitors, recorder and watchdog observe the run without
    perturbing it: with and without them, the end state digest matches."""

    def digest(monitors):
        runner = ScenarioRunner(_tiny_scenario(), seed=5, monitors=monitors)
        outcome = runner.run()
        assert outcome.verdict == "clean"
        return runner.system.end_state_digest()

    assert digest(monitors=True) == digest(monitors=False)


def test_scenario_runs_are_reproducible():
    def run():
        runner = ScenarioRunner(_tiny_scenario(), seed=7)
        outcome = runner.run()
        return runner.system.end_state_digest(), outcome.heights, outcome.sim

    assert run() == run()


# ----------------------------------------------------------------------
# Attack vs honest twin (the library's canonical pair)
# ----------------------------------------------------------------------
def test_checkpoint_withholding_trips_auditor_honest_twin_stays_clean():
    attack = ScenarioRunner(library.checkpoint_withholding(), seed=3).run()
    assert attack.verdict == "expected-violation"
    assert attack.tripped == ["checkpoint-chain"]
    assert attack.ok

    honest = ScenarioRunner(library.baseline_healthy(), seed=3).run()
    assert honest.verdict == "clean"
    assert honest.tripped == []
    assert honest.violations == []


def test_round_desync_scenario_rides_out_the_loss_window():
    """The satellite regression scenario for the Tendermint liveness
    stall: 50% loss for 12s must end clean — no stall, no violation."""
    outcome = ScenarioRunner(library.round_desync(), seed=1).run()
    assert outcome.verdict == "clean"
    assert outcome.ok
    assert outcome.stalls == []


def test_unexpected_violation_dumps_postmortem_bundle(tmp_path):
    """Mislabel an attack as safe: the runner must flag it UNEXPECTED and
    leave postmortem evidence behind."""
    scenario = library.forged_extraction()
    scenario.expect = Expectation.safe()
    outcome = ScenarioRunner(
        scenario, seed=3, postmortem_dir=str(tmp_path)
    ).run()
    assert outcome.verdict == "unexpected-violation"
    assert not outcome.ok
    assert "supply" in outcome.tripped
    assert outcome.bundles, "no postmortem bundle dumped"
    for bundle in outcome.bundles:
        assert os.path.exists(bundle)
    # The scenario-tagged dump (on top of per-violation dumps) is present.
    assert any(
        f"scenario:{scenario.name}" in name
        for name in os.listdir(tmp_path)
    ) or outcome.bundles


def test_fault_log_records_inject_and_heal():
    from repro.scenario.faults import LinkDegradeFault

    scenario = _tiny_scenario(
        faults=[
            LinkDegradeFault(
                Trigger(at=1.0, duration=2.0), "/root/s0", extra_latency=0.05
            )
        ],
        duration=6.0,
    )
    outcome = ScenarioRunner(scenario, seed=11).run()
    events = [(entry["event"], entry["kind"]) for entry in outcome.fault_log]
    assert events == [("inject", "link-degrade"), ("heal", "link-degrade")]
    assert outcome.verdict == "clean"


def test_liveness_stall_writes_standalone_stall_reports(tmp_path, capsys):
    """An undeclared full-subnet stall: the verdict is liveness-stall and
    each stall report is saved standalone (the CI artifact shape) with
    schema repro.stall/v1, renderable by the postmortem CLI."""
    import json

    from repro.telemetry.postmortem import main as postmortem_main

    scenario = _tiny_scenario(
        name="wedged",
        faults=[CrashFault(Trigger(at=2.0), "/root/s0", select="all")],
        duration=16.0,
    )
    outcome = ScenarioRunner(
        scenario, seed=13, postmortem_dir=str(tmp_path)
    ).run()
    assert outcome.verdict == "liveness-stall"
    assert outcome.stall_files
    for path in outcome.stall_files:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["schema"] == "repro.stall/v1"
        assert report["subnet"] == "/root/s0"
        assert postmortem_main([path]) == 0
    assert "stall report: /root/s0" in capsys.readouterr().out
    # The outcome dict (what lands in campaign JSON) carries the paths.
    assert outcome.as_dict()["stall_files"] == outcome.stall_files


def test_degrades_expectation_matches_stall():
    """A permanent full-subnet crash is a declared degradation: the
    watchdog's stall satisfies the SLO expectation instead of failing."""
    scenario = _tiny_scenario(
        name="declared-stall",
        faults=[CrashFault(Trigger(at=2.0), "/root/s0", select="all")],
        duration=16.0,
        expect=Expectation.degrades("progress:/root/s0"),
    )
    outcome = ScenarioRunner(scenario, seed=13).run()
    assert outcome.verdict == "expected-violation"
    assert outcome.ok
    assert outcome.stalls

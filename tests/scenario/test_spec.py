"""Unit tests for scenario specs: expectations, validation, TOML loading."""

import pytest

from repro.scenario.errors import ScenarioError
from repro.scenario.faults import CrashFault, PartitionFault, Trigger
from repro.scenario.spec import (
    Expectation,
    PaymentSpec,
    Scenario,
    SubnetSpec,
    TopologySpec,
    WorkloadSpec,
    loads_toml,
    scenario_from_dict,
)


# ----------------------------------------------------------------------
# Expectations
# ----------------------------------------------------------------------
def test_expectation_constructors_and_render():
    assert Expectation.safe().render() == "safe"
    violates = Expectation.violates("supply", "finality", tolerate=("membership",))
    assert violates.auditors == ("supply", "finality")
    assert violates.tolerate == ("membership",)
    assert violates.render() == "violates(supply, finality)"
    degrades = Expectation.degrades("progress:/root/s0")
    assert degrades.render() == "degrades(progress:/root/s0)"


def test_expectation_parse_round_trip():
    for expectation in (
        Expectation.safe(),
        Expectation.violates("supply"),
        Expectation.violates("supply", "finality"),
        Expectation.degrades("progress:/root/s0"),
    ):
        assert Expectation.parse(expectation.render()) == expectation


def test_expectation_parse_keeps_tolerate():
    parsed = Expectation.parse("violates(supply)", tolerate=("checkpoint-chain",))
    assert parsed.tolerate == ("checkpoint-chain",)


@pytest.mark.parametrize(
    "bad",
    ["", "violates()", "degrades(a, b)", "degrades(latency:/root)", "maybe-safe"],
)
def test_expectation_parse_rejects(bad):
    with pytest.raises(ScenarioError):
        Expectation.parse(bad)


def test_expectation_violates_needs_an_auditor():
    with pytest.raises(ScenarioError):
        Expectation.violates()


# ----------------------------------------------------------------------
# Scenario validation
# ----------------------------------------------------------------------
def _scenario(**overrides):
    defaults = dict(
        name="unit",
        topology=TopologySpec(subnets=[SubnetSpec(name="s0")]),
        workload=WorkloadSpec(payments=[PaymentSpec(subnet="/root/s0")]),
        faults=[],
        duration=10.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def test_subnet_spec_path_derivation():
    assert SubnetSpec(name="s0").path == "/root/s0"
    assert SubnetSpec(name="deep", parent="/root/s0").path == "/root/s0/deep"


def test_scenario_requires_a_name():
    with pytest.raises(ScenarioError):
        _scenario(name="")


def test_scenario_rejects_non_fault_entries():
    with pytest.raises(ScenarioError):
        _scenario(faults=[{"kind": "partition"}])


def test_scenario_rejects_fault_on_unknown_subnet():
    fault = CrashFault(Trigger(at=1.0), "/root/elsewhere")
    with pytest.raises(ScenarioError) as excinfo:
        _scenario(faults=[fault])
    assert "/root/elsewhere" in str(excinfo.value)


def test_scenario_accepts_faults_on_root_and_declared_subnets():
    scenario = _scenario(
        faults=[
            PartitionFault(Trigger(at=1.0, duration=2.0), "/root/s0"),
            CrashFault(Trigger(at=1.0, duration=2.0), "/root", select=[1]),
        ]
    )
    as_dict = scenario.as_dict()
    assert as_dict["name"] == "unit"
    assert [fault["kind"] for fault in as_dict["faults"]] == ["partition", "crash"]
    assert as_dict["expect"]["kind"] == "safe"


# ----------------------------------------------------------------------
# Dict / TOML loading
# ----------------------------------------------------------------------
def _document():
    return {
        "scenario": {
            "name": "doc",
            "description": "from a document",
            "duration": 12.0,
            "expect": "violates(supply)",
            "tolerate": ["checkpoint-chain"],
        },
        "topology": {
            "root_validators": 3,
            "subnets": [{"name": "s0", "validators": 4, "engine": "tendermint"}],
        },
        "workload": {
            "payments": [{"subnet": "/root/s0", "rate": 2.0}],
            "crossnet": [{"from_subnet": "/root/s0", "to_subnet": "/root"}],
        },
        "faults": [
            {"kind": "partition", "at": 4.0, "duration": 8.0, "subnet": "/root/s0"},
        ],
    }


def test_scenario_from_dict_builds_everything():
    scenario = scenario_from_dict(_document())
    assert scenario.name == "doc"
    assert scenario.duration == 12.0
    assert scenario.expect == Expectation.violates(
        "supply", tolerate=("checkpoint-chain",)
    )
    assert scenario.topology.subnets[0].engine == "tendermint"
    assert scenario.workload.payments[0].rate == 2.0
    assert scenario.workload.crossnet[0].to_subnet == "/root"
    assert isinstance(scenario.faults[0], PartitionFault)
    assert scenario.faults[0].trigger.duration == 8.0


def test_scenario_from_dict_defaults_to_safe_single_subnet():
    scenario = scenario_from_dict({"scenario": {"name": "bare"}})
    assert scenario.expect == Expectation.safe()
    assert [spec.path for spec in scenario.topology.subnets] == ["/root/s0"]


def test_scenario_from_dict_rejects_unknown_sections_and_keys():
    document = _document()
    document["extras"] = {}
    with pytest.raises(ScenarioError):
        scenario_from_dict(document)

    document = _document()
    document["workload"]["bulk"] = []
    with pytest.raises(ScenarioError):
        scenario_from_dict(document)

    document = _document()
    document["scenario"]["tempo"] = 3
    with pytest.raises(ScenarioError):
        scenario_from_dict(document)


def test_loads_toml_scenario():
    pytest.importorskip("tomllib")
    scenario = loads_toml(
        """
        [scenario]
        name = "toml-case"
        duration = 15.0
        expect = "safe"

        [topology]
        root_validators = 3

        [[topology.subnets]]
        name = "s0"
        validators = 3

        [[workload.payments]]
        subnet = "/root/s0"
        rate = 4.0

        [[faults]]
        kind = "link-degrade"
        at = 3.0
        duration = 5.0
        subnet = "/root/s0"
        loss = 0.1
        """
    )
    assert scenario.name == "toml-case"
    assert scenario.faults[0].KIND == "link-degrade"
    assert scenario.faults[0].loss == 0.1

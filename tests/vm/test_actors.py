"""Unit tests for actor dispatch, nested sends and the built-in actors."""

import pytest

from repro.crypto.keys import Address, KeyPair
from repro.vm import VM, Actor, ActorError, ActorRegistry, ExitCode, Message, export
from repro.vm.builtin import default_registry
from repro.vm.builtin.reward import REWARD_ACTOR_ADDRESS, RewardActor
from repro.vm.builtin.token_faucet import FaucetActor
from repro.vm.vm import SYSTEM_ADDRESS


class CounterActor(Actor):
    CODE = "counter"

    @export
    def constructor(self, ctx, start: int = 0) -> None:
        ctx.state_set("count", start)

    @export
    def increment(self, ctx, by: int = 1) -> int:
        count = ctx.state_get("count") + by
        ctx.state_set("count", count)
        ctx.emit("incremented", count)
        return count

    @export
    def fail_after_write(self, ctx) -> None:
        ctx.state_set("count", 999_999)
        ctx.abort(ExitCode.USR_ASSERTION_FAILED, "deliberate")

    def not_exported(self, ctx) -> None:  # pragma: no cover
        raise AssertionError("must never be callable")


class ProxyActor(Actor):
    CODE = "proxy"

    @export
    def forward(self, ctx, target: str, method: str, tolerate_failure: bool = False):
        receipt = ctx.send(Address(target), method)
        if not receipt.ok and not tolerate_failure:
            ctx.abort(receipt.exit_code, f"forwarded call failed: {receipt.error}")
        return receipt.exit_code.value


@pytest.fixture
def vm():
    registry = default_registry()
    registry.register(CounterActor)
    registry.register(ProxyActor)
    return VM(registry=registry)


@pytest.fixture
def user():
    return KeyPair("user").address


def test_constructor_runs_on_create(vm):
    addr = Address.actor(10)
    receipt = vm.create_actor(addr, "counter", params={"start": 5})
    assert receipt.ok
    assert vm.actor_code(addr) == "counter"


def test_method_dispatch_and_return_value(vm, user):
    addr = Address.actor(10)
    vm.create_actor(addr, "counter")
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(from_addr=user, to_addr=addr, value=0, method="increment", params={"by": 3})
    )
    assert receipt.ok
    assert receipt.return_value == 3


def test_events_recorded_in_receipt(vm, user):
    addr = Address.actor(10)
    vm.create_actor(addr, "counter")
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(from_addr=user, to_addr=addr, value=0, method="increment")
    )
    assert ("incremented", 1) in receipt.events


def test_unknown_method_rejected(vm, user):
    addr = Address.actor(10)
    vm.create_actor(addr, "counter")
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(from_addr=user, to_addr=addr, value=0, method="not_exported")
    )
    assert receipt.exit_code == ExitCode.SYS_INVALID_METHOD


def test_abort_reverts_writes(vm, user):
    addr = Address.actor(10)
    vm.create_actor(addr, "counter", params={"start": 7})
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(from_addr=user, to_addr=addr, value=0, method="fail_after_write")
    )
    assert receipt.exit_code == ExitCode.USR_ASSERTION_FAILED
    check = vm.apply_implicit(SYSTEM_ADDRESS, addr, "increment", {"by": 0})
    assert check.return_value == 7  # the 999_999 write was reverted


def test_abort_reverts_value_transfer(vm, user):
    addr = Address.actor(10)
    vm.create_actor(addr, "counter")
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(from_addr=user, to_addr=addr, value=100, method="fail_after_write")
    )
    assert not receipt.ok
    assert vm.balance_of(user) == 1000


def test_nested_send_success(vm, user):
    counter = Address.actor(10)
    proxy = Address.actor(11)
    vm.create_actor(counter, "counter")
    vm.create_actor(proxy, "proxy")
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(
            from_addr=user, to_addr=proxy, value=0, method="forward",
            params={"target": counter.raw, "method": "increment"},
        )
    )
    assert receipt.ok
    check = vm.apply_implicit(SYSTEM_ADDRESS, counter, "increment", {"by": 0})
    assert check.return_value == 1


def test_nested_send_failure_reverts_only_callee(vm, user):
    counter = Address.actor(10)
    proxy = Address.actor(11)
    vm.create_actor(counter, "counter", params={"start": 3})
    vm.create_actor(proxy, "proxy")
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(
            from_addr=user, to_addr=proxy, value=0, method="forward",
            params={
                "target": counter.raw,
                "method": "fail_after_write",
                "tolerate_failure": True,
            },
        )
    )
    assert receipt.ok  # the proxy tolerated the failure
    assert receipt.return_value == ExitCode.USR_ASSERTION_FAILED.value
    check = vm.apply_implicit(SYSTEM_ADDRESS, counter, "increment", {"by": 0})
    assert check.return_value == 3  # callee write reverted


def test_nested_failure_propagates_when_not_tolerated(vm, user):
    counter = Address.actor(10)
    proxy = Address.actor(11)
    vm.create_actor(counter, "counter")
    vm.create_actor(proxy, "proxy")
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(
            from_addr=user, to_addr=proxy, value=0, method="forward",
            params={"target": counter.raw, "method": "fail_after_write"},
        )
    )
    assert receipt.exit_code == ExitCode.USR_ASSERTION_FAILED


def test_create_actor_twice_fails(vm):
    addr = Address.actor(10)
    vm.create_actor(addr, "counter")
    with pytest.raises(ActorError):
        vm.create_actor(addr, "counter")


def test_registry_rejects_duplicate_code():
    registry = ActorRegistry()
    registry.register(CounterActor)
    registry.register(CounterActor)  # same class is fine

    class Impostor(Actor):
        CODE = "counter"

    with pytest.raises(ValueError):
        registry.register(Impostor)


def test_registry_rejects_non_actor():
    registry = ActorRegistry()
    with pytest.raises(TypeError):
        registry.register(dict)


def test_reward_actor_pays_subsidy(vm):
    miner = KeyPair("miner").address
    vm.create_actor(REWARD_ACTOR_ADDRESS, "reward", params={"per_block": 10}, balance=25)
    first = vm.apply_implicit(SYSTEM_ADDRESS, REWARD_ACTOR_ADDRESS, "award", {"miner": miner.raw})
    assert first.ok and first.return_value == 10
    second = vm.apply_implicit(SYSTEM_ADDRESS, REWARD_ACTOR_ADDRESS, "award", {"miner": miner.raw})
    third = vm.apply_implicit(SYSTEM_ADDRESS, REWARD_ACTOR_ADDRESS, "award", {"miner": miner.raw})
    assert third.return_value == 5  # reserve exhausted
    assert vm.balance_of(miner) == 25


def test_reward_actor_rejects_user_calls(vm, user):
    vm.create_actor(REWARD_ACTOR_ADDRESS, "reward", params={"per_block": 10}, balance=100)
    vm.mint(user, 1000)
    receipt = vm.apply_message(
        Message(from_addr=user, to_addr=REWARD_ACTOR_ADDRESS, value=0, method="award",
                params={"miner": user.raw})
    )
    assert receipt.exit_code == ExitCode.USR_FORBIDDEN


def test_faucet_drips_once(vm, user):
    faucet = Address.actor(20)
    vm.create_actor(faucet, "faucet", params={"grant": 100}, balance=150)
    vm.mint(user, 1000)
    first = vm.apply_message(Message(from_addr=user, to_addr=faucet, value=0, method="drip"))
    assert first.ok and first.return_value == 100
    again = vm.apply_message(Message(from_addr=user, to_addr=faucet, value=0, method="drip", nonce=1))
    assert again.exit_code == ExitCode.USR_FORBIDDEN


def test_faucet_dry(vm, user):
    faucet = Address.actor(20)
    vm.create_actor(faucet, "faucet", params={"grant": 100}, balance=50)
    vm.mint(user, 1000)
    receipt = vm.apply_message(Message(from_addr=user, to_addr=faucet, value=0, method="drip"))
    assert receipt.exit_code == ExitCode.USR_INSUFFICIENT_FUNDS


def test_default_constructor_rejects_params(vm):
    addr = Address.actor(30)
    receipt_ok = vm.create_actor(addr, Actor.CODE)
    assert receipt_ok.ok
    addr2 = Address.actor(31)
    receipt_bad = vm.create_actor(addr2, Actor.CODE, params={"junk": 1})
    assert receipt_bad.exit_code == ExitCode.USR_ILLEGAL_ARGUMENT

"""Unit tests for the VM: balances, nonces, transactional application."""

import pytest

from repro.crypto.keys import Address, KeyPair
from repro.vm import VM, Actor, ActorError, ExitCode, Message, export
from repro.vm.builtin import default_registry
from repro.vm.vm import BURN_ADDRESS, SYSTEM_ADDRESS


@pytest.fixture
def vm():
    return VM(registry=default_registry())


@pytest.fixture
def alice():
    return KeyPair("alice").address


@pytest.fixture
def bob():
    return KeyPair("bob").address


def test_mint_and_balance(vm, alice):
    vm.mint(alice, 100)
    assert vm.balance_of(alice) == 100
    assert vm.total_minted == 100


def test_plain_send_transfers_value(vm, alice, bob):
    vm.mint(alice, 100)
    receipt = vm.apply_message(Message(from_addr=alice, to_addr=bob, value=30))
    assert receipt.ok
    assert vm.balance_of(alice) == 70
    assert vm.balance_of(bob) == 30


def test_insufficient_funds_rejected(vm, alice, bob):
    vm.mint(alice, 10)
    receipt = vm.apply_message(Message(from_addr=alice, to_addr=bob, value=30))
    assert receipt.exit_code == ExitCode.SYS_INSUFFICIENT_FUNDS
    assert vm.balance_of(alice) == 10
    assert vm.balance_of(bob) == 0


def test_nonce_must_match(vm, alice, bob):
    vm.mint(alice, 100)
    bad = vm.apply_message(Message(from_addr=alice, to_addr=bob, value=1, nonce=5))
    assert bad.exit_code == ExitCode.SYS_SENDER_STATE_INVALID
    ok = vm.apply_message(Message(from_addr=alice, to_addr=bob, value=1, nonce=0))
    assert ok.ok
    replay = vm.apply_message(Message(from_addr=alice, to_addr=bob, value=1, nonce=0))
    assert replay.exit_code == ExitCode.SYS_SENDER_STATE_INVALID


def test_nonce_increments_even_on_failure(vm, alice, bob):
    vm.mint(alice, 10)
    failed = vm.apply_message(Message(from_addr=alice, to_addr=bob, value=100, nonce=0))
    assert not failed.ok
    assert vm.nonce_of(alice) == 1


def test_burn_moves_to_burn_address(vm, alice):
    vm.mint(alice, 100)
    vm.burn(alice, 40)
    assert vm.balance_of(alice) == 60
    assert vm.balance_of(BURN_ADDRESS) == 40
    assert vm.total_burned == 40


def test_transfer_rejects_negative(vm, alice, bob):
    vm.mint(alice, 100)
    with pytest.raises(ActorError):
        vm.transfer(alice, bob, -5)


def test_self_transfer_is_noop(vm, alice):
    vm.mint(alice, 100)
    vm.transfer(alice, alice, 50)
    assert vm.balance_of(alice) == 100


def test_message_validation():
    alice, bob = KeyPair("a").address, KeyPair("b").address
    with pytest.raises(ValueError):
        Message(from_addr=alice, to_addr=bob, value=-1)
    with pytest.raises(ValueError):
        Message(from_addr=alice, to_addr=bob, value=0, nonce=-1)
    with pytest.raises(ValueError):
        Message(from_addr=alice, to_addr=bob, value=0, gas_limit=0)


def test_signed_message_roundtrip():
    from repro.vm.message import SignedMessage

    keypair = KeyPair("alice")
    message = Message(from_addr=keypair.address, to_addr=KeyPair("bob").address, value=5)
    signed = SignedMessage.create(message, keypair)
    assert signed.verify_signature()


def test_signed_message_wrong_signer_rejected():
    from repro.vm.message import SignedMessage

    alice, bob = KeyPair("alice"), KeyPair("bob")
    message = Message(from_addr=alice.address, to_addr=bob.address, value=5)
    with pytest.raises(ValueError):
        SignedMessage.create(message, bob)


def test_gas_fee_paid_to_miner(alice, bob):
    vm = VM(registry=default_registry(), gas_price=1)
    miner = KeyPair("miner").address
    vm.mint(alice, 10_000_000)
    receipt = vm.apply_message(Message(from_addr=alice, to_addr=bob, value=10), miner=miner)
    assert receipt.ok
    assert receipt.gas_used > 0
    assert vm.balance_of(miner) == receipt.gas_used


def test_gas_fee_requires_headroom(alice, bob):
    vm = VM(registry=default_registry(), gas_price=1)
    vm.mint(alice, 50)  # cannot cover value + max fee
    receipt = vm.apply_message(
        Message(from_addr=alice, to_addr=bob, value=10, gas_limit=1000),
        miner=KeyPair("m").address,
    )
    assert receipt.exit_code == ExitCode.SYS_INSUFFICIENT_FUNDS


def test_out_of_gas_reverts(vm, alice, bob):
    vm.mint(alice, 100)
    receipt = vm.apply_message(
        Message(from_addr=alice, to_addr=bob, value=10, gas_limit=150)
    )
    assert receipt.exit_code == ExitCode.SYS_OUT_OF_GAS
    assert vm.balance_of(bob) == 0


def test_implicit_message_skips_nonce(vm, alice):
    vm.mint(SYSTEM_ADDRESS, 100)
    receipt = vm.apply_implicit(SYSTEM_ADDRESS, alice, "send", value=25)
    assert receipt.ok
    assert vm.balance_of(alice) == 25
    assert vm.nonce_of(SYSTEM_ADDRESS) == 0


def test_state_root_changes_with_state(vm, alice):
    root_before = vm.state_root()
    vm.mint(alice, 1)
    assert vm.state_root() != root_before


def test_copy_is_independent(vm, alice):
    vm.mint(alice, 100)
    clone = vm.copy()
    clone.mint(alice, 1)
    assert vm.balance_of(alice) == 100
    assert clone.balance_of(alice) == 101
    assert vm.state_root() != clone.state_root()

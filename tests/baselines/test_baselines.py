"""Tests for the single-chain and sharded baselines."""

import pytest

from repro.baselines import (
    ShardedBaseline,
    SingleChainBaseline,
    shard_compromise_probability,
)
from repro.workloads import PaymentWorkload, sender_fund_spec


def test_single_chain_produces_blocks_and_commits_txs():
    funds = sender_fund_spec(4, scope="sc")
    baseline = SingleChainBaseline(seed=3, validators=3, block_time=0.5,
                                   wallet_funds=funds).start()
    senders = [baseline.wallets[name] for name in funds]
    workload = PaymentWorkload(baseline.sim, baseline.nodes, senders, rate=20.0).start()
    baseline.run_for(20.0)
    workload.stop()
    assert baseline.committed_tx_count() > 100
    assert baseline.throughput() > 5.0
    assert workload.stats.committed > 100
    assert workload.stats.latency_percentile(50) < 5.0


def test_single_chain_throughput_caps_at_block_capacity():
    funds = sender_fund_spec(4, scope="cap")
    baseline = SingleChainBaseline(
        seed=5, validators=3, block_time=0.5, max_block_messages=5,
        wallet_funds=funds,
    ).start()
    senders = [baseline.wallets[name] for name in funds]
    PaymentWorkload(baseline.sim, baseline.nodes, senders, rate=100.0).start()
    baseline.run_for(20.0)
    # Capacity: 5 msgs / 0.5 s = 10 tx/s.
    assert baseline.throughput() <= 10.5


def test_sharded_baseline_runs_all_shards():
    funds = sender_fund_spec(4, scope="sh")
    baseline = ShardedBaseline(
        seed=7, shards=3, validators_per_shard=3, block_time=0.5,
        reshuffle_interval=1000.0, wallet_funds=funds,
    ).start()
    baseline.run_for(10.0)
    for shard in range(3):
        assert baseline.node(shard).head().height >= 8


def test_sharded_reshuffle_pauses_and_resumes():
    funds = sender_fund_spec(2, scope="shr")
    baseline = ShardedBaseline(
        seed=9, shards=2, validators_per_shard=3, block_time=0.5,
        reshuffle_interval=10.0, reshuffle_downtime=2.0, wallet_funds=funds,
    ).start()
    baseline.run_for(35.0)
    assert baseline.reshuffles == 3
    assert baseline.downtime_total == pytest.approx(3 * 2.0 * 2)
    # Chains survive reshuffles and keep advancing.
    for shard in range(2):
        assert baseline.node(shard).head().height > 20


def test_sharded_validator_sets_change_on_reshuffle():
    baseline = ShardedBaseline(
        seed=11, shards=2, validators_per_shard=4,
        reshuffle_interval=5.0, reshuffle_downtime=0.5,
    ).start()
    before = [n.keypair.address for n in baseline.shard_nodes[0]]
    baseline.run_for(6.0)
    after = [n.keypair.address for n in baseline.shard_nodes[0]]
    assert set(before) != set(after)


def test_shard_for_is_deterministic():
    baseline = ShardedBaseline(seed=13, shards=4, validators_per_shard=2,
                               reshuffle_interval=1000.0)
    assert baseline.shard_for("f1abc") == baseline.shard_for("f1abc")
    assert 0 <= baseline.shard_for("f1xyz") < 4


def test_compromise_probability_monotone_in_adversary():
    p_small = shard_compromise_probability(64, 8, 0.10, trials=4000)
    p_large = shard_compromise_probability(64, 8, 0.30, trials=4000)
    assert p_small < p_large


def test_compromise_probability_grows_with_shard_count():
    p_few = shard_compromise_probability(64, 2, 0.25, trials=4000)
    p_many = shard_compromise_probability(64, 16, 0.25, trials=4000)
    assert p_many > p_few


def test_compromise_probability_bounds():
    assert shard_compromise_probability(16, 4, 0.0, trials=500) == 0.0
    assert shard_compromise_probability(16, 4, 0.9, trials=500) > 0.99

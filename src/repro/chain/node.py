"""Back-compat shim: the generic validator node lives in :mod:`repro.runtime`.

The single-subnet node implementation moved to
:class:`repro.runtime.node.NodeRuntime` when the node/network stack was
unified; ``ChainNode`` remains as an alias so existing imports and
subclasses keep working.
"""

from __future__ import annotations

from repro.runtime.node import NodeRuntime, subnet_topic


class ChainNode(NodeRuntime):
    """Alias of :class:`~repro.runtime.node.NodeRuntime` (historic name)."""


__all__ = ["ChainNode", "NodeRuntime", "subnet_topic"]

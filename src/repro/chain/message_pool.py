"""The subnet-internal message pool (mempool).

Nodes keep "an internal pool to track unverified messages originating in and
targeting the subnet" (§IV-B).  Messages are keyed by (sender, nonce);
selection returns, per sender, a gap-free nonce run starting at the sender's
current chain nonce so every selected message is applicable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.crypto.cid import CID
from repro.crypto.keys import Address
from repro.vm.message import SignedMessage


class MessagePool:
    """Pending user messages, with nonce-aware block selection."""

    def __init__(self, capacity: int = 10_000) -> None:
        self.capacity = capacity
        self._by_sender: dict[Address, dict[int, SignedMessage]] = {}
        self._cids: set[CID] = set()

    def __len__(self) -> int:
        return len(self._cids)

    def add(self, signed: SignedMessage) -> bool:
        """Add a verified-signature message; returns False on dup/invalid/full."""
        cid = signed.cid
        if cid in self._cids:
            return False
        if len(self._cids) >= self.capacity:
            return False
        if not signed.verify_signature():
            return False
        sender_queue = self._by_sender.setdefault(signed.message.from_addr, {})
        nonce = signed.message.nonce
        if nonce in sender_queue:
            return False  # first-seen wins; no replace-by-fee in this model
        sender_queue[nonce] = signed
        self._cids.add(cid)
        return True

    def has(self, cid: CID) -> bool:
        return cid in self._cids

    def select(
        self,
        nonce_of: Callable[[Address], int],
        max_messages: int = 500,
    ) -> list:
        """Pick up to *max_messages* applicable messages for a new block.

        For each sender, takes the consecutive nonce run starting at the
        sender's current chain nonce.  Senders are visited in address order
        for determinism; the run is interleaved round-robin so one spammy
        sender cannot monopolise a block.
        """
        runs = []
        for sender in sorted(self._by_sender):
            queue = self._by_sender[sender]
            next_nonce = nonce_of(sender)
            run = []
            while next_nonce in queue:
                run.append(queue[next_nonce])
                next_nonce += 1
            if run:
                runs.append(run)
        selected: list[SignedMessage] = []
        index = 0
        while len(selected) < max_messages and runs:
            runs = [run for run in runs if index < len(run)]
            for run in runs:
                if index < len(run) and len(selected) < max_messages:
                    selected.append(run[index])
            index += 1
        return selected

    def remove_included(self, messages: Iterable[SignedMessage]) -> int:
        """Drop messages that a committed block included; returns count."""
        removed = 0
        for signed in messages:
            queue = self._by_sender.get(signed.message.from_addr)
            if not queue:
                continue
            existing = queue.get(signed.message.nonce)
            if existing is not None and existing.cid == signed.cid:
                del queue[signed.message.nonce]
                self._cids.discard(signed.cid)
                removed += 1
            if not queue:
                self._by_sender.pop(signed.message.from_addr, None)
        return removed

    def drop_stale(self, nonce_of: Callable[[Address], int]) -> int:
        """Drop messages whose nonce is below the sender's chain nonce.

        Called after commits/reorgs: such messages can never apply again.
        """
        dropped = 0
        for sender in list(self._by_sender):
            floor = nonce_of(sender)
            queue = self._by_sender[sender]
            for nonce in [n for n in queue if n < floor]:
                self._cids.discard(queue[nonce].cid)
                del queue[nonce]
                dropped += 1
            if not queue:
                del self._by_sender[sender]
        return dropped

    def pending_for(self, sender: Address) -> list:
        """All pending messages from *sender*, nonce order."""
        queue = self._by_sender.get(sender, {})
        return [queue[n] for n in sorted(queue)]

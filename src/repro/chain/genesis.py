"""Genesis block construction.

Spawning a subnet "instantiates a new independent state with all its
subnet-specific requirements to operate independently … a new mempool
instance, a new instance of the Virtual Machine, as well as any other
additional module required by the consensus" (§III-A).  ``build_genesis``
produces exactly that: a fresh VM with system actors and initial
allocations, plus the height-0 block committing its state root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.keys import Address
from repro.chain.block import BlockHeader, FullBlock, ZERO_CID
from repro.vm.actor import ActorRegistry
from repro.vm.builtin import default_registry
from repro.vm.builtin.reward import REWARD_ACTOR_ADDRESS
from repro.vm.vm import VM

GENESIS_MINER = Address.actor(1)


@dataclass
class GenesisParams:
    """Everything needed to instantiate a subnet's chain.

    ``allocations`` maps addresses to initial balances (in the subnet these
    come from cross-net fund injections; the rootnet's genesis allocation is
    the network's initial token supply).  ``system_actors`` is a list of
    (address, code, constructor-params, balance) created in order.
    """

    subnet_id: str = "/root"
    allocations: dict = field(default_factory=dict)
    system_actors: list = field(default_factory=list)
    block_reward: int = 0
    reward_reserve: int = 0
    gas_price: int = 0
    timestamp: float = 0.0


def build_genesis(
    params: GenesisParams,
    registry: Optional[ActorRegistry] = None,
) -> tuple:
    """Return ``(genesis_block, vm)`` for a new chain."""
    vm = VM(
        subnet_id=params.subnet_id,
        registry=registry or default_registry(),
        gas_price=params.gas_price,
    )
    if params.block_reward or params.reward_reserve:
        vm.create_actor(
            REWARD_ACTOR_ADDRESS,
            "reward",
            params={"per_block": params.block_reward},
            balance=params.reward_reserve,
        )
    for address, code, actor_params, balance in params.system_actors:
        receipt = vm.create_actor(address, code, params=actor_params, balance=balance)
        if not receipt.ok:
            raise RuntimeError(
                f"genesis actor {code} at {address} failed: {receipt.error}"
            )
    for address, balance in sorted(params.allocations.items(), key=lambda kv: kv[0].raw):
        vm.mint(address, balance)

    header = BlockHeader(
        subnet_id=params.subnet_id,
        height=0,
        parent=ZERO_CID,
        state_root=vm.state_root(),
        messages_root=FullBlock.compute_messages_root((), ()),
        timestamp=params.timestamp,
        miner=GENESIS_MINER,
        consensus_data={"genesis": True},
    )
    return FullBlock(header=header), vm

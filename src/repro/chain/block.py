"""Block headers and full blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.crypto.cid import CID, cached_cid
from repro.crypto.keys import Address
from repro.crypto.merkle import MerkleTree

ZERO_CID = CID(b"\x00" * 32)


@dataclass(frozen=True)
class BlockHeader:
    """A subnet chain block header.

    ``consensus_data`` carries engine-specific fields (round numbers, PoW
    ticket values, proposer signatures) as a plain dict so the chain layer
    stays engine-agnostic.
    """

    subnet_id: str
    height: int
    parent: CID
    state_root: CID
    messages_root: CID
    timestamp: float
    miner: Address
    consensus_data: dict = field(default_factory=dict)

    def to_canonical(self):
        return (
            self.subnet_id,
            self.height,
            self.parent.to_canonical(),
            self.state_root.to_canonical(),
            self.messages_root.to_canonical(),
            self.timestamp,
            self.miner.raw,
            self.consensus_data,
        )

    @property
    def cid(self) -> CID:
        # Headers are immutable and hashed constantly (fork choice, ancestry
        # walks, gossip dedup): cache the CID on first computation.
        return cached_cid(self)

    @property
    def is_genesis(self) -> bool:
        return self.height == 0 and self.parent == ZERO_CID


@dataclass(frozen=True)
class FullBlock:
    """A header plus its message payloads.

    ``messages`` are user-signed messages from the subnet mempool;
    ``cross_messages`` are cross-net messages proposed by the consensus from
    the cross-msg pool (§IV-B: "Blocks in subnets include both messages
    originated within the subnet and cross-msgs targeting (or traversing)
    the subnet").
    """

    header: BlockHeader
    messages: tuple = field(default_factory=tuple)
    cross_messages: tuple = field(default_factory=tuple)

    @property
    def cid(self) -> CID:
        return self.header.cid

    @property
    def height(self) -> int:
        return self.header.height

    def to_canonical(self):
        return (
            self.header.to_canonical(),
            tuple(m.to_canonical() for m in self.messages),
            tuple(m.to_canonical() for m in self.cross_messages),
        )

    @staticmethod
    def compute_messages_root(messages, cross_messages) -> CID:
        """Commitment over both message lists, stored in the header."""
        leaves = [("msg", m.cid.to_canonical()) for m in messages]
        leaves += [("cross", m.cid.to_canonical()) for m in cross_messages]
        return MerkleTree(leaves).root_cid

    def messages_root_matches(self) -> bool:
        # Memoized (True only): the block object is immutable and every
        # validator re-checks the same gossiped instance.  A failing check
        # is not cached — it costs nothing extra and keeps the negative
        # path simple.
        if self.__dict__.get("_mr_ok"):
            return True
        ok = (
            self.compute_messages_root(self.messages, self.cross_messages)
            == self.header.messages_root
        )
        if ok:
            object.__setattr__(self, "_mr_ok", True)
        return ok

"""Blockchain data structures: blocks, chain store, mempool, validation.

Each subnet instantiates "a new chain with its own state" (§II).  This
package provides the chain machinery every subnet (and the rootnet) runs:
block headers linked by CID, a store that tracks heads and supports forks
and reorgs (needed by the PoW engine), a nonce-ordered message pool, and
stateless block validation rules.
"""

from repro.chain.block import BlockHeader, FullBlock, ZERO_CID
from repro.chain.chainstore import ChainStore
from repro.chain.message_pool import MessagePool
from repro.chain.validation import ValidationError, validate_block_shape
from repro.chain.genesis import GenesisParams, build_genesis

__all__ = [
    "BlockHeader",
    "FullBlock",
    "ZERO_CID",
    "ChainStore",
    "MessagePool",
    "ValidationError",
    "validate_block_shape",
    "GenesisParams",
    "build_genesis",
]

"""Chain storage: blocks by CID, heads, forks and reorgs."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.crypto.cid import CID
from repro.chain.block import FullBlock, ZERO_CID


class ChainStore:
    """Stores a subnet's blocks and tracks the canonical head.

    Fork choice is "heaviest chain" by a per-block weight supplied at add
    time (PoW uses accumulated work ≈ height; BFT engines never fork, so
    weight is just height).  Reorg notifications fire with the old and new
    head so chain watchers (mempool, checkpointing, cross-msg pool) can
    react.

    ``state_snapshots`` optionally caches the flattened VM state after each
    block, enabling cheap head switches for fork-capable engines; entries
    older than ``prune_depth`` below the head are discarded.
    """

    def __init__(self, prune_depth: int = 64) -> None:
        self._blocks: dict[CID, FullBlock] = {}
        self._weights: dict[CID, int] = {}
        self._children: dict[CID, list[CID]] = {}
        self._head: Optional[CID] = None
        self._genesis: Optional[CID] = None
        self.prune_depth = prune_depth
        self._state_snapshots: dict[CID, dict] = {}
        self._reorg_listeners: list[Callable[[Optional[CID], CID], None]] = []
        # canonical height index, rebuilt lazily after reorgs
        self._canonical: dict[int, CID] = {}

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def head(self) -> Optional[FullBlock]:
        return self._blocks.get(self._head) if self._head else None

    @property
    def head_cid(self) -> Optional[CID]:
        return self._head

    @property
    def genesis(self) -> Optional[FullBlock]:
        return self._blocks.get(self._genesis) if self._genesis else None

    @property
    def height(self) -> int:
        head = self.head
        return head.height if head else -1

    def get(self, cid: CID) -> FullBlock:
        return self._blocks[cid]

    def get_optional(self, cid: CID) -> Optional[FullBlock]:
        return self._blocks.get(cid)

    def has(self, cid: CID) -> bool:
        return cid in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def block_at_height(self, height: int) -> Optional[FullBlock]:
        """Canonical-chain block at *height* (walks back from the head)."""
        cid = self._canonical.get(height)
        return self._blocks.get(cid) if cid else None

    def ancestors(self, cid: CID) -> Iterator[FullBlock]:
        """Yield the chain from *cid* back to genesis (inclusive)."""
        current = cid
        while current != ZERO_CID:
            block = self._blocks.get(current)
            if block is None:
                return
            yield block
            current = block.header.parent

    def canonical_chain(self) -> list:
        """The canonical chain, genesis first."""
        if self._head is None:
            return []
        chain = list(self.ancestors(self._head))
        chain.reverse()
        return chain

    def is_canonical(self, cid: CID) -> bool:
        block = self._blocks.get(cid)
        if block is None:
            return False
        return self._canonical.get(block.height) == cid

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_block(self, block: FullBlock, weight: Optional[int] = None) -> bool:
        """Store *block*; returns True if the canonical head changed.

        *weight* defaults to parent weight + 1 (≈ height).  The heaviest
        known tip becomes the head; ties keep the incumbent (first-seen
        wins, as in most longest-chain implementations).
        """
        cid = block.cid
        if cid in self._blocks:
            return False
        parent = block.header.parent
        if block.header.is_genesis:
            if self._genesis is not None:
                raise ValueError("genesis already set")
            self._genesis = cid
        elif parent not in self._blocks:
            raise KeyError(f"orphan block: parent {parent.short()} unknown")
        self._blocks[cid] = block
        parent_weight = self._weights.get(parent, 0)
        self._weights[cid] = parent_weight + 1 if weight is None else weight
        self._children.setdefault(parent, []).append(cid)

        if self._head is None or self._weights[cid] > self._weights[self._head]:
            old_head = self._head
            self._head = cid
            if old_head is not None and parent == old_head:
                # Plain extension: one incremental index entry, no O(chain)
                # rebuild (which would make long runs quadratic).
                self._canonical[block.height] = cid
            else:
                self._rebuild_canonical()
            self._prune_snapshots()
            if old_head is not None and self._blocks[old_head].header.parent != ZERO_CID:
                pass  # plain extension or reorg — listeners decide via ancestry
            for listener in self._reorg_listeners:
                listener(old_head, cid)
            return True
        return False

    def _rebuild_canonical(self) -> None:
        self._canonical = {}
        for block in self.ancestors(self._head):
            self._canonical[block.height] = block.cid

    def on_head_change(self, listener: Callable[[Optional[CID], CID], None]) -> None:
        """Register a listener called as ``listener(old_head, new_head)``."""
        self._reorg_listeners.append(listener)

    def is_extension(self, old_head: Optional[CID], new_head: CID) -> bool:
        """True when *new_head* is a descendant of *old_head* (no reorg)."""
        if old_head is None:
            return True
        for block in self.ancestors(new_head):
            if block.cid == old_head:
                return True
            if block.height <= self._blocks[old_head].height:
                break
        return False

    # ------------------------------------------------------------------
    # State snapshots (for fork-capable engines)
    # ------------------------------------------------------------------
    def put_state(self, cid: CID, state: object) -> None:
        """Store the post-state of block *cid*.

        The store is agnostic to the snapshot representation; the runtime
        passes frozen :class:`~repro.storage.statetree.StateTree` forks, so
        a snapshot costs O(delta) and shares structure with its neighbours.
        Pruning drops a fork's reference; deltas no longer reachable from
        any retained fork are reclaimed (the trees compact their shared
        chains as they grow).
        """
        self._state_snapshots[cid] = state

    def get_state(self, cid: CID) -> Optional[object]:
        """The stored post-state of block *cid*, or None if pruned."""
        return self._state_snapshots.get(cid)

    def _prune_snapshots(self) -> None:
        if self._head is None:
            return
        horizon = self._blocks[self._head].height - self.prune_depth
        if horizon <= 0:
            return
        stale = [
            cid
            for cid in self._state_snapshots
            if cid in self._blocks and self._blocks[cid].height < horizon
        ]
        for cid in stale:
            del self._state_snapshots[cid]

    # ------------------------------------------------------------------
    # Fork metrics
    # ------------------------------------------------------------------
    def fork_count(self) -> int:
        """Number of blocks ever stored that are not on the canonical chain."""
        return sum(1 for cid in self._blocks if not self.is_canonical(cid))

    def weight_of(self, cid: CID) -> int:
        return self._weights.get(cid, 0)

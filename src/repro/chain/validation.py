"""Stateless block validation rules.

Stateful validation (state root after execution) happens in the node, which
executes the block against its own VM; these checks are the cheap structural
ones every node runs before execution.
"""

from __future__ import annotations

from typing import Optional

from repro.chain.block import FullBlock, ZERO_CID


class ValidationError(Exception):
    """A block failed validation; the reason is the message."""


def validate_block_shape(
    block: FullBlock,
    parent: Optional[FullBlock],
    expected_subnet: str,
    max_messages: int = 10_000,
) -> None:
    """Raise :class:`ValidationError` on any structural rule violation."""
    header = block.header
    if header.subnet_id != expected_subnet:
        raise ValidationError(
            f"block for subnet {header.subnet_id}, expected {expected_subnet}"
        )
    if header.height < 0:
        raise ValidationError("negative height")
    if len(block.messages) + len(block.cross_messages) > max_messages:
        raise ValidationError("block exceeds message capacity")
    if not block.messages_root_matches():
        raise ValidationError("messages root does not match payload")

    if header.is_genesis:
        if parent is not None:
            raise ValidationError("genesis block cannot have a parent")
        return

    if parent is None:
        raise ValidationError("non-genesis block requires its parent")
    if header.parent == ZERO_CID:
        raise ValidationError("non-genesis block with zero parent")
    if parent.cid != header.parent:
        raise ValidationError("parent CID mismatch")
    if header.height != parent.height + 1:
        raise ValidationError(
            f"height {header.height} does not follow parent height {parent.height}"
        )
    if header.timestamp < parent.header.timestamp:
        raise ValidationError("timestamp earlier than parent")

    for signed in block.messages:
        if not signed.verify_signature():
            raise ValidationError(f"bad signature on message {signed.cid.short()}")

"""Compare a fresh benchmark run against the committed perf trajectory.

The repository commits a ``repro.perf-trajectory/v1`` file per guarded
benchmark (``BENCH_e1_scaling.json``, ``BENCH_e3_crossmsgs.json`` at the
repo root).  Each file records the history of the benchmark's headline
metric — ``blocks_per_wall_sec``, canonical-chain blocks committed per
wall-clock second — across the optimization work, newest entry last.

This tool takes a fresh ``repro.bench/v1`` output (what the benchmarks
write to ``$BENCH_OUT_DIR``) and fails when the fresh metric has regressed
more than the tolerated fraction below the newest committed entry::

    python -m repro.perfcheck out/BENCH_e1_scaling.json BENCH_e1_scaling.json

Exit status 0 = within tolerance, 1 = regression, 2 = usage/format error.

Tolerance resolution order: ``--tolerance`` flag, ``PERF_TOLERANCE``
environment variable, the trajectory file's ``tolerance`` field, 0.2.
Absolute wall-clock throughput is machine-dependent, so the guard is
meaningful on hardware comparable to what produced the committed entry
(CI uses one runner class); cross-machine runs should widen the tolerance
rather than disable the check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

METRIC = "blocks_per_wall_sec"
DEFAULT_TOLERANCE = 0.2


class PerfCheckError(Exception):
    """Malformed input or trajectory file."""


def _load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise PerfCheckError(f"cannot read {path}: {exc}") from exc


def fresh_metric(document: dict) -> float:
    """The headline metric of a ``repro.bench/v1`` output document."""
    perf = (document.get("extra") or {}).get("perf") or document.get("perf")
    if not isinstance(perf, dict) or METRIC not in perf:
        raise PerfCheckError(f"bench output has no extra.perf.{METRIC}")
    return float(perf[METRIC])


def committed_entry(document: dict) -> dict:
    """The newest entry of a ``repro.perf-trajectory/v1`` document."""
    if document.get("schema") != "repro.perf-trajectory/v1":
        raise PerfCheckError("committed file is not a repro.perf-trajectory/v1")
    trajectory = document.get("trajectory") or []
    if not trajectory:
        raise PerfCheckError("committed trajectory is empty")
    entry = trajectory[-1]
    if METRIC not in entry:
        raise PerfCheckError(f"newest trajectory entry lacks {METRIC}")
    return entry


def compare(
    fresh: dict, committed: dict, tolerance: Optional[float] = None
) -> dict:
    """Compare documents; returns a result dict with an ``ok`` verdict."""
    entry = committed_entry(committed)
    if tolerance is None:
        tolerance = committed.get("tolerance", DEFAULT_TOLERANCE)
    tolerance = float(tolerance)
    if not 0.0 <= tolerance < 1.0:
        raise PerfCheckError(f"tolerance must be in [0, 1), got {tolerance}")
    baseline = float(entry[METRIC])
    measured = fresh_metric(fresh)
    floor = baseline * (1.0 - tolerance)
    return {
        "bench": committed.get("bench", "?"),
        "metric": METRIC,
        "committed": baseline,
        "committed_label": entry.get("label", "?"),
        "measured": measured,
        "floor": floor,
        "tolerance": tolerance,
        "ratio": measured / baseline if baseline else float("inf"),
        "ok": measured >= floor,
    }


def culprit_report(fresh: dict, committed: dict) -> Optional[str]:
    """Why did the gate trip?  A profdiff of committed → fresh profiles.

    Returns ``None`` unless both documents carry a profile — the fresh
    bench output's ``profile`` section (written by a ``BENCH_PROFILE=1``
    run) and a ``profile`` summary embedded in the newest committed
    trajectory entry.
    """
    from repro.telemetry.profdiff import diff_profiles, extract_profile, render_diff

    old = extract_profile(committed)
    new = extract_profile(fresh)
    if old is None or new is None:
        return None
    return (
        "perfcheck: profile culprit report (committed baseline → fresh run):\n\n"
        + render_diff(diff_profiles(old, new))
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfcheck", description=__doc__.splitlines()[0]
    )
    parser.add_argument("fresh", help="fresh BENCH_*.json written by a benchmark run")
    parser.add_argument("committed", help="committed perf-trajectory BENCH_*.json")
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional regression (default: $PERF_TOLERANCE, else "
        "the trajectory file's tolerance, else 0.2)",
    )
    args = parser.parse_args(argv)
    tolerance = args.tolerance
    if tolerance is None and os.environ.get("PERF_TOLERANCE"):
        tolerance = float(os.environ["PERF_TOLERANCE"])
    try:
        fresh_doc = _load(args.fresh)
        committed_doc = _load(args.committed)
        result = compare(fresh_doc, committed_doc, tolerance)
    except PerfCheckError as exc:
        print(f"perfcheck: error: {exc}", file=sys.stderr)
        return 2
    verdict = "OK" if result["ok"] else "REGRESSION"
    print(
        f"perfcheck [{result['bench']}] {verdict}: {METRIC} "
        f"measured={result['measured']:.1f} committed={result['committed']:.1f} "
        f"({result['ratio']:.2f}x, floor={result['floor']:.1f} "
        f"at tolerance {result['tolerance']:.0%})"
    )
    if not result["ok"]:
        print(
            f"perfcheck: fresh run is more than {result['tolerance']:.0%} below "
            f"the committed entry '{result['committed_label']}' — either fix the "
            "regression or, if intentional, append a new trajectory entry.",
            file=sys.stderr,
        )
        report = culprit_report(fresh_doc, committed_doc)
        if report:
            print("\n" + report)
    return 0 if result["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())

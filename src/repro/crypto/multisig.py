"""Multi-signatures: a set of individual signatures over the same message.

The paper's checkpoint signature policy (§III-B) allows "the signature of an
individual miner, a multi-signature, or a threshold signature".  This module
implements the multi-signature policy: aggregation is a sorted set of
individual signatures, and verification checks a quorum against an
authorised signer set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.crypto.keys import Address
from repro.crypto.signature import Signature, verify


@dataclass(frozen=True)
class MultiSignature:
    """An aggregated collection of signatures over one message."""

    signatures: tuple = field(default_factory=tuple)

    @property
    def signers(self) -> tuple:
        return tuple(s.signer for s in self.signatures)

    def to_canonical(self):
        return tuple(s.to_canonical() for s in self.signatures)

    def __len__(self) -> int:
        return len(self.signatures)


def aggregate(signatures: Iterable[Signature]) -> MultiSignature:
    """Combine individual signatures, deduplicated by signer, sorted.

    Sorting makes the aggregate canonical: any subset of signers yields the
    same MultiSignature bytes regardless of collection order.
    """
    by_signer: dict[Address, Signature] = {}
    for signature in signatures:
        by_signer.setdefault(signature.signer, signature)
    ordered = tuple(sorted(by_signer.values(), key=lambda s: s.signer))
    return MultiSignature(signatures=ordered)


def verify_multisig(
    multisig: MultiSignature,
    message: Any,
    authorized: Sequence[Address],
    threshold: int,
) -> bool:
    """Check that at least *threshold* authorised signers validly signed.

    Signatures from unauthorised addresses are ignored rather than causing
    rejection — a quorum of honest signatures should not be invalidated by
    appended junk.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    allowed = set(authorized)
    valid_signers = set()
    for signature in multisig.signatures:
        if signature.signer not in allowed:
            continue
        if verify(signature, message):
            valid_signers.add(signature.signer)
    return len(valid_signers) >= threshold

"""Single-key signatures (simulated).

A signature tag is ``sha256(pub || secret || message_digest)``.  Producing a
tag therefore requires the :class:`~repro.crypto.keys.KeyPair` object, while
verification must work with public data only — as with real asymmetric
signatures.  Public verifiability is emulated by a global
:class:`SignatureRegistry` that records genuinely-produced tags at signing
time: a tag verifies iff :func:`sign` actually produced it for that
(signer, message).  Attackers in the experiments fabricate tags without
calling :func:`sign`, and those fail verification — exactly the behaviour
real signatures provide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.encoding import canonical_encode
from repro.crypto.keys import Address, KeyPair


@dataclass(frozen=True)
class Signature:
    """A signature over a message by one public key."""

    signer: Address
    public: bytes
    tag: bytes

    def to_canonical(self):
        return (self.signer.raw, self.public, self.tag)


class SignatureRegistry:
    """Record of genuinely-produced (tag, message-digest) pairs.

    Stands in for the public-key math that makes real signatures verifiable
    without the secret.
    """

    def __init__(self) -> None:
        self._seen: set[tuple[bytes, bytes]] = set()

    def record(self, tag: bytes, digest: bytes) -> None:
        self._seen.add((tag, digest))

    def check(self, tag: bytes, digest: bytes) -> bool:
        return (tag, digest) in self._seen

    def clear(self) -> None:
        self._seen.clear()


_REGISTRY = SignatureRegistry()


def message_digest(message: Any) -> bytes:
    """The digest that gets signed: sha256 of the canonical encoding.

    Memoized on the object's ``__dict__`` when it has one: everything
    signed in this codebase is immutable after construction (frozen
    dataclasses, strings, tuples), and the same message is re-digested by
    every verifying node.  The stash never leaks into the canonical
    encoding (objects encode via ``to_canonical()`` only).
    """
    attrs = getattr(message, "__dict__", None)
    if attrs is not None:
        cached = attrs.get("_msg_digest")
        if cached is not None:
            return cached
    digest = hashlib.sha256(canonical_encode(message)).digest()
    if attrs is not None:
        object.__setattr__(message, "_msg_digest", digest)
    return digest


def sign(keypair: KeyPair, message: Any) -> Signature:
    """Sign *message* (any canonically-encodable value) with *keypair*."""
    digest = message_digest(message)
    tag = hashlib.sha256(
        b"sig:" + keypair.public + keypair.secret_for_signing() + digest
    ).digest()
    _REGISTRY.record(tag, digest)
    return Signature(signer=keypair.address, public=keypair.public, tag=tag)


def verify(signature: Signature, message: Any, keypair: Optional[KeyPair] = None) -> bool:
    """Verify *signature* over *message* using public data.

    The signer address must match the embedded public key, and the tag must
    have genuinely been produced for this exact message.  When *keypair* is
    supplied (a node re-checking its own output), the tag is additionally
    recomputed.
    """
    if Address.from_pubkey(signature.public) != signature.signer:
        return False
    if len(signature.tag) != 32:
        return False
    digest = message_digest(message)
    if not _REGISTRY.check(signature.tag, digest):
        return False
    if keypair is not None:
        expected = hashlib.sha256(
            b"sig:" + keypair.public + keypair.secret_for_signing() + digest
        ).digest()
        return expected == signature.tag and keypair.address == signature.signer
    return True

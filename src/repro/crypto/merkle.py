"""Merkle trees with inclusion proofs.

Used for cross-msg batches (the ``msgsCid`` in a CrossMsgMeta commits to a
group of messages) and for the ``save()`` state snapshots from which users
prove pending funds (§III-C).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto.cid import CID
from repro.crypto.encoding import canonical_encode


def _leaf_hash(value: Any) -> bytes:
    return hashlib.sha256(b"leaf:" + canonical_encode(value)).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"node:" + left + right).digest()


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf index and sibling hashes up to the root."""

    index: int
    leaf: bytes
    path: tuple  # tuple[(bytes sibling, bool sibling_is_right)]

    def to_canonical(self):
        return (self.index, self.leaf, tuple((s, r) for s, r in self.path))

    def compute_root(self) -> bytes:
        current = self.leaf
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = _node_hash(current, sibling)
            else:
                current = _node_hash(sibling, current)
        return current


class MerkleTree:
    """A binary merkle tree over a sequence of values.

    Odd layers duplicate the final hash (bitcoin-style) so every tree is
    complete.  The empty tree has a defined root (hash of an empty marker).
    """

    def __init__(self, values: Sequence[Any]) -> None:
        self.values = list(values)
        self._layers: list[list[bytes]] = []
        leaves = [_leaf_hash(v) for v in self.values]
        if not leaves:
            leaves = [hashlib.sha256(b"empty-merkle").digest()]
        self._layers.append(leaves)
        current = leaves
        while len(current) > 1:
            if len(current) % 2 == 1:
                current = current + [current[-1]]
                self._layers[-1] = current
            parents = [
                _node_hash(current[i], current[i + 1])
                for i in range(0, len(current), 2)
            ]
            self._layers.append(parents)
            current = parents

    @property
    def root(self) -> bytes:
        return self._layers[-1][0]

    @property
    def root_cid(self) -> CID:
        return CID(self.root)

    def __len__(self) -> int:
        return len(self.values)

    def prove(self, index: int) -> MerkleProof:
        """Return an inclusion proof for the value at *index*."""
        if not 0 <= index < len(self.values):
            raise IndexError(f"no leaf at index {index}")
        path = []
        position = index
        for layer in self._layers[:-1]:
            sibling_is_right = position % 2 == 0
            sibling_index = position + 1 if sibling_is_right else position - 1
            path.append((layer[sibling_index], sibling_is_right))
            position //= 2
        return MerkleProof(index=index, leaf=self._layers[0][index], path=tuple(path))

    def verify(self, value: Any, proof: MerkleProof) -> bool:
        """Check that *value* is included under this tree's root via *proof*."""
        if _leaf_hash(value) != proof.leaf:
            return False
        return proof.compute_root() == self.root

    @staticmethod
    def verify_against_root(value: Any, proof: MerkleProof, root: bytes) -> bool:
        """Stateless verification against a known root hash."""
        if _leaf_hash(value) != proof.leaf:
            return False
        return proof.compute_root() == root

"""k-of-n threshold signatures via Shamir secret sharing over a prime field.

The paper's SA signature policy may require "threshold signatures among
subnet miners" (§III-B).  This module implements a pedagogical-but-real
threshold scheme: a dealer splits a group secret into n shares with a random
degree-(k-1) polynomial; any k share-holders can produce partial signatures
whose Lagrange combination reconstructs the group tag; fewer than k cannot.

The signature tag is ``sha256(group_secret || message_digest)``, and the
group secret is reconstructed transiently inside :meth:`ThresholdScheme.combine`
from partial evaluations — no participant ever holds it alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto.signature import message_digest

# 2^127 - 1, a Mersenne prime comfortably above sha256-derived share values
# truncated to 120 bits.
_PRIME = (1 << 127) - 1


@dataclass(frozen=True)
class SecretShare:
    """One participant's share: the polynomial evaluated at index x."""

    x: int
    y: int
    group_id: str


@dataclass(frozen=True)
class PartialSignature:
    """A share-holder's contribution to a threshold signature."""

    x: int
    value: int
    group_id: str


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined k-of-n signature."""

    group_id: str
    tag: bytes
    participants: tuple

    def to_canonical(self):
        return (self.group_id, self.tag, self.participants)


def _eval_poly(coefficients: Sequence[int], x: int) -> int:
    accumulator = 0
    for coefficient in reversed(coefficients):
        accumulator = (accumulator * x + coefficient) % _PRIME
    return accumulator


def _lagrange_at_zero(points: Sequence[tuple[int, int]]) -> int:
    """Interpolate the polynomial through *points* and evaluate at x=0."""
    total = 0
    for i, (xi, yi) in enumerate(points):
        numerator = 1
        denominator = 1
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            numerator = (numerator * (-xj)) % _PRIME
            denominator = (denominator * (xi - xj)) % _PRIME
        total = (total + yi * numerator * pow(denominator, _PRIME - 2, _PRIME)) % _PRIME
    return total


class ThresholdScheme:
    """Dealer-based k-of-n threshold signing for one group of participants."""

    def __init__(self, group_id: str, threshold: int, participants: int, seed: int = 0) -> None:
        if not 1 <= threshold <= participants:
            raise ValueError(f"need 1 <= k={threshold} <= n={participants}")
        self.group_id = group_id
        self.threshold = threshold
        self.participants = participants
        # Deterministic dealer: secret and coefficients derived from the seed.
        material = f"threshold:{group_id}:{seed}"
        digest = hashlib.sha256(material.encode()).digest()
        self._secret = int.from_bytes(digest[:15], "big") % _PRIME
        coefficients = [self._secret]
        for degree in range(1, threshold):
            coeff_digest = hashlib.sha256(f"{material}:{degree}".encode()).digest()
            coefficients.append(int.from_bytes(coeff_digest[:15], "big") % _PRIME)
        self._coefficients = coefficients
        self._shares = {
            x: SecretShare(x=x, y=_eval_poly(coefficients, x), group_id=group_id)
            for x in range(1, participants + 1)
        }

    def share_for(self, index: int) -> SecretShare:
        """Return participant *index*'s share (1-based)."""
        return self._shares[index]

    @staticmethod
    def partial_sign(share: SecretShare, message: Any) -> PartialSignature:
        """Produce a partial signature from one share.

        The partial value binds the share to the message so partials cannot
        be replayed across messages: value = y blinded by the message digest.
        """
        digest = message_digest(message)
        blind = int.from_bytes(hashlib.sha256(digest).digest()[:15], "big") % _PRIME
        value = (share.y + blind) % _PRIME
        return PartialSignature(x=share.x, value=value, group_id=share.group_id)

    def combine(self, partials: Sequence[PartialSignature], message: Any) -> ThresholdSignature:
        """Combine at least k partials into a group signature.

        Raises :class:`ValueError` if fewer than k distinct partials are
        supplied or any partial belongs to a different group.
        """
        unique = {p.x: p for p in partials if p.group_id == self.group_id}
        if len(unique) < self.threshold:
            raise ValueError(
                f"need {self.threshold} partial signatures, got {len(unique)}"
            )
        digest = message_digest(message)
        blind = int.from_bytes(hashlib.sha256(digest).digest()[:15], "big") % _PRIME
        points = [
            (x, (p.value - blind) % _PRIME)
            for x, p in sorted(unique.items())[: self.threshold]
        ]
        secret = _lagrange_at_zero(points)
        tag = hashlib.sha256(
            b"tsig:" + secret.to_bytes(16, "big") + digest
        ).digest()
        return ThresholdSignature(
            group_id=self.group_id,
            tag=tag,
            participants=tuple(sorted(unique.keys())[: self.threshold]),
        )

    def verify(self, signature: ThresholdSignature, message: Any) -> bool:
        """Check a combined signature against the group secret."""
        if signature.group_id != self.group_id:
            return False
        digest = message_digest(message)
        expected = hashlib.sha256(
            b"tsig:" + self._secret.to_bytes(16, "big") + digest
        ).digest()
        return expected == signature.tag

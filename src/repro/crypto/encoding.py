"""Canonical, deterministic serialization for content addressing.

Anything hashed into a CID must serialize identically across runs and
machines.  ``canonical_encode`` is a small, strict encoder: it supports the
types the protocol actually stores (ints, strings, bytes, bools, None,
floats, sequences, mappings with string-able keys) plus any object exposing
``to_canonical()`` returning one of those.  Unknown types are an error —
silently falling back to ``repr`` would hide nondeterminism.
"""

from __future__ import annotations

import struct
from typing import Any


class EncodingError(TypeError):
    """Raised for values that have no canonical encoding."""


def canonical_encode(value: Any) -> bytes:
    """Encode *value* into canonical bytes (stable across runs)."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += b"i" + _length(body) + body
    elif isinstance(value, float):
        out += b"f" + struct.pack(">d", value)
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += b"s" + _length(body) + body
    elif isinstance(value, (bytes, bytearray)):
        out += b"b" + _length(value) + bytes(value)
    elif isinstance(value, (list, tuple)):
        out += b"l" + _length(value)
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        out += b"d" + _length(items)
        for key, item in items:
            _encode_into(out, str(key))
            _encode_into(out, item)
    elif isinstance(value, (set, frozenset)):
        items = sorted(value, key=repr)
        out += b"e" + _length(items)
        for item in items:
            _encode_into(out, item)
    elif hasattr(value, "to_canonical"):
        out += b"o"
        _encode_into(out, type(value).__name__)
        _encode_into(out, value.to_canonical())
    else:
        raise EncodingError(f"no canonical encoding for {type(value).__name__}: {value!r}")


def _length(sized) -> bytes:
    return str(len(sized)).encode("ascii") + b":"

"""Canonical, deterministic serialization for content addressing.

Anything hashed into a CID must serialize identically across runs and
machines.  ``canonical_encode`` is a small, strict encoder: it supports the
types the protocol actually stores (ints, strings, bytes, bools, None,
floats, sequences, mappings with string-able keys) plus any object exposing
``to_canonical()`` returning one of those.  Unknown types are an error —
silently falling back to ``repr`` would hide nondeterminism.

The encoder dispatches on exact type through a handler table (the hot path:
every CID computation recurses through here), falling back to an
``isinstance`` chain for subclasses.  Types that reach the fallback's
``to_canonical`` arm are promoted into the table with a precomputed name
prefix, so each protocol object class pays the slow path once per process.
Both paths produce identical bytes.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict


class EncodingError(TypeError):
    """Raised for values that have no canonical encoding."""


def canonical_encode(value: Any) -> bytes:
    """Encode *value* into canonical bytes (stable across runs)."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Any) -> None:
    handler = _HANDLERS.get(type(value))
    if handler is not None:
        handler(out, value)
    else:
        _encode_fallback(out, value)


def _enc_none(out: bytearray, value: None) -> None:
    out += b"N"


def _enc_bool(out: bytearray, value: bool) -> None:
    out += b"T" if value else b"F"


def _enc_int(out: bytearray, value: int) -> None:
    body = str(value).encode("ascii")
    out += b"i%d:" % len(body)
    out += body


def _enc_float(out: bytearray, value: float) -> None:
    out += b"f"
    out += struct.pack(">d", value)


def _enc_str(out: bytearray, value: str) -> None:
    body = value.encode("utf-8")
    out += b"s%d:" % len(body)
    out += body


def _enc_bytes(out: bytearray, value) -> None:
    out += b"b%d:" % len(value)
    out += bytes(value)


def _enc_seq(out: bytearray, value) -> None:
    out += b"l%d:" % len(value)
    for item in value:
        _encode_into(out, item)


def _enc_dict(out: bytearray, value: dict) -> None:
    items = sorted(value.items(), key=lambda kv: str(kv[0]))
    out += b"d%d:" % len(items)
    for key, item in items:
        _encode_into(out, key if type(key) is str else str(key))
        _encode_into(out, item)


def _enc_set(out: bytearray, value) -> None:
    items = sorted(value, key=repr)
    out += b"e%d:" % len(items)
    for item in items:
        _encode_into(out, item)


_HANDLERS: Dict[type, Callable[[bytearray, Any], None]] = {
    type(None): _enc_none,
    bool: _enc_bool,
    int: _enc_int,
    float: _enc_float,
    str: _enc_str,
    bytes: _enc_bytes,
    bytearray: _enc_bytes,
    list: _enc_seq,
    tuple: _enc_seq,
    dict: _enc_dict,
    set: _enc_set,
    frozenset: _enc_set,
}


def _make_object_encoder(tp: type) -> Callable[[bytearray, Any], None]:
    """Handler for a ``to_canonical`` type, name prefix baked in."""
    name = tp.__name__.encode("utf-8")
    prefix = b"os%d:" % len(name) + name

    def encode(out: bytearray, value: Any) -> None:
        out += prefix
        _encode_into(out, value.to_canonical())

    return encode


def _encode_fallback(out: bytearray, value: Any) -> None:
    """Subclasses and first-seen protocol objects (identical bytes)."""
    if isinstance(value, bool):
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        _enc_int(out, value)
    elif isinstance(value, float):
        _enc_float(out, value)
    elif isinstance(value, str):
        _enc_str(out, value)
    elif isinstance(value, (bytes, bytearray)):
        _enc_bytes(out, value)
    elif isinstance(value, (list, tuple)):
        _enc_seq(out, value)
    elif isinstance(value, dict):
        _enc_dict(out, value)
    elif isinstance(value, (set, frozenset)):
        _enc_set(out, value)
    elif hasattr(type(value), "to_canonical"):
        handler = _make_object_encoder(type(value))
        _HANDLERS[type(value)] = handler
        handler(out, value)
    elif hasattr(value, "to_canonical"):
        # to_canonical set per instance, not on the class: don't cache.
        out += b"o"
        _enc_str(out, type(value).__name__)
        _encode_into(out, value.to_canonical())
    else:
        raise EncodingError(f"no canonical encoding for {type(value).__name__}: {value!r}")

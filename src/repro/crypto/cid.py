"""Content identifiers (CIDs).

A CID is the sha-256 digest of a value's canonical encoding, as in the paper:
"Checkpoints are always identified through their Content Identifier (CID), a
unique identifier inferred from the checkpoint's hash" (§III-B).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.crypto.encoding import canonical_encode

_PREFIX = "bafy"  # cosmetic, to make CIDs recognisable in traces


class CID:
    """An immutable content identifier."""

    __slots__ = ("digest", "_hash")

    def __init__(self, digest: bytes) -> None:
        if not isinstance(digest, bytes) or len(digest) != 32:
            raise ValueError("CID requires a 32-byte digest")
        object.__setattr__(self, "digest", digest)
        # CIDs key mempools, chain stores and dedup sets: hashing happens
        # far more often than construction, so pay for it once here.
        object.__setattr__(self, "_hash", hash(digest))

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("CID is immutable")

    @classmethod
    def from_hex(cls, text: str) -> "CID":
        if text.startswith(_PREFIX):
            text = text[len(_PREFIX):]
        return cls(bytes.fromhex(text))

    def hex(self) -> str:
        return self.digest.hex()

    def short(self) -> str:
        """Abbreviated form for logs and traces."""
        return _PREFIX + self.digest.hex()[:10]

    def to_canonical(self):
        return self.digest

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CID) and other.digest == self.digest

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "CID") -> bool:
        return self.digest < other.digest

    def __repr__(self) -> str:
        return f"CID({self.short()})"

    def __str__(self) -> str:
        return _PREFIX + self.digest.hex()


def cid_of(value: Any) -> CID:
    """Compute the CID of any canonically-encodable value."""
    return CID(hashlib.sha256(canonical_encode(value)).digest())


_cache_hits = 0
_cache_misses = 0


def cached_cid(value: Any) -> CID:
    """``cid_of`` with per-object memoization for immutable values.

    The CID is stashed in the object's ``__dict__`` (works on frozen
    dataclasses via ``object.__setattr__``; dataclass ``__eq__``/``repr``
    only look at declared fields, so the stash is invisible).  The same
    block or message gossiped to V validators is then hashed once, not V
    times.  Callers must only use this for values that are immutable after
    construction — everything content-addressed in this codebase is.
    """
    global _cache_hits, _cache_misses
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        cached = attrs.get("_cid")
        if cached is not None:
            _cache_hits += 1
            return cached
    _cache_misses += 1
    cid = cid_of(value)
    if attrs is not None:
        object.__setattr__(value, "_cid", cid)
    return cid


def cid_cache_stats() -> dict:
    """Process-wide hit/miss totals of :func:`cached_cid` (perf telemetry)."""
    return {"hits": _cache_hits, "misses": _cache_misses}


def reset_cid_cache_stats() -> None:
    global _cache_hits, _cache_misses
    _cache_hits = 0
    _cache_misses = 0

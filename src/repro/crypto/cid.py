"""Content identifiers (CIDs).

A CID is the sha-256 digest of a value's canonical encoding, as in the paper:
"Checkpoints are always identified through their Content Identifier (CID), a
unique identifier inferred from the checkpoint's hash" (§III-B).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.crypto.encoding import canonical_encode

_PREFIX = "bafy"  # cosmetic, to make CIDs recognisable in traces


class CID:
    """An immutable content identifier."""

    __slots__ = ("digest",)

    def __init__(self, digest: bytes) -> None:
        if not isinstance(digest, bytes) or len(digest) != 32:
            raise ValueError("CID requires a 32-byte digest")
        object.__setattr__(self, "digest", digest)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("CID is immutable")

    @classmethod
    def from_hex(cls, text: str) -> "CID":
        if text.startswith(_PREFIX):
            text = text[len(_PREFIX):]
        return cls(bytes.fromhex(text))

    def hex(self) -> str:
        return self.digest.hex()

    def short(self) -> str:
        """Abbreviated form for logs and traces."""
        return _PREFIX + self.digest.hex()[:10]

    def to_canonical(self):
        return self.digest

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CID) and other.digest == self.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    def __lt__(self, other: "CID") -> bool:
        return self.digest < other.digest

    def __repr__(self) -> str:
        return f"CID({self.short()})"

    def __str__(self) -> str:
        return _PREFIX + self.digest.hex()


def cid_of(value: Any) -> CID:
    """Compute the CID of any canonically-encodable value."""
    return CID(hashlib.sha256(canonical_encode(value)).digest())

"""Key pairs and addresses.

A :class:`KeyPair`'s secret is derived deterministically from a seed path so
that simulations are reproducible, but the secret never leaves the object:
all protocol code handles only :class:`Address` and public key bytes.
"""

from __future__ import annotations

import hashlib
from typing import Any


class Address:
    """A wallet/actor address derived from a public key or an actor ID.

    Rendered like Filecoin addresses: ``f1…`` for key addresses, ``f0<id>``
    for builtin system actors.
    """

    __slots__ = ("raw",)

    def __init__(self, raw: str) -> None:
        object.__setattr__(self, "raw", raw)

    def __setattr__(self, name, value):
        raise AttributeError("Address is immutable")

    @classmethod
    def from_pubkey(cls, pubkey: bytes) -> "Address":
        return cls("f1" + hashlib.sha256(pubkey).hexdigest()[:20])

    @classmethod
    def actor(cls, actor_id: int) -> "Address":
        return cls(f"f0{actor_id}")

    @property
    def is_system_actor(self) -> bool:
        return self.raw.startswith("f0")

    def to_canonical(self):
        return self.raw

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Address) and other.raw == self.raw

    def __hash__(self) -> int:
        return hash(self.raw)

    def __lt__(self, other: "Address") -> bool:
        return self.raw < other.raw

    def __repr__(self) -> str:
        return f"Address({self.raw})"

    def __str__(self) -> str:
        return self.raw


class KeyPair:
    """A deterministic signing key pair (simulated).

    The public key is a hash of the secret; signatures are keyed digests
    (see :mod:`repro.crypto.signature`).  Within the simulation nobody can
    forge a signature without access to this object's private bytes.
    """

    __slots__ = ("_secret", "public", "address", "name")

    def __init__(self, seed: Any, name: str = "") -> None:
        material = f"keypair:{seed!r}".encode("utf-8")
        self._secret = hashlib.sha256(material).digest()
        self.public = hashlib.sha256(b"pub:" + self._secret).digest()
        self.address = Address.from_pubkey(self.public)
        self.name = name or self.address.raw

    def secret_for_signing(self) -> bytes:
        """Return the private bytes.  Only :mod:`repro.crypto.signature` and
        :mod:`repro.crypto.threshold` should call this."""
        return self._secret

    def __repr__(self) -> str:
        return f"KeyPair({self.name}, addr={self.address})"

"""Simulated cryptographic substrate.

Real deployments of hierarchical consensus use secp256k1/BLS signatures and
multihash CIDs.  This package provides deterministic, dependency-free
equivalents that preserve the properties the protocol logic relies on
*within the simulation*:

- content addressing: equal content → equal :class:`~repro.crypto.cid.CID`;
- unforgeability-in-simulation: producing a valid signature for a key
  requires holding that :class:`~repro.crypto.keys.KeyPair` object;
- aggregation: multi-signatures and k-of-n threshold signatures verify only
  when the policy quorum actually signed.

See DESIGN.md §1 for why this substitution preserves the behaviours the
experiments measure.
"""

from repro.crypto.encoding import canonical_encode
from repro.crypto.cid import CID, cid_of
from repro.crypto.keys import Address, KeyPair
from repro.crypto.signature import Signature, sign, verify
from repro.crypto.multisig import MultiSignature, aggregate, verify_multisig
from repro.crypto.threshold import ThresholdScheme, ThresholdSignature
from repro.crypto.merkle import MerkleTree, MerkleProof

__all__ = [
    "canonical_encode",
    "CID",
    "cid_of",
    "Address",
    "KeyPair",
    "Signature",
    "sign",
    "verify",
    "MultiSignature",
    "aggregate",
    "verify_multisig",
    "ThresholdScheme",
    "ThresholdSignature",
    "MerkleTree",
    "MerkleProof",
]

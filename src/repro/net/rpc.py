"""Request/response channel over the transport.

Used where the paper implies direct exchanges (e.g. serving a pull request's
content back to a specific requester could be done point-to-point; we also
use it for parent-chain state sync reads in tests).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.scheduler import Simulator
from repro.net.transport import NetMessage, Transport


class RpcChannel:
    """Typed request/response on top of :class:`Transport`.

    Servers register named methods; clients call them with a response
    callback.  Requests to unreachable peers invoke the callback with
    ``(None, error)`` after a timeout.
    """

    def __init__(self, sim: Simulator, transport: Transport, timeout: float = 5.0) -> None:
        self.sim = sim
        self.transport = transport
        self.timeout = timeout
        self._methods: dict[str, dict[str, Callable[[str, Any], Any]]] = {}
        self._pending: dict[int, Callable[[Any, Optional[str]], None]] = {}
        self._next_request = 0

    def register_peer(self, peer_id: str) -> None:
        """Attach RPC handling for *peer_id* on the shared transport."""
        if not self.transport.is_registered(f"rpc:{peer_id}"):
            self.transport.register(f"rpc:{peer_id}", self._on_message)
        self._methods.setdefault(peer_id, {})

    def expose(self, peer_id: str, method: str, fn: Callable[[str, Any], Any]) -> None:
        """Expose ``fn(caller_id, params) -> result`` as *method* on *peer_id*."""
        self.register_peer(peer_id)
        self._methods[peer_id][method] = fn

    def call(
        self,
        caller: str,
        target: str,
        method: str,
        params: Any,
        on_response: Callable[[Any, Optional[str]], None],
    ) -> None:
        """Invoke *method* on *target*; *on_response(result, error)* fires once."""
        self.register_peer(caller)
        request_id = self._next_request
        self._next_request += 1
        self._pending[request_id] = on_response
        sent = self.transport.send(
            f"rpc:{caller}",
            f"rpc:{target}",
            "rpc:req",
            (request_id, caller, target, method, params),
        )
        if not sent:
            self._resolve(request_id, None, f"unreachable: {target}")
            return
        self.sim.schedule(
            self.timeout, self._resolve, request_id, None, "timeout", label="rpc:timeout"
        )

    def _resolve(self, request_id: int, result: Any, error: Optional[str]) -> None:
        callback = self._pending.pop(request_id, None)
        if callback is not None:
            callback(result, error)

    def _on_message(self, message: NetMessage) -> None:
        if message.kind == "rpc:req":
            request_id, caller, target, method, params = message.payload
            fn = self._methods.get(target, {}).get(method)
            if fn is None:
                response = (request_id, None, f"no such method: {method}")
            else:
                try:
                    response = (request_id, fn(caller, params), None)
                except Exception as exc:  # server fault becomes an RPC error
                    response = (request_id, None, f"{type(exc).__name__}: {exc}")
            self.transport.send(message.dst, message.src, "rpc:resp", response)
        elif message.kind == "rpc:resp":
            request_id, result, error = message.payload
            self._resolve(request_id, result, error)

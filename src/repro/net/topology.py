"""Network topology and latency models."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass
class LinkProfile:
    """Per-link degradation installed on top of the base topology.

    ``loss`` combines independently with the topology-wide ``loss_rate``;
    ``extra_latency`` adds onto whatever the latency model samples.
    """

    loss: float = 0.0
    extra_latency: float = 0.0

    @property
    def is_noop(self) -> bool:
        return self.loss == 0.0 and self.extra_latency == 0.0


class LatencyModel:
    """Base class: latency in seconds for a (src, dst) pair."""

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        raise NotImplementedError


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from [base - jitter, base + jitter]."""

    def __init__(self, base: float = 0.05, jitter: float = 0.02) -> None:
        if base - jitter < 0:
            raise ValueError("latency cannot be negative")
        self.base = base
        self.jitter = jitter

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        if self.jitter == 0:
            return self.base
        return rng.uniform(self.base - self.jitter, self.base + self.jitter)


class RegionLatency(LatencyModel):
    """Region-matrix latency: intra-region fast, inter-region slower.

    Peers are assigned to regions; latency between regions r1, r2 is the
    matrix entry plus small jitter.
    """

    def __init__(
        self,
        regions: dict,
        matrix: dict,
        jitter_fraction: float = 0.1,
        default: float = 0.15,
    ) -> None:
        self.regions = dict(regions)  # peer_id -> region name
        self.matrix = dict(matrix)  # (r1, r2) sorted tuple -> seconds
        self.jitter_fraction = jitter_fraction
        self.default = default

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        r1 = self.regions.get(src, "?")
        r2 = self.regions.get(dst, "?")
        key = tuple(sorted((r1, r2)))
        base = self.matrix.get(key, self.default)
        jitter = base * self.jitter_fraction
        if jitter == 0:
            return base
        return max(0.0, rng.uniform(base - jitter, base + jitter))


class Topology:
    """Who can talk to whom, at what latency, with what loss.

    Partitions split the network into groups that can only talk among
    themselves (peers outside every group form one implicit extra group);
    they can be installed and healed during a run to test recovery.
    Per-link :class:`LinkProfile` overrides degrade individual links with
    extra loss and latency on top of the topology-wide models.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        self.latency = latency or UniformLatency()
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        # Each entry is a tuple of disjoint peer groups; a healed entry is
        # the empty tuple (handles stay stable).
        self._partitions: list[tuple[frozenset, ...]] = []
        # Symmetric per-link overrides keyed by sorted (a, b) peer pair.
        # Kept empty unless faults are installed: the send hot path must
        # draw zero extra RNG when no link is degraded.
        self._links: dict[tuple[str, str], LinkProfile] = {}

    @staticmethod
    def _link_key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def sample_latency(self, src: str, dst: str, rng: random.Random) -> float:
        latency = self.latency.sample(src, dst, rng)
        if self._links:
            link = self._links.get(self._link_key(src, dst))
            if link is not None:
                latency += link.extra_latency
        return latency

    def is_lost(self, src: str, dst: str, rng: random.Random) -> bool:
        rate = self.loss_rate
        if self._links:
            link = self._links.get(self._link_key(src, dst))
            if link is not None and link.loss:
                # Independent loss processes: survive both to get through.
                rate = 1.0 - (1.0 - rate) * (1.0 - link.loss)
        return rate > 0 and rng.random() < rate

    # ------------------------------------------------------------------
    # Per-link degradation
    # ------------------------------------------------------------------
    def set_link(
        self,
        a: str,
        b: str,
        loss: Optional[float] = None,
        extra_latency: Optional[float] = None,
    ) -> None:
        """Install (or update) a symmetric degradation on link *a*↔*b*.

        ``None`` leaves that field as-is; an all-zero profile is removed so
        undegraded links never cost an RNG draw.
        """
        key = self._link_key(a, b)
        link = self._links.get(key) or LinkProfile()
        if loss is not None:
            if not 0.0 <= loss < 1.0:
                raise ValueError("link loss must be in [0, 1)")
            link.loss = loss
        if extra_latency is not None:
            if extra_latency < 0:
                raise ValueError("extra latency cannot be negative")
            link.extra_latency = extra_latency
        if link.is_noop:
            self._links.pop(key, None)
        else:
            self._links[key] = link

    def clear_link(self, a: str, b: str) -> None:
        self._links.pop(self._link_key(a, b), None)

    def clear_links(self) -> None:
        self._links = {}

    def link_profile(self, a: str, b: str) -> Optional[LinkProfile]:
        return self._links.get(self._link_key(a, b))

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, peers: set) -> int:
        """Isolate *peers* from the rest of the network; returns a handle."""
        return self.partition_groups((peers,))

    def partition_groups(self, groups) -> int:
        """Split the network into *groups* (iterables of peer ids).

        Peers may only talk within their own group; peers in none of the
        groups form one implicit group of their own.  Groups are stored in
        a canonical sorted order so installation is deterministic no
        matter how callers assembled them.  Returns a heal handle.
        """
        normalized = tuple(
            sorted((frozenset(group) for group in groups), key=sorted)
        )
        for i, group in enumerate(normalized):
            for other in normalized[i + 1:]:
                if group & other:
                    raise ValueError("partition groups must be disjoint")
        self._partitions.append(normalized)
        return len(self._partitions) - 1

    def heal(self, handle: int) -> None:
        """Remove a previously installed partition."""
        if 0 <= handle < len(self._partitions):
            self._partitions[handle] = ()

    def heal_all(self) -> None:
        self._partitions = []

    def can_communicate(self, src: str, dst: str) -> bool:
        """False when a partition separates *src* and *dst*."""
        for groups in self._partitions:
            src_group = dst_group = -1
            for index, group in enumerate(groups):
                if src in group:
                    src_group = index
                if dst in group:
                    dst_group = index
            if src_group != dst_group:
                return False
        return True

"""Network topology and latency models."""

from __future__ import annotations

import random
from typing import Optional


class LatencyModel:
    """Base class: latency in seconds for a (src, dst) pair."""

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        raise NotImplementedError


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from [base - jitter, base + jitter]."""

    def __init__(self, base: float = 0.05, jitter: float = 0.02) -> None:
        if base - jitter < 0:
            raise ValueError("latency cannot be negative")
        self.base = base
        self.jitter = jitter

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        if self.jitter == 0:
            return self.base
        return rng.uniform(self.base - self.jitter, self.base + self.jitter)


class RegionLatency(LatencyModel):
    """Region-matrix latency: intra-region fast, inter-region slower.

    Peers are assigned to regions; latency between regions r1, r2 is the
    matrix entry plus small jitter.
    """

    def __init__(
        self,
        regions: dict,
        matrix: dict,
        jitter_fraction: float = 0.1,
        default: float = 0.15,
    ) -> None:
        self.regions = dict(regions)  # peer_id -> region name
        self.matrix = dict(matrix)  # (r1, r2) sorted tuple -> seconds
        self.jitter_fraction = jitter_fraction
        self.default = default

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        r1 = self.regions.get(src, "?")
        r2 = self.regions.get(dst, "?")
        key = tuple(sorted((r1, r2)))
        base = self.matrix.get(key, self.default)
        jitter = base * self.jitter_fraction
        if jitter == 0:
            return base
        return max(0.0, rng.uniform(base - jitter, base + jitter))


class Topology:
    """Who can talk to whom, at what latency, with what loss.

    Partitions are sets of peers isolated from everyone outside the set;
    they can be installed and healed during a run to test recovery.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        self.latency = latency or UniformLatency()
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self._partitions: list[set[str]] = []

    def sample_latency(self, src: str, dst: str, rng: random.Random) -> float:
        return self.latency.sample(src, dst, rng)

    def is_lost(self, rng: random.Random) -> bool:
        return self.loss_rate > 0 and rng.random() < self.loss_rate

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, peers: set) -> int:
        """Isolate *peers* from the rest of the network; returns a handle."""
        self._partitions.append(set(peers))
        return len(self._partitions) - 1

    def heal(self, handle: int) -> None:
        """Remove a previously installed partition."""
        if 0 <= handle < len(self._partitions):
            self._partitions[handle] = set()

    def heal_all(self) -> None:
        self._partitions = []

    def can_communicate(self, src: str, dst: str) -> bool:
        """False when a partition separates *src* and *dst*."""
        for group in self._partitions:
            if not group:
                continue
            if (src in group) != (dst in group):
                return False
        return True

"""Point-to-point message transport over the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.scheduler import Simulator
from repro.net.topology import Topology


@dataclass(frozen=True)
class NetMessage:
    """A delivered network message."""

    src: str
    dst: str
    kind: str
    payload: Any
    sent_at: float
    msg_id: int = field(default=0)


class Transport:
    """Delivers messages between registered peers with simulated latency.

    Each peer registers a single handler ``handler(NetMessage)``.  Message
    delivery respects the topology's latency model, loss rate and active
    partitions.  Loss and partition checks happen at *send* time — a message
    in flight when a partition lands still arrives, matching how real
    networks behave at these time scales.
    """

    def __init__(self, sim: Simulator, topology: Optional[Topology] = None) -> None:
        self.sim = sim
        self.topology = topology or Topology()
        self._handlers: dict[str, Callable[[NetMessage], None]] = {}
        self._next_msg_id = 0
        self._rng = sim.rng("net", "transport")
        # Hot-path metric handles, resolved once (send/deliver run for
        # every simulated packet).
        self._sent = sim.metrics.counter("net.sent")
        self._delivered = sim.metrics.counter("net.delivered")
        self._latency = sim.metrics.histogram("net.latency")
        self._labels: dict[str, str] = {}

    def register(self, peer_id: str, handler: Callable[[NetMessage], None]) -> None:
        """Attach *handler* for messages addressed to *peer_id*."""
        if peer_id in self._handlers:
            raise ValueError(f"peer {peer_id} already registered")
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: str) -> None:
        self._handlers.pop(peer_id, None)

    def is_registered(self, peer_id: str) -> bool:
        return peer_id in self._handlers

    @property
    def peers(self) -> list[str]:
        return sorted(self._handlers)

    def send(self, src: str, dst: str, kind: str, payload: Any) -> bool:
        """Send a message; returns False if dropped (loss/partition/unknown).

        Delivery happens asynchronously through the simulator queue after a
        sampled latency.
        """
        if dst not in self._handlers:
            return False
        # Endpoint namespaces (rpc:<peer>) share the peer's physical link:
        # partitions, loss and latency overrides keyed by the bare peer id
        # must apply to its RPC traffic too.
        link_src = src[4:] if src.startswith("rpc:") else src
        link_dst = dst[4:] if dst.startswith("rpc:") else dst
        if not self.topology.can_communicate(link_src, link_dst):
            self.sim.metrics.counter("net.partitioned_drops").inc()
            return False
        if self.topology.is_lost(link_src, link_dst, self._rng):
            self.sim.metrics.counter("net.lost").inc()
            return False
        latency = self.topology.sample_latency(link_src, link_dst, self._rng)
        message = NetMessage(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            sent_at=self.sim.now,
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1
        self._sent.inc()
        label = self._labels.get(kind)
        if label is None:
            label = self._labels[kind] = f"net:{kind}"
        self.sim.schedule(latency, self._deliver, message, label=label)
        return True

    def _deliver(self, message: NetMessage) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            return  # peer left between send and delivery
        self._delivered.inc()
        self._latency.observe(self.sim.now - message.sent_at)
        handler(message)

    # ------------------------------------------------------------------
    # Fault-injection conveniences (deterministic ordering throughout)
    # ------------------------------------------------------------------
    @staticmethod
    def _peer_group(spec) -> frozenset:
        if isinstance(spec, str):
            return frozenset((spec,))
        return frozenset(spec)

    def partition(self, *groups) -> int:
        """Split the network into *groups* of peer ids; returns a handle.

        Each group is a peer id or an iterable of peer ids.  A single
        group isolates it from everyone else; multiple groups may only
        talk within their own group (unlisted peers form one implicit
        remainder group).  Groups are normalized and sorted before
        installation, so call-site ordering never affects the schedule.
        """
        if not groups:
            raise ValueError("partition needs at least one group")
        return self.topology.partition_groups(
            tuple(self._peer_group(group) for group in groups)
        )

    def heal(self, handle: Optional[int] = None) -> None:
        """Heal one partition (*handle*) — or, with no argument, restore a
        pristine network: every partition healed, every link override
        cleared."""
        if handle is not None:
            self.topology.heal(handle)
            return
        self.topology.heal_all()
        self.topology.clear_links()

    def set_link(
        self,
        a,
        b,
        loss: Optional[float] = None,
        extra_latency: Optional[float] = None,
    ) -> None:
        """Degrade every link between peer groups *a* and *b* (symmetric).

        *a*/*b* are peer ids or iterables of peer ids; all cross pairs are
        updated in sorted order.  ``loss`` stacks independently with the
        topology-wide loss rate; ``extra_latency`` (seconds) adds onto the
        latency model.  Zeroing both removes the override.
        """
        for src in sorted(self._peer_group(a)):
            for dst in sorted(self._peer_group(b)):
                if src == dst:
                    continue
                self.topology.set_link(src, dst, loss=loss, extra_latency=extra_latency)

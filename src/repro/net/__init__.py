"""Simulated P2P networking.

Substitutes libp2p: the paper's transport layer is a gossipsub topic per
subnet ("a new attack-resilient pubsub topic that peers use as the transport
layer", §III-A).  Here:

- :class:`~repro.net.topology.Topology` models per-link latency (uniform or
  region-based), loss and partitions;
- :class:`~repro.net.transport.Transport` delivers point-to-point messages
  through the simulator's event queue;
- :class:`~repro.net.gossip.GossipNetwork` implements mesh-based pubsub with
  per-topic meshes, message deduplication and lazy IHAVE/IWANT recovery;
- :class:`~repro.net.rpc.RpcChannel` is a request/response convenience used
  by the content resolution protocol.
"""

from repro.net.topology import Topology, UniformLatency, RegionLatency
from repro.net.transport import Transport, NetMessage
from repro.net.gossip import GossipNetwork, GossipParams
from repro.net.rpc import RpcChannel

__all__ = [
    "Topology",
    "UniformLatency",
    "RegionLatency",
    "Transport",
    "NetMessage",
    "GossipNetwork",
    "GossipParams",
    "RpcChannel",
]

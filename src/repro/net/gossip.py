"""Gossipsub-style pubsub.

The paper uses one gossipsub topic per subnet as the chain transport
(§III-A) and the content resolution protocol publishes push/pull/resolve
messages on subnet topics (§IV-C).  This module implements the mesh-based
core of gossipsub [Vyzovitis et al. 2020]:

- per-topic *mesh*: each subscriber keeps ``D`` mesh links over which full
  messages are eagerly forwarded;
- deduplication by message id (a hash of publisher + sequence number);
- lazy gossip: on a heartbeat, peers advertise recently-seen message ids
  (IHAVE) to a random sample of non-mesh subscribers, which request missing
  messages (IWANT) — this is what heals losses and partitions;
- deterministic mesh construction from the simulation seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim.scheduler import Simulator
from repro.net.rpc import RpcChannel
from repro.net.transport import NetMessage, Transport


@dataclass
class GossipParams:
    """Tunables mirroring gossipsub's D/Dlazy/heartbeat/history."""

    degree: int = 4  # mesh degree D
    lazy_degree: int = 3  # gossip fanout for IHAVE
    heartbeat_interval: float = 1.0
    history_length: int = 120  # heartbeats a message id stays advertisable


@dataclass(frozen=True)
class PubsubEnvelope:
    """What subscribers receive: topic, data, original publisher, msg id."""

    topic: str
    data: Any
    publisher: str
    msg_id: str
    published_at: float


class _PeerState:
    """Per-peer pubsub state."""

    def __init__(self, peer_id: str) -> None:
        self.peer_id = peer_id
        self.topics: dict[str, Callable[[PubsubEnvelope], None]] = {}
        self.mesh: dict[str, set[str]] = {}
        # Sorted snapshot of each mesh set, computed lazily on first forward
        # and invalidated by _rebuild_mesh (the only place mesh sets change).
        self.mesh_sorted: dict[str, tuple[str, ...]] = {}
        self.seen: dict[str, PubsubEnvelope] = {}
        self.seen_order: list[tuple[int, str]] = []  # (heartbeat_no, msg_id)
        self.seq = 0


class GossipNetwork:
    """A shared pubsub fabric over a :class:`Transport`.

    One instance serves every topic in the simulation; subnets simply use
    topic names derived from their subnet ID.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Optional[Transport] = None,
        params: Optional[GossipParams] = None,
    ) -> None:
        self.sim = sim
        self.transport = transport or Transport(sim)
        self.params = params or GossipParams()
        self._peers: dict[str, _PeerState] = {}
        self._topic_members: dict[str, set[str]] = {}
        self._rng = sim.rng("net", "gossip")
        # Hot-path metric handles, resolved once (publish/deliver run for
        # every gossiped message).
        self._published = sim.metrics.counter("gossip.published")
        self._delivered = sim.metrics.counter("gossip.delivered")
        self._latency = sim.metrics.histogram("gossip.latency")
        self._heartbeat_no = 0
        self._rpc: Optional[RpcChannel] = None
        self._stop_heartbeat = sim.every(
            self.params.heartbeat_interval, self._heartbeat, label="gossip:heartbeat"
        )

    @property
    def rpc(self) -> RpcChannel:
        """Shared request/response channel over the same transport.

        Lazy so pure-pubsub fabrics pay nothing; peers use it for direct
        exchanges (e.g. block-range sync) that gossip's bounded IHAVE
        history cannot serve.
        """
        if self._rpc is None:
            self._rpc = RpcChannel(self.sim, self.transport)
        return self._rpc

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_peer(self, peer_id: str) -> None:
        """Register a peer on the fabric (idempotent)."""
        if peer_id in self._peers:
            return
        self._peers[peer_id] = _PeerState(peer_id)
        self.transport.register(peer_id, self._on_transport_message)

    def remove_peer(self, peer_id: str) -> None:
        state = self._peers.pop(peer_id, None)
        if state is None:
            return
        for topic in list(state.topics):
            self._leave_topic(peer_id, topic)
        self.transport.unregister(peer_id)

    def subscribe(
        self, peer_id: str, topic: str, handler: Callable[[PubsubEnvelope], None]
    ) -> None:
        """Subscribe *peer_id* to *topic*; *handler* gets every new message."""
        self.add_peer(peer_id)
        state = self._peers[peer_id]
        state.topics[topic] = handler
        members = self._topic_members.setdefault(topic, set())
        members.add(peer_id)
        self._rebuild_mesh(topic)

    def unsubscribe(self, peer_id: str, topic: str) -> None:
        state = self._peers.get(peer_id)
        if state is None:
            return
        state.topics.pop(topic, None)
        self._leave_topic(peer_id, topic)

    def _leave_topic(self, peer_id: str, topic: str) -> None:
        state = self._peers.get(peer_id)
        if state is not None:
            # _rebuild_mesh only resets mesh entries for remaining members;
            # clear the departing peer's own view so it stops relaying.
            state.mesh.pop(topic, None)
            state.mesh_sorted.pop(topic, None)
        members = self._topic_members.get(topic)
        if members:
            members.discard(peer_id)
            self._rebuild_mesh(topic)

    def subscribers(self, topic: str) -> set:
        return set(self._topic_members.get(topic, set()))

    def _rebuild_mesh(self, topic: str) -> None:
        """Recompute the topic mesh deterministically.

        Every member links to ``degree`` neighbours chosen by seeded shuffle;
        links are symmetric.  Rebuilt on churn, which is infrequent in our
        workloads, so the simplicity beats incremental GRAFT/PRUNE.
        """
        for peer in self._peers.values():
            peer.mesh_sorted.pop(topic, None)
        members = sorted(self._topic_members.get(topic, set()))
        for member in members:
            self._peers[member].mesh[topic] = set()
        if len(members) <= 1:
            return
        rng = self.sim.seeds.rng("gossip-mesh", topic, len(members))
        degree = min(self.params.degree, len(members) - 1)
        for member in members:
            others = [m for m in members if m != member]
            rng.shuffle(others)
            for neighbour in others[:degree]:
                self._peers[member].mesh[topic].add(neighbour)
                self._peers[neighbour].mesh[topic].add(member)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, peer_id: str, topic: str, data: Any) -> str:
        """Publish *data* on *topic* from *peer_id*; returns the message id.

        Publishing does not require being subscribed (gossipsub fanout): the
        message is sent to mesh members of the topic.
        """
        self.add_peer(peer_id)
        state = self._peers[peer_id]
        msg_id = f"{peer_id}:{state.seq}"
        state.seq += 1
        envelope = PubsubEnvelope(
            topic=topic,
            data=data,
            publisher=peer_id,
            msg_id=msg_id,
            published_at=self.sim.now,
        )
        self._published.inc()
        self._accept(peer_id, envelope, deliver_locally=True)
        # If the publisher is not in the topic, seed the flood at a few members.
        if topic not in state.topics:
            members = sorted(self._topic_members.get(topic, set()))
            if members:
                rng = self._rng
                fanout = members if len(members) <= self.params.degree else rng.sample(
                    members, self.params.degree
                )
                for member in fanout:
                    self.transport.send(peer_id, member, "gossip:pub", envelope)
        return msg_id

    def _accept(self, peer_id: str, envelope: PubsubEnvelope, deliver_locally: bool) -> None:
        """Record a message at a peer and forward it over its mesh."""
        state = self._peers[peer_id]
        if envelope.msg_id in state.seen:
            return
        if envelope.topic not in state.topics:
            # Not subscribed — a departed peer catching an in-flight
            # delivery, or a bare publisher (whose flood publish() seeds
            # explicitly).  Recording the message as seen here would make
            # IHAVE repair skip it forever once the peer (re)subscribes,
            # so drop it unrecorded.
            return
        state.seen[envelope.msg_id] = envelope
        state.seen_order.append((self._heartbeat_no, envelope.msg_id))
        handler = state.topics.get(envelope.topic)
        if handler is not None and deliver_locally:
            self._delivered.inc()
            self._latency.observe(self.sim.now - envelope.published_at)
            handler(envelope)
        neighbours = state.mesh_sorted.get(envelope.topic)
        if neighbours is None:
            neighbours = tuple(sorted(state.mesh.get(envelope.topic, ())))
            state.mesh_sorted[envelope.topic] = neighbours
        for neighbour in neighbours:
            self.transport.send(peer_id, neighbour, "gossip:pub", envelope)

    # ------------------------------------------------------------------
    # Transport plumbing
    # ------------------------------------------------------------------
    def _on_transport_message(self, message: NetMessage) -> None:
        state = self._peers.get(message.dst)
        if state is None:
            return
        if message.kind == "gossip:pub":
            envelope: PubsubEnvelope = message.payload
            self._accept(message.dst, envelope, deliver_locally=True)
        elif message.kind == "gossip:ihave":
            topic, msg_ids = message.payload
            missing = [m for m in msg_ids if m not in state.seen]
            if missing and topic in state.topics:
                self.transport.send(message.dst, message.src, "gossip:iwant", missing)
        elif message.kind == "gossip:iwant":
            for msg_id in message.payload:
                envelope = state.seen.get(msg_id)
                if envelope is not None:
                    self.transport.send(message.dst, message.src, "gossip:pub", envelope)

    # ------------------------------------------------------------------
    # Heartbeat (lazy gossip)
    # ------------------------------------------------------------------
    def _heartbeat(self) -> None:
        self._heartbeat_no += 1
        horizon = self._heartbeat_no - self.params.history_length
        for peer_id in sorted(self._peers):
            state = self._peers[peer_id]
            # Expire old history.
            while state.seen_order and state.seen_order[0][0] < horizon:
                _, old_id = state.seen_order.pop(0)
                state.seen.pop(old_id, None)
            # Advertise recent ids per topic to non-mesh members.
            recent_by_topic: dict[str, list[str]] = {}
            for _, msg_id in state.seen_order[-50:]:
                envelope = state.seen.get(msg_id)
                if envelope is not None:
                    recent_by_topic.setdefault(envelope.topic, []).append(msg_id)
            for topic, msg_ids in recent_by_topic.items():
                members = self._topic_members.get(topic, set())
                candidates = sorted(members - state.mesh.get(topic, set()) - {peer_id})
                if not candidates:
                    # Small topics are fully meshed; lazy gossip must still
                    # reach mesh peers, or partition recovery has no path
                    # to re-advertise history.
                    candidates = sorted(members - {peer_id})
                if not candidates:
                    continue
                sample_size = min(self.params.lazy_degree, len(candidates))
                for target in self._rng.sample(candidates, sample_size):
                    self.transport.send(peer_id, target, "gossip:ihave", (topic, msg_ids))

    def shutdown(self) -> None:
        """Stop the heartbeat (ends the simulation cleanly)."""
        self._stop_heartbeat()

"""The monolithic single-chain baseline.

"The system starts with a rootnet which, at first, keeps the entire state
and processes all the transactions in the system (like present-day
Filecoin)" (§II).  This class runs exactly that: one validator set, one
chain, every transaction totally ordered by it.  Its throughput ceiling is
what hierarchical consensus scales past in E1.

The node and network layers are the shared :mod:`repro.runtime` stack —
this baseline owns no block-production or delivery code of its own.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.keys import KeyPair
from repro.consensus.base import ConsensusParams
from repro.hierarchy.genesis import subnet_genesis
from repro.hierarchy.subnet_id import ROOTNET
from repro.hierarchy.wallet import Wallet
from repro.runtime import NetworkStack, NodeRuntime, ValidatorCluster, cluster_members


class SingleChainBaseline:
    """One chain, one validator set, all transactions."""

    def __init__(
        self,
        seed: int = 1,
        validators: int = 4,
        engine: str = "poa",
        block_time: float = 1.0,
        latency: float = 0.02,
        max_block_messages: int = 500,
        wallet_funds: Optional[dict] = None,
    ) -> None:
        self.stack = NetworkStack(seed=seed, latency=latency)
        self.sim = self.stack.sim
        self.gossip = self.stack.gossip
        self.wallets = {
            name: Wallet(KeyPair(("baseline-wallet", name)))
            for name in (wallet_funds or {})
        }
        allocations = {
            self.wallets[name].address: funds
            for name, funds in (wallet_funds or {}).items()
        }
        genesis_block, genesis_vm = subnet_genesis(ROOTNET, allocations=allocations)
        keys = [KeyPair(("baseline-validator", i)) for i in range(validators)]
        params = ConsensusParams(
            engine=engine, block_time=block_time, max_block_messages=max_block_messages
        )
        self.cluster = ValidatorCluster.build(
            cluster_members(keys, id_prefix="base"),
            subnet_id=ROOTNET.path,
            genesis_block=genesis_block,
            genesis_vm=genesis_vm,
            consensus_params=params,
            stack=self.stack,
        )
        self.nodes = self.cluster.nodes

    def start(self) -> "SingleChainBaseline":
        self.cluster.start()
        return self

    def run_for(self, seconds: float) -> "SingleChainBaseline":
        self.stack.run_for(seconds)
        return self

    @property
    def node(self) -> NodeRuntime:
        return self.cluster.primary

    def committed_tx_count(self) -> int:
        """User transactions on the canonical chain."""
        return self.cluster.committed_tx_count()

    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        head = self.node.head()
        if head is None or head.header.timestamp == 0:
            return 0.0
        return self.committed_tx_count() / head.header.timestamp

"""The monolithic single-chain baseline.

"The system starts with a rootnet which, at first, keeps the entire state
and processes all the transactions in the system (like present-day
Filecoin)" (§II).  This class runs exactly that: one validator set, one
chain, every transaction totally ordered by it.  Its throughput ceiling is
what hierarchical consensus scales past in E1.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.keys import KeyPair
from repro.chain.node import ChainNode
from repro.consensus.base import ConsensusParams, Validator, ValidatorSet
from repro.hierarchy.genesis import subnet_genesis
from repro.hierarchy.subnet_id import ROOTNET
from repro.hierarchy.wallet import Wallet
from repro.net.gossip import GossipNetwork
from repro.net.topology import Topology, UniformLatency
from repro.net.transport import Transport
from repro.sim.scheduler import Simulator


class SingleChainBaseline:
    """One chain, one validator set, all transactions."""

    def __init__(
        self,
        seed: int = 1,
        validators: int = 4,
        engine: str = "poa",
        block_time: float = 1.0,
        latency: float = 0.02,
        max_block_messages: int = 500,
        wallet_funds: Optional[dict] = None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        topology = Topology(UniformLatency(base=latency, jitter=latency / 2))
        self.gossip = GossipNetwork(self.sim, Transport(self.sim, topology))
        self.wallets = {
            name: Wallet(KeyPair(("baseline-wallet", name)))
            for name in (wallet_funds or {})
        }
        allocations = {
            self.wallets[name].address: funds
            for name, funds in (wallet_funds or {}).items()
        }
        genesis_block, genesis_vm = subnet_genesis(ROOTNET, allocations=allocations)
        keys = [KeyPair(("baseline-validator", i)) for i in range(validators)]
        validator_set = ValidatorSet(
            Validator(node_id=f"base#{i}", address=keys[i].address, power=1)
            for i in range(validators)
        )
        params = ConsensusParams(
            engine=engine, block_time=block_time, max_block_messages=max_block_messages
        )
        self.nodes = [
            ChainNode(
                sim=self.sim,
                node_id=f"base#{i}",
                keypair=keys[i],
                subnet_id="/root",
                genesis_block=genesis_block,
                genesis_vm=genesis_vm,
                gossip=self.gossip,
                validators=validator_set,
                consensus_params=params,
            )
            for i in range(validators)
        ]

    def start(self) -> "SingleChainBaseline":
        for node in self.nodes:
            node.start()
        return self

    def run_for(self, seconds: float) -> "SingleChainBaseline":
        self.sim.run_until(self.sim.now + seconds)
        return self

    @property
    def node(self) -> ChainNode:
        return self.nodes[0]

    def committed_tx_count(self) -> int:
        """User transactions on the canonical chain."""
        return sum(len(b.messages) for b in self.node.store.canonical_chain())

    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        head = self.node.head()
        if head is None or head.header.timestamp == 0:
            return 0.0
        return self.committed_tx_count() / head.header.timestamp

"""Traditional sharding baseline (§I, §V).

"In existing sharded designs, the system often acts as a distributed
controller that assigns miners to different shards and attempts to
load-balance the state evenly across shards … sharding may lead to the
ability of the attacker to compromise a single shard with only a fraction
of the mining power … To circumvent them, sharding systems need to
periodically reassign miners to shards in an unpredictable way" (§I).

This baseline implements exactly that control plane over the shared
:mod:`repro.runtime` stack (it owns no node or delivery code of its own):

- a fixed global validator pool is *assigned* (not self-selected) to k
  shards by seeded random permutation;
- every ``reshuffle_interval`` seconds the controller reassigns everyone,
  pausing the affected shards for ``reshuffle_downtime`` (state/handoff
  sync) — the overhead term in E1;
- :func:`shard_compromise_probability` computes the 1%-attack exposure:
  the probability that at least one shard gives an adversary controlling a
  fraction of the pool a majority — and, unlike hierarchical consensus,
  a compromised shard here has **no firewall**: it can forge arbitrary
  state affecting the whole system (E6's comparison point).
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.keys import KeyPair
from repro.consensus.base import ConsensusParams
from repro.hierarchy.genesis import subnet_genesis
from repro.hierarchy.subnet_id import SubnetID
from repro.hierarchy.wallet import Wallet
from repro.runtime import ClusterMember, NetworkStack, NodeRuntime, ValidatorCluster


class ShardedBaseline:
    """k shards over a global pool with periodic random reshuffling."""

    def __init__(
        self,
        seed: int = 1,
        shards: int = 4,
        validators_per_shard: int = 4,
        engine: str = "poa",
        block_time: float = 1.0,
        latency: float = 0.02,
        reshuffle_interval: float = 30.0,
        reshuffle_downtime: float = 2.0,
        wallet_funds: Optional[dict] = None,
    ) -> None:
        self.stack = NetworkStack(seed=seed, latency=latency)
        self.sim = self.stack.sim
        self.gossip = self.stack.gossip
        self.shards = shards
        self.validators_per_shard = validators_per_shard
        self.engine = engine
        self.block_time = block_time
        self.reshuffle_interval = reshuffle_interval
        self.reshuffle_downtime = reshuffle_downtime
        self.reshuffles = 0
        self.downtime_total = 0.0

        pool_size = shards * validators_per_shard
        self.pool = [KeyPair(("shard-validator", i)) for i in range(pool_size)]
        self._rng = self.sim.rng("shard-controller")

        self.wallets = {
            name: Wallet(KeyPair(("shard-wallet", name)))
            for name in (wallet_funds or {})
        }
        allocations = {
            self.wallets[name].address: funds
            for name, funds in (wallet_funds or {}).items()
        }
        # One genesis per shard; wallets are funded on every shard so the
        # workload generator can address any shard uniformly.
        self.shard_clusters: list[Optional[ValidatorCluster]] = [None] * shards
        self.shard_nodes: list[list[NodeRuntime]] = [[] for _ in range(shards)]
        self._genesis = []
        for shard in range(shards):
            subnet = SubnetID(f"/shard{shard}")
            block, vm = subnet_genesis(subnet, allocations=allocations)
            self._genesis.append((subnet, block, vm))
        self._assignment: list[list[int]] = []
        self._assign(initial=True)
        self._stop_reshuffle = self.sim.every(
            reshuffle_interval, self._reshuffle, label="shard:reshuffle"
        )

    # ------------------------------------------------------------------
    # Controller: assignment and reshuffling
    # ------------------------------------------------------------------
    def _assign(self, initial: bool = False) -> None:
        """(Re)assign the pool to shards by seeded random permutation."""
        order = list(range(len(self.pool)))
        self._rng.shuffle(order)
        self._assignment = [
            order[s * self.validators_per_shard : (s + 1) * self.validators_per_shard]
            for s in range(self.shards)
        ]
        for shard in range(self.shards):
            self._rebuild_shard(shard)

    def _rebuild_shard(self, shard: int) -> None:
        old = self.shard_clusters[shard]
        if old is not None:
            old.stop()
        subnet, block, vm = self._genesis[shard]
        # Node ids must match the validator-set ids; gossip re-subscribe
        # replaces the stopped predecessor's handler for the same id.
        members = [
            ClusterMember(node_id=f"{subnet.path}#{i}", keypair=self.pool[i])
            for i in self._assignment[shard]
        ]
        params = ConsensusParams(engine=self.engine, block_time=self.block_time)
        cluster = ValidatorCluster.build(
            members,
            subnet_id=subnet.path,
            genesis_block=block,
            genesis_vm=vm,
            consensus_params=params,
            stack=self.stack,
        )
        # Nodes restart from the shard's current canonical chain: the new
        # assignees sync state from the leavers.  We model the handoff by
        # replaying a surviving replica's chain (or genesis) after the
        # downtime window.
        if old is not None and old.nodes:
            cluster.replay_chain(old.primary)
        self.shard_clusters[shard] = cluster
        self.shard_nodes[shard] = cluster.nodes

    def _reshuffle(self) -> None:
        """Periodic unpredictable reassignment, with downtime (§I)."""
        self.reshuffles += 1
        self.downtime_total += self.reshuffle_downtime * self.shards
        for cluster in self.shard_clusters:
            cluster.stop()
        self._assign()
        # Shards resume after the handoff window.
        self.sim.schedule(self.reshuffle_downtime, self._resume, label="shard:resume")

    def _resume(self) -> None:
        for cluster in self.shard_clusters:
            cluster.start()

    # ------------------------------------------------------------------
    # Lifecycle / measurement
    # ------------------------------------------------------------------
    def start(self) -> "ShardedBaseline":
        for cluster in self.shard_clusters:
            cluster.start()
        return self

    def run_for(self, seconds: float) -> "ShardedBaseline":
        self.stack.run_for(seconds)
        return self

    def node(self, shard: int) -> NodeRuntime:
        return self.shard_clusters[shard].primary

    def shard_for(self, sender_addr: str) -> int:
        """Deterministic account→shard placement by address hash."""
        return sum(sender_addr.encode()) % self.shards

    def committed_tx_count(self) -> int:
        return sum(cluster.committed_tx_count() for cluster in self.shard_clusters)

    def throughput(self) -> float:
        if self.sim.now == 0:
            return 0.0
        return self.committed_tx_count() / self.sim.now


def shard_compromise_probability(
    pool_size: int,
    shards: int,
    adversary_fraction: float,
    trials: int = 20_000,
    seed: int = 7,
) -> float:
    """P(at least one shard has an adversarial majority) under random
    assignment — the 1%-attack exposure of traditional sharding (§I).

    Estimated by Monte-Carlo over seeded random assignments (exact
    hypergeometric products are unwieldy for the union across shards).
    """
    import random

    rng = random.Random(seed)
    adversaries = int(pool_size * adversary_fraction)
    per_shard = pool_size // shards
    majority = per_shard // 2 + 1
    hits = 0
    pool = [1] * adversaries + [0] * (pool_size - adversaries)
    for _ in range(trials):
        rng.shuffle(pool)
        for s in range(shards):
            if sum(pool[s * per_shard : (s + 1) * per_shard]) >= majority:
                hits += 1
                break
    return hits / trials

"""Baselines the paper positions hierarchical consensus against.

- :mod:`repro.baselines.single_chain` — the monolithic chain ("present-day
  Filecoin", §II): every transaction ordered by one validator set.  This is
  the throughput baseline for E1.
- :mod:`repro.baselines.sharded` — traditional sharding (§I, §V): validators
  are *assigned* to shards by the protocol and periodically reshuffled to
  resist adaptive adversaries; a compromised shard has no firewall.  Used by
  E1 (throughput with reshuffle overhead) and E6 (1%-attack comparison).
"""

from repro.baselines.single_chain import SingleChainBaseline
from repro.baselines.sharded import ShardedBaseline, shard_compromise_probability

__all__ = ["SingleChainBaseline", "ShardedBaseline", "shard_compromise_probability"]

"""Hierarchical consensus — the paper's core contribution.

Subnets organised in a tree, each running its own chain and consensus,
anchored to their parent via checkpoints, exchanging value through
cross-net messages, with the firewall property bounding the damage a
compromised subnet can inflict on its ancestors.

Public entry point: :class:`~repro.hierarchy.network.HierarchicalSystem`.
"""

from repro.hierarchy.subnet_id import SubnetID, ROOTNET
from repro.hierarchy.checkpoint import Checkpoint, CrossMsgMeta, SignedCheckpoint
from repro.hierarchy.crossmsg import (
    ApplyBottomUp,
    ApplyTopDown,
    CrossMsg,
    Direction,
    classify,
)
from repro.hierarchy.gateway import SCA_ADDRESS, SubnetCoordinatorActor
from repro.hierarchy.subnet_actor import SubnetActor, SignaturePolicy
from repro.hierarchy.genesis import hierarchy_registry, subnet_genesis
from repro.hierarchy.wallet import Wallet
from repro.hierarchy.node import SubnetNode
from repro.hierarchy.network import HierarchicalSystem, SubnetConfig, SpawnError
from repro.hierarchy.firewall import (
    CompromisedSubnet,
    SupplyAudit,
    audit_system,
)
from repro.hierarchy.light_client import (
    CheckpointLightClient,
    VerificationError,
    follow_parent_chain,
)
from repro.hierarchy.acceleration import AccelerationService, PendingCertificate

__all__ = [
    "SubnetID",
    "ROOTNET",
    "Checkpoint",
    "CrossMsgMeta",
    "SignedCheckpoint",
    "CrossMsg",
    "ApplyTopDown",
    "ApplyBottomUp",
    "Direction",
    "classify",
    "SCA_ADDRESS",
    "SubnetCoordinatorActor",
    "SubnetActor",
    "SignaturePolicy",
    "hierarchy_registry",
    "subnet_genesis",
    "Wallet",
    "SubnetNode",
    "HierarchicalSystem",
    "SubnetConfig",
    "SpawnError",
    "CompromisedSubnet",
    "SupplyAudit",
    "audit_system",
    "CheckpointLightClient",
    "VerificationError",
    "follow_parent_chain",
    "AccelerationService",
    "PendingCertificate",
]

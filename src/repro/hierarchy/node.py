"""A hierarchical-consensus subnet validator node.

Extends the shared :class:`~repro.runtime.node.NodeRuntime` with everything
§II asks of subnet full nodes:

- syncing the parent chain ("child subnet nodes also run full nodes on the
  parent subnet"): the node holds a parent full-node view and watches its
  SCA state through the cross-msg pool;
- proposing and applying cross-msgs from the cross-msg pool (§IV-B);
- sealing checkpoint windows in-state at every period boundary and driving
  the signature/submission flow (§III-B) via the checkpoint service;
- serving and requesting cross-msg content through the resolution service
  (§IV-C).
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.cid import CID
from repro.crypto.keys import Address
from repro.chain.validation import ValidationError
from repro.hierarchy.checkpointing import CheckpointConfig, CheckpointService
from repro.hierarchy.crossmsg import ApplyBottomUp, ApplyTopDown
from repro.hierarchy.crossmsg_pool import CrossMsgPool
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.resolution import ResolutionService, sca_registry_reader
from repro.hierarchy.subnet_id import SubnetID
from repro.runtime.node import NodeRuntime
from repro.vm.vm import SYSTEM_ADDRESS, VM


class SubnetNode(NodeRuntime):
    """A validator (or observer) of one subnet in the hierarchy."""

    def __init__(
        self,
        sim,
        node_id: str,
        keypair,
        subnet: SubnetID,
        genesis_block,
        genesis_vm,
        gossip,
        validators,
        consensus_params,
        checkpoint_period: int,
        parent_node: Optional["SubnetNode"] = None,
        checkpoint_config: Optional[CheckpointConfig] = None,
        byzantine: Optional[set] = None,
        cache_pushes: bool = True,
        push_drop_probability: float = 0.0,
        accelerate: bool = False,
        acceleration_quorum: int = 2,
    ) -> None:
        super().__init__(
            sim=sim,
            node_id=node_id,
            keypair=keypair,
            subnet_id=subnet.path,
            genesis_block=genesis_block,
            genesis_vm=genesis_vm,
            gossip=gossip,
            validators=validators,
            consensus_params=consensus_params,
            byzantine=byzantine,
        )
        self.subnet = subnet
        self.checkpoint_period = checkpoint_period
        self.parent_node = parent_node
        self.resolution = ResolutionService(
            sim=sim,
            node_id=node_id,
            subnet_id=subnet,
            gossip=gossip,
            state_reader=sca_registry_reader(self),
            cache_pushes=cache_pushes,
            push_drop_rng=sim.rng("resolution-drop", node_id),
            push_drop_probability=push_drop_probability,
        )
        self.crosspool = CrossMsgPool(
            sim=sim,
            subnet_id=subnet,
            resolution=self.resolution,
            parent_node=parent_node,
        )
        self.checkpoints: Optional[CheckpointService] = None
        if checkpoint_config is not None and parent_node is not None:
            self.checkpoints = CheckpointService(sim, self, checkpoint_config)
        self.acceleration = None
        if accelerate:
            from repro.hierarchy.acceleration import AccelerationService

            self.acceleration = AccelerationService(
                sim, self, quorum=acceleration_quorum
            )
        self.on_commit(self._on_own_block)

    # ------------------------------------------------------------------
    # Commit-driven housekeeping
    # ------------------------------------------------------------------
    def _on_own_block(self, block) -> None:
        self.crosspool.scan_own(self)
        self.crosspool.prune_applied(self.vm)
        if self.checkpoints is not None:
            self.checkpoints.on_block(block)

    # ------------------------------------------------------------------
    # Pubsub routing (checkpoint traffic shares the subnet topic)
    # ------------------------------------------------------------------
    def _on_pubsub(self, envelope) -> None:
        kind, payload = envelope.data
        if kind.startswith("ckpt:"):
            if envelope.publisher != self.node_id and self.checkpoints is not None:
                self.checkpoints.handle(kind, payload)
            return
        super()._on_pubsub(envelope)

    # ------------------------------------------------------------------
    # Cross-msg proposal and application
    # ------------------------------------------------------------------
    def select_cross_messages(self, scratch_vm: VM) -> list:
        # Freshen the top-down cache right before proposing (the parent may
        # have committed since the last notification).
        self.crosspool.scan_parent()
        return self.crosspool.select(scratch_vm)

    def apply_cross_message(self, vm: VM, cross, miner: Address):
        """Execute one block cross-msg entry against *vm*; returns the receipt.

        Failures are deterministic across nodes (same inputs, same state),
        so a failed receipt simply records the refusal; state roots still
        agree.
        """
        if isinstance(cross, ApplyTopDown):
            receipt = vm.apply_implicit(
                SYSTEM_ADDRESS, SCA_ADDRESS, "apply_topdown",
                {"message": cross.message, "nonce": cross.nonce},
            )
            metric = "topdown"
        elif isinstance(cross, ApplyBottomUp):
            receipt = vm.apply_implicit(
                SYSTEM_ADDRESS, SCA_ADDRESS, "apply_bottomup",
                {"nonce": cross.nonce, "messages": cross.messages},
            )
            metric = "bottomup"
        else:
            raise ValidationError(f"unknown cross-msg payload {type(cross).__name__}")
        name = f"crossmsg.{self.subnet_id}.{metric}_" + ("ok" if receipt.ok else "failed")
        self.sim.metrics.counter(name).inc()
        if not receipt.ok:
            self.sim.trace.emit("crossmsg.apply_failed", self.subnet_id, metric, receipt.error)
        return receipt

    # ------------------------------------------------------------------
    # Window sealing
    # ------------------------------------------------------------------
    def _execute_payload(self, vm, messages, cross_messages, miner, height, parent_cid=None):
        """Seal the previous checkpoint window before the block's payload.

        At the first block of each window (height divisible by the period)
        the SCA deterministically builds the previous window's checkpoint
        template, using the parent block's CID as the chain ``proof``.
        """
        events: list = []
        if (
            height > 0
            and height % self.checkpoint_period == 0
            and vm.actor_code(SCA_ADDRESS) == "sca"
        ):
            window = height // self.checkpoint_period - 1
            receipt = vm.apply_implicit(
                SYSTEM_ADDRESS, SCA_ADDRESS, "seal_window",
                {"window": window, "proof_cid": parent_cid},
            )
            events.extend(receipt.events)
            if not receipt.ok:
                self.sim.trace.emit(
                    "checkpoint.seal_failed", self.subnet_id,
                    f"window={window}", receipt.error,
                )
        events.extend(
            super()._execute_payload(vm, messages, cross_messages, miner, height, parent_cid)
        )
        return events

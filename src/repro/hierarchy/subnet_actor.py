"""The Subnet Actor (SA).

"To spawn a new subnet, peers need to deploy a new Subnet Actor that
implements the core logic for the new subnet.  The contract specifies the
consensus protocol to be run by the subnet and the set of policies to be
enforced for new members, leaving members, checkpointing, killing the
subnet, etc." (§III-A).

One SA lives in the *parent* chain per child subnet.  It is user-deployed
and untrusted — the SCA enforces the economics — but it owns membership
and the checkpoint signature policy:

- ``join``/``leave``: miners stake and unstake; the SA forwards collateral
  to/from the SCA, which flips the subnet active/inactive around
  ``minCollateral`` (§III-B, §III-C);
- ``submit_checkpoint``: verifies the policy-required signatures (single,
  k-multisig, or k-of-n threshold) before relaying the checkpoint to the
  SCA (§III-B);
- ``submit_fraud_proof``: validates equivocation evidence — two conflicting
  policy-valid checkpoints chaining from the same ``prev`` — and asks the
  SCA to slash (§III-B);
- ``vote_kill``: unanimous validator vote kills the subnet (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.keys import Address
from repro.crypto.multisig import MultiSignature, verify_multisig
from repro.crypto.threshold import ThresholdScheme, ThresholdSignature
from repro.hierarchy.checkpoint import Checkpoint, SignedCheckpoint
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_id import SubnetID
from repro.vm.actor import Actor, export
from repro.vm.exitcode import ExitCode


@dataclass(frozen=True)
class SignaturePolicy:
    """The SA's checkpoint signature policy (§III-B).

    ``kind`` is ``"single"`` (any one validator), ``"multisig"`` (at least
    ``threshold`` distinct validator signatures) or ``"threshold"``
    (a combined k-of-n threshold signature for the subnet's group).
    """

    kind: str = "multisig"
    threshold: int = 1

    def __post_init__(self):
        if self.kind not in ("single", "multisig", "threshold"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if self.threshold < 1:
            raise ValueError("policy threshold must be >= 1")

    def to_canonical(self):
        return (self.kind, self.threshold)


# Stand-in for distributed key generation: threshold schemes dealt per
# subnet, addressable by group id.  A real deployment runs DKG among subnet
# validators; the experiments need only the verification semantics.
_THRESHOLD_SCHEMES: dict[str, ThresholdScheme] = {}


def register_threshold_scheme(scheme: ThresholdScheme) -> None:
    _THRESHOLD_SCHEMES[scheme.group_id] = scheme


def threshold_scheme_for(group_id: str) -> Optional[ThresholdScheme]:
    return _THRESHOLD_SCHEMES.get(group_id)


class SubnetActor(Actor):
    """Per-subnet governance contract, deployed in the parent chain."""

    CODE = "subnet-actor"

    # ==================================================================
    # Construction
    # ==================================================================
    @export
    def constructor(
        self,
        ctx,
        subnet_path: str = "",
        consensus: str = "poa",
        checkpoint_period: int = 10,
        activation_collateral: int = 100,
        policy: SignaturePolicy = None,
        min_validators: int = 1,
        permissioned: bool = False,
        allowlist: tuple = (),
        max_validators: int = 0,
        min_join_stake: int = 0,
        min_remaining_validators: int = 0,
    ) -> None:
        child_id = SubnetID(subnet_path)
        ctx.require(not child_id.is_root, "cannot govern the rootnet")
        ctx.require(checkpoint_period > 0, "checkpoint_period must be positive")
        ctx.require(activation_collateral > 0, "activation_collateral must be positive")
        ctx.require(min_validators >= 1, "min_validators must be >= 1")
        ctx.state_set("subnet_path", subnet_path)
        ctx.state_set("consensus", consensus)
        ctx.state_set("checkpoint_period", checkpoint_period)
        ctx.state_set("activation_collateral", activation_collateral)
        ctx.state_set("policy", policy or SignaturePolicy())
        ctx.state_set("min_validators", min_validators)
        ctx.state_set("status", "instantiated")  # → active → killed
        ctx.state_set("validators", {})  # addr -> stake
        ctx.state_set("kill_votes", ())
        ctx.state_set("last_ckpt_window", -1)
        # Membership policies (§III-A: "the set of policies to be enforced
        # for new members, leaving members, …").
        ctx.require(max_validators >= 0, "max_validators cannot be negative")
        ctx.require(min_join_stake >= 0, "min_join_stake cannot be negative")
        ctx.state_set("permissioned", bool(permissioned))
        ctx.state_set("allowlist", tuple(str(a) for a in allowlist))
        ctx.state_set("max_validators", max_validators)
        ctx.state_set("min_join_stake", min_join_stake)
        ctx.state_set("min_remaining_validators", min_remaining_validators)

    # ==================================================================
    # Membership (§III-A, §III-C)
    # ==================================================================
    @export
    def join(self, ctx) -> str:
        """Stake the attached value and join the validator set.

        Once total stake reaches ``activation_collateral`` and the validator
        count reaches ``min_validators``, the SA registers the subnet with
        the SCA, forwarding the collateral.  Returns the SA status.
        """
        ctx.require(ctx.value_received > 0, "joining requires stake")
        status = ctx.state_get("status")
        ctx.require(status != "killed", "subnet is killed",
                    exit_code=ExitCode.USR_ILLEGAL_STATE)
        # Membership policy checks (§III-A).
        if ctx.state_get("permissioned", False):
            ctx.require(
                ctx.caller.raw in ctx.state_get("allowlist", ()),
                "subnet is permissioned; caller not on the allowlist",
                exit_code=ExitCode.USR_FORBIDDEN,
            )
        min_join = ctx.state_get("min_join_stake", 0)
        ctx.require(
            ctx.value_received >= min_join,
            f"join stake {ctx.value_received} below policy minimum {min_join}",
            exit_code=ExitCode.USR_INSUFFICIENT_FUNDS,
        )
        validators = dict(ctx.state_get("validators"))
        cap = ctx.state_get("max_validators", 0)
        if cap and ctx.caller.raw not in validators:
            ctx.require(
                len(validators) < cap,
                f"validator set is full ({cap})",
                exit_code=ExitCode.USR_FORBIDDEN,
            )
        validators[ctx.caller.raw] = validators.get(ctx.caller.raw, 0) + ctx.value_received
        ctx.state_set("validators", validators)
        total = sum(validators.values())

        if status == "instantiated":
            if (
                total >= ctx.state_get("activation_collateral")
                and len(validators) >= ctx.state_get("min_validators")
            ):
                receipt = ctx.send(
                    SCA_ADDRESS,
                    method="register",
                    params={
                        "subnet_path": ctx.state_get("subnet_path"),
                        "checkpoint_period": ctx.state_get("checkpoint_period"),
                    },
                    value=total,
                )
                ctx.require(
                    receipt.ok,
                    f"SCA registration failed: {receipt.error}",
                    exit_code=ExitCode.USR_ILLEGAL_STATE,
                )
                ctx.state_set("status", "active")
                ctx.emit("sa.activated", ctx.state_get("subnet_path"))
        else:
            # Already registered: forward the new stake as extra collateral.
            receipt = ctx.send(
                SCA_ADDRESS,
                method="add_collateral",
                params={"subnet_path": ctx.state_get("subnet_path")},
                value=ctx.value_received,
            )
            ctx.require(receipt.ok, f"collateral top-up failed: {receipt.error}",
                        exit_code=ExitCode.USR_ILLEGAL_STATE)
        return ctx.state_get("status")

    @export
    def leave(self, ctx) -> int:
        """Withdraw the caller's stake (§III-C).

        The SA asks the SCA to release the collateral back to the miner; if
        that leaves the subnet under ``minCollateral`` the SCA marks it
        inactive.  Returns the released amount.
        """
        validators = dict(ctx.state_get("validators"))
        stake = validators.get(ctx.caller.raw, 0)
        ctx.require(stake > 0, "caller is not a validator",
                    exit_code=ExitCode.USR_FORBIDDEN)
        floor = ctx.state_get("min_remaining_validators", 0)
        ctx.require(
            len(validators) - 1 >= floor,
            f"leave refused: policy keeps at least {floor} validators",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        del validators[ctx.caller.raw]
        ctx.state_set("validators", validators)
        if ctx.state_get("status") == "active":
            receipt = ctx.send(
                SCA_ADDRESS,
                method="release_collateral",
                params={
                    "subnet_path": ctx.state_get("subnet_path"),
                    "to_addr": ctx.caller.raw,
                    "amount": stake,
                },
            )
            ctx.require(receipt.ok, f"release failed: {receipt.error}",
                        exit_code=ExitCode.USR_ILLEGAL_STATE)
        else:
            # Stake still held by the SA (never forwarded): refund directly.
            ctx.transfer(ctx.caller, stake)
        ctx.emit("sa.left", ctx.caller.raw)
        return stake

    @export
    def vote_kill(self, ctx) -> str:
        """Vote to kill the subnet; unanimity among validators executes it.

        On execution the SCA returns all remaining collateral to this SA,
        which refunds validators pro-rata (§III-C).  Returns the status.
        """
        validators = ctx.state_get("validators")
        ctx.require(ctx.caller.raw in validators, "caller is not a validator",
                    exit_code=ExitCode.USR_FORBIDDEN)
        ctx.require(ctx.state_get("status") == "active", "subnet not active",
                    exit_code=ExitCode.USR_ILLEGAL_STATE)
        votes = set(ctx.state_get("kill_votes"))
        votes.add(ctx.caller.raw)
        ctx.state_set("kill_votes", tuple(sorted(votes)))
        if votes < set(validators):
            return "pending"
        receipt = ctx.send(
            SCA_ADDRESS,
            method="kill_subnet",
            params={"subnet_path": ctx.state_get("subnet_path")},
        )
        ctx.require(receipt.ok, f"kill failed: {receipt.error}",
                    exit_code=ExitCode.USR_ILLEGAL_STATE)
        returned = receipt.return_value or 0
        total_stake = sum(validators.values())
        for addr, stake in sorted(validators.items()):
            share = returned * stake // total_stake if total_stake else 0
            if share:
                ctx.transfer(Address(addr), share)
        ctx.state_set("status", "killed")
        ctx.state_set("validators", {})
        ctx.emit("sa.killed", ctx.state_get("subnet_path"))
        return "killed"

    # ==================================================================
    # Checkpoints (§III-B)
    # ==================================================================
    def _verify_policy(self, ctx, signed: SignedCheckpoint) -> bool:
        """Check the checkpoint's signatures against the SA policy."""
        policy: SignaturePolicy = ctx.state_get("policy")
        validators = ctx.state_get("validators")
        authorized = [Address(a) for a in validators]
        payload = signed.checkpoint.cid.hex()
        if policy.kind == "threshold":
            if not isinstance(signed.signatures, ThresholdSignature):
                return False
            scheme = threshold_scheme_for(signed.signatures.group_id)
            expected_group = f"tss:{ctx.state_get('subnet_path')}"
            if scheme is None or signed.signatures.group_id != expected_group:
                return False
            return scheme.verify(signed.signatures, payload)
        signatures = signed.signatures
        if not isinstance(signatures, tuple):
            signatures = (signatures,)
        threshold = 1 if policy.kind == "single" else policy.threshold
        return verify_multisig(
            MultiSignature(signatures=tuple(sorted(signatures, key=lambda s: s.signer))),
            payload,
            authorized,
            threshold,
        )

    @export
    def submit_checkpoint(self, ctx, signed: SignedCheckpoint = None) -> None:
        """Validate a signed checkpoint and relay it to the SCA.

        "Checkpoints need to be signed by miners of a child chain and
        committed to the parent chain through their corresponding SA …
        After performing the corresponding checks, this actor triggers a
        message function to the SCA" (§III-B).
        """
        ctx.require(signed is not None, "missing checkpoint")
        checkpoint = signed.checkpoint
        ctx.require(
            checkpoint.source.path == ctx.state_get("subnet_path"),
            "checkpoint for a different subnet",
        )
        ctx.require(ctx.state_get("status") == "active", "subnet not active",
                    exit_code=ExitCode.USR_ILLEGAL_STATE)
        ctx.require(
            checkpoint.window > ctx.state_get("last_ckpt_window"),
            f"window {checkpoint.window} already checkpointed",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        ctx.require(
            self._verify_policy(ctx, signed),
            "signature policy not satisfied",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        receipt = ctx.send(
            SCA_ADDRESS,
            method="commit_child_checkpoint",
            params={"checkpoint": checkpoint},
        )
        ctx.require(receipt.ok, f"SCA rejected checkpoint: {receipt.error}",
                    exit_code=ExitCode.USR_ILLEGAL_STATE)
        ctx.state_set("last_ckpt_window", checkpoint.window)
        ctx.state_set(f"ckpt_history/{checkpoint.window}", signed)
        ctx.emit("sa.checkpoint", (checkpoint.window, checkpoint.cid.hex()))

    # ==================================================================
    # Fraud proofs & slashing (§III-B)
    # ==================================================================
    @export
    def submit_fraud_proof(
        self, ctx, first: SignedCheckpoint = None, second: SignedCheckpoint = None,
        slash_amount: int = 0,
    ) -> int:
        """Slash on equivocation: two *different* policy-valid checkpoints
        chaining from the same ``prev``.

        "Checkpoints for a subnet can be verified at any point using the
        state of the subnet chain which can then be used to generate
        equivocation proofs (or so-called fraud proofs) which, in turn, can
        be used for penalizing misbehaving entities" (§III-B).
        Returns the slashed amount.
        """
        ctx.require(first is not None and second is not None, "need two checkpoints")
        ca, cb = first.checkpoint, second.checkpoint
        subnet_path = ctx.state_get("subnet_path")
        ctx.require(
            ca.source.path == subnet_path and cb.source.path == subnet_path,
            "checkpoints are not for this subnet",
        )
        ctx.require(ca.cid != cb.cid, "checkpoints are identical — no fraud")
        ctx.require(
            ca.prev == cb.prev,
            "checkpoints do not conflict (different prev)",
        )
        ctx.require(
            self._verify_policy(ctx, first) and self._verify_policy(ctx, second),
            "evidence not policy-signed — cannot attribute fraud",
        )
        amount = slash_amount or ctx.state_get("activation_collateral")
        receipt = ctx.send(
            SCA_ADDRESS,
            method="slash",
            params={"subnet_path": subnet_path, "amount": amount},
        )
        ctx.require(receipt.ok, f"slash failed: {receipt.error}",
                    exit_code=ExitCode.USR_ILLEGAL_STATE)
        ctx.emit("sa.slashed", (subnet_path, receipt.return_value))
        return receipt.return_value

"""Accelerated cross-net messages: pending-payment certificates (§IV-A).

"According to the route that messages need to follow through the
hierarchy … the propagation of these transactions may be slow.  To
accelerate the process, each SA in the path can send a direct message to
the destination, certifying that the user is the legitimate owner of the
funds.  This information can be used by the destination subnet (depending
on the finality required …) to indicate a pending payment or even as
tentative information to start operating as if these funds were already
settled."

Implementation: when a cross-msg enters a subnet's outgoing checkpoint
window (visible in the SCA's committed state), the subnet's validators
each publish a signed :class:`PendingCertificate` straight to the
destination subnet's acceleration topic — racing the checkpoint by one or
more windows.  Destination nodes aggregate signers per message and expose
:meth:`AccelerationService.pending_for`: tentative credits backed by at
least ``quorum`` certifying validators.  Tentative entries clear when the
real settlement lands (the cross-msg is applied or the recipient balance
reflects it), or expire after ``ttl`` seconds.

Trust model: exactly the paper's — the destination decides how much
finality it needs.  Certificates prove that *the source subnet's
validators* vouch for the payment; a compromised source can vouch falsely,
which is why this is tentative information and the firewall still guards
actual settlement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.cid import CID
from repro.crypto.keys import Address
from repro.crypto.signature import Signature, sign, verify
from repro.hierarchy.crossmsg import ApplyBottomUp, ApplyTopDown, CrossMsg
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_id import SubnetID
from repro.net.gossip import PubsubEnvelope


def acceleration_topic(subnet: SubnetID) -> str:
    return f"accel:{subnet.path}"


@dataclass(frozen=True)
class PendingCertificate:
    """One validator's attestation that a cross-msg is in flight."""

    message: CrossMsg
    window: int
    certifier: Address
    signature: Signature

    def payload(self):
        return ("pending-cert", self.message.cid.hex(), self.window)

    def verify(self) -> bool:
        return self.signature.signer == self.certifier and verify(
            self.signature, self.payload()
        )

    @staticmethod
    def create(keypair, message: CrossMsg, window: int) -> "PendingCertificate":
        payload = ("pending-cert", message.cid.hex(), window)
        return PendingCertificate(
            message=message,
            window=window,
            certifier=keypair.address,
            signature=sign(keypair, payload),
        )


class AccelerationService:
    """Issues and consumes pending-payment certificates for one node."""

    def __init__(self, sim, node, quorum: int = 2, ttl: float = 120.0) -> None:
        self.sim = sim
        self.node = node
        self.quorum = quorum
        self.ttl = ttl
        # Issuer side: how far we've scanned each outgoing window.
        self._scanned: dict[int, int] = {}
        # Receiver side: message cid -> {"message", "certifiers", "first_seen"}
        self._pending: dict[CID, dict] = {}
        node.gossip.subscribe(
            f"{node.node_id}/accel",
            acceleration_topic(node.subnet),
            self._on_certificate,
        )
        node.on_commit(self._on_block)

    # ------------------------------------------------------------------
    # Issuer side: certify new outgoing cross-msgs
    # ------------------------------------------------------------------
    def _on_block(self, block) -> None:
        self._certify_new_outgoing()
        self._clear_settled(block)
        self._expire_stale()

    def _certify_new_outgoing(self) -> None:
        state = self.node.vm.state
        period = self.node.checkpoint_period
        window = self.node.head().height // period
        for w in (window - 1, window):
            if w < 0:
                continue
            count = state.get(f"actor/{SCA_ADDRESS.raw}/out_count/{w}", 0)
            start = self._scanned.get(w, 0)
            for seq in range(start, count):
                message: CrossMsg = state.get(f"actor/{SCA_ADDRESS.raw}/out/{w}/{seq}")
                if message is None:
                    continue
                certificate = PendingCertificate.create(self.node.keypair, message, w)
                self.node.gossip.publish(
                    f"{self.node.node_id}/accel",
                    acceleration_topic(message.to_subnet),
                    certificate,
                )
                self.sim.metrics.counter("accel.certified").inc()
            self._scanned[w] = max(start, count)

    # ------------------------------------------------------------------
    # Receiver side: aggregate certificates, expose tentative credits
    # ------------------------------------------------------------------
    def _on_certificate(self, envelope: PubsubEnvelope) -> None:
        certificate: PendingCertificate = envelope.data
        if not isinstance(certificate, PendingCertificate):
            return
        if certificate.message.to_subnet != self.node.subnet:
            return
        if not certificate.verify():
            self.sim.metrics.counter("accel.bad_certificates").inc()
            return
        entry = self._pending.setdefault(
            certificate.message.cid,
            {
                "message": certificate.message,
                "certifiers": set(),
                "first_seen": self.sim.now,
            },
        )
        entry["certifiers"].add(certificate.certifier)
        self.sim.metrics.counter("accel.received").inc()

    def _clear_settled(self, block) -> None:
        """Drop tentative entries once the real cross-msg applies here."""
        for cross in block.cross_messages:
            if isinstance(cross, ApplyBottomUp):
                for message in cross.messages:
                    if self._pending.pop(message.cid, None) is not None:
                        self.sim.metrics.counter("accel.settled").inc()
            elif isinstance(cross, ApplyTopDown):
                if self._pending.pop(cross.message.cid, None) is not None:
                    self.sim.metrics.counter("accel.settled").inc()

    def _expire_stale(self) -> None:
        horizon = self.sim.now - self.ttl
        for cid in [c for c, e in self._pending.items() if e["first_seen"] < horizon]:
            del self._pending[cid]
            self.sim.metrics.counter("accel.expired").inc()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pending_for(self, addr: Address) -> int:
        """Tentative incoming value for *addr*, backed by ≥ quorum signers."""
        total = 0
        for entry in self._pending.values():
            message: CrossMsg = entry["message"]
            if message.to_addr == addr and len(entry["certifiers"]) >= self.quorum:
                total += message.value
        return total

    def pending_details(self, addr: Address) -> list:
        """(message, certifier count) pairs pending for *addr*."""
        return [
            (entry["message"], len(entry["certifiers"]))
            for entry in self._pending.values()
            if entry["message"].to_addr == addr
        ]

    def detach(self) -> None:
        self.node.gossip.unsubscribe(
            f"{self.node.node_id}/accel", acceleration_topic(self.node.subnet)
        )

"""Firewall property: supply auditing and the compromised-subnet attack.

§II: "The system provides a firewall security property … for token
exchanges, the impact of a child subnet being compromised is limited to,
at most, its circulating supply of the token, determined by the (positive)
balance between cross-net transactions entering the subnet and cross-net
transactions leaving the subnet."

Two tools here:

- :func:`audit_system` checks the supply invariants across a running
  :class:`~repro.hierarchy.network.HierarchicalSystem`;
- :class:`CompromisedSubnet` mounts the §II attack: validators of a subnet
  (whose keys the adversary holds) forge a checkpoint claiming arbitrary
  bottom-up value and submit it with genuine policy signatures.  E6
  measures how much the adversary actually extracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.cid import cid_of
from repro.crypto.keys import Address
from repro.crypto.signature import sign
from repro.hierarchy.checkpoint import Checkpoint, CrossMsgMeta, SignedCheckpoint
from repro.hierarchy.crossmsg import CrossMsg
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_id import SubnetID
from repro.hierarchy.wallet import Wallet
from repro.vm.vm import BURN_ADDRESS


@dataclass
class SubnetSupply:
    """One subnet's supply picture from its parent's books and its own VM."""

    subnet: str
    collateral: int = 0
    circulating_at_parent: int = 0
    injected_total: int = 0
    released_total: int = 0
    minted_in_subnet: int = 0
    burned_in_subnet: int = 0
    frozen_pool_at_parent: int = 0
    status: str = "?"

    @property
    def net_minted(self) -> int:
        return self.minted_in_subnet - self.burned_in_subnet


@dataclass
class SupplyAudit:
    """Outcome of :func:`audit_system`."""

    subnets: dict = field(default_factory=dict)  # path -> SubnetSupply
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def audit_system(system) -> SupplyAudit:
    """Check the hierarchy-wide supply invariants.

    For every subnet P with children C₁…Cₙ:

    1. **Frozen-pool solvency**: SCA_P's balance ≥ Σ collateral(Cᵢ) +
       Σ circulating(Cᵢ).  Every promised release is backed by frozen funds.
    2. **Cumulative firewall bound**: released_total(Cᵢ) ≤
       injected_total(Cᵢ) — no child subtree has ever extracted more value
       from P than was genuinely injected into it (the §II bound).
    3. **Ledger consistency**: circulating = injected − released, ≥ 0.
    4. **Child mint bound**: tokens minted inside Cᵢ's chain ≤
       injected_total(Cᵢ) — a subnet chain only materialises value its
       parent froze for it.  (Relay traffic makes the parent's *circulating*
       an upper bound rather than an exact mirror of the child's net supply
       — the paper relays intermediate metas unverified, Fig. 3 — so the
       sound per-child invariants are the cumulative ones above.)
    """
    audit = SupplyAudit()
    for subnet in system.subnets:
        parent_node = system.node(subnet)
        sca_balance = parent_node.vm.balance_of(SCA_ADDRESS)
        total_backing = 0
        prefix = f"actor/{SCA_ADDRESS.raw}/child/"
        for key in parent_node.vm.state.keys(prefix):
            child_path = key[len(prefix):]
            record = parent_node.vm.state.get(key)
            supply = SubnetSupply(
                subnet=child_path,
                collateral=record["collateral"],
                circulating_at_parent=record["circulating"],
                injected_total=record["injected_total"],
                released_total=record["released_total"],
                frozen_pool_at_parent=sca_balance,
                status=record["status"],
            )
            total_backing += record["collateral"] + record["circulating"]
            if supply.released_total > supply.injected_total:
                audit.violations.append(
                    f"{child_path}: released {supply.released_total} exceeds "
                    f"injected {supply.injected_total} — firewall breached"
                )
            if supply.circulating_at_parent != supply.injected_total - supply.released_total:
                audit.violations.append(
                    f"{child_path}: circulating {supply.circulating_at_parent} != "
                    f"injected - released"
                )
            if supply.circulating_at_parent < 0:
                audit.violations.append(f"{child_path}: negative circulating supply")
            child_id = SubnetID(child_path)
            if child_id in system.nodes_by_subnet:
                child_vm = system.node(child_id).vm
                supply.minted_in_subnet = child_vm.total_minted
                supply.burned_in_subnet = child_vm.total_burned
                if supply.minted_in_subnet > supply.injected_total:
                    audit.violations.append(
                        f"{child_path}: minted {supply.minted_in_subnet} exceeds "
                        f"injected {supply.injected_total}"
                    )
            audit.subnets[child_path] = supply
        if sca_balance < total_backing:
            audit.violations.append(
                f"{subnet}: SCA pool {sca_balance} cannot back "
                f"collateral+circulating {total_backing}"
            )
    return audit


class CompromisedSubnet:
    """An adversary holding all (or a quorum of) a subnet's validator keys.

    Mounts the forged-extraction attack of §II: builds a checkpoint whose
    cross-msg meta claims *value* flowing bottom-up to an attacker address
    in the parent, signs it with the subnet's genuine validator keys,
    pushes the forged batch into the resolution layer (so the parent can
    apply it), and submits the checkpoint through the SA.
    """

    def __init__(self, system, subnet) -> None:
        self.system = system
        self.subnet = SubnetID(subnet)
        self.parent = self.subnet.parent()
        self.nodes = system.nodes(self.subnet)
        self.sa_addr = system.sa_address(self.subnet)
        self._wallet = Wallet(self.nodes[0].keypair)
        self._window_bump = 0

    def forge_extraction(
        self,
        attacker: Address,
        value: int,
        count: int = 1,
        break_prev: bool = False,
        break_epoch: bool = False,
    ) -> CrossMsgMeta:
        """Submit a forged checkpoint claiming *value* (split over *count*
        messages) for *attacker* on the parent chain.

        Returns the forged meta.  The parent's firewall decides how much of
        it ever pays out.  ``break_prev`` points the forged prev-link at
        garbage — the SCA's prev-chaining check rejects that outright, so
        it probes the defense rather than bypassing it.  ``break_epoch``
        keeps the prev-link genuine but claims epoch 0: the commit path
        validates window monotonicity, prev and signatures but *not* epoch
        monotonicity, so the forgery commits — exactly the gap the
        checkpoint-chain auditor exists to catch.
        """
        per_message = value // count
        amounts = [per_message] * count
        amounts[-1] += value - per_message * count
        forged_messages = tuple(
            CrossMsg(
                from_subnet=self.subnet,
                from_addr=attacker,
                to_subnet=self.parent,
                to_addr=attacker,
                value=amount,
                origin_nonce=i,
            )
            for i, amount in enumerate(amounts)
        )
        msgs_cid = cid_of(forged_messages)
        record = self.system.child_record(self.parent, self.subnet) or {}
        parent_node = self.system.node(self.parent)
        last_window = parent_node.vm.state.get(
            f"actor/{self.sa_addr.raw}/last_ckpt_window", -1
        )
        window = last_window + 1 + self._window_bump
        self._window_bump += 1
        from repro.crypto.cid import CID

        meta = CrossMsgMeta(
            from_subnet=self.subnet,
            to_subnet=self.parent,
            nonce=999_000 + window,
            msgs_cid=msgs_cid,
            count=count,
            value=value,
        )
        prev = (
            cid_of(("forged-prev", self.subnet.path, window))
            if break_prev
            else CID.from_hex(record.get("last_ckpt_cid", "00" * 32))
        )
        checkpoint = Checkpoint(
            source=self.subnet,
            proof=cid_of(("forged-proof", window)),
            prev=prev,
            cross_meta=(meta,),
            window=window,
            epoch=0 if break_epoch else (window + 1) * 10,
        )
        # Genuine quorum signatures — the adversary holds the keys.
        config = self.system.configs[self.subnet]
        quorum = 1 if config.policy.kind == "single" else config.policy.threshold
        signatures = tuple(
            sign(node.keypair, checkpoint.cid.hex()) for node in self.nodes[:quorum]
        )
        signed = SignedCheckpoint(checkpoint=checkpoint, signatures=signatures)
        # Push the forged batch so the parent's pools can resolve it.
        for node in self.nodes:
            node.resolution.store(msgs_cid, forged_messages)
        self.nodes[0].resolution.push(self.parent, msgs_cid, forged_messages)
        # Submit through the SA like any checkpoint.
        self._wallet.send(
            self.system.node(self.parent),
            self.sa_addr,
            method="submit_checkpoint",
            params={"signed": signed},
        )
        return meta

    def extracted_so_far(self, attacker: Address) -> int:
        return self.system.balance(self.parent, attacker)

"""The subnet cross-msg content resolution protocol (§IV-C, Fig. 4).

Bottom-up checkpoints carry only the ``msgsCid`` of each cross-msg batch;
the raw messages travel separately:

- **push**: when a checkpoint is submitted, a subnet validator publishes
  the batch contents on the destination subnet's resolution topic.  Peers
  "may choose to pick them up and cache/store them locally or discard
  them" — the service's ``cache_pushes`` flag (and a configurable drop
  probability) models that choice for the E4 experiment.
- **pull**: a subnet that cannot resolve a CID locally publishes a pull
  request on the *source* subnet's topic; any peer there answers by
  publishing a **resolve** message on the requester's topic, giving "every
  cross-msg pool a new opportunity to store or cache the content".

Batches are served from the SCA's in-state registry (the paper's
"content-addressable key-value store") or from the local cache.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.crypto.cid import CID, cid_of
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_id import SubnetID
from repro.net.gossip import GossipNetwork, PubsubEnvelope


def resolution_topic(subnet_id: SubnetID) -> str:
    return f"resolve:{subnet_id.path}"


class ResolutionService:
    """One node's participation in the content resolution protocol."""

    def __init__(
        self,
        sim,
        node_id: str,
        subnet_id: SubnetID,
        gossip: GossipNetwork,
        state_reader: Callable[[str], Optional[tuple]],
        cache_pushes: bool = True,
        push_drop_rng=None,
        push_drop_probability: float = 0.0,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.subnet_id = subnet_id
        self.gossip = gossip
        self._read_registry = state_reader  # msgs_cid hex -> tuple | None
        self.cache_pushes = cache_pushes
        self.push_drop_probability = push_drop_probability
        self._push_drop_rng = push_drop_rng
        self._cache: dict[CID, tuple] = {}
        self._waiting: dict[CID, list[Callable[[tuple], None]]] = {}
        gossip.subscribe(node_id, resolution_topic(subnet_id), self._on_message)

    # ------------------------------------------------------------------
    # Local store
    # ------------------------------------------------------------------
    def resolve_local(self, msgs_cid: CID) -> Optional[tuple]:
        """Messages behind *msgs_cid* if locally available, else None."""
        cached = self._cache.get(msgs_cid)
        if cached is not None:
            return cached
        from_state = self._read_registry(msgs_cid.hex())
        if from_state is not None:
            self._cache[msgs_cid] = tuple(from_state)
        return from_state

    def store(self, msgs_cid: CID, messages: tuple) -> bool:
        """Cache a batch after verifying it hashes to its CID."""
        if cid_of(tuple(messages)) != msgs_cid:
            self.sim.metrics.counter("resolution.bad_content").inc()
            return False
        self._cache[msgs_cid] = tuple(messages)
        for callback in self._waiting.pop(msgs_cid, []):
            callback(tuple(messages))
        return True

    # ------------------------------------------------------------------
    # Protocol operations
    # ------------------------------------------------------------------
    def push(self, destination: SubnetID, msgs_cid: CID, messages: tuple) -> None:
        """Publish a batch on the destination subnet's topic (Fig. 4)."""
        self.sim.metrics.counter("resolution.push_sent").inc()
        self.gossip.publish(
            self.node_id,
            resolution_topic(destination),
            ("push", msgs_cid, tuple(messages)),
        )

    def request(self, source: SubnetID, msgs_cid: CID,
                on_resolved: Optional[Callable[[tuple], None]] = None) -> None:
        """Pull a batch from its source subnet; *on_resolved* fires when the
        content lands (immediately if already local)."""
        local = self.resolve_local(msgs_cid)
        if local is not None:
            if on_resolved is not None:
                on_resolved(local)
            return
        if on_resolved is not None:
            self._waiting.setdefault(msgs_cid, []).append(on_resolved)
        self.sim.metrics.counter("resolution.pull_sent").inc()
        self.gossip.publish(
            self.node_id,
            resolution_topic(source),
            ("pull", msgs_cid, self.subnet_id.path),
        )

    # ------------------------------------------------------------------
    # Topic handler
    # ------------------------------------------------------------------
    def _on_message(self, envelope: PubsubEnvelope) -> None:
        kind, msgs_cid, payload = envelope.data
        if kind == "push":
            if not self.cache_pushes:
                return
            if self.push_drop_probability and self._push_drop_rng is not None:
                if self._push_drop_rng.random() < self.push_drop_probability:
                    self.sim.metrics.counter("resolution.push_dropped").inc()
                    return
            if self.store(msgs_cid, payload):
                self.sim.metrics.counter("resolution.push_stored").inc()
        elif kind == "pull":
            requester = SubnetID(payload)
            content = self.resolve_local(msgs_cid)
            if content is None:
                self.sim.metrics.counter("resolution.pull_miss").inc()
                return
            self.sim.metrics.counter("resolution.pull_served").inc()
            self.gossip.publish(
                self.node_id,
                resolution_topic(requester),
                ("resolve", msgs_cid, tuple(content)),
            )
        elif kind == "resolve":
            if self.store(msgs_cid, payload):
                self.sim.metrics.counter("resolution.resolved").inc()

    def detach(self) -> None:
        self.gossip.unsubscribe(self.node_id, resolution_topic(self.subnet_id))


def sca_registry_reader(node) -> Callable[[str], Optional[tuple]]:
    """A state_reader backed by a node's SCA registry (its own chain state)."""

    def read(cid_hex: str) -> Optional[tuple]:
        return node.vm.state.get(f"actor/{SCA_ADDRESS.raw}/registry/{cid_hex}")

    return read

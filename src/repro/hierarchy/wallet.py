"""Client-side wallet: signs and submits messages with nonce pipelining."""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto.keys import Address, KeyPair
from repro.vm.message import Message, SignedMessage


class Wallet:
    """A keypair plus per-chain local nonce tracking.

    Sending several messages within one block interval requires assigning
    consecutive nonces before the chain reflects them; the wallet tracks
    the next nonce per subnet locally, synced forward from chain state.
    """

    def __init__(self, keypair: KeyPair) -> None:
        self.keypair = keypair
        self.address = keypair.address
        self._next_nonce: dict[str, int] = {}

    def next_nonce(self, node) -> int:
        chain_nonce = node.vm.nonce_of(self.address)
        local = self._next_nonce.get(node.subnet_id, 0)
        return max(chain_nonce, local)

    def send(
        self,
        node,
        to: Address,
        method: str = "send",
        params: Any = None,
        value: int = 0,
        gas_limit: int = 1_000_000,
    ) -> Optional[SignedMessage]:
        """Sign and submit a message through *node*; returns it, or None if
        the node's mempool rejected it."""
        nonce = self.next_nonce(node)
        message = Message(
            from_addr=self.address,
            to_addr=to,
            value=value,
            method=method,
            params=params,
            nonce=nonce,
            gas_limit=gas_limit,
        )
        signed = SignedMessage.create(message, self.keypair)
        if not node.submit_message(signed):
            return None
        self._next_nonce[node.subnet_id] = nonce + 1
        return signed

    def reset_nonce(self, subnet_id: str) -> None:
        """Forget local nonce state (e.g. after a failed send was dropped)."""
        self._next_nonce.pop(subnet_id, None)

    def __repr__(self) -> str:
        return f"Wallet({self.keypair.name}, {self.address})"

"""Node-side checkpointing: sign sealed windows, aggregate, submit (§III-B).

The SCA seals a checkpoint template in-state at each period boundary (a
deterministic function of the chain, so every validator derives the same
checkpoint).  This service then:

1. signs the sealed checkpoint per the SA policy (an individual signature,
   or a threshold partial) and gossips the signature on the subnet topic
   (Fig. 2's "signature window");
2. aggregates signatures until the policy quorum is met;
3. when this validator is the window's designated submitter (rotating by
   window index), submits the :class:`SignedCheckpoint` to the SA on the
   parent chain — with a timed fallback so a crashed submitter cannot stall
   checkpointing;
4. pushes the checkpoint's cross-msg batches to their destination subnets'
   resolution topics (§IV-C: "Whenever a subnet submits a new checkpoint to
   its parent, it pushes the messages behind the CIDs");
5. watches for policy-valid *conflicting* checkpoints and submits fraud
   proofs (§III-B) — the evidence that triggers slashing.

Byzantine behaviour hooks: ``equivocate_checkpoint`` makes this validator
also sign a forged conflicting checkpoint (the attack E8 measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.cid import CID, cid_of
from repro.crypto.signature import Signature, sign
from repro.crypto.threshold import ThresholdScheme
from repro.hierarchy.checkpoint import Checkpoint, SignedCheckpoint
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_actor import SignaturePolicy, threshold_scheme_for
from repro.hierarchy.wallet import Wallet


@dataclass
class CheckpointConfig:
    """Everything the service needs to know about its subnet's policy."""

    period: int  # blocks per checkpoint window
    policy: SignaturePolicy
    sa_addr: str  # the SA's address on the parent chain
    validator_index: int  # this validator's position in the sorted set
    validator_count: int
    threshold_share_index: int = 0  # 1-based share index for threshold policy
    submit_fallback_delay: float = 10.0  # seconds before backups also submit
    # How long the designated submitter waits for stragglers before
    # submitting a partial (but still quorum-satisfying) signature set.
    # The grace deadline makes the submitted bundle deterministic: at
    # sign-time + grace every signature that will ever arrive has arrived,
    # so the bundle is "all non-withheld signatures" independent of the
    # order in which same-timestamp deliveries happened to fire.
    submit_grace_delay: float = 2.0


def _sca_key(key: str) -> str:
    return f"actor/{SCA_ADDRESS.raw}/{key}"


class CheckpointService:
    """Drives a subnet validator's checkpoint duties."""

    def __init__(self, sim, node, config: CheckpointConfig) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.wallet = Wallet(node.keypair)
        self._signatures: dict[int, dict] = {}  # window -> {signer -> sig/partial}
        self._checkpoints: dict[int, Checkpoint] = {}
        self._submitted: set[int] = set()
        self._fraud_reported: set[int] = set()
        self._last_processed_window = -1
        # window -> {ckpt_cid_hex -> signatures} for equivocation detection
        self._seen_by_window: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Block-driven progress
    # ------------------------------------------------------------------
    def on_block(self, block) -> None:
        """Called for every committed block on this subnet's chain."""
        finality_lag = (
            self.node.engine.params.finality_depth
            if self.node.engine.SUPPORTS_FORKS
            else 0
        )
        final_height = self.node.head().height - finality_lag
        # Sealed windows become actionable once their sealing block is final.
        while True:
            next_window = self._last_processed_window + 1
            seal_height = (next_window + 1) * self.config.period
            if seal_height > final_height:
                break
            checkpoint = self.node.vm.state.get(_sca_key(f"ckpt/{next_window}"))
            if checkpoint is None:
                break  # not sealed yet (chain shorter than expected)
            self._last_processed_window = next_window
            self._sign_and_gossip(next_window, checkpoint)

    def _sign_and_gossip(self, window: int, checkpoint: Checkpoint) -> None:
        self._checkpoints[window] = checkpoint
        # Replay signatures that arrived before we processed the seal —
        # gossip can outrun a node's own block pipeline.
        stashed = self._seen_by_window.get(window, {}).get(checkpoint.cid.hex())
        if stashed:
            self._signatures.setdefault(window, {}).update(stashed["sigs"])
        payload = checkpoint.cid.hex()
        signature = self._produce_signature(payload)
        if signature is None:
            return
        self._record_signature(window, checkpoint.cid, self.node.node_id, signature)
        self.node.broadcast(
            "ckpt:sig", (window, checkpoint.cid, self.node.node_id, signature)
        )
        if self.node.is_byzantine("equivocate_checkpoint"):
            forged = Checkpoint(
                source=checkpoint.source,
                proof=cid_of(("forged", window, self.node.node_id)),
                prev=checkpoint.prev,
                children=checkpoint.children,
                cross_meta=checkpoint.cross_meta,
                window=checkpoint.window,
                epoch=checkpoint.epoch,
            )
            forged_sig = self._produce_signature(forged.cid.hex())
            self.sim.metrics.counter(
                f"checkpoint.{self.node.subnet_id}.equivocations"
            ).inc()
            self.node.broadcast(
                "ckpt:sig", (window, forged.cid, self.node.node_id, forged_sig)
            )
            # Gossip the forged checkpoint body so watchers can build proofs.
            self.node.broadcast("ckpt:body", (window, forged))
        # Fallback submission if the designated submitter stalls.
        self.sim.schedule(
            self.config.submit_fallback_delay,
            self._fallback_submit,
            window,
            label="ckpt:fallback",
        )
        if self._is_designated_submitter(window):
            # Grace deadline: submit with whatever quorum exists once every
            # signature that will ever arrive has had time to arrive.  Until
            # then _maybe_submit only fires on a complete signature set, so
            # the submitted bundle never depends on delivery tie order.
            self.sim.schedule(
                self.config.submit_grace_delay,
                self._grace_submit,
                window,
                label="ckpt:grace",
            )
        self._maybe_submit(window)

    def _produce_signature(self, payload: str):
        if self.node.is_byzantine("withhold_checkpoint_sig"):
            return None
        if self.config.policy.kind == "threshold":
            scheme = threshold_scheme_for(f"tss:{self.node.subnet_id}")
            if scheme is None:
                return None
            share = scheme.share_for(self.config.threshold_share_index)
            return ThresholdScheme.partial_sign(share, payload)
        return sign(self.node.keypair, payload)

    # ------------------------------------------------------------------
    # Signature aggregation
    # ------------------------------------------------------------------
    def handle(self, kind: str, payload) -> None:
        """Process checkpoint-related pubsub traffic."""
        if kind == "ckpt:sig":
            window, ckpt_cid, signer_id, signature = payload
            self._record_signature(window, ckpt_cid, signer_id, signature)
            self._check_equivocation(window)
            self._maybe_submit(window)
        elif kind == "ckpt:body":
            window, checkpoint = payload
            by_cid = self._seen_by_window.setdefault(window, {})
            entry = by_cid.setdefault(checkpoint.cid.hex(), {"sigs": {}, "body": None})
            entry["body"] = checkpoint
            self._check_equivocation(window)

    def _record_signature(self, window: int, ckpt_cid: CID, signer_id: str, signature) -> None:
        if signature is None:
            return
        book = self._signatures.setdefault(window, {})
        genuine = self._checkpoints.get(window)
        if genuine is not None and ckpt_cid == genuine.cid:
            book[signer_id] = signature
        by_cid = self._seen_by_window.setdefault(window, {})
        entry = by_cid.setdefault(ckpt_cid.hex(), {"sigs": {}, "body": None})
        entry["sigs"][signer_id] = signature
        if genuine is not None and ckpt_cid == genuine.cid:
            entry["body"] = genuine

    def _quorum(self) -> int:
        policy = self.config.policy
        if policy.kind == "single":
            return 1
        return policy.threshold

    def _bundle(self, window: int):
        """The policy-appropriate signature bundle, or None below quorum."""
        book = self._signatures.get(window, {})
        if len(book) < self._quorum():
            return None
        if self.config.policy.kind == "threshold":
            scheme = threshold_scheme_for(f"tss:{self.node.subnet_id}")
            if scheme is None:
                return None
            checkpoint = self._checkpoints[window]
            try:
                return scheme.combine(list(book.values()), checkpoint.cid.hex())
            except ValueError:
                return None
        return tuple(sorted(book.values(), key=lambda s: s.signer))

    # ------------------------------------------------------------------
    # Submission to the parent
    # ------------------------------------------------------------------
    def _is_designated_submitter(self, window: int) -> bool:
        return window % self.config.validator_count == self.config.validator_index

    def _maybe_submit(self, window: int) -> None:
        if window in self._submitted or window not in self._checkpoints:
            return
        if not self._is_designated_submitter(window):
            return
        # Only the *complete* signature set is submitted eagerly.  A partial
        # set that merely satisfies quorum would depend on which deliveries
        # happened to fire first among same-timestamp events — a tie-order
        # race (caught by ``Simulator(tie_shuffle=...)``).  Incomplete sets
        # wait for the deterministic grace deadline instead.
        book = self._signatures.get(window, {})
        if len(book) < self.config.validator_count:
            return
        self._try_submit(window)

    def _grace_submit(self, window: int) -> None:
        """Grace deadline: submit the (now stable) quorum-satisfying set."""
        if window in self._submitted or window not in self._checkpoints:
            return
        if not self._is_designated_submitter(window):
            return
        self._try_submit(window)

    def _fallback_submit(self, window: int, attempt: int = 0) -> None:
        """Backup path: while the parent still lacks this window, (re)submit.

        Also covers the case where an earlier submission failed to chain
        (e.g. a predecessor window landed late): the SA's recorded window is
        the ground truth, so we keep retrying with backoff until it shows.
        """
        if self.node.parent_node is None or attempt > 10:
            return
        sa_state = self.node.parent_node.vm.state.get(
            f"actor/{self.config.sa_addr}/last_ckpt_window", -1
        )
        if sa_state >= window:
            self._submitted.add(window)
            return
        self._try_submit(window)
        self.sim.schedule(
            self.config.submit_fallback_delay,
            self._fallback_submit,
            window,
            attempt + 1,
            label="ckpt:fallback",
        )

    def _try_submit(self, window: int) -> None:
        if self.node.parent_node is None or self.node.is_byzantine("withhold_checkpoint"):
            return
        bundle = self._bundle(window)
        if bundle is None:
            return
        checkpoint = self._checkpoints[window]
        signed = SignedCheckpoint(checkpoint=checkpoint, signatures=bundle)
        from repro.crypto.keys import Address

        self.wallet.send(
            self.node.parent_node,
            Address(self.config.sa_addr),
            method="submit_checkpoint",
            params={"signed": signed},
        )
        self._submitted.add(window)
        self.sim.metrics.counter(f"checkpoint.{self.node.subnet_id}.submitted").inc()
        self.sim.trace.emit(
            "checkpoint.submit", str(self.node.subnet_id),
            f"window={window}", checkpoint.cid.short(),
        )
        if self.sim.span_tracer is not None:
            self.sim.span_tracer.checkpoint_submitted(
                checkpoint.cid.hex(), str(self.node.subnet_id), window
            )
        self._push_contents(checkpoint)

    def _push_contents(self, checkpoint: Checkpoint) -> None:
        """Push each batch to the subnets that will need it (Fig. 4).

        The final destination applies the messages, and for path messages
        the parent (as LCA or relay hop) applies them first — push to both.
        """
        resolution = getattr(self.node, "resolution", None)
        if resolution is None:
            return
        parent = self.node.subnet.parent()
        for meta in checkpoint.cross_meta:
            messages = resolution.resolve_local(meta.msgs_cid)
            if messages is None:
                continue
            resolution.push(meta.to_subnet, meta.msgs_cid, messages)
            if meta.to_subnet != parent:
                resolution.push(parent, meta.msgs_cid, messages)

    # ------------------------------------------------------------------
    # Fraud proofs (§III-B)
    # ------------------------------------------------------------------
    def _check_equivocation(self, window: int) -> None:
        """Two policy-signed conflicting checkpoints → submit a fraud proof."""
        if window in self._fraud_reported or self.node.parent_node is None:
            return
        if self.config.policy.kind == "threshold":
            return  # combining partials for a forged cid needs k colluders
        by_cid = self._seen_by_window.get(window, {})
        # Sort by checkpoint CID so the proof pair (and its order inside the
        # fraud-proof transaction) is independent of gossip arrival order.
        complete = sorted(
            (
                (cid_hex, entry)
                for cid_hex, entry in by_cid.items()
                if entry["body"] is not None and len(entry["sigs"]) >= self._quorum()
            ),
            key=lambda item: item[0],
        )
        if len(complete) < 2:
            return
        first, second = complete[0][1], complete[1][1]
        if first["body"].prev != second["body"].prev:
            return
        self._fraud_reported.add(window)
        from repro.crypto.keys import Address

        proof_a = SignedCheckpoint(
            checkpoint=first["body"],
            signatures=tuple(sorted(first["sigs"].values(), key=lambda s: s.signer)),
        )
        proof_b = SignedCheckpoint(
            checkpoint=second["body"],
            signatures=tuple(sorted(second["sigs"].values(), key=lambda s: s.signer)),
        )
        self.wallet.send(
            self.node.parent_node,
            Address(self.config.sa_addr),
            method="submit_fraud_proof",
            params={"first": proof_a, "second": proof_b},
        )
        self.sim.metrics.counter(f"checkpoint.{self.node.subnet_id}.fraud_proofs").inc()
        self.sim.trace.emit("checkpoint.fraud_proof", str(self.node.subnet_id), f"window={window}")

"""Checkpoints and cross-msg metadata (§III-B).

A checkpoint is ``⟨s, proof, prev, children, crossMeta⟩``:

- ``s``: the source subnet;
- ``proof``: CID of the latest subnet chain block being committed;
- ``prev``: CID of the subnet's previous checkpoint;
- ``children``: (subnet id, checkpoint CID) for every child checkpoint
  aggregated in this window;
- ``crossMeta``: the tree of :class:`CrossMsgMeta` — one entry per
  (source, destination) batch of bottom-up cross-msgs, carrying only the
  batch's ``msgsCid``; the raw messages travel via the content resolution
  protocol (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.crypto.cid import CID, cached_cid
from repro.hierarchy.subnet_id import SubnetID

ZERO_CHECKPOINT = CID(b"\x00" * 32)


@dataclass(frozen=True)
class CrossMsgMeta:
    """Metadata for one batch of bottom-up cross-msgs (§III-B).

    ``from_subnet`` is the batch's origin, ``to_subnet`` its destination,
    ``nonce`` the origin SCA's batch counter, and ``msgs_cid`` the CID of
    the ordered message list (resolvable via §IV-C).  ``value`` is the
    batch's total token value — carried so relaying subnets and experiments
    can reason about flows; the destination still verifies the resolved
    messages against ``msgs_cid`` before trusting anything.
    """

    from_subnet: SubnetID
    to_subnet: SubnetID
    nonce: int
    msgs_cid: CID
    count: int = 0
    value: int = 0

    def to_canonical(self):
        return (
            self.from_subnet.path,
            self.to_subnet.path,
            self.nonce,
            self.msgs_cid.to_canonical(),
            self.count,
            self.value,
        )

    @property
    def cid(self) -> CID:
        return cached_cid(self)


@dataclass(frozen=True)
class Checkpoint:
    """One subnet checkpoint, committed to the parent chain via the SA."""

    source: SubnetID
    proof: CID  # latest subnet block committed by this checkpoint
    prev: CID  # previous checkpoint CID (ZERO_CHECKPOINT for the first)
    children: tuple = field(default_factory=tuple)  # ((subnet_path, ckpt_cid), …)
    cross_meta: tuple = field(default_factory=tuple)  # (CrossMsgMeta, …)
    window: int = 0  # checkpoint period index, for traceability
    epoch: int = 0  # subnet chain height at sealing

    def to_canonical(self):
        return (
            self.source.path,
            self.proof.to_canonical(),
            self.prev.to_canonical(),
            tuple((path, cid.to_canonical()) for path, cid in self.children),
            tuple(meta.to_canonical() for meta in self.cross_meta),
            self.window,
            self.epoch,
        )

    @property
    def cid(self) -> CID:
        return cached_cid(self)

    def metas_for(self, subnet: SubnetID) -> list:
        """Metas in this checkpoint destined for *subnet* itself."""
        return [m for m in self.cross_meta if m.to_subnet == subnet]

    def metas_not_for(self, subnet: SubnetID) -> list:
        """Metas that must be propagated beyond *subnet*."""
        return [m for m in self.cross_meta if m.to_subnet != subnet]


@dataclass(frozen=True)
class SignedCheckpoint:
    """A checkpoint plus the signature bundle required by the SA policy.

    ``signatures`` is whatever the policy demands: a tuple of individual
    :class:`~repro.crypto.signature.Signature` objects (single/multisig
    policies) or one :class:`~repro.crypto.threshold.ThresholdSignature`.
    """

    checkpoint: Checkpoint
    signatures: Any

    def to_canonical(self):
        signatures = self.signatures
        if isinstance(signatures, tuple):
            signatures = tuple(s.to_canonical() for s in signatures)
        elif hasattr(signatures, "to_canonical"):
            signatures = signatures.to_canonical()
        return (self.checkpoint.to_canonical(), signatures)

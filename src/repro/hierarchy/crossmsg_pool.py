"""The cross-msg pool (§IV-B).

"Nodes in subnets keep two types of message pools: an internal pool …
and a cross-msg pool that listens to unverified cross-msgs directed at
(or traversing) the subnet."

The pool has two feeds:

- **top-down**: it watches the parent chain's SCA state (child validators
  run full nodes on the parent, §II) and caches every queued top-down
  message for this subnet, keyed by the parent-assigned nonce;
- **bottom-up**: it watches this subnet's own SCA for metas queued by
  committed child checkpoints, and asks the resolution service for the raw
  messages behind each ``msgsCid``.

``select`` hands the consensus proposer the nonce-contiguous run of
applicable entries — top-down messages directly, bottom-up batches only
once resolved (an unresolved batch blocks later nonces, preserving the
SCA's total order).
"""

from __future__ import annotations

from typing import Optional

from repro.hierarchy.crossmsg import ApplyBottomUp, ApplyTopDown, CrossMsg
from repro.hierarchy.checkpoint import CrossMsgMeta
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.resolution import ResolutionService
from repro.hierarchy.subnet_id import SubnetID


def _sca_key(key: str) -> str:
    return f"actor/{SCA_ADDRESS.raw}/{key}"


class CrossMsgPool:
    """One node's cache of unverified cross-msgs awaiting proposal."""

    def __init__(
        self,
        sim,
        subnet_id: SubnetID,
        resolution: ResolutionService,
        parent_node=None,
        max_per_block: int = 100,
    ) -> None:
        self.sim = sim
        self.subnet_id = subnet_id
        self.resolution = resolution
        self.parent_node = parent_node
        self.max_per_block = max_per_block
        self._topdown: dict[int, CrossMsg] = {}
        self._td_scanned = 0  # next parent nonce to look for
        self._bu_metas: dict[int, CrossMsgMeta] = {}
        self._bu_scanned = 0
        if parent_node is not None:
            parent_node.on_commit(lambda block: self.scan_parent())

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------
    def scan_parent(self) -> int:
        """Pick up newly committed top-down messages from the parent SCA.

        Returns how many new messages were cached.
        """
        if self.parent_node is None:
            return 0
        state = self.parent_node.vm.state
        found = 0
        while True:
            key = _sca_key(f"td_msg/{self.subnet_id.path}/{self._td_scanned}")
            message = state.get(key)
            if message is None:
                break
            self._topdown[self._td_scanned] = message
            self._td_scanned += 1
            found += 1
        if found:
            self.sim.metrics.counter(f"crosspool.{self.subnet_id}.topdown_seen").inc(found)
        return found

    def scan_own(self, node) -> int:
        """Pick up newly queued bottom-up metas from this subnet's SCA and
        kick off resolution for each.  Returns how many were found."""
        state = node.vm.state
        found = 0
        while True:
            entry = state.get(_sca_key(f"bu_meta/{self._bu_scanned}"))
            if entry is None:
                break
            meta: CrossMsgMeta = entry["meta"]
            self._bu_metas[self._bu_scanned] = meta
            self._bu_scanned += 1
            found += 1
            # Fetch the raw messages (push may already have cached them).
            self.resolution.request(meta.from_subnet, meta.msgs_cid)
        if found:
            self.sim.metrics.counter(f"crosspool.{self.subnet_id}.bottomup_seen").inc(found)
        return found

    # ------------------------------------------------------------------
    # Proposal
    # ------------------------------------------------------------------
    def select(self, scratch_vm) -> list:
        """Applicable cross-msg payload entries for the next block.

        Reads the applied nonces from *scratch_vm* (the proposer's view of
        the parent state of the block being built) and returns contiguous
        runs starting there.
        """
        selected = []
        td_next = scratch_vm.state.get(_sca_key("td_applied_nonce"), 0)
        while td_next in self._topdown and len(selected) < self.max_per_block:
            selected.append(ApplyTopDown(message=self._topdown[td_next], nonce=td_next))
            td_next += 1
        bu_next = scratch_vm.state.get(_sca_key("bu_applied_nonce"), 0)
        while bu_next in self._bu_metas and len(selected) < self.max_per_block:
            meta = self._bu_metas[bu_next]
            messages = self.resolution.resolve_local(meta.msgs_cid)
            if messages is None:
                # Unresolved content blocks this and all later nonces — the
                # SCA's total order must not be violated (§IV-A).
                break
            selected.append(ApplyBottomUp(nonce=bu_next, messages=tuple(messages)))
            bu_next += 1
        return selected

    def prune_applied(self, vm) -> None:
        """Drop entries the chain has already applied (post-commit)."""
        td_applied = vm.state.get(_sca_key("td_applied_nonce"), 0)
        for nonce in [n for n in self._topdown if n < td_applied]:
            del self._topdown[nonce]
        bu_applied = vm.state.get(_sca_key("bu_applied_nonce"), 0)
        for nonce in [n for n in self._bu_metas if n < bu_applied]:
            del self._bu_metas[nonce]

    @property
    def pending_topdown(self) -> int:
        return len(self._topdown)

    @property
    def pending_bottomup(self) -> int:
        return len(self._bu_metas)

"""`HierarchicalSystem` — the public orchestration API.

Builds Fig. 1's picture end to end: a rootnet, subnets spawned from any
point in the hierarchy through in-protocol SA deployment and staking,
validator nodes running per-subnet consensus engines over simulated
gossipsub, checkpoint anchoring, cross-net transfers, content resolution
and atomic executions — all on one deterministic simulator.

All networking is composed through :class:`repro.runtime.NetworkStack`
(simulator + topology + transport + gossip) and every validator is a
:class:`repro.runtime.ValidatorCluster` of
:class:`~repro.hierarchy.node.SubnetNode` runtimes — this module only
orchestrates; it owns no delivery or block-production loop of its own.

Typical use (see ``examples/quickstart.py``)::

    system = HierarchicalSystem(seed=42)
    system.start()
    alice = system.create_wallet("alice", fund=100_000)
    sub = system.spawn_subnet(SubnetConfig(name="fast", engine="tendermint"))
    system.fund_subnet(alice, sub, alice.address, 50_000)
    system.run_for(30)
    assert system.balance(sub, alice.address) == 50_000
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.keys import Address, KeyPair
from repro.crypto.threshold import ThresholdScheme
from repro.consensus.base import ConsensusParams
from repro.hierarchy.checkpointing import CheckpointConfig
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.genesis import hierarchy_registry, subnet_genesis
from repro.hierarchy.node import SubnetNode
from repro.hierarchy.subnet_actor import SignaturePolicy, register_threshold_scheme
from repro.hierarchy.subnet_id import ROOTNET, SubnetID
from repro.hierarchy.wallet import Wallet
from repro.net.gossip import GossipParams
from repro.runtime import NetworkStack, ValidatorCluster, cluster_members
from repro.vm.builtin.init_actor import INIT_ACTOR_ADDRESS, derive_actor_address

TREASURY_FUNDS = 10**15


class SpawnError(RuntimeError):
    """Raised when a subnet fails to spawn within its deadline."""


@dataclass
class SubnetConfig:
    """Everything needed to spawn one subnet (§III-A).

    ``parent`` defaults to the rootnet.  ``policy`` governs checkpoint
    signatures; ``stake_per_validator × validators`` must reach both the
    SA's ``activation_collateral`` and the parent SCA's ``minCollateral``.
    """

    name: str = "subnet"
    parent: SubnetID = field(default_factory=lambda: ROOTNET)
    validators: int = 4
    engine: str = "poa"
    block_time: float = 0.5
    checkpoint_period: int = 10
    policy: SignaturePolicy = field(default_factory=lambda: SignaturePolicy("multisig", 2))
    stake_per_validator: int = 100
    activation_collateral: int = 100
    min_validators: int = 1
    finality_depth: int = 5
    byzantine: dict = field(default_factory=dict)  # node index -> {behaviours}
    cache_pushes: bool = True
    push_drop_probability: float = 0.0
    mir_leaders: int = 4
    max_block_messages: int = 500
    gas_price: int = 0  # >0 makes every message pay fees to its block miner (§II)
    accelerate: bool = False  # issue/accept pending-payment certificates (§IV-A)


class HierarchicalSystem:
    """A full hierarchical-consensus deployment on one simulator."""

    def __init__(
        self,
        seed: int = 1,
        latency: float = 0.02,
        loss_rate: float = 0.0,
        root_validators: int = 4,
        root_engine: str = "poa",
        root_block_time: float = 1.0,
        checkpoint_period: int = 10,
        min_collateral: int = 100,
        wallet_funds: Optional[dict] = None,
        gossip_params: Optional[GossipParams] = None,
        accelerate_root: bool = False,
    ) -> None:
        self.stack = NetworkStack(
            seed=seed, latency=latency, loss_rate=loss_rate, gossip_params=gossip_params
        )
        self.sim = self.stack.sim
        self.gossip = self.stack.gossip
        self.registry = hierarchy_registry()
        self.checkpoint_period = checkpoint_period
        self.min_collateral = min_collateral

        self.wallets: dict[str, Wallet] = {}
        self.treasury = self._make_wallet("treasury")
        genesis_allocations = {self.treasury.address: TREASURY_FUNDS}
        for name, funds in (wallet_funds or {}).items():
            wallet = self._make_wallet(name)
            genesis_allocations[wallet.address] = funds

        self.clusters: dict[SubnetID, ValidatorCluster] = {}
        self.nodes_by_subnet: dict[SubnetID, list] = {}  # kept in sync with clusters
        self.configs: dict[SubnetID, SubnetConfig] = {}
        self._accelerate_root = accelerate_root
        self._spawn_root(
            root_validators, root_engine, root_block_time, genesis_allocations
        )
        self._started = False
        self.span_tracer = None
        self.health_probe = None
        self.invariant_monitor = None
        self.flight_recorder = None
        self.profiler = None
        self.round_tracer = None
        self.stall_diagnoser = None
        self.last_timeout: Optional[dict] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_wallet(self, name: str) -> Wallet:
        if name in self.wallets:
            raise ValueError(f"wallet {name!r} exists")
        wallet = Wallet(KeyPair(("wallet", name)))
        self.wallets[name] = wallet
        return wallet

    def _register_cluster(self, subnet: SubnetID, cluster: ValidatorCluster) -> None:
        self.clusters[subnet] = cluster
        self.nodes_by_subnet[subnet] = cluster.nodes

    def _spawn_root(self, n_validators, engine, block_time, allocations) -> None:
        keys = [KeyPair(("validator", "/root", i)) for i in range(n_validators)]
        genesis_block, genesis_vm = subnet_genesis(
            ROOTNET,
            checkpoint_period=self.checkpoint_period,
            min_collateral=self.min_collateral,
            allocations=allocations,
            registry=self.registry,
        )
        params = ConsensusParams(engine=engine, block_time=block_time)

        def root_node(index, member, validators):
            return SubnetNode(
                sim=self.sim,
                node_id=member.node_id,
                keypair=member.keypair,
                subnet=ROOTNET,
                genesis_block=genesis_block,
                genesis_vm=genesis_vm,
                gossip=self.gossip,
                validators=validators,
                consensus_params=params,
                checkpoint_period=self.checkpoint_period,
                parent_node=None,
                accelerate=self._accelerate_root,
            )

        cluster = ValidatorCluster.build(
            cluster_members(keys, id_prefix=ROOTNET.path),
            subnet_id=ROOTNET.path,
            genesis_block=genesis_block,
            genesis_vm=genesis_vm,
            consensus_params=params,
            stack=self.stack,
            node_factory=root_node,
        )
        self._register_cluster(ROOTNET, cluster)
        self.configs[ROOTNET] = SubnetConfig(
            name="root", validators=n_validators, engine=engine, block_time=block_time,
            checkpoint_period=self.checkpoint_period,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "HierarchicalSystem":
        if not self._started:
            self.clusters[ROOTNET].start()
            self._started = True
        return self

    def run_for(self, seconds: float) -> "HierarchicalSystem":
        self.stack.run_for(seconds)
        return self

    def run_until(self, time: float) -> "HierarchicalSystem":
        self.stack.run_until(time)
        return self

    def wait_for(
        self,
        predicate: Callable[[], bool],
        timeout: float = 120.0,
        step: float = 0.25,
        label: Optional[str] = None,
    ) -> bool:
        """Advance simulated time until *predicate* holds; False on timeout.

        A timeout self-diagnoses: the predicate *label*, the sim time and a
        per-subnet health snapshot land on :attr:`last_timeout`, and — when
        monitors are enabled — the flight recorder dumps a postmortem
        bundle tagged ``wait-timeout:<label>``, so a stalled campaign or
        spawn leaves evidence instead of a bare ``False``.
        """
        ok = self.stack.wait_for(predicate, timeout=timeout, step=step)
        if not ok:
            self._note_wait_timeout(
                label or getattr(predicate, "__name__", None) or "<predicate>",
                timeout,
            )
        return ok

    def stop(self) -> None:
        for cluster in self.clusters.values():
            cluster.stop()
        self.stack.shutdown()

    # ------------------------------------------------------------------
    # Telemetry (opt-in; digest-neutral — see DESIGN.md § Observability)
    # ------------------------------------------------------------------
    def enable_telemetry(
        self,
        health_interval: Optional[float] = None,
        monitors: bool = False,
        postmortem_dir: Optional[str] = None,
        profile: bool = False,
        profile_interval: float = 0.01,
        profile_memory: bool = False,
    ):
        """Install causal span tracing (and, optionally, health sampling
        and live invariant monitors).

        ``monitors=True`` additionally installs the
        :class:`~repro.telemetry.monitor.InvariantMonitor` (all five
        default auditors) and a
        :class:`~repro.telemetry.recorder.FlightRecorder` that dumps a
        postmortem bundle into *postmortem_dir* (or ``$REPRO_POSTMORTEM_DIR``)
        on every violation.  ``profile=True`` starts a
        :class:`~repro.telemetry.profiler.SamplingProfiler` on ``self.profiler``
        — background-thread CPU sampling every *profile_interval* wall
        seconds, attributed to dispatch labels, plus ``mem.*`` resource
        gauges; ``profile_memory=True`` adds per-label tracemalloc
        allocation accounting (noticeably more overhead — keep it off for
        perf-gated runs).  Stop/export via ``self.profiler`` (benchmarks do
        this in ``write_bench_json``).  All of it is digest-neutral.

        Imported lazily so the hierarchy layer carries no telemetry
        dependency unless a run asks for it.  Idempotent; returns the
        :class:`~repro.telemetry.spans.SpanTracer`.
        """
        if self.span_tracer is None:
            from repro.telemetry import SpanTracer

            self.span_tracer = SpanTracer(self.sim).install()
        if self.round_tracer is None:
            from repro.telemetry import RoundTracer, StallDiagnoser

            self.round_tracer = RoundTracer(self.sim).install()
            self.stall_diagnoser = StallDiagnoser(self)
        if health_interval is not None and self.health_probe is None:
            from repro.telemetry import HealthProbe

            self.health_probe = HealthProbe(self, interval=health_interval).start()
        if monitors and self.invariant_monitor is None:
            from repro.telemetry import FlightRecorder, InvariantMonitor

            self.flight_recorder = FlightRecorder(
                self.sim, system=self, out_dir=postmortem_dir
            ).install()
            self.invariant_monitor = InvariantMonitor(
                self, recorder=self.flight_recorder
            ).install()
            if self.health_probe is not None:
                self.health_probe.on_sample(self.flight_recorder.note_health)
        if profile and self.profiler is None:
            from repro.telemetry import SamplingProfiler

            self.profiler = SamplingProfiler(
                self.sim, interval=profile_interval, memory=profile_memory
            ).start()
        return self.span_tracer

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def node(self, subnet) -> SubnetNode:
        """A representative (first) node of *subnet*."""
        return self.nodes_by_subnet[SubnetID(subnet)][0]

    def nodes(self, subnet) -> list:
        return list(self.nodes_by_subnet[SubnetID(subnet)])

    @property
    def subnets(self) -> list:
        return sorted(self.nodes_by_subnet)

    def balance(self, subnet, addr: Address) -> int:
        return self.node(subnet).vm.balance_of(addr)

    def end_state_digest(self) -> str:
        """Canonical digest of the system's *semantic* end state.

        This is the fingerprint the tie-shuffle race detector compares
        across shuffle seeds: for a quiescent run, it must be invariant
        under any legal permutation of same-timestamp events.

        It deliberately digests the **value level** — account balances,
        minted/burned supply, and the SCA's per-child value accounting
        (circulating/injected/released/collateral/slashed/status) — and
        NOT chain or checkpoint CIDs.  Block and checkpoint identities
        legitimately commit to the schedule (a subnet's genesis timestamp
        is the sim time its registration landed; a cross-msg's inclusion
        height shifts by a block under a permuted tie order), exactly as
        two honest schedules of a real chain produce different but equally
        valid block histories.  The paper's §II/§IV guarantees — value
        conservation and the firewall bound — live at the value level,
        so that is what must not depend on tie order.
        """
        hasher = hashlib.sha256()
        for subnet in self.subnets:
            node = self.node(subnet)
            vm = node.vm
            hasher.update(
                (
                    f"{SubnetID(subnet).path}"
                    f"|minted={vm.total_minted}|burned={vm.total_burned}\n"
                ).encode("utf-8")
            )
            for key, value in vm.state.items("balance/"):
                hasher.update(f"  {key}={value}\n".encode("utf-8"))
            for key, record in vm.state.items(f"actor/{SCA_ADDRESS.raw}/child/"):
                hasher.update(
                    (
                        f"  {key}|circ={record['circulating']}"
                        f"|inj={record['injected_total']}"
                        f"|rel={record['released_total']}"
                        f"|coll={record['collateral']}"
                        f"|slash={record['slashed_total']}"
                        f"|status={record['status']}\n"
                    ).encode("utf-8")
                )
        return hasher.hexdigest()

    def health_snapshot(self) -> dict:
        """Per-subnet vitals read directly off the nodes (no probe needed).

        Same fields as :class:`~repro.telemetry.health.HealthProbe` plus
        ``min_height`` across the subnet's validators — the spread exposes
        a partitioned or crashed laggard at a glance.
        """
        snapshot: dict[str, dict] = {}
        for subnet in self.subnets:
            nodes = self.nodes_by_subnet[subnet]
            node = nodes[0]
            crosspool = getattr(node, "crosspool", None)
            pending = 0
            if crosspool is not None:
                pending = crosspool.pending_topdown + crosspool.pending_bottomup
            heights = [n.head().height for n in nodes]
            snapshot[subnet.path] = {
                "height": max(heights),
                "min_height": min(heights),
                "mempool": len(node.mempool),
                "pending_crossmsgs": pending,
                "checkpoint_lag": self._checkpoint_lag(node),
            }
        return snapshot

    def _checkpoint_lag(self, node) -> Optional[int]:
        """Windows sealed locally beyond what the parent's SA recorded."""
        parent = getattr(node, "parent_node", None)
        service = getattr(node, "checkpoints", None)
        if parent is None or service is None:
            return None  # the rootnet anchors to nothing
        sealed = node.vm.state.get(f"actor/{SCA_ADDRESS.raw}/last_window_sealed", -1)
        committed = parent.vm.state.get(
            f"actor/{service.config.sa_addr}/last_ckpt_window", -1
        )
        return max(sealed - committed, 0)

    def _note_wait_timeout(self, label: str, timeout: float) -> dict:
        diagnosis = {
            "label": label,
            "timeout": timeout,
            "time": self.sim.now,
            "health": self.health_snapshot(),
        }
        if self.stall_diagnoser is not None:
            # A stall report per subnet: the timed-out predicate does not
            # say which subnet it was watching, and a fully stalled subnet
            # is indistinguishable from a healthy one in a single health
            # sample — so snapshot them all (a bounded pure read).
            diagnosis["stall_reports"] = [
                self.stall_diagnoser.diagnose(path)
                for path in sorted(diagnosis["health"])
            ]
        self.last_timeout = diagnosis
        if self.flight_recorder is not None:
            self.flight_recorder.dump(
                reason=f"wait-timeout:{label}",
                stall_reports=diagnosis.get("stall_reports"),
            )
        return diagnosis

    def timeout_detail(self) -> str:
        """Render :attr:`last_timeout` for exception messages and logs."""
        diagnosis = self.last_timeout
        if diagnosis is None:
            return ""
        lines = [
            f" (predicate {diagnosis['label']!r} still false after "
            f"{diagnosis['timeout']:g}s at t={diagnosis['time']:.2f})"
        ]
        for path in sorted(diagnosis["health"]):
            health = diagnosis["health"][path]
            lines.append(
                f"  {path}: height={health['height']}"
                f" min_height={health['min_height']}"
                f" mempool={health['mempool']}"
                f" pending_crossmsgs={health['pending_crossmsgs']}"
                f" checkpoint_lag={health['checkpoint_lag']}"
            )
        for report in diagnosis.get("stall_reports") or []:
            quorum = report.get("quorum") or {}
            if quorum.get("kind") == "vote-quorum":
                lines.append(
                    f"  {report['subnet']} quorum at h{quorum.get('height')}"
                    f" r{quorum.get('round')}:"
                    f" {quorum.get('held_power')}/{quorum.get('needed_power')}"
                    f" power, silent={quorum.get('silent') or []}"
                )
        if self.flight_recorder is not None and self.flight_recorder.paths:
            lines.append(f"  postmortem: {self.flight_recorder.paths[-1]}")
        return "\n".join(lines)

    def sca_state(self, subnet, key: str, default=None):
        return self.node(subnet).vm.state.get(
            f"actor/{SCA_ADDRESS.raw}/{key}", default
        )

    def child_record(self, parent, child) -> Optional[dict]:
        return self.sca_state(parent, f"child/{SubnetID(child).path}")

    def sa_address(self, subnet) -> Address:
        return derive_actor_address("subnet-actor", SubnetID(subnet).path)

    def validator_wallets(self, subnet) -> list:
        subnet = SubnetID(subnet)
        config = self.configs[subnet]
        return [
            self.wallets[f"{subnet.path}-val{i}"] for i in range(config.validators)
        ]

    # ------------------------------------------------------------------
    # Wallets and funds
    # ------------------------------------------------------------------
    def create_wallet(self, name: str, fund: int = 0) -> Wallet:
        """Create a wallet; optionally fund it on the rootnet from treasury."""
        wallet = self._make_wallet(name)
        if fund:
            self.transfer(self.treasury, ROOTNET, wallet.address, fund)
            self.wait_for(
                lambda: self.balance(ROOTNET, wallet.address) >= fund,
                label=f"wallet-funded:{name}",
            )
        return wallet

    def transfer(self, wallet: Wallet, subnet, to: Address, value: int):
        """An ordinary intra-subnet payment."""
        return wallet.send(self.node(subnet), to, value=value)

    def fund_subnet(self, wallet: Wallet, child, to: Address, value: int):
        """Inject *value* from the child's parent chain into the child (§II)."""
        child = SubnetID(child)
        signed = wallet.send(
            self.node(child.parent()),
            SCA_ADDRESS,
            method="fund",
            params={"subnet_path": child.path, "to_addr": to.raw},
            value=value,
        )
        if self.span_tracer is not None and signed is not None:
            self.span_tracer.note_submit(
                child.parent().path, child.path, to.raw, value
            )
        return signed

    def cross_send(
        self,
        wallet: Wallet,
        from_subnet,
        to_subnet,
        to: Address,
        value: int,
        method: str = "send",
        params=None,
    ):
        """Send a general cross-net message from *from_subnet* (§IV-A)."""
        signed = wallet.send(
            self.node(from_subnet),
            SCA_ADDRESS,
            method="send_crossmsg",
            params={
                "to_subnet": SubnetID(to_subnet).path,
                "to_addr": to.raw,
                "method": method,
                "params": params,
            },
            value=value,
        )
        if self.span_tracer is not None and signed is not None:
            self.span_tracer.note_submit(
                SubnetID(from_subnet).path, SubnetID(to_subnet).path, to.raw, value
            )
        return signed

    # ------------------------------------------------------------------
    # Spawning subnets (§III-A)
    # ------------------------------------------------------------------
    def spawn_subnet(self, config: SubnetConfig, timeout: float = 240.0) -> SubnetID:
        """Spawn a subnet through the full in-protocol flow.

        1. fund the prospective validators' wallets on the parent chain;
        2. deploy the Subnet Actor via the parent's init actor;
        3. validators join with stake until the SA registers with the SCA;
        4. once the parent SCA marks the child *active*, instantiate the
           child chain (genesis + SCA), its validator nodes, consensus
           engine, checkpoint service and cross-msg machinery.

        Advances simulated time as needed; raises :class:`SpawnError` on
        timeout.
        """
        if not self._started:
            raise SpawnError("call start() before spawning subnets")
        parent = SubnetID(config.parent)
        if parent not in self.nodes_by_subnet:
            raise SpawnError(f"parent subnet {parent} does not exist")
        subnet = parent.child(config.name)
        if subnet in self.nodes_by_subnet:
            raise SpawnError(f"{subnet} already exists")

        validator_wallets = [
            self._make_wallet(f"{subnet.path}-val{i}") for i in range(config.validators)
        ]
        self._fund_on_subnet(
            parent,
            [(w.address, config.stake_per_validator * 2) for w in validator_wallets],
            timeout,
        )

        # Deploy the SA through consensus.
        sa_addr = self.sa_address(subnet)
        deployer = validator_wallets[0]
        deployer.send(
            self.node(parent),
            INIT_ACTOR_ADDRESS,
            method="deploy",
            params={
                "code": "subnet-actor",
                "label": subnet.path,
                "params": {
                    "subnet_path": subnet.path,
                    "consensus": config.engine,
                    "checkpoint_period": config.checkpoint_period,
                    "activation_collateral": config.activation_collateral,
                    "policy": config.policy,
                    "min_validators": config.min_validators,
                },
            },
        )
        if not self.wait_for(
            lambda: self.node(parent).vm.actor_code(sa_addr) == "subnet-actor",
            timeout=timeout,
            label=f"sa-deployed:{subnet.path}",
        ):
            raise SpawnError(
                f"SA deployment for {subnet} timed out{self.timeout_detail()}"
            )

        # Validators stake; the SA registers with the SCA at activation.
        for wallet in validator_wallets:
            wallet.send(
                self.node(parent), sa_addr, method="join",
                value=config.stake_per_validator,
            )
        if not self.wait_for(
            lambda: (self.child_record(parent, subnet) or {}).get("status") == "active",
            timeout=timeout,
            label=f"sa-active:{subnet.path}",
        ):
            raise SpawnError(
                f"{subnet} never became active in the parent SCA"
                f"{self.timeout_detail()}"
            )

        self._instantiate_subnet(subnet, config, validator_wallets, sa_addr)
        return subnet

    def _fund_on_subnet(self, subnet: SubnetID, grants: list, timeout: float) -> None:
        """Ensure each (address, amount) holds on *subnet*'s chain,
        injecting from the treasury through the hierarchy as needed."""
        needed = [
            (addr, amount)
            for addr, amount in grants
            if self.balance(subnet, addr) < amount
        ]
        if not needed:
            return
        if subnet.is_root:
            for addr, amount in needed:
                self.transfer(self.treasury, ROOTNET, addr, amount)
        else:
            # fund() executes on the subnet's parent chain, so the treasury
            # must hold funds there first — provision recursively down the
            # hierarchy (each hop is itself a top-down injection).
            total = sum(amount for _, amount in needed)
            self._ensure_treasury_funds(subnet.parent(), total, timeout)
            for addr, amount in needed:
                self.fund_subnet(self.treasury, subnet, addr, amount)
        ok = self.wait_for(
            lambda: all(self.balance(subnet, addr) >= amount for addr, amount in needed),
            timeout=timeout,
            label=f"validators-funded:{subnet.path}",
        )
        if not ok:
            raise SpawnError(
                f"funding validators on {subnet} timed out{self.timeout_detail()}"
            )

    def ensure_funds(self, subnet, grants, timeout: float = 240.0) -> None:
        """Ensure each ``(address, amount)`` balance holds on *subnet*.

        Public wrapper over the spawn-path funding helper — workload and
        scenario drivers stage their senders through it instead of poking
        node VMs (funds always flow in-protocol).
        """
        self._fund_on_subnet(SubnetID(subnet), list(grants), timeout)

    def provision_treasury(self, subnet, amount: int, timeout: float = 240.0) -> None:
        """Public helper: ensure the treasury can spend *amount* on *subnet*.

        Workload drivers at depth > 1 use this to stage funds hop by hop.
        """
        self._ensure_treasury_funds(SubnetID(subnet), amount, timeout)

    def _ensure_treasury_funds(self, subnet: SubnetID, amount: int, timeout: float) -> None:
        """Make sure the treasury holds ≥ *amount* on *subnet*'s chain."""
        if subnet.is_root:
            return  # funded at genesis
        if self.balance(subnet, self.treasury.address) >= amount:
            return
        top_up = max(amount * 4, 1_000_000)
        # The parent needs twice the top-up: it is about to spend top_up on
        # this injection and must keep headroom for its own later traffic.
        self._ensure_treasury_funds(subnet.parent(), top_up * 2, timeout)
        self.fund_subnet(self.treasury, subnet, self.treasury.address, top_up)
        ok = self.wait_for(
            lambda: self.balance(subnet, self.treasury.address) >= amount,
            timeout=timeout,
            label=f"treasury-funded:{subnet.path}",
        )
        if not ok:
            raise SpawnError(
                f"provisioning treasury on {subnet} timed out{self.timeout_detail()}"
            )

    def _instantiate_subnet(
        self, subnet: SubnetID, config: SubnetConfig, validator_wallets, sa_addr
    ) -> None:
        parent = subnet.parent()
        # Nodes sign blocks and checkpoints with the same keypairs that
        # staked via the SA — the SA's signature policy validates against
        # the addresses in its validator set.
        keys = [wallet.keypair for wallet in validator_wallets]
        # Stake-weighted engines (pos, pow) read each validator's power from
        # the stake recorded in the SA; equal-vote engines ignore power.
        sa_validators = self.node(parent).vm.state.get(
            f"actor/{sa_addr.raw}/validators", {}
        )
        powers = [
            max(1, sa_validators.get(wallet.address.raw, config.stake_per_validator))
            for wallet in validator_wallets
        ]
        genesis_block, genesis_vm = subnet_genesis(
            subnet,
            checkpoint_period=config.checkpoint_period,
            min_collateral=self.min_collateral,
            registry=self.registry,
            timestamp=self.sim.now,
            gas_price=config.gas_price,
        )
        params = ConsensusParams(
            engine=config.engine,
            block_time=config.block_time,
            finality_depth=config.finality_depth,
            mir_leaders=config.mir_leaders,
            max_block_messages=config.max_block_messages,
        )
        if config.policy.kind == "threshold":
            register_threshold_scheme(
                ThresholdScheme(
                    f"tss:{subnet.path}",
                    threshold=config.policy.threshold,
                    participants=config.validators,
                    seed=self.sim.seeds.seed_for("tss", subnet.path),
                )
            )
        parent_nodes = self.nodes_by_subnet[parent]

        def subnet_node(i, member, validators):
            # The checkpoint-submission wallet is the validator wallet that
            # staked on the parent; its keypair must match the node keypair
            # for signature policies, so nodes use the wallet keypairs.
            checkpoint_config = CheckpointConfig(
                period=config.checkpoint_period,
                policy=config.policy,
                sa_addr=sa_addr.raw,
                validator_index=i,
                validator_count=config.validators,
                threshold_share_index=i + 1,
            )
            return SubnetNode(
                sim=self.sim,
                node_id=member.node_id,
                keypair=member.keypair,
                subnet=subnet,
                genesis_block=genesis_block,
                genesis_vm=genesis_vm,
                gossip=self.gossip,
                validators=validators,
                consensus_params=params,
                checkpoint_period=config.checkpoint_period,
                parent_node=parent_nodes[i % len(parent_nodes)],
                checkpoint_config=checkpoint_config,
                byzantine=config.byzantine.get(i),
                cache_pushes=config.cache_pushes,
                push_drop_probability=config.push_drop_probability,
                accelerate=config.accelerate,
            )

        cluster = ValidatorCluster.build(
            cluster_members(keys, id_prefix=subnet.path, powers=powers),
            subnet_id=subnet.path,
            genesis_block=genesis_block,
            genesis_vm=genesis_vm,
            consensus_params=params,
            stack=self.stack,
            node_factory=subnet_node,
        )
        self._register_cluster(subnet, cluster)
        self.configs[subnet] = config
        cluster.start()
        self.sim.trace.emit("subnet.spawned", subnet.path, f"n={config.validators}",
                            config.engine)

"""Genesis construction for hierarchical subnets."""

from __future__ import annotations

from typing import Optional

from repro.chain.genesis import GenesisParams, build_genesis
from repro.hierarchy.gateway import SCA_ADDRESS, SubnetCoordinatorActor
from repro.hierarchy.subnet_actor import SubnetActor
from repro.hierarchy.subnet_id import SubnetID
from repro.vm.actor import ActorRegistry
from repro.vm.builtin import default_registry
from repro.vm.builtin.init_actor import INIT_ACTOR_ADDRESS


def hierarchy_registry() -> ActorRegistry:
    """The actor registry every hierarchical subnet runs: built-ins + SCA + SA."""
    registry = default_registry()
    registry.register(SubnetCoordinatorActor)
    registry.register(SubnetActor)
    return registry


def subnet_genesis(
    subnet: SubnetID,
    checkpoint_period: int = 10,
    min_collateral: int = 100,
    allocations: Optional[dict] = None,
    gas_price: int = 0,
    timestamp: float = 0.0,
    registry: Optional[ActorRegistry] = None,
):
    """Build ``(genesis_block, vm)`` for a subnet chain with its SCA installed.

    Spawning a subnet "instantiates a new independent state" (§III-A); the
    SCA is part of that state from block 0 so cross-net machinery works from
    the first block.
    """
    params = GenesisParams(
        subnet_id=subnet.path,
        allocations=allocations or {},
        system_actors=[
            (INIT_ACTOR_ADDRESS, "init", {}, 0),
            (
                SCA_ADDRESS,
                "sca",
                {
                    "subnet_path": subnet.path,
                    "min_collateral": min_collateral,
                    "checkpoint_period": checkpoint_period,
                },
                0,
            ),
        ],
        gas_price=gas_price,
        timestamp=timestamp,
    )
    return build_genesis(params, registry=registry or hierarchy_registry())

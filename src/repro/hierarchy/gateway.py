"""The Subnet Coordinator Actor (SCA).

"The SCA is a system actor that exposes the interface for subnets to
interact with the hierarchical consensus protocol … it also enforces
security assumptions, fund management, and the cryptoeconomics of
hierarchical consensus" (§III-A).

One SCA instance lives in every subnet's VM at :data:`SCA_ADDRESS`.  It
owns:

- the child registry: collateral, active/inactive/killed status, and each
  child's **circulating supply** — the firewall property's ledger (§II);
- top-down queues: nonce-ordered cross-msgs awaiting application by each
  child (§IV-A);
- bottom-up queues: nonce-ordered :class:`~repro.hierarchy.checkpoint.CrossMsgMeta`
  collected from child checkpoints and awaiting resolution + application;
- the outgoing batch for the current checkpoint window and the metas being
  relayed upward, sealed into a :class:`~repro.hierarchy.checkpoint.Checkpoint`
  every ``checkpoint_period`` epochs (§III-B, Fig. 2);
- the content-resolution registry (msgsCid → raw messages, §IV-C);
- atomic-execution coordination state (§IV-D) and the asset/lock records
  used by atomic swaps in leaf subnets;
- the ``save()`` snapshots from which users reclaim funds out of killed
  subnets (§III-C).

The SCA's token balance *is* the frozen-funds pool: every top-down
injection leaves its value here, and every bottom-up release pays out of
here.  A compromised child can therefore never extract more than what was
genuinely injected — the firewall bound enforced in
:meth:`SubnetCoordinatorActor.apply_bottomup`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto.cid import CID, cid_of
from repro.crypto.keys import Address
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.hierarchy.checkpoint import Checkpoint, CrossMsgMeta, ZERO_CHECKPOINT
from repro.hierarchy.crossmsg import CrossMsg, Direction, classify
from repro.hierarchy.subnet_id import SubnetID
from repro.vm.actor import Actor, export
from repro.vm.exitcode import ExitCode

SCA_ADDRESS = Address.actor(64)

STATUS_ACTIVE = "active"
STATUS_INACTIVE = "inactive"
STATUS_KILLED = "killed"


class SubnetCoordinatorActor(Actor):
    """The per-subnet hierarchical-consensus system actor."""

    CODE = "sca"

    # ==================================================================
    # Construction
    # ==================================================================
    @export
    def constructor(
        self,
        ctx,
        subnet_path: str = "/root",
        min_collateral: int = 100,
        checkpoint_period: int = 10,
    ) -> None:
        ctx.require(min_collateral > 0, "min_collateral must be positive")
        ctx.require(checkpoint_period > 0, "checkpoint_period must be positive")
        SubnetID(subnet_path)  # validate
        ctx.state_set("self_id", subnet_path)
        ctx.state_set("min_collateral", min_collateral)
        ctx.state_set("checkpoint_period", checkpoint_period)
        ctx.state_set("td_applied_nonce", 0)
        ctx.state_set("bu_nonce", 0)
        ctx.state_set("bu_applied_nonce", 0)
        ctx.state_set("last_ckpt_cid", ZERO_CHECKPOINT.hex())
        ctx.state_set("last_window_sealed", -1)

    # ==================================================================
    # Internal helpers
    # ==================================================================
    def _self_id(self, ctx) -> SubnetID:
        return SubnetID(ctx.state_get("self_id"))

    def _child_key(self, path: str) -> str:
        return f"child/{path}"

    def _child(self, ctx, path: str, required: bool = True) -> Optional[dict]:
        record = ctx.state_get(self._child_key(path))
        if record is None and required:
            ctx.abort(ExitCode.USR_NOT_FOUND, f"unknown child subnet {path}")
        return record

    def _put_child(self, ctx, path: str, record: dict) -> None:
        ctx.state_set(self._child_key(path), record)

    def _require_sa(self, ctx, record: dict, path: str) -> None:
        ctx.require(
            ctx.caller.raw == record["sa_addr"],
            f"only the SA of {path} may call this",
            exit_code=ExitCode.USR_FORBIDDEN,
        )

    def _next_hop_child(self, ctx, destination: SubnetID) -> str:
        self_id = self._self_id(ctx)
        return self_id.next_hop_down(destination).path

    # ==================================================================
    # Child registry & collateral (§III-A, §III-B, §III-C)
    # ==================================================================
    @export
    def register(
        self,
        ctx,
        subnet_path: str = "",
        checkpoint_period: int = 10,
    ) -> None:
        """Register a new child subnet.  Caller must be the child's SA;
        the message value is the initial collateral."""
        self_id = self._self_id(ctx)
        child_id = SubnetID(subnet_path)
        ctx.require(
            child_id.parent() == self_id,
            f"{subnet_path} is not a direct child of {self_id}",
        )
        ctx.require(
            ctx.state_get(self._child_key(subnet_path)) is None,
            f"{subnet_path} already registered",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        min_collateral = ctx.state_get("min_collateral")
        ctx.require(
            ctx.value_received >= min_collateral,
            f"collateral {ctx.value_received} below minimum {min_collateral}",
            exit_code=ExitCode.USR_INSUFFICIENT_FUNDS,
        )
        self._put_child(
            ctx,
            subnet_path,
            {
                "sa_addr": ctx.caller.raw,
                "collateral": ctx.value_received,
                "status": STATUS_ACTIVE,
                "circulating": 0,
                "injected_total": 0,  # cumulative top-down value into the child
                "released_total": 0,  # cumulative bottom-up value out of it
                "registered_epoch": ctx.epoch,
                "checkpoint_period": checkpoint_period,
                "last_ckpt_cid": ZERO_CHECKPOINT.hex(),
                "slashed_total": 0,
            },
        )
        ctx.emit("subnet.registered", subnet_path)

    @export
    def add_collateral(self, ctx, subnet_path: str = "") -> None:
        """Top up a child's collateral (reactivates if above the minimum)."""
        record = self._child(ctx, subnet_path)
        self._require_sa(ctx, record, subnet_path)
        ctx.require(ctx.value_received > 0, "no collateral attached")
        ctx.require(
            record["status"] != STATUS_KILLED,
            "subnet is killed",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        record = dict(record)
        record["collateral"] += ctx.value_received
        if record["collateral"] >= ctx.state_get("min_collateral"):
            if record["status"] == STATUS_INACTIVE:
                ctx.emit("subnet.reactivated", subnet_path)
            record["status"] = STATUS_ACTIVE
        self._put_child(ctx, subnet_path, record)

    @export
    def release_collateral(
        self, ctx, subnet_path: str = "", to_addr: str = "", amount: int = 0
    ) -> None:
        """Release collateral to a leaving miner (§III-C).  Caller: the SA.

        Dropping below ``min_collateral`` flips the subnet to *inactive*.
        """
        record = self._child(ctx, subnet_path)
        self._require_sa(ctx, record, subnet_path)
        ctx.require(amount > 0, "amount must be positive")
        ctx.require(
            record["collateral"] >= amount,
            "release exceeds held collateral",
            exit_code=ExitCode.USR_INSUFFICIENT_FUNDS,
        )
        record = dict(record)
        record["collateral"] -= amount
        if record["collateral"] < ctx.state_get("min_collateral") and record["status"] == STATUS_ACTIVE:
            record["status"] = STATUS_INACTIVE
            ctx.emit("subnet.inactive", subnet_path)
        self._put_child(ctx, subnet_path, record)
        ctx.transfer(Address(to_addr), amount)

    @export
    def kill_subnet(self, ctx, subnet_path: str = "") -> int:
        """Kill a child subnet and return all remaining collateral to the SA
        (which distributes it to miners).  Caller: the SA (§III-C)."""
        record = self._child(ctx, subnet_path)
        self._require_sa(ctx, record, subnet_path)
        ctx.require(
            record["status"] != STATUS_KILLED,
            "already killed",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        remaining = record["collateral"]
        record = dict(record)
        record["collateral"] = 0
        record["status"] = STATUS_KILLED
        self._put_child(ctx, subnet_path, record)
        if remaining:
            ctx.transfer(ctx.caller, remaining)
        ctx.emit("subnet.killed", subnet_path)
        return remaining

    @export
    def slash(self, ctx, subnet_path: str = "", amount: int = 0) -> int:
        """Burn a child's collateral on a validated fraud proof (§III-B).

        Caller: the child's SA (which validated the equivocation evidence).
        Returns the amount actually slashed.
        """
        record = self._child(ctx, subnet_path)
        self._require_sa(ctx, record, subnet_path)
        ctx.require(amount > 0, "slash amount must be positive")
        slashed = min(amount, record["collateral"])
        record = dict(record)
        record["collateral"] -= slashed
        record["slashed_total"] += slashed
        if record["collateral"] < ctx.state_get("min_collateral"):
            record["status"] = STATUS_INACTIVE
            ctx.emit("subnet.inactive", subnet_path)
        self._put_child(ctx, subnet_path, record)
        if slashed:
            ctx.burn(slashed)
        ctx.emit("subnet.slashed", (subnet_path, slashed))
        return slashed

    # ==================================================================
    # Cross-net message origination (§IV-A)
    # ==================================================================
    @export
    def fund(self, ctx, subnet_path: str = "", to_addr: str = "") -> None:
        """Inject the attached value into a descendant subnet (§II)."""
        ctx.require(ctx.value_received > 0, "fund requires attached value")
        self.send_crossmsg(ctx, to_subnet=subnet_path, to_addr=to_addr)

    @export
    def send_crossmsg(
        self,
        ctx,
        to_subnet: str = "",
        to_addr: str = "",
        method: str = "send",
        params: Any = None,
    ) -> None:
        """Originate a cross-net message from this subnet.

        The attached value rides with the message.  Top-down legs freeze the
        value here; bottom-up legs burn it here for release above (§IV-A).
        """
        self_id = self._self_id(ctx)
        destination = SubnetID(to_subnet)
        ctx.require(destination != self_id, "destination is this subnet")
        message = CrossMsg(
            from_subnet=self_id,
            from_addr=ctx.caller,
            to_subnet=destination,
            to_addr=Address(to_addr),
            value=ctx.value_received,
            method=method,
            params=params,
            # Purely state-derived: a monotonic per-SCA counter.  Mixing in
            # ctx.epoch here would bake the inclusion *schedule* into the
            # message identity (and every msgs_cid/checkpoint built on it),
            # breaking end-state digest invariance under tie-shuffled
            # schedules where a tx legally lands one block later.
            origin_nonce=ctx.state_get("origin_seq", 0),
        )
        ctx.state_set("origin_seq", ctx.state_get("origin_seq", 0) + 1)
        self._route_outbound(ctx, message)

    def _route_outbound(self, ctx, message: CrossMsg) -> None:
        """Send *message* on its way: top-down enqueue or bottom-up batch.

        The message's value is already held by the SCA (attached value, a
        released inbound amount, or minted transit funds).
        """
        self_id = self._self_id(ctx)
        direction = classify(self_id, message.to_subnet)
        if direction == Direction.TOP_DOWN:
            self._enqueue_topdown(ctx, message)
        else:
            self._enqueue_bottomup(ctx, message)

    def _enqueue_topdown(self, ctx, message: CrossMsg) -> None:
        """Freeze funds and queue the message for the next-hop child.

        "the SCA of the source subnet (parent) increments a nonce that is
        unique to the top-down transaction directed to each of its child
        subnets … These nonces determine the total order of arrival" (§IV-A).
        """
        child_path = self._next_hop_child(ctx, message.to_subnet)
        record = self._child(ctx, child_path)
        ctx.require(
            record["status"] == STATUS_ACTIVE,
            f"child {child_path} is {record['status']}; cross-net traffic refused",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        nonce = ctx.state_get(f"td_nonce/{child_path}", 0)
        ctx.state_set(f"td_nonce/{child_path}", nonce + 1)
        ctx.state_set(f"td_msg/{child_path}/{nonce}", message)
        record = dict(record)
        record["circulating"] += message.value
        record["injected_total"] += message.value
        self._put_child(ctx, child_path, record)
        # The trailing fields (msg cid, final destination, kind) let chain
        # watchers — notably the telemetry span tracer — correlate this
        # enqueue with the same message's later hops.
        ctx.emit(
            "crossmsg.topdown",
            (child_path, nonce, message.value, message.cid.hex(),
             message.to_subnet.path, message.to_addr.raw, message.kind),
        )

    def _enqueue_bottomup(self, ctx, message: CrossMsg) -> None:
        """Burn funds locally and add the message to the current window's
        outgoing batch; the parent releases them on application (§IV-A)."""
        if message.value:
            ctx.burn(message.value)
        window = ctx.epoch // ctx.state_get("checkpoint_period")
        count = ctx.state_get(f"out_count/{window}", 0)
        ctx.state_set(f"out/{window}/{count}", message)
        ctx.state_set(f"out_count/{window}", count + 1)
        ctx.emit(
            "crossmsg.bottomup",
            (window, count, message.value, message.cid.hex(),
             message.to_subnet.path, message.to_addr.raw, message.kind),
        )

    # ==================================================================
    # Cross-net message application (§IV-B, Fig. 3)
    # ==================================================================
    @export
    def apply_topdown(self, ctx, message: CrossMsg = None, nonce: int = -1) -> None:
        """Apply one parent-committed top-down message in this (child) chain.

        Called implicitly by consensus when a block containing the cross-msg
        commits.  Nonces must be exactly sequential — the total order the
        parent assigned (§IV-A).
        """
        ctx.require(
            ctx.caller.is_system_actor,
            "apply_topdown is consensus-only",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        expected = ctx.state_get("td_applied_nonce")
        ctx.require(
            nonce == expected,
            f"top-down nonce {nonce}, expected {expected}",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        ctx.state_set("td_applied_nonce", expected + 1)
        # The value was frozen in the parent; it materialises here by mint.
        if message.value:
            ctx.mint(ctx.actor_addr, message.value)
        self._deliver_or_forward(ctx, message)

    @export
    def apply_bottomup(self, ctx, nonce: int = -1, messages: tuple = ()) -> dict:
        """Apply one resolved bottom-up batch in this chain (Fig. 3 right).

        *messages* are the raw cross-msgs fetched via content resolution for
        the meta queued at *nonce*; they must hash to the meta's ``msgsCid``.
        Each message passes the **firewall check**: the via-child's recorded
        circulating supply must cover its value, otherwise the message is
        refused — this is the §II bound on a compromised subnet's impact.

        Returns counts of delivered/forwarded/refused messages.
        """
        ctx.require(
            ctx.caller.is_system_actor,
            "apply_bottomup is consensus-only",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        expected = ctx.state_get("bu_applied_nonce")
        ctx.require(
            nonce == expected,
            f"bottom-up nonce {nonce}, expected {expected}",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        entry = ctx.state_get(f"bu_meta/{nonce}")
        ctx.require(entry is not None, f"no bottom-up meta at nonce {nonce}",
                    exit_code=ExitCode.USR_NOT_FOUND)
        meta: CrossMsgMeta = entry["meta"]
        via_child: str = entry["via_child"]
        ctx.require(
            cid_of(tuple(messages)) == meta.msgs_cid,
            "resolved messages do not match the meta's msgsCid",
        )
        ctx.state_set("bu_applied_nonce", expected + 1)
        # Cache the resolved batch so this subnet can serve future pulls.
        ctx.state_set(f"registry/{meta.msgs_cid.hex()}", tuple(messages))

        outcome = {"delivered": 0, "forwarded": 0, "refused": 0}
        for message in messages:
            # Fresh read per message: delivery side effects (e.g. a revert
            # re-entering this same child top-down) also touch the record.
            record = self._child(ctx, via_child)
            # FIREWALL: never release more than was genuinely injected.
            if message.value > record["circulating"]:
                outcome["refused"] += 1
                ctx.emit(
                    "firewall.refused",
                    (via_child, message.value, record["circulating"]),
                )
                continue
            record = dict(record)
            record["circulating"] -= message.value
            record["released_total"] += message.value
            self._put_child(ctx, via_child, record)
            self._deliver_or_forward(ctx, message)
            if message.to_subnet == self._self_id(ctx):
                outcome["delivered"] += 1
            else:
                outcome["forwarded"] += 1
        return outcome

    def _deliver_or_forward(self, ctx, message: CrossMsg) -> None:
        """Execute a cross-msg locally, or route it onward.

        The message's funds are in the SCA balance at this point (minted on
        top-down arrival, or released from the frozen pool bottom-up).
        Failed local deliveries trigger the revert cross-msg of §IV-B.
        """
        self_id = self._self_id(ctx)
        if message.to_subnet == self_id:
            # The delivered call presents the *original sender* as caller
            # (its cross-subnet identity), with the value riding along from
            # the SCA's frozen/minted pool.
            receipt = ctx.send(
                message.to_addr,
                method=message.method,
                params=message.params,
                value=message.value,
                caller=message.from_addr,
            )
            if receipt.ok:
                ctx.emit(
                    "crossmsg.delivered",
                    (message.to_addr.raw, message.value, message.cid.hex()),
                )
                return
            ctx.emit(
                "crossmsg.failed",
                (message.to_addr.raw, receipt.error, message.cid.hex()),
            )
            if message.kind == "revert":
                # A failed revert is terminal: funds accrue to the SCA
                # rather than ping-ponging through the hierarchy forever.
                ctx.emit("crossmsg.revert_stranded", message.value)
                return
            self._route_outbound(ctx, message.make_revert())
        else:
            self._route_outbound(ctx, message)

    # ==================================================================
    # Checkpoints (§III-B, Fig. 2)
    # ==================================================================
    @export
    def commit_child_checkpoint(self, ctx, checkpoint: Checkpoint = None) -> None:
        """Record a child's checkpoint: collect metas for us, relay the rest.

        Caller must be the child's SA (which already validated the signature
        policy).  "the SCA … is responsible for aggregating the checkpoint
        from /root/A/B with those of other children … As checkpoints flow up
        the chain, the SCA of each chain picks up these checkpoints and
        inspects them" (§III-B).
        """
        self_id = self._self_id(ctx)
        child_path = checkpoint.source.path
        ctx.require(
            checkpoint.source.parent() == self_id,
            f"checkpoint source {child_path} is not our child",
        )
        record = self._child(ctx, child_path)
        self._require_sa(ctx, record, child_path)
        ctx.require(
            record["status"] == STATUS_ACTIVE,
            f"child {child_path} is {record['status']}; checkpoint refused",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        ctx.require(
            checkpoint.prev.hex() == record["last_ckpt_cid"],
            "checkpoint does not chain from the last committed checkpoint",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        record = dict(record)
        record["last_ckpt_cid"] = checkpoint.cid.hex()
        self._put_child(ctx, child_path, record)

        window = ctx.epoch // ctx.state_get("checkpoint_period")
        seq = ctx.state_get(f"childck_count/{window}", 0)
        ctx.state_set(f"childck/{window}/{seq}", (child_path, checkpoint.cid))
        ctx.state_set(f"childck_count/{window}", seq + 1)

        for meta in checkpoint.cross_meta:
            if meta.to_subnet == self_id or self_id.is_ancestor_of(meta.to_subnet):
                # Ours to apply (possibly the LCA turning point of a path
                # message): queue under the next bottom-up nonce (Fig. 3).
                bu_nonce = ctx.state_get("bu_nonce")
                ctx.state_set("bu_nonce", bu_nonce + 1)
                ctx.state_set(
                    f"bu_meta/{bu_nonce}", {"meta": meta, "via_child": child_path}
                )
                ctx.emit("meta.queued", (bu_nonce, meta.msgs_cid.hex()))
            else:
                # Travelling farther up: relay unverified in our next
                # checkpoint (Fig. 3: "included unverified in the next
                # checkpoint of the parent").
                count = ctx.state_get(f"relay_count/{window}", 0)
                ctx.state_set(f"relay/{window}/{count}", meta)
                ctx.state_set(f"relay_count/{window}", count + 1)
                ctx.emit("meta.relayed", meta.msgs_cid.hex())
        ctx.emit("checkpoint.committed", (child_path, checkpoint.cid.hex()))

    @export
    def seal_window(self, ctx, window: int = -1, proof_cid: CID = None) -> None:
        """Close checkpoint window *window* and build this subnet's
        checkpoint template (Fig. 2).

        Called implicitly by consensus at the first block of the next
        window.  Groups the window's outgoing cross-msgs into per-destination
        metas (registering each batch for content resolution), appends the
        relayed child metas and the aggregated child checkpoint list, and
        stores the resulting :class:`Checkpoint` for validators to sign.
        """
        ctx.require(
            ctx.caller.is_system_actor,
            "seal_window is consensus-only",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        last_sealed = ctx.state_get("last_window_sealed")
        ctx.require(
            window == last_sealed + 1,
            f"sealing window {window}, expected {last_sealed + 1}",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        self_id = self._self_id(ctx)

        # Group this window's outgoing messages by destination subnet.
        outgoing: list[CrossMsg] = []
        for seq in range(ctx.state_get(f"out_count/{window}", 0)):
            outgoing.append(ctx.state_get(f"out/{window}/{seq}"))
        by_destination: dict[str, list[CrossMsg]] = {}
        for message in outgoing:
            by_destination.setdefault(message.to_subnet.path, []).append(message)

        metas = []
        bu_out_nonce = ctx.state_get("bu_out_nonce", 0)
        for destination_path in sorted(by_destination):
            batch = tuple(by_destination[destination_path])
            msgs_cid = cid_of(batch)
            ctx.state_set(f"registry/{msgs_cid.hex()}", batch)
            metas.append(
                CrossMsgMeta(
                    from_subnet=self_id,
                    to_subnet=SubnetID(destination_path),
                    nonce=bu_out_nonce,
                    msgs_cid=msgs_cid,
                    count=len(batch),
                    value=sum(m.value for m in batch),
                )
            )
            bu_out_nonce += 1
        ctx.state_set("bu_out_nonce", bu_out_nonce)

        for seq in range(ctx.state_get(f"relay_count/{window}", 0)):
            metas.append(ctx.state_get(f"relay/{window}/{seq}"))

        children = tuple(
            ctx.state_get(f"childck/{window}/{seq}")
            for seq in range(ctx.state_get(f"childck_count/{window}", 0))
        )
        checkpoint = Checkpoint(
            source=self_id,
            proof=proof_cid if proof_cid is not None else ZERO_CHECKPOINT,
            prev=CID.from_hex(ctx.state_get("last_ckpt_cid")),
            children=children,
            cross_meta=tuple(metas),
            window=window,
            epoch=ctx.epoch,
        )
        ctx.state_set(f"ckpt/{window}", checkpoint)
        ctx.state_set("last_ckpt_cid", checkpoint.cid.hex())
        ctx.state_set("last_window_sealed", window)
        ctx.emit("checkpoint.sealed", (window, checkpoint.cid.hex()))

    # ==================================================================
    # Atomic execution coordination (§IV-D, Fig. 5) — runs in the LCA
    # ==================================================================
    @export
    def init_atomic(self, ctx, exec_id: str = "", parties: tuple = ()) -> None:
        """Open an atomic execution between *parties*: ((subnet, addr), …)."""
        ctx.require(exec_id, "exec_id required")
        ctx.require(len(parties) >= 2, "atomic execution needs >= 2 parties")
        ctx.require(
            ctx.state_get(f"atomic/{exec_id}") is None,
            f"execution {exec_id} already exists",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        ctx.state_set(
            f"atomic/{exec_id}",
            {
                "parties": tuple((str(s), str(a)) for s, a in parties),
                "outputs": {},
                "status": "pending",
                "opened_epoch": ctx.epoch,
            },
        )
        ctx.emit("atomic.init", exec_id)

    @export
    def submit_output(self, ctx, exec_id: str = "", output_cid: CID = None, output: Any = None) -> str:
        """A party commits its locally computed output state (Fig. 5).

        When every party has submitted and all CIDs match, the execution is
        marked successful and result notifications are routed to each
        party's subnet.  Returns the execution status.
        """
        record = ctx.state_get(f"atomic/{exec_id}")
        ctx.require(record is not None, f"no execution {exec_id}",
                    exit_code=ExitCode.USR_NOT_FOUND)
        ctx.require(
            record["status"] == "pending",
            f"execution is {record['status']}",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        party_key = None
        for subnet, addr in record["parties"]:
            if addr == ctx.caller.raw:
                party_key = f"{subnet}|{addr}"
                break
        ctx.require(party_key is not None, "caller is not a party",
                    exit_code=ExitCode.USR_FORBIDDEN)
        record = dict(record)
        outputs = dict(record["outputs"])
        outputs[party_key] = output_cid.hex()
        record["outputs"] = outputs
        if output is not None:
            ctx.state_set(f"atomic_output/{exec_id}/{output_cid.hex()}", output)

        if len(outputs) == len(record["parties"]):
            distinct = set(outputs.values())
            if len(distinct) == 1:
                record["status"] = "committed"
                ctx.emit("atomic.committed", exec_id)
                self._notify_atomic(ctx, record, exec_id, "committed", output_cid)
            else:
                record["status"] = "aborted"
                ctx.emit("atomic.mismatch", exec_id)
                self._notify_atomic(ctx, record, exec_id, "aborted", None)
        ctx.state_set(f"atomic/{exec_id}", record)
        return record["status"]

    @export
    def abort_atomic(self, ctx, exec_id: str = "") -> None:
        """Any party may abort a pending execution at any time (Fig. 5)."""
        record = ctx.state_get(f"atomic/{exec_id}")
        ctx.require(record is not None, f"no execution {exec_id}",
                    exit_code=ExitCode.USR_NOT_FOUND)
        ctx.require(
            record["status"] == "pending",
            f"execution is {record['status']}; aborts no longer accepted",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        ctx.require(
            any(addr == ctx.caller.raw for _, addr in record["parties"]),
            "caller is not a party",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        record = dict(record)
        record["status"] = "aborted"
        ctx.state_set(f"atomic/{exec_id}", record)
        ctx.emit("atomic.aborted", exec_id)
        self._notify_atomic(ctx, record, exec_id, "aborted", None)

    def _notify_atomic(self, ctx, record: dict, exec_id: str, status: str, output_cid) -> None:
        """Route result notifications to every party's subnet (Fig. 5:
        "subnets are notified, through a cross-net message")."""
        self_id = self._self_id(ctx)
        output = None
        if output_cid is not None:
            output = ctx.state_get(f"atomic_output/{exec_id}/{output_cid.hex()}")
        notified = set()
        for subnet, _addr in record["parties"]:
            if subnet in notified:
                continue
            notified.add(subnet)
            destination = SubnetID(subnet)
            if destination == self_id:
                # A party local to the execution subnet: apply directly.
                self.apply_atomic_result(
                    ctx, exec_id=exec_id, status=status, output=output,
                    _internal=True,
                )
                continue
            message = CrossMsg(
                from_subnet=self_id,
                from_addr=ctx.actor_addr,
                to_subnet=destination,
                to_addr=SCA_ADDRESS,
                value=0,
                method="apply_atomic_result",
                params={"exec_id": exec_id, "status": status, "output": output},
                kind="atomic",
            )
            # Routed in an isolated self-send so an unroutable party subnet
            # cannot abort the commit/abort decision itself.
            receipt = ctx.send(
                ctx.actor_addr, method="route_internal", params={"message": message}
            )
            if not receipt.ok:
                ctx.emit("atomic.notify_failed", (subnet, receipt.error))

    @export
    def route_internal(self, ctx, message: CrossMsg = None) -> None:
        """Self-call wrapper around :meth:`_route_outbound` so the SCA can
        route protocol-generated messages in an isolated sub-transaction."""
        ctx.require(
            ctx.caller == ctx.actor_addr,
            "route_internal is SCA-internal",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        self._route_outbound(ctx, message)

    # ==================================================================
    # Atomic execution, party side: assets and locks (§IV-D)
    # ==================================================================
    @export
    def create_asset(self, ctx, name: str = "") -> None:
        """Register an asset record owned by the caller in this subnet."""
        ctx.require(name, "asset name required")
        ctx.require(
            ctx.state_get(f"asset/{name}") is None,
            f"asset {name} exists",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        ctx.state_set(f"asset/{name}", {"owner": ctx.caller.raw, "locked_by": None})

    @export
    def lock_atomic(self, ctx, exec_id: str = "", assets: tuple = ()) -> None:
        """Lock the caller's input assets for an atomic execution.

        "each user needs to lock, in their subnet, the state that will be
        used as input … This prevents new messages from affecting the state"
        (§IV-D).
        """
        ctx.require(exec_id, "exec_id required")
        for name in assets:
            asset = ctx.state_get(f"asset/{name}")
            ctx.require(asset is not None, f"no asset {name}",
                        exit_code=ExitCode.USR_NOT_FOUND)
            ctx.require(
                asset["owner"] == ctx.caller.raw,
                f"caller does not own {name}",
                exit_code=ExitCode.USR_FORBIDDEN,
            )
            ctx.require(
                asset["locked_by"] is None,
                f"{name} already locked by {asset['locked_by']}",
                exit_code=ExitCode.USR_ILLEGAL_STATE,
            )
            ctx.state_set(f"asset/{name}", {**asset, "locked_by": exec_id})
        locks = ctx.state_get(f"locks/{exec_id}", ())
        ctx.state_set(f"locks/{exec_id}", tuple(locks) + tuple(assets))
        ctx.emit("atomic.locked", (exec_id, tuple(assets)))

    @export
    def transfer_asset(self, ctx, name: str = "", to_addr: str = "") -> None:
        """Plain (non-atomic) ownership transfer of an unlocked asset."""
        asset = ctx.state_get(f"asset/{name}")
        ctx.require(asset is not None, f"no asset {name}",
                    exit_code=ExitCode.USR_NOT_FOUND)
        ctx.require(asset["owner"] == ctx.caller.raw, "not the owner",
                    exit_code=ExitCode.USR_FORBIDDEN)
        ctx.require(asset["locked_by"] is None, "asset is locked",
                    exit_code=ExitCode.USR_ILLEGAL_STATE)
        ctx.state_set(f"asset/{name}", {**asset, "owner": to_addr})

    @export
    def apply_atomic_result(
        self, ctx, exec_id: str = "", status: str = "", output: Any = None,
        _internal: bool = False,
    ) -> None:
        """Apply a finished execution's outcome in this subnet (Fig. 5).

        On commit: assets locked under *exec_id* take the owners the output
        assigns (entries of the output that concern other subnets are
        ignored here).  On abort: locks are simply released, state unchanged.
        """
        if not _internal:
            ctx.require(
                ctx.caller.is_system_actor or ctx.caller == ctx.actor_addr,
                "atomic results arrive via consensus",
                exit_code=ExitCode.USR_FORBIDDEN,
            )
        locked = ctx.state_get(f"locks/{exec_id}", ())
        new_owners = {}
        if status == "committed" and output:
            new_owners = dict(output.get("owners", {}))
        for name in locked:
            asset = ctx.state_get(f"asset/{name}")
            if asset is None:
                continue
            owner = new_owners.get(name, asset["owner"])
            ctx.state_set(f"asset/{name}", {"owner": owner, "locked_by": None})
        ctx.state_delete(f"locks/{exec_id}")
        ctx.state_set(f"atomic_result/{exec_id}", status)
        ctx.emit("atomic.applied", (exec_id, status))

    # ==================================================================
    # save() and fund recovery from dead subnets (§III-C)
    # ==================================================================
    @export
    def save_state(
        self, ctx, subnet_path: str = "", epoch: int = 0,
        state_cid: CID = None, balances_root: bytes = b"",
    ) -> None:
        """Persist a child-subnet state snapshot commitment.

        "the SCA includes a save function that allows any participant in the
        subnet to persist the state" (§III-C).  ``balances_root`` is the
        merkle root over the child's (address, balance) pairs at *epoch*;
        individual users later prove their balance against it.
        """
        self._child(ctx, subnet_path)  # must be a known child
        saved = ctx.state_get(f"save/{subnet_path}")
        if saved is not None:
            ctx.require(
                epoch >= saved["epoch"],
                "snapshot older than the saved one",
                exit_code=ExitCode.USR_ILLEGAL_STATE,
            )
        ctx.state_set(
            f"save/{subnet_path}",
            {
                "epoch": epoch,
                "state_cid": state_cid.hex() if state_cid else "",
                "balances_root": balances_root,
                "saved_by": ctx.caller.raw,
                "claimed": (),
            },
        )
        ctx.emit("subnet.saved", (subnet_path, epoch))

    @export
    def claim_saved_funds(
        self, ctx, subnet_path: str = "", balance: int = 0,
        proof: MerkleProof = None,
    ) -> int:
        """Recover funds from a killed subnet using a saved snapshot.

        The caller proves ``(address, balance)`` inclusion under the saved
        ``balances_root``; payout comes from the child's circulating supply
        (the funds frozen here when they were injected).
        """
        record = self._child(ctx, subnet_path)
        ctx.require(
            record["status"] == STATUS_KILLED,
            "claims only from killed subnets",
            exit_code=ExitCode.USR_ILLEGAL_STATE,
        )
        saved = ctx.state_get(f"save/{subnet_path}")
        ctx.require(saved is not None, "no saved snapshot",
                    exit_code=ExitCode.USR_NOT_FOUND)
        ctx.require(
            ctx.caller.raw not in saved["claimed"],
            "already claimed",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        leaf = (ctx.caller.raw, balance)
        ctx.require(
            proof is not None
            and MerkleTree.verify_against_root(leaf, proof, saved["balances_root"]),
            "balance proof does not verify against the saved snapshot",
        )
        payable = min(balance, record["circulating"])
        record = dict(record)
        record["circulating"] -= payable
        record["released_total"] += payable
        self._put_child(ctx, subnet_path, record)
        ctx.state_set(
            f"save/{subnet_path}",
            {**saved, "claimed": tuple(saved["claimed"]) + (ctx.caller.raw,)},
        )
        if payable:
            ctx.transfer(ctx.caller, payable)
        ctx.emit("funds.claimed", (subnet_path, ctx.caller.raw, payable))
        return payable

"""Subnet identifiers and hierarchy routing.

"Subnets are identified with a unique ID that is inferred deterministically
from the ID of its ancestor and from the ID of the SA that governs its
operation.  This deterministic naming enables the discovery of and
interaction with subnets from any other point in the hierarchy without the
need of a discovery service" (§III-A).

A :class:`SubnetID` is a path like ``/root/a/b``.  Routing a cross-net
message from source to destination decomposes into the *up* leg (source →
least common ancestor, travelled by checkpoints) and the *down* leg (LCA →
destination, travelled by top-down messages) — §IV-A's path messages.
"""

from __future__ import annotations

import re
from typing import Optional

_SEGMENT = re.compile(r"^[a-z0-9][a-z0-9_-]*$")


class SubnetID:
    """An immutable, path-structured subnet identifier."""

    __slots__ = ("segments",)

    def __init__(self, path) -> None:
        if isinstance(path, SubnetID):
            segments = path.segments
        elif isinstance(path, str):
            if not path.startswith("/"):
                raise ValueError(f"subnet path must start with '/': {path!r}")
            segments = tuple(path[1:].split("/"))
        else:
            segments = tuple(path)
        if not segments:
            raise ValueError("empty subnet path")
        for segment in segments:
            if not _SEGMENT.match(segment):
                raise ValueError(f"invalid subnet path segment {segment!r}")
        object.__setattr__(self, "segments", segments)

    def __setattr__(self, name, value):
        raise AttributeError("SubnetID is immutable")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return "/" + "/".join(self.segments)

    @property
    def name(self) -> str:
        """The final segment (the SA-derived name within the parent)."""
        return self.segments[-1]

    @property
    def is_root(self) -> bool:
        return len(self.segments) == 1

    @property
    def depth(self) -> int:
        """Levels below the rootnet (root itself has depth 0)."""
        return len(self.segments) - 1

    def parent(self) -> "SubnetID":
        if self.is_root:
            raise ValueError("the rootnet has no parent")
        return SubnetID(self.segments[:-1])

    def child(self, name: str) -> "SubnetID":
        return SubnetID(self.segments + (name,))

    def ancestors(self) -> list:
        """All proper ancestors, nearest first (parent, …, root)."""
        result = []
        current = self
        while not current.is_root:
            current = current.parent()
            result.append(current)
        return result

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def is_ancestor_of(self, other: "SubnetID") -> bool:
        """Proper ancestor check (a subnet is not its own ancestor)."""
        return (
            len(self.segments) < len(other.segments)
            and other.segments[: len(self.segments)] == self.segments
        )

    def is_descendant_of(self, other: "SubnetID") -> bool:
        return other.is_ancestor_of(self)

    def common_ancestor(self, other: "SubnetID") -> "SubnetID":
        """The least common ancestor (may be self/other; root at worst)."""
        common = []
        for mine, theirs in zip(self.segments, other.segments):
            if mine != theirs:
                break
            common.append(mine)
        if not common:
            raise ValueError(
                f"{self} and {other} share no root — different hierarchies"
            )
        return SubnetID(tuple(common))

    def down_path(self, descendant: "SubnetID") -> list:
        """Subnets stepping from self toward *descendant*, nearest first.

        ``SubnetID('/root').down_path(SubnetID('/root/a/b'))`` is
        ``[/root/a, /root/a/b]``.
        """
        if not (self == descendant or self.is_ancestor_of(descendant)):
            raise ValueError(f"{descendant} is not under {self}")
        steps = []
        for i in range(len(self.segments) + 1, len(descendant.segments) + 1):
            steps.append(SubnetID(descendant.segments[:i]))
        return steps

    def next_hop_down(self, destination: "SubnetID") -> "SubnetID":
        """The direct child of self on the way down to *destination*."""
        steps = self.down_path(destination)
        if not steps:
            raise ValueError(f"{destination} is not below {self}")
        return steps[0]

    def route(self, destination: "SubnetID") -> tuple:
        """``(up, down)`` legs from self to *destination* (§IV-A).

        *up* lists the subnets climbed through (exclusive of self, inclusive
        of the LCA); *down* lists the subnets descended through (exclusive
        of the LCA, inclusive of the destination).  Pure top-down messages
        have an empty up leg; pure bottom-up messages an empty down leg.
        """
        lca = self.common_ancestor(destination)
        up = []
        current = self
        while current != lca:
            current = current.parent()
            up.append(current)
        down = lca.down_path(destination)
        return up, down

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def to_canonical(self):
        return self.path

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubnetID) and other.segments == self.segments

    def __hash__(self) -> int:
        return hash(self.segments)

    def __lt__(self, other: "SubnetID") -> bool:
        return self.segments < other.segments

    def __repr__(self) -> str:
        return f"SubnetID({self.path})"

    def __str__(self) -> str:
        return self.path


ROOTNET = SubnetID("/root")

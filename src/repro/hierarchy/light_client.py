"""Light-client checkpoint verification (§II).

"Subnets periodically commit a proof of their state in their parent
through checkpoints.  These proofs are propagated to the top of the
hierarchy, making them accessible to any member of the system.  They
should include enough information that any client receiving it is able to
verify the correctness of the subnet consensus … With this, users are able
to determine the level of trust over a subnet according to the security
level of the consensus run by the subnet and the proofs provided to light
clients."

:class:`CheckpointLightClient` tracks one subnet **without running its
consensus or syncing its chain**: it consumes the signed checkpoints
committed on the parent chain, verifies the subnet's signature policy and
the ``prev``-linkage of the checkpoint chain, and can then answer:

- what is the latest proven subnet chain commitment (``proof`` CID)?
- was a given batch of cross-msgs really emitted by the subnet
  (inclusion under a verified checkpoint's ``crossMeta``)?
- how much policy weight (signer count) backs the latest checkpoint —
  the client's quantitative "level of trust"?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.crypto.cid import CID, cid_of
from repro.crypto.keys import Address
from repro.crypto.signature import verify
from repro.crypto.threshold import ThresholdSignature
from repro.hierarchy.checkpoint import Checkpoint, SignedCheckpoint, ZERO_CHECKPOINT
from repro.hierarchy.subnet_actor import SignaturePolicy, threshold_scheme_for
from repro.hierarchy.subnet_id import SubnetID


class VerificationError(Exception):
    """A checkpoint failed light-client verification; the reason is the message."""


@dataclass
class VerifiedCheckpoint:
    """A checkpoint the client accepted, with its observed signer weight."""

    checkpoint: Checkpoint
    signers: tuple  # addresses (multisig) or share indices (threshold)


class CheckpointLightClient:
    """Verifies a subnet's checkpoint chain from signed checkpoints alone."""

    def __init__(
        self,
        subnet,
        policy: SignaturePolicy,
        validators: Sequence[Address],
    ) -> None:
        self.subnet = SubnetID(subnet)
        self.policy = policy
        self.validators = list(validators)
        self.chain: list[VerifiedCheckpoint] = []

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    @property
    def _expected_prev(self) -> CID:
        if not self.chain:
            return ZERO_CHECKPOINT
        return self.chain[-1].checkpoint.cid

    def _verify_signatures(self, signed: SignedCheckpoint) -> tuple:
        """Return the verified signer identities, or raise."""
        payload = signed.checkpoint.cid.hex()
        if self.policy.kind == "threshold":
            signature = signed.signatures
            if not isinstance(signature, ThresholdSignature):
                raise VerificationError("threshold policy requires a ThresholdSignature")
            scheme = threshold_scheme_for(f"tss:{self.subnet.path}")
            if scheme is None or signature.group_id != f"tss:{self.subnet.path}":
                raise VerificationError("unknown or mismatched threshold group")
            if not scheme.verify(signature, payload):
                raise VerificationError("threshold signature invalid")
            return tuple(signature.participants)
        signatures = signed.signatures
        if not isinstance(signatures, tuple):
            signatures = (signatures,)
        valid = []
        allowed = set(self.validators)
        for signature in signatures:
            if signature.signer in allowed and verify(signature, payload):
                valid.append(signature.signer)
        needed = 1 if self.policy.kind == "single" else self.policy.threshold
        if len(set(valid)) < needed:
            raise VerificationError(
                f"policy needs {needed} validator signatures, got {len(set(valid))}"
            )
        return tuple(sorted(set(valid), key=lambda a: a.raw))

    def observe(self, signed: SignedCheckpoint) -> VerifiedCheckpoint:
        """Verify and append the next checkpoint of the subnet's chain.

        Raises :class:`VerificationError` on any policy, source or linkage
        violation.  Observing is idempotent for the current head.
        """
        checkpoint = signed.checkpoint
        if checkpoint.source != self.subnet:
            raise VerificationError(
                f"checkpoint for {checkpoint.source}, tracking {self.subnet}"
            )
        if self.chain and checkpoint.cid == self.chain[-1].checkpoint.cid:
            return self.chain[-1]
        if checkpoint.prev != self._expected_prev:
            raise VerificationError(
                "checkpoint does not chain from the last verified checkpoint"
            )
        if self.chain and checkpoint.window <= self.chain[-1].checkpoint.window:
            raise VerificationError("checkpoint window did not advance")
        signers = self._verify_signatures(signed)
        verified = VerifiedCheckpoint(checkpoint=checkpoint, signers=signers)
        self.chain.append(verified)
        return verified

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def head(self) -> Optional[VerifiedCheckpoint]:
        return self.chain[-1] if self.chain else None

    @property
    def latest_proof(self) -> Optional[CID]:
        """The latest proven subnet chain commitment (the ``proof`` CID)."""
        return self.head.checkpoint.proof if self.head else None

    @property
    def trust_weight(self) -> int:
        """Signer count behind the latest checkpoint (§II's 'level of trust')."""
        return len(self.head.signers) if self.head else 0

    def verify_cross_batch(self, messages: tuple) -> bool:
        """Did the subnet genuinely emit this batch of cross-msgs?

        True iff some verified checkpoint carries a meta whose ``msgsCid``
        matches the batch — the check a destination subnet's light view
        performs before trusting pushed content.
        """
        batch_cid = cid_of(tuple(messages))
        for verified in self.chain:
            for meta in verified.checkpoint.cross_meta:
                if meta.msgs_cid == batch_cid:
                    return True
        return False

    def child_checkpoint_cids(self) -> dict:
        """Latest verified checkpoint CID per descendant subnet — the
        aggregated `children` tree flowing to the top of the hierarchy."""
        latest: dict[str, CID] = {}
        for verified in self.chain:
            for child_path, ckpt_cid in verified.checkpoint.children:
                latest[child_path] = ckpt_cid
        return latest


def follow_parent_chain(parent_node, sa_addr: Address, subnet, policy, validators) -> CheckpointLightClient:
    """Build a light client by scanning a parent node's canonical chain for
    ``submit_checkpoint`` transactions to the subnet's SA.

    This is exactly what a light client does against the parent: read
    committed transactions, verify everything locally.
    """
    client = CheckpointLightClient(subnet, policy, validators)
    for block in parent_node.store.canonical_chain():
        for signed_msg in block.messages:
            message = signed_msg.message
            if message.to_addr != sa_addr or message.method != "submit_checkpoint":
                continue
            signed_ckpt = (message.params or {}).get("signed")
            if signed_ckpt is None:
                continue
            try:
                client.observe(signed_ckpt)
            except VerificationError:
                # Failed submissions also land in blocks (the SA rejected
                # them); the light client skips what it cannot verify.
                continue
    return client

"""Cross-net messages (§IV-A).

A :class:`CrossMsg` moves value (and optionally an actor call) between
addresses in different subnets.  Relative to any subnet on its route it is
*top-down* (destination below), *bottom-up* (destination above, same
prefix) or a *path* message (destination in another branch, travelling
bottom-up to the least common ancestor and top-down from there).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.crypto.cid import CID, cid_of
from repro.crypto.keys import Address
from repro.hierarchy.subnet_id import SubnetID


class Direction(enum.Enum):
    """A cross-msg's direction relative to a given subnet."""

    TOP_DOWN = "top-down"
    BOTTOM_UP = "bottom-up"
    LOCAL = "local"  # destination is the given subnet itself


def classify(at: SubnetID, destination: SubnetID) -> Direction:
    """How a message for *destination* must leave (or stay in) subnet *at*."""
    if at == destination:
        return Direction.LOCAL
    if at.is_ancestor_of(destination):
        return Direction.TOP_DOWN
    return Direction.BOTTOM_UP


@dataclass(frozen=True)
class CrossMsg:
    """One cross-net message.

    ``kind`` distinguishes ordinary transfers/calls (``"user"``) from
    protocol-generated reverts (``"revert"``, §IV-B: a cross-msg that cannot
    be applied triggers a new cross-msg back to the original source) and
    atomic-execution notifications (``"atomic"``, §IV-D).
    """

    from_subnet: SubnetID
    from_addr: Address
    to_subnet: SubnetID
    to_addr: Address
    value: int
    method: str = "send"
    params: Any = None
    kind: str = "user"
    origin_nonce: int = 0  # disambiguates otherwise-identical messages

    def __post_init__(self):
        if self.value < 0:
            raise ValueError("cross-msg value cannot be negative")
        if self.from_subnet == self.to_subnet:
            raise ValueError("cross-msg must cross subnets")

    def to_canonical(self):
        params = self.params
        if hasattr(params, "to_canonical"):
            params = params.to_canonical()
        return (
            self.from_subnet.path,
            self.from_addr.raw,
            self.to_subnet.path,
            self.to_addr.raw,
            self.value,
            self.method,
            params,
            self.kind,
            self.origin_nonce,
        )

    @property
    def cid(self) -> CID:
        return cid_of(self)

    def direction_at(self, subnet: SubnetID) -> Direction:
        return classify(subnet, self.to_subnet)

    def make_revert(self) -> "CrossMsg":
        """The protocol's failure response: send the funds back (§IV-B).

        A failed revert is terminal — its value accrues to the SCA where it
        failed rather than looping forever.
        """
        return CrossMsg(
            from_subnet=self.to_subnet,
            from_addr=self.to_addr,
            to_subnet=self.from_subnet,
            to_addr=self.from_addr,
            value=self.value,
            method="send",
            params=None,
            kind="revert",
            origin_nonce=self.origin_nonce,
        )


@dataclass(frozen=True)
class ApplyTopDown:
    """Block payload entry: apply one parent-committed top-down message.

    Proposed by the cross-msg pool (Fig. 3 left: "These messages are
    proposed inside the next block of the consensus"); executing it calls
    the SCA's ``apply_topdown`` with the parent-assigned nonce.
    """

    message: CrossMsg
    nonce: int

    def to_canonical(self):
        return ("apply-topdown", self.message.to_canonical(), self.nonce)

    @property
    def cid(self) -> CID:
        return cid_of(self)


@dataclass(frozen=True)
class ApplyBottomUp:
    """Block payload entry: apply one resolved bottom-up batch.

    Carries the raw messages fetched via content resolution; the SCA
    verifies them against the queued meta's ``msgsCid`` (Fig. 3 right).
    """

    nonce: int
    messages: tuple

    def to_canonical(self):
        return (
            "apply-bottomup",
            self.nonce,
            tuple(m.to_canonical() for m in self.messages),
        )

    @property
    def cid(self) -> CID:
        return cid_of(self)

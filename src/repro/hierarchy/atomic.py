"""Client-side atomic execution orchestration (§IV-D, Fig. 5).

:class:`AtomicExecutionClient` drives one party's side of the protocol:

1. *Initialization*: parties agree off-chain on the execution id, inputs
   and executor function; each locks its input assets in its own subnet's
   SCA, and one party opens the execution in the LCA's SCA.
2. *Off-chain execution*: each party fetches the others' locked input
   state (modelled as reading the locked records from the counterpart
   subnet once the locks are on chain) and runs the deterministic executor
   locally.
3. *Commit*: each party submits the output CID (and the output itself) to
   the LCA's SCA; the SCA commits when all submissions match, or aborts on
   an ABORT message or mismatching outputs.
4. *Termination*: the SCA notifies every party subnet through cross-net
   messages; each subnet's SCA applies the output (reassigning locked
   asset owners) or releases the locks unchanged.

The executor is any pure function ``f(inputs: dict) -> dict`` returning
``{"owners": {asset_name: new_owner_addr}}`` — the atomic-swap executor
used by the paper's motivating example is :func:`swap_executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.cid import cid_of
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_id import SubnetID
from repro.hierarchy.wallet import Wallet


@dataclass
class AtomicParty:
    """One participant: its wallet, home subnet and input assets."""

    wallet: Wallet
    subnet: SubnetID
    assets: tuple  # asset names owned in `subnet`


def swap_executor(inputs: dict) -> dict:
    """The canonical two-party swap: every asset goes to the *other* owner.

    *inputs* maps asset name → {"owner": addr, "subnet": path}.  With
    exactly two distinct owners, each asset's new owner is the counterpart.
    """
    owners = sorted({record["owner"] for record in inputs.values()})
    if len(owners) != 2:
        raise ValueError("swap_executor needs exactly two distinct owners")
    swap = {owners[0]: owners[1], owners[1]: owners[0]}
    return {"owners": {name: swap[record["owner"]] for name, record in inputs.items()}}


class AtomicExecutionClient:
    """Drives an atomic execution among parties through a running system."""

    def __init__(
        self,
        system,
        exec_id: str,
        parties: list,
        executor: Callable[[dict], dict] = swap_executor,
    ) -> None:
        if len(parties) < 2:
            raise ValueError("atomic execution needs at least two parties")
        self.system = system
        self.exec_id = exec_id
        self.parties = list(parties)
        self.executor = executor
        self.lca = self.parties[0].subnet
        for party in self.parties[1:]:
            self.lca = self.lca.common_ancestor(party.subnet)
        self.output: Optional[dict] = None

    # ------------------------------------------------------------------
    # Phase 1: initialization (locks + open at the LCA)
    # ------------------------------------------------------------------
    def initialize(self, timeout: float = 60.0) -> bool:
        """Lock all inputs and open the execution in the LCA's SCA."""
        for party in self.parties:
            party.wallet.send(
                self.system.node(party.subnet),
                SCA_ADDRESS,
                method="lock_atomic",
                params={"exec_id": self.exec_id, "assets": tuple(party.assets)},
            )
        opener = self.parties[0]
        opener.wallet.send(
            self.system.node(self.lca),
            SCA_ADDRESS,
            method="init_atomic",
            params={
                "exec_id": self.exec_id,
                "parties": tuple(
                    (p.subnet.path, p.wallet.address.raw) for p in self.parties
                ),
            },
        )
        return self.system.wait_for(self._all_locked, timeout=timeout)

    def _all_locked(self) -> bool:
        for party in self.parties:
            state = self.system.node(party.subnet).vm.state
            for asset in party.assets:
                record = state.get(f"actor/{SCA_ADDRESS.raw}/asset/{asset}")
                if record is None or record["locked_by"] != self.exec_id:
                    return False
        if self.system.sca_state(self.lca, f"atomic/{self.exec_id}") is None:
            return False
        return True

    # ------------------------------------------------------------------
    # Phase 2: off-chain execution
    # ------------------------------------------------------------------
    def gather_inputs(self) -> dict:
        """Collect every party's locked input state.

        Models the off-chain input exchange: "The CID of the input state is
        shared between the different users … and is leveraged by each user
        to request from the other subnets the locked input states" — here
        each party reads the locked records from the counterpart subnet's
        chain (to which it has light-client access).
        """
        inputs = {}
        for party in self.parties:
            state = self.system.node(party.subnet).vm.state
            for asset in party.assets:
                record = state.get(f"actor/{SCA_ADDRESS.raw}/asset/{asset}")
                inputs[asset] = {
                    "owner": record["owner"],
                    "subnet": party.subnet.path,
                }
        return inputs

    def execute_offchain(self) -> dict:
        """Run the executor locally (every party computes the same output)."""
        self.output = self.executor(self.gather_inputs())
        return self.output

    # ------------------------------------------------------------------
    # Phase 3: commit at the LCA
    # ------------------------------------------------------------------
    def submit_outputs(self, dissenting_outputs: Optional[dict] = None) -> None:
        """Each party submits its computed output to the LCA's SCA.

        *dissenting_outputs* (party index → output) lets tests model a
        faulty party submitting a different result.
        """
        if self.output is None:
            self.execute_offchain()
        for index, party in enumerate(self.parties):
            output = (dissenting_outputs or {}).get(index, self.output)
            party.wallet.send(
                self.system.node(self.lca),
                SCA_ADDRESS,
                method="submit_output",
                params={
                    "exec_id": self.exec_id,
                    "output_cid": cid_of(output),
                    "output": output,
                },
            )

    def abort(self, party_index: int = 0) -> None:
        """Send an ABORT from one party (allowed any time before commit)."""
        party = self.parties[party_index]
        party.wallet.send(
            self.system.node(self.lca),
            SCA_ADDRESS,
            method="abort_atomic",
            params={"exec_id": self.exec_id},
        )

    # ------------------------------------------------------------------
    # Phase 4: termination
    # ------------------------------------------------------------------
    def status_at_lca(self) -> Optional[str]:
        record = self.system.sca_state(self.lca, f"atomic/{self.exec_id}")
        return record["status"] if record else None

    def applied_everywhere(self) -> bool:
        """True once every party subnet has applied the result."""
        for party in self.parties:
            state = self.system.node(party.subnet).vm.state
            if state.get(f"actor/{SCA_ADDRESS.raw}/atomic_result/{self.exec_id}") is None:
                return False
        return True

    def wait_terminated(self, timeout: float = 120.0) -> bool:
        return self.system.wait_for(self.applied_everywhere, timeout=timeout)

    # ------------------------------------------------------------------
    # Convenience: the full happy path
    # ------------------------------------------------------------------
    def run_to_completion(self, timeout: float = 180.0) -> str:
        """Initialize → execute → submit → wait; returns the final status."""
        if not self.initialize(timeout=timeout / 3):
            raise TimeoutError("atomic initialization did not complete")
        self.execute_offchain()
        self.submit_outputs()
        if not self.system.wait_for(
            lambda: self.status_at_lca() in ("committed", "aborted"),
            timeout=timeout / 3,
        ):
            raise TimeoutError("atomic execution did not terminate at the LCA")
        if not self.wait_terminated(timeout=timeout / 3):
            raise TimeoutError("atomic result not applied in all subnets")
        return self.status_at_lca()


def asset_owner(system, subnet, asset_name: str) -> Optional[str]:
    """The current owner (address string) of an asset in *subnet*."""
    record = system.sca_state(subnet, f"asset/{asset_name}")
    return record["owner"] if record else None

"""Deterministic discrete-event simulation substrate.

Every component in the reproduction (network, consensus engines, nodes,
checkpointing timers) is driven by a single :class:`~repro.sim.scheduler.Simulator`
event loop with a simulated clock.  All randomness flows from a single root
seed through :class:`~repro.sim.rng.SeedSequence`, so a run is reproducible
bit-for-bit: identical seeds yield identical traces (see
:mod:`repro.sim.tracing`).
"""

from repro.sim.events import Event, EventQueue
from repro.sim.scheduler import Simulator
from repro.sim.rng import SeedSequence, derive_seed
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SeedSequence",
    "derive_seed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "TraceLog",
    "TraceRecord",
]

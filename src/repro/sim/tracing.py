"""Structured trace log.

Every protocol-relevant action (block committed, checkpoint submitted,
cross-msg applied, …) is appended as a :class:`TraceRecord`.  The log's
digest makes determinism testable: two runs with the same seed must produce
identical digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped structured trace entry."""

    time: float
    kind: str
    subject: str
    detail: tuple = field(default_factory=tuple)

    def render(self) -> str:
        parts = ", ".join(str(d) for d in self.detail)
        return f"[{self.time:12.6f}] {self.kind:<24} {self.subject} {parts}"


class TraceLog:
    """Append-only log of :class:`TraceRecord` entries.

    A bounded log (``capacity`` set) never loses records silently: the
    first overflow appends one ``trace.capacity`` warning record, and every
    dropped record is counted in :attr:`dropped`.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None, capacity: Optional[int] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.records: list[TraceRecord] = []
        self.capacity = capacity
        self.enabled = True
        self.dropped = 0

    def emit(self, kind: str, subject: str, *detail: Any) -> None:
        """Append a record at the current simulated time."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            if self.dropped == 1:
                # One warning record (the log's only overshoot past capacity)
                # so a truncated log is distinguishable from a complete one.
                self.records.append(
                    TraceRecord(
                        time=self._clock(),
                        kind="trace.capacity",
                        subject=f"capacity={self.capacity}",
                        detail=("further records dropped",),
                    )
                )
            return
        record = TraceRecord(
            time=self._clock(),
            kind=kind,
            subject=str(subject),
            detail=tuple(str(d) for d in detail),
        )
        self.records.append(record)

    def filter(self, kind: Optional[str] = None, subject: Optional[str] = None) -> Iterator[TraceRecord]:
        """Yield records matching the given kind and/or subject."""
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if subject is not None and record.subject != subject:
                continue
            yield record

    def count(self, kind: str) -> int:
        return sum(1 for _ in self.filter(kind=kind))

    def digest(self) -> str:
        """SHA-256 over the full rendered log — the determinism fingerprint."""
        hasher = hashlib.sha256()
        for record in self.records:
            hasher.update(record.render().encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.records)

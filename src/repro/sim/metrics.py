"""Lightweight metrics for simulation runs.

The bench harness reads these to produce the tables in ``EXPERIMENTS.md``.
All metrics are plain Python (no numpy dependency in the core library) and
deterministic given a deterministic run.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional


def _json_safe(value: float) -> Optional[float]:
    """NaN/inf → None so metric exports stay valid JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can move up and down."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Stores raw observations; computes summary statistics on demand.

    Simulation runs are small enough (≤ millions of samples) that keeping raw
    values is simpler and more accurate than bucketing.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        self.samples.extend(values)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return self.total / len(self.samples)

    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, q: float) -> float:
        """Return the q-th percentile (0 <= q <= 100), linear interpolation."""
        if not self.samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def min(self) -> float:
        return min(self.samples) if self.samples else math.nan

    def max(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def merge(self, *others: "Histogram") -> "Histogram":
        """Fold the samples of *others* into this histogram (in place).

        Used to combine per-node histograms into one system-wide
        distribution before summarising; returns ``self`` for chaining.
        """
        for other in others:
            self.samples.extend(other.samples)
        return self

    def summary(self) -> dict:
        """Return a dict of the usual summary statistics.

        Undefined statistics (empty histogram, or NaN observations) export
        as ``None`` rather than NaN so the dict is JSON-serialisable —
        ``json.dumps`` renders NaN as the invalid token ``NaN``.
        """
        return {
            "count": self.count,
            "mean": _json_safe(self.mean()),
            "stdev": _json_safe(self.stdev()) if self.count else None,
            "p50": _json_safe(self.percentile(50)),
            "p95": _json_safe(self.percentile(95)),
            "p99": _json_safe(self.percentile(99)),
            "min": _json_safe(self.min()),
            "max": _json_safe(self.max()),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean():.4f})"


class TimeSeries:
    """(time, value) observations, e.g. throughput over a run."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: list[tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def values(self) -> list[float]:
        return [v for _, v in self.points]

    def times(self) -> list[float]:
        return [t for t, _ in self.points]

    def rate(self, window: Optional[tuple[float, float]] = None) -> Optional[float]:
        """Events per second: count of points over the covered interval.

        Degenerate inputs return ``None`` (JSON null) rather than a fake
        0.0, NaN or a ZeroDivisionError — matching ``Histogram.summary()``:
        an empty series, fewer than two points without an explicit window,
        or a window of non-positive span have no defined rate.  A genuine
        zero (a positive-span window covering no points of a non-empty
        series) still reads 0.0.
        """
        if not self.points:
            return None
        points = self.points
        if window is not None:
            lo, hi = window
            points = [(t, v) for t, v in points if lo <= t <= hi]
            span = hi - lo
        else:
            if len(points) < 2:
                return None
            span = points[-1][0] - points[0][0]
        if span <= 0:
            return None
        return len(points) / span


class MetricsRegistry:
    """Namespace of metrics owned by a :class:`~repro.sim.scheduler.Simulator`."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, TimeSeries] = {}

    @property
    def now(self) -> float:
        return self._clock()

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def mark(self, name: str, value: float = 1.0) -> None:
        """Record a timestamped point on the named time series."""
        self.timeseries(name).record(self.now, value)

    def snapshot(self) -> dict:
        """Return all metric values as plain JSON-safe data.

        Gauge values pass through :func:`_json_safe` so a NaN/inf gauge
        becomes null instead of poisoning ``json.dumps`` consumers —
        histograms already get this via ``Histogram.summary()``.
        """
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: _json_safe(g.value) for n, g in self.gauges.items()},
            "histograms": {n: h.summary() for n, h in self.histograms.items()},
            "series": {n: len(s.points) for n, s in self.series.items()},
        }

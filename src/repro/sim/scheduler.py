"""The discrete-event simulator driving every run in this reproduction."""

from __future__ import annotations

import os
import threading
import time as _wallclock
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import SeedSequence
from repro.sim.tracing import TraceLog


class SimulationError(RuntimeError):
    """Raised when the simulator is driven incorrectly."""


#: Per-thread stacks of the dispatch label currently executing inside
#: :meth:`DispatchBus.dispatch`, keyed by ``threading.get_ident()``.  The
#: executing thread pushes/pops its own stack (safe under the GIL); a
#: *different* thread — the sampling profiler in
#: ``repro.telemetry.profiler`` — reads it to attribute CPU samples to the
#: event label the sim thread is running right now.  A stack, not a single
#: slot, so nested dispatches attribute to the innermost label.
_DISPATCH_LABEL_STACKS: dict[int, list] = {}


def current_dispatch_label(thread_id: Optional[int] = None) -> Optional[str]:
    """The event label *thread_id* (default: this thread) is dispatching.

    ``None`` when that thread is not inside :meth:`DispatchBus.dispatch` —
    i.e. it is running scheduler machinery, test code, or is idle.
    """
    if thread_id is None:
        thread_id = threading.get_ident()
    stack = _DISPATCH_LABEL_STACKS.get(thread_id)
    return stack[-1] if stack else None


class DispatchBus:
    """Instrumented event dispatch between the run loop and ``Event.fire()``.

    Every event executed by the :class:`Simulator` flows through this bus,
    which records per-label dispatch counts and cumulative/max wall-clock
    timings (label falls back to the callback's ``__name__``), and exposes
    pre/post-dispatch hooks:

    - *pre-dispatch* hooks run before the event fires and may call
      ``event.cancel()`` to suppress it — the fault-injection point for
      dropping timers, consensus steps or deliveries without touching the
      component under test;
    - *post-dispatch* hooks run after the event fired (even if the callback
      raised) with the elapsed wall-clock seconds — the profiling point.

    While an event's callback runs, its label is readable through
    :func:`current_dispatch_label` (per executing thread, nesting-aware) —
    the attribution point for the sampling profiler in
    ``repro.telemetry.profiler``.

    Wall-clock timings are real (host) time, not simulated time: they answer
    "where does this run spend its CPU?".  They are kept out of the trace
    log so trace digests stay deterministic; :meth:`publish` exports them as
    gauges on the simulator's :class:`MetricsRegistry` on demand.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.metrics = metrics
        self.trace = trace
        self.counts: dict[str, int] = {}
        self.wall_seconds: dict[str, float] = {}
        self.max_wall_seconds: dict[str, float] = {}
        self.suppressed: dict[str, int] = {}
        self._pre_hooks: list[Callable[[Event], None]] = []
        self._post_hooks: list[Callable[[Event, float], None]] = []
        # Tuple snapshots iterated by dispatch(): registration is rare but
        # dispatch runs per event, so snapshotting at mutation time replaces
        # a defensive list copy on every single event.
        self._pre_snapshot: tuple = ()
        self._post_snapshot: tuple = ()

    @staticmethod
    def label_of(event: Event) -> str:
        return event.label or getattr(event.callback, "__name__", "?")

    # -- hooks ----------------------------------------------------------
    def on_pre_dispatch(self, hook: Callable[[Event], None]) -> Callable[[], None]:
        """Register *hook* to run before each event fires; returns a remover."""
        self._pre_hooks.append(hook)
        self._pre_snapshot = tuple(self._pre_hooks)

        def _remove() -> None:
            if hook in self._pre_hooks:
                self._pre_hooks.remove(hook)
                self._pre_snapshot = tuple(self._pre_hooks)

        return _remove

    def on_post_dispatch(
        self, hook: Callable[[Event, float], None]
    ) -> Callable[[], None]:
        """Register *hook* to run after each event fires; returns a remover."""
        self._post_hooks.append(hook)
        self._post_snapshot = tuple(self._post_hooks)

        def _remove() -> None:
            if hook in self._post_hooks:
                self._post_hooks.remove(hook)
                self._post_snapshot = tuple(self._post_hooks)

        return _remove

    # -- dispatch -------------------------------------------------------
    def dispatch(self, event: Event) -> Any:
        """Fire *event* through the hooks, recording counts and timings."""
        label = event.label or getattr(event.callback, "__name__", "?")
        for hook in self._pre_snapshot:
            hook(event)
        if event.cancelled:
            self.suppressed[label] = self.suppressed.get(label, 0) + 1
            if self.trace is not None:
                self.trace.emit("dispatch.suppressed", label)
            return None
        label_stack = _DISPATCH_LABEL_STACKS.setdefault(threading.get_ident(), [])
        label_stack.append(label)
        start = _wallclock.perf_counter()
        try:
            return event.fire()
        finally:
            elapsed = _wallclock.perf_counter() - start
            label_stack.pop()
            self.counts[label] = self.counts.get(label, 0) + 1
            self.wall_seconds[label] = self.wall_seconds.get(label, 0.0) + elapsed
            if elapsed > self.max_wall_seconds.get(label, 0.0):
                self.max_wall_seconds[label] = elapsed
            for hook in self._post_snapshot:
                hook(event, elapsed)

    # -- reporting ------------------------------------------------------
    def summary(self) -> list[dict]:
        """Per-label dispatch statistics, busiest label first."""
        rows = []
        for label in sorted(self.counts, key=lambda k: (-self.counts[k], k)):
            count = self.counts[label]
            wall = self.wall_seconds.get(label, 0.0)
            rows.append(
                {
                    "label": label,
                    "events": count,
                    "wall_s": wall,
                    "mean_s": wall / count if count else 0.0,
                    "max_s": self.max_wall_seconds.get(label, 0.0),
                    "suppressed": self.suppressed.get(label, 0),
                }
            )
        return rows

    def publish(self, metrics: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Export per-label counts/timings as ``sim.dispatch.*`` gauges."""
        registry = metrics or self.metrics
        if registry is None:
            raise SimulationError("DispatchBus has no metrics registry to publish to")
        for row in self.summary():
            prefix = f"sim.dispatch.{row['label']}"
            registry.gauge(f"{prefix}.events").set(row["events"])
            registry.gauge(f"{prefix}.wall_s").set(row["wall_s"])
            registry.gauge(f"{prefix}.wall_max_s").set(row["max_s"])
        return registry

    def reset(self) -> None:
        """Clear accumulated statistics (hooks stay registered)."""
        self.counts.clear()
        self.wall_seconds.clear()
        self.max_wall_seconds.clear()
        self.suppressed.clear()


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the simulated clock (:attr:`now`, in seconds), the
    event queue, the root :class:`~repro.sim.rng.SeedSequence` from which all
    component RNGs are derived, a :class:`~repro.sim.metrics.MetricsRegistry`,
    a :class:`~repro.sim.tracing.TraceLog` and a :class:`DispatchBus` through
    which every executed event flows.

    Typical use::

        sim = Simulator(seed=42)
        sim.schedule(1.0, do_something)
        sim.run_until(10.0)

    **Tie-order race detection.**  Same-timestamp events fire FIFO by
    default; any permutation of those ties is an equally legal schedule, so
    a protocol outcome that depends on the FIFO accident is a latent race.
    Passing ``tie_shuffle=<int>`` (or setting ``$REPRO_TIE_SHUFFLE``)
    deterministically permutes ties under that seed: running the same
    scenario under several shuffle seeds and comparing end-state digests
    (e.g. ``HierarchicalSystem.end_state_digest()``) detects hidden
    tie-order dependence.  ``tie_shuffle=None`` with the environment
    variable unset is the plain FIFO discipline.
    """

    def __init__(self, seed: int = 0, tie_shuffle: Optional[int] = None) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.seeds = SeedSequence(seed)
        self.queue = EventQueue()
        if tie_shuffle is None:
            env = os.environ.get("REPRO_TIE_SHUFFLE")
            if env:
                tie_shuffle = int(env)
        if tie_shuffle is not None:
            self.queue.set_tie_shuffle(tie_shuffle)
        self.tie_shuffle = tie_shuffle
        self.metrics = MetricsRegistry(clock=lambda: self.now)
        self.trace = TraceLog(clock=lambda: self.now)
        self.dispatch = DispatchBus(metrics=self.metrics, trace=self.trace)
        # Slot for a repro.telemetry.SpanTracer (duck-typed so sim/ never
        # imports the telemetry layer).  None = span tracing disabled; the
        # tracer writes only to self.metrics, never to the trace log, so
        # installing one cannot perturb the determinism digest.
        self.span_tracer = None
        # Sibling slot for a repro.telemetry.InvariantMonitor, under the
        # same contract: duck-typed, metrics-only, digest-neutral.
        self.invariant_monitor = None
        # Sibling slot for a repro.telemetry.RoundTracer: consensus
        # engines feed round/view transitions here (same contract).
        self.round_tracer = None
        # Scratch space for cross-component memoization of deterministic
        # computations (e.g. the runtime's shared block-execution cache).
        # Contents must never influence observable simulation behaviour —
        # only avoid recomputing results that are pure functions of it.
        self.memo: dict = {}
        self._events_executed = 0
        self._halted = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule *callback* to run *delay* simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.queue.push(self.now + delay, callback, args, kwargs, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule *callback* at an absolute simulated *time* (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now={self.now}")
        return self.queue.push(time, callback, args, kwargs, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Safe on already-fired events (no-op for
        queue accounting: only events still in the queue release a slot)."""
        if not event.cancelled:
            event.cancel()
            if not event.popped:
                self.queue.note_cancel()

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        label: str = "",
        on_error: str = "log",
        **kwargs: Any,
    ) -> Callable[[], None]:
        """Run *callback* periodically every *interval* seconds.

        Returns a zero-argument function that stops the recurrence.  The
        first firing happens after *start_after* seconds (default: one full
        interval).

        Tie-breaking: each tick re-schedules the next one from inside its
        own callback, so a tick's queue sequence number — and hence its
        position among same-timestamp events — is assigned at that moment.
        Two recurrences with the same interval fire in the order their
        *previous* ticks ran (FIFO by re-scheduling), which is itself FIFO
        by the order of the original :meth:`every` calls.  As with all
        same-timestamp ties, correct components must not rely on this
        accident; ``tie_shuffle`` exists to flush out code that does.

        ``on_error`` decides what an exception raised by *callback* does to
        the recurrence:

        - ``"log"`` (default): record a ``timer.error`` trace + metric and
          keep ticking — one bad tick must not silently kill a heartbeat;
        - ``"stop"``: record the error and end the recurrence;
        - ``"raise"``: end the recurrence and propagate the exception out of
          the run loop (the pre-existing behaviour).
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        if on_error not in ("log", "stop", "raise"):
            raise SimulationError(f"unknown on_error policy {on_error!r}")
        state = {"stopped": False, "event": None}

        def _tick() -> None:
            if state["stopped"]:
                return
            try:
                callback(*args, **kwargs)
            except Exception as err:
                if on_error == "raise":
                    state["stopped"] = True
                    raise
                name = label or getattr(callback, "__name__", "?")
                self.trace.emit("timer.error", name, type(err).__name__, err)
                self.metrics.counter(f"sim.timer.errors.{name}").inc()
                if on_error == "stop":
                    state["stopped"] = True
                    return
            if not state["stopped"]:
                state["event"] = self.schedule(interval, _tick, label=label)

        first = interval if start_after is None else start_after
        state["event"] = self.schedule(first, _tick, label=label)

        def _stop() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                self.cancel(event)

        return _stop

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        if event.time < self.now:
            raise SimulationError("event queue produced an event in the past")
        self.now = event.time
        self._events_executed += 1
        self.dispatch.dispatch(event)
        return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events until simulated *time* (inclusive of events at *time*).

        Returns the number of events executed.  Unless halted, the clock is
        advanced to *time* even if the queue drains earlier, so subsequent
        scheduling is relative to the requested horizon; a :meth:`halt`
        leaves the clock at the halting event's time.
        """
        executed = 0
        self._halted = False
        while not self._halted:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before reaching t={time}"
                )
        if not self._halted and self.now < time:
            self.now = time
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue is exhausted.  Returns events executed."""
        executed = 0
        self._halted = False
        while not self._halted and self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        return executed

    def halt(self) -> None:
        """Stop the current :meth:`run`/:meth:`run_until` after this event."""
        self._halted = True

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, *scope: Any):
        """Return a deterministic ``random.Random`` for a named component.

        The same ``(seed, *scope)`` always yields an identically-seeded
        generator, so components do not perturb each other's random streams.
        """
        return self.seeds.rng(*scope)

"""The discrete-event simulator driving every run in this reproduction."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import SeedSequence
from repro.sim.tracing import TraceLog


class SimulationError(RuntimeError):
    """Raised when the simulator is driven incorrectly."""


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the simulated clock (:attr:`now`, in seconds), the
    event queue, the root :class:`~repro.sim.rng.SeedSequence` from which all
    component RNGs are derived, a :class:`~repro.sim.metrics.MetricsRegistry`
    and a :class:`~repro.sim.tracing.TraceLog`.

    Typical use::

        sim = Simulator(seed=42)
        sim.schedule(1.0, do_something)
        sim.run_until(10.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.seeds = SeedSequence(seed)
        self.queue = EventQueue()
        self.metrics = MetricsRegistry(clock=lambda: self.now)
        self.trace = TraceLog(clock=lambda: self.now)
        self._events_executed = 0
        self._halted = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule *callback* to run *delay* simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.queue.push(self.now + delay, callback, args, kwargs, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule *callback* at an absolute simulated *time* (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now={self.now}")
        return self.queue.push(time, callback, args, kwargs, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        if not event.cancelled:
            event.cancel()
            self.queue.note_cancel()

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        label: str = "",
        **kwargs: Any,
    ) -> Callable[[], None]:
        """Run *callback* periodically every *interval* seconds.

        Returns a zero-argument function that stops the recurrence.  The
        first firing happens after *start_after* seconds (default: one full
        interval).
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        state = {"stopped": False, "event": None}

        def _tick() -> None:
            if state["stopped"]:
                return
            callback(*args, **kwargs)
            if not state["stopped"]:
                state["event"] = self.schedule(interval, _tick, label=label)

        first = interval if start_after is None else start_after
        state["event"] = self.schedule(first, _tick, label=label)

        def _stop() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                self.cancel(event)

        return _stop

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        if event.time < self.now:
            raise SimulationError("event queue produced an event in the past")
        self.now = event.time
        self._events_executed += 1
        event.fire()
        return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events until simulated *time* (inclusive of events at *time*).

        Returns the number of events executed.  The clock is advanced to
        *time* even if the queue drains earlier, so subsequent scheduling is
        relative to the requested horizon.
        """
        executed = 0
        self._halted = False
        while not self._halted:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before reaching t={time}"
                )
        if self.now < time:
            self.now = time
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue is exhausted.  Returns events executed."""
        executed = 0
        self._halted = False
        while not self._halted and self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        return executed

    def halt(self) -> None:
        """Stop the current :meth:`run`/:meth:`run_until` after this event."""
        self._halted = True

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, *scope: Any):
        """Return a deterministic ``random.Random`` for a named component.

        The same ``(seed, *scope)`` always yields an identically-seeded
        generator, so components do not perturb each other's random streams.
        """
        return self.seeds.rng(*scope)

"""Event primitives for the discrete-event simulator.

An :class:`Event` is a callback scheduled at a simulated timestamp.  Events
with equal timestamps are ordered by an insertion sequence number so that
execution order is deterministic regardless of heap internals: ties fire in
FIFO (insertion) order.

The FIFO tie rule is a *legal* schedule, not the only one — any permutation
of same-timestamp events is an equally valid discrete-event schedule, and
protocol outcomes must not depend on which one the queue happens to pick.
:meth:`EventQueue.set_tie_shuffle` deterministically permutes ties under a
seed so that hidden tie-order dependence becomes detectable (see
``Simulator(tie_shuffle=...)`` and ``repro.lint``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

_MIX_MULT = 0x9E3779B97F4A7C15  # 64-bit golden-ratio multiplier (splitmix64)
_MASK64 = (1 << 64) - 1


def tie_mix(shuffle_seed: int, seq: int) -> int:
    """A keyed 64-bit integer hash of *seq* — the tie-shuffle permutation.

    splitmix64-style finalizer: fast, stateless, stable across runs and
    Python versions (no dependence on ``hash()`` randomization).
    """
    z = (seq + shuffle_seed * _MIX_MULT) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class Event:
    """A scheduled callback in simulated time.

    Events are created through :meth:`repro.sim.scheduler.Simulator.schedule`
    rather than directly.  An event can be cancelled before it fires; a
    cancelled event is skipped by the queue and never executed.
    """

    __slots__ = (
        "time", "seq", "tie", "callback", "args", "kwargs", "cancelled", "label", "popped",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
        tie: int = 0,
    ) -> None:
        self.time = time
        self.seq = seq
        # Secondary sort key among same-timestamp events.  0 under the
        # default FIFO rule (comparison then falls through to seq); a keyed
        # hash of seq under tie-shuffle (see EventQueue.set_tie_shuffle).
        self.tie = tie
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        self.label = label
        self.popped = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def fire(self) -> Any:
        """Run the event's callback.  The queue calls this, not users."""
        return self.callback(*self.args, **self.kwargs)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.tie, self.seq) < (other.time, other.tie, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.callback, "__name__", "?")
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Ordering contract: events pop in ascending ``(time, tie, seq)`` order.
    ``tie`` is 0 for every event by default, so same-timestamp events fire
    FIFO by insertion sequence — two runs that push the same events in the
    same order always pop them in the same order, and permuting the
    insertion order of *distinct-timestamp* events cannot change pop order.
    Under :meth:`set_tie_shuffle` the tie key becomes a seeded hash of the
    sequence number, deterministically permuting same-timestamp ties.
    """

    def __init__(self) -> None:
        # Heap entries are (time, tie, seq, event) tuples: seq is unique, so
        # comparisons resolve on the first three fields in C and never reach
        # the Event object.  The key is exactly Event.__lt__'s key, so pop
        # order is identical to a heap of bare events.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._tie_shuffle: Optional[int] = None

    def set_tie_shuffle(self, shuffle_seed: Optional[int]) -> None:
        """Permute same-timestamp ties under *shuffle_seed* (None = FIFO).

        Must be called before any events are pushed: mixing tie disciplines
        within one queue would make the already-queued prefix incomparable
        with the rest.
        """
        if self._heap or self._seq:
            raise RuntimeError("set_tie_shuffle() requires an empty, unused queue")
        self._tie_shuffle = shuffle_seed

    @property
    def tie_shuffle(self) -> Optional[int]:
        return self._tie_shuffle

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        tie = 0 if self._tie_shuffle is None else tie_mix(self._tie_shuffle, self._seq)
        event = Event(time, self._seq, callback, args, kwargs, label, tie=tie)
        heapq.heappush(self._heap, (time, tie, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            event.popped = True
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def discard_cancelled(self) -> None:
        """Compact the heap, dropping cancelled events eagerly."""
        live = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(live)
        self._heap = live

    def note_cancel(self) -> None:
        """Record that one previously-live event was cancelled externally."""
        if self._live > 0:
            self._live -= 1

    def iter_pending(self) -> Iterator[Event]:
        """Yield live events in an arbitrary order (inspection only)."""
        return (entry[3] for entry in self._heap if not entry[3].cancelled)

"""Event primitives for the discrete-event simulator.

An :class:`Event` is a callback scheduled at a simulated timestamp.  Events
with equal timestamps are ordered by an insertion sequence number so that
execution order is deterministic regardless of heap internals.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional


class Event:
    """A scheduled callback in simulated time.

    Events are created through :meth:`repro.sim.scheduler.Simulator.schedule`
    rather than directly.  An event can be cancelled before it fires; a
    cancelled event is skipped by the queue and never executed.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "label", "popped")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self.cancelled = False
        self.label = label
        self.popped = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def fire(self) -> Any:
        """Run the event's callback.  The queue calls this, not users."""
        return self.callback(*self.args, **self.kwargs)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.callback, "__name__", "?")
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        label: str = "",
    ) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        event = Event(time, self._seq, callback, args, kwargs, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.popped = True
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def discard_cancelled(self) -> None:
        """Compact the heap, dropping cancelled events eagerly."""
        live = [e for e in self._heap if not e.cancelled]
        heapq.heapify(live)
        self._heap = live

    def note_cancel(self) -> None:
        """Record that one previously-live event was cancelled externally."""
        if self._live > 0:
            self._live -= 1

    def iter_pending(self) -> Iterator[Event]:
        """Yield live events in an arbitrary order (inspection only)."""
        return (e for e in self._heap if not e.cancelled)

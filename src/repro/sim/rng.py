"""Deterministic seed derivation.

All randomness in a simulation flows from one root seed.  Components ask for
their own generator via a *scope* (any hashable path of labels), and the same
scope always produces the same stream, independent of the order in which
other components draw randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any


def derive_seed(root: int, *scope: Any) -> int:
    """Derive a 64-bit child seed from *root* and a scope path.

    Derivation is a SHA-256 over the textual path, so it is stable across
    Python versions and process invocations (unlike ``hash()``).
    """
    text = repr((root,) + tuple(str(s) for s in scope))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeedSequence:
    """Factory for scoped, reproducible ``random.Random`` generators."""

    def __init__(self, root: int) -> None:
        self.root = root
        self._cache: dict[tuple, random.Random] = {}

    def seed_for(self, *scope: Any) -> int:
        """Return the derived integer seed for *scope*."""
        return derive_seed(self.root, *scope)

    def rng(self, *scope: Any) -> random.Random:
        """Return the cached generator for *scope*, creating it on first use.

        Repeated calls with the same scope return the *same* generator
        object, so a component's draws form one continuous stream.
        """
        key = tuple(str(s) for s in scope)
        generator = self._cache.get(key)
        if generator is None:
            generator = random.Random(self.seed_for(*scope))
            self._cache[key] = generator
        return generator

    def child(self, *scope: Any) -> "SeedSequence":
        """Return a new :class:`SeedSequence` rooted under *scope*."""
        return SeedSequence(self.seed_for(*scope))

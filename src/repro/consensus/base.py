"""Consensus engine interface and validator sets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.crypto.keys import Address
from repro.chain.block import FullBlock


@dataclass(frozen=True)
class Validator:
    """One consensus participant: a node and its mining power/stake."""

    node_id: str
    address: Address
    power: int = 1

    def to_canonical(self):
        return (self.node_id, self.address.raw, self.power)


class ValidatorSet:
    """An ordered set of validators with power-weighted helpers."""

    def __init__(self, validators) -> None:
        ordered = sorted(validators, key=lambda v: v.node_id)
        if not ordered:
            raise ValueError("validator set cannot be empty")
        seen = set()
        for validator in ordered:
            if validator.node_id in seen:
                raise ValueError(f"duplicate validator {validator.node_id}")
            if validator.power <= 0:
                raise ValueError(f"validator {validator.node_id} has no power")
            seen.add(validator.node_id)
        self.validators = ordered

    def __len__(self) -> int:
        return len(self.validators)

    def __iter__(self):
        return iter(self.validators)

    @property
    def total_power(self) -> int:
        return sum(v.power for v in self.validators)

    @property
    def quorum_power(self) -> int:
        """Power needed for a BFT quorum: > 2/3 of total."""
        return self.total_power * 2 // 3 + 1

    @property
    def max_faulty(self) -> int:
        """f such that the set tolerates f Byzantine validators (by count)."""
        return (len(self.validators) - 1) // 3

    def by_node(self, node_id: str) -> Optional[Validator]:
        for validator in self.validators:
            if validator.node_id == node_id:
                return validator
        return None

    def contains(self, node_id: str) -> bool:
        return self.by_node(node_id) is not None

    def round_robin(self, index: int) -> Validator:
        return self.validators[index % len(self.validators)]

    def weighted_choice(self, rng) -> Validator:
        """Power-weighted random validator (PoS leader lottery)."""
        target = rng.randrange(self.total_power)
        cumulative = 0
        for validator in self.validators:
            cumulative += validator.power
            if target < cumulative:
                return validator
        return self.validators[-1]

    def power_of(self, node_ids) -> int:
        ids = set(node_ids)
        return sum(v.power for v in self.validators if v.node_id in ids)


@dataclass
class ConsensusParams:
    """Engine tunables; not every engine uses every field."""

    engine: str = "poa"
    block_time: float = 1.0  # target seconds between blocks
    max_block_messages: int = 500
    finality_depth: int = 5  # PoW probabilistic finality
    timeout_propose: float = 0.5  # Tendermint phase timeouts
    timeout_vote: float = 0.5
    mir_leaders: int = 4
    extra: dict = field(default_factory=dict)


class ConsensusEngine:
    """Base class all engines implement.

    The *node* argument is the engine's window on the world; it must provide:

    - ``node_id`` (str), ``miner_address`` (Address)
    - ``head()`` → current canonical head FullBlock
    - ``assemble_block(height, parent_cid, consensus_data)`` → FullBlock
      built from the node's pools against the parent state
    - ``receive_block(block, final)`` → bool: validate + store + (if final or
      heaviest) apply; False when invalid
    - ``broadcast(kind, payload)`` → publish on the subnet's consensus topic
      (delivered back to every validator's engine via ``handle``)
    - ``is_byzantine(behaviour)`` → bool for fault-injection experiments
    """

    NAME = "base"
    SUPPORTS_FORKS = False
    INSTANT_FINALITY = True

    def __init__(self, sim, node, validators: ValidatorSet, params: ConsensusParams) -> None:
        self.sim = sim
        self.node = node
        self.validators = validators
        self.params = params
        self.running = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    # -- network --------------------------------------------------------
    def handle(self, kind: str, payload: Any, sender: str) -> None:
        """Process a consensus message published by *sender*."""

    # -- introspection --------------------------------------------------
    def debug_state(self) -> dict:
        """Live engine state for stall diagnosis (JSON-safe plain data).

        Engines override to expose their round/slot machinery — current
        height/round/step, locked values, vote books, expected leader —
        so a :class:`~repro.telemetry.rounds.StallDiagnoser` can name the
        missing quorum without reaching into private attributes.
        """
        return {"engine": self.NAME, "running": self.running}

    # -- helpers --------------------------------------------------------
    def _metric(self, name: str):
        return self.sim.metrics.counter(f"consensus.{self.node.subnet_id}.{name}")

    def _trace_round(self, kind: str, **fields) -> None:
        """Feed one round/view transition to the installed RoundTracer.

        Duck-typed against ``sim.round_tracer`` (None = tracing off) so
        the consensus layer never imports telemetry; a single attribute
        read on the disabled path keeps engines digest-neutral and cheap.
        """
        tracer = self.sim.round_tracer
        if tracer is not None:
            tracer.on_round_event(
                self.node.subnet_id, self.node.node_id, kind,
                self.sim.now, fields,
            )

    def _observe_block_interval(self, block: FullBlock) -> None:
        hist = self.sim.metrics.histogram(f"consensus.{self.node.subnet_id}.block_interval")
        head = self.node.head()
        if head is not None and block.height == head.height + 1:
            hist.observe(block.header.timestamp - head.header.timestamp)


_ENGINES: dict[str, type] = {}


def register_engine(engine_class: type) -> type:
    """Class decorator registering an engine under its NAME."""
    _ENGINES[engine_class.NAME] = engine_class
    return engine_class


def make_engine(sim, node, validators: ValidatorSet, params: ConsensusParams) -> ConsensusEngine:
    """Instantiate the engine named by ``params.engine``."""
    engine_class = _ENGINES.get(params.engine)
    if engine_class is None:
        raise ValueError(
            f"unknown consensus engine {params.engine!r}; have {sorted(_ENGINES)}"
        )
    return engine_class(sim, node, validators, params)


def ENGINE_NAMES() -> list:
    """Names of all registered engines."""
    return sorted(_ENGINES)

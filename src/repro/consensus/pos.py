"""Stake-weighted proof-of-stake leader lottery.

Like :mod:`repro.consensus.poa` but the slot leader is drawn by a
stake-weighted lottery seeded from (subnet, slot) — a stand-in for the
VRF-based leader election of PoS chains.  Every validator computes the same
lottery locally, so eligibility is verifiable without extra messages.

This is the engine the paper's checkpointing story is most concerned with:
PoS subnets are where long-range attacks apply and where anchoring to the
parent via checkpoints matters (§I, §II).
"""

from __future__ import annotations

import random
from typing import Any

from repro.chain.block import FullBlock
from repro.consensus.base import ConsensusEngine, Validator, register_engine


@register_engine
class ProofOfStakeEngine(ConsensusEngine):
    """Slot-based PoS with a deterministic, stake-weighted leader lottery."""

    NAME = "pos"
    SUPPORTS_FORKS = False
    INSTANT_FINALITY = True

    def __init__(self, sim, node, validators, params) -> None:
        super().__init__(sim, node, validators, params)
        self._stop_ticker = None

    def start(self) -> None:
        super().start()
        offset = self.params.block_time - (self.sim.now % self.params.block_time)
        self._stop_ticker = self.sim.every(
            self.params.block_time,
            self._on_slot,
            start_after=offset,
            label=f"pos:{self.node.node_id}",
        )

    def stop(self) -> None:
        super().stop()
        if self._stop_ticker is not None:
            self._stop_ticker()
            self._stop_ticker = None

    def _current_slot(self) -> int:
        return int(round(self.sim.now / self.params.block_time))

    def leader_for_slot(self, slot: int) -> Validator:
        """The lottery: every validator derives the same leader for a slot.

        Uses a *fresh* generator seeded from (subnet, slot) — not the cached
        scoped stream — so every node's draw sees identical generator state.
        """
        seed = self.sim.seeds.seed_for("pos-lottery", self.node.subnet_id, slot)
        return self.validators.weighted_choice(random.Random(seed))

    def _on_slot(self) -> None:
        if not self.running:
            return
        slot = self._current_slot()
        leader = self.leader_for_slot(slot)
        if leader.node_id != self.node.node_id:
            return
        if self.node.is_byzantine("withhold_block"):
            self._metric("withheld").inc()
            return
        head = self.node.head()
        block = self.node.assemble_block(
            height=head.height + 1,
            parent_cid=head.cid,
            consensus_data={"engine": self.NAME, "slot": slot},
        )
        self._metric("proposed").inc()
        self._trace_round(
            "propose", height=block.height, slot=slot,
            proposer=self.node.node_id, cid=block.cid.hex()[:16],
        )
        self._observe_block_interval(block)
        self.node.receive_block(block, final=True)
        self._trace_round("commit", height=block.height, slot=slot)
        self.node.broadcast("block", block)

    def handle(self, kind: str, payload: Any, sender: str) -> None:
        if kind != "block":
            return
        # No running guard: blocks self-certify via the stake-weighted
        # leader check, and a restarted node listens passively (engine
        # stopped) until its head is fresh — see RoundRobinEngine.handle.
        block: FullBlock = payload
        slot = block.header.consensus_data.get("slot")
        if slot is None:
            self._metric("rejected").inc()
            return
        expected = self.leader_for_slot(slot)
        if block.header.miner != expected.address:
            self._metric("rejected").inc()
            return
        if self.node.receive_block(block, final=True):
            self._metric("accepted").inc()
            self._trace_round(
                "commit", height=block.height, slot=slot,
                proposer=expected.node_id,
            )
        elif block.height > self.node.head().height + 1:
            self.node.request_block_range(
                sender, self.node.head().height + 1, block.height - 1
            )

    def debug_state(self) -> dict:
        """Lottery state: the current slot and the leader it elects."""
        slot = self._current_slot()
        head = self.node.head()
        state = super().debug_state()
        state.update({
            "slot": slot,
            "leader": self.leader_for_slot(slot).node_id,
            "head_height": head.height if head else None,
        })
        return state

"""Pluggable consensus engines.

Central to the paper: "Each subnet can run its own independent consensus
algorithm" (§I) and the prototype integrates Tendermint and MirBFT (§VI).
Every engine implements :class:`~repro.consensus.base.ConsensusEngine`
against the same node interface, so a subnet chooses its engine by name in
its Subnet Actor's consensus spec:

- ``poa``        — round-robin proof-of-authority (instant finality);
- ``pos``        — stake-weighted leader lottery (instant finality);
- ``pow``        — simulated proof-of-work longest-chain (probabilistic
  finality, real forks and reorgs);
- ``tendermint`` — propose/prevote/precommit BFT with rounds and locking;
- ``mir``        — Mir-style multi-leader rotation (L proposers interleave,
  multiplying block rate).
"""

from repro.consensus.base import (
    ConsensusEngine,
    ConsensusParams,
    Validator,
    ValidatorSet,
    make_engine,
    ENGINE_NAMES,
)
from repro.consensus.poa import RoundRobinEngine
from repro.consensus.pos import ProofOfStakeEngine
from repro.consensus.pow import ProofOfWorkEngine
from repro.consensus.tendermint import TendermintEngine
from repro.consensus.mir import MirEngine

__all__ = [
    "ConsensusEngine",
    "ConsensusParams",
    "Validator",
    "ValidatorSet",
    "make_engine",
    "ENGINE_NAMES",
    "RoundRobinEngine",
    "ProofOfStakeEngine",
    "ProofOfWorkEngine",
    "TendermintEngine",
    "MirEngine",
]

"""Mir-style multi-leader consensus.

MirBFT (Stathakopoulou et al., JSys 2022) raises BFT throughput by letting
multiple leaders propose in parallel, partitioning the mempool into
*buckets* by sender hash so leaders never duplicate each other's messages,
and rotating bucket assignment across epochs to stop a faulty leader from
censoring a bucket forever.

This engine reproduces those three mechanisms on our linear-chain
substrate: every slot of length ``block_time`` has ``L = mir_leaders``
sub-slots; the leader of sub-slot ``k`` proposes at ``slot_start + k·δ``
(δ = block_time / L) on the current head, selecting only messages whose
sender falls in its bucket for the current epoch.  The result is the
characteristic Mir behaviour: ~L× the block rate of single-leader rotation
at the same slot length, with disjoint leader workloads.

The agreement layer is delegated to leader-eligibility checks (as in
:mod:`repro.consensus.poa`) rather than a full PBFT instance per bucket —
the hierarchy experiments measure throughput and cadence, which these
mechanisms determine.  (DESIGN.md records this simplification.)
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.chain.block import FullBlock
from repro.consensus.base import ConsensusEngine, register_engine


@register_engine
class MirEngine(ConsensusEngine):
    """Multi-leader rotation with hashed sender buckets."""

    NAME = "mir"
    SUPPORTS_FORKS = False
    INSTANT_FINALITY = True

    def __init__(self, sim, node, validators, params) -> None:
        super().__init__(sim, node, validators, params)
        self.leaders = max(1, min(params.mir_leaders, len(validators)))
        self._stop_ticker = None

    @property
    def _sub_slot_time(self) -> float:
        return self.params.block_time / self.leaders

    def start(self) -> None:
        super().start()
        offset = self._sub_slot_time - (self.sim.now % self._sub_slot_time)
        self._stop_ticker = self.sim.every(
            self._sub_slot_time,
            self._on_sub_slot,
            start_after=offset,
            label=f"mir:{self.node.node_id}",
        )

    def stop(self) -> None:
        super().stop()
        if self._stop_ticker is not None:
            self._stop_ticker()
            self._stop_ticker = None

    # ------------------------------------------------------------------
    # Leader/bucket schedule
    # ------------------------------------------------------------------
    def _current_sub_slot(self) -> int:
        return int(round(self.sim.now / self._sub_slot_time))

    def leader_for_sub_slot(self, sub_slot: int):
        return self.validators.round_robin(sub_slot)

    def bucket_of(self, sender_raw: str, epoch: int) -> int:
        """The mempool bucket of a sender in *epoch* (rotates per epoch)."""
        digest = hashlib.sha256(sender_raw.encode()).digest()
        base = int.from_bytes(digest[:4], "big") % self.leaders
        return (base + epoch) % self.leaders

    def _epoch(self, sub_slot: int) -> int:
        return sub_slot // (self.leaders * len(self.validators))

    # ------------------------------------------------------------------
    # Proposal
    # ------------------------------------------------------------------
    def _on_sub_slot(self) -> None:
        if not self.running:
            return
        sub_slot = self._current_sub_slot()
        leader = self.leader_for_sub_slot(sub_slot)
        if leader.node_id != self.node.node_id:
            return
        if self.node.is_byzantine("withhold_block"):
            self._metric("withheld").inc()
            return
        epoch = self._epoch(sub_slot)
        my_bucket = sub_slot % self.leaders

        def in_my_bucket(signed) -> bool:
            return self.bucket_of(signed.message.from_addr.raw, epoch) == my_bucket

        head = self.node.head()
        block = self.node.assemble_block(
            height=head.height + 1,
            parent_cid=head.cid,
            consensus_data={
                "engine": self.NAME,
                "sub_slot": sub_slot,
                "bucket": my_bucket,
            },
            message_filter=in_my_bucket,
        )
        self._metric("proposed").inc()
        self._trace_round(
            "propose", height=block.height, slot=sub_slot,
            proposer=self.node.node_id, cid=block.cid.hex()[:16],
        )
        self._observe_block_interval(block)
        self.node.receive_block(block, final=True)
        self._trace_round("commit", height=block.height, slot=sub_slot)
        self.node.broadcast("block", block)

    def handle(self, kind: str, payload: Any, sender: str) -> None:
        if kind != "block":
            return
        # No running guard: blocks self-certify via the sub-slot leader
        # check, and a restarted node listens passively (engine stopped)
        # until its head is fresh — see RoundRobinEngine.handle.
        block: FullBlock = payload
        sub_slot = block.header.consensus_data.get("sub_slot")
        if sub_slot is None:
            self._metric("rejected").inc()
            return
        expected = self.leader_for_sub_slot(sub_slot)
        if block.header.miner != expected.address:
            self._metric("rejected").inc()
            return
        if self.node.receive_block(block, final=True):
            self._metric("accepted").inc()
            self._trace_round(
                "commit", height=block.height, slot=sub_slot,
                proposer=expected.node_id,
            )
        elif block.height > self.node.head().height + 1:
            self.node.request_block_range(
                sender, self.node.head().height + 1, block.height - 1
            )

    def debug_state(self) -> dict:
        """Sub-slot rotation state: leader, epoch and bucket right now."""
        sub_slot = self._current_sub_slot()
        head = self.node.head()
        state = super().debug_state()
        state.update({
            "slot": sub_slot,
            "leader": self.leader_for_sub_slot(sub_slot).node_id,
            "epoch": self._epoch(sub_slot),
            "bucket": sub_slot % self.leaders,
            "head_height": head.height if head else None,
        })
        return state

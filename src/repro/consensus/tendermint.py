"""Tendermint-style BFT consensus.

The paper's prototype integrates Tendermint as a subnet engine (§VI).  This
is an event-driven implementation of the core algorithm from Buchman, Kwon &
Milosevic, "The latest gossip on BFT consensus" (arXiv:1807.04938):

- heights decided sequentially; each height runs rounds ``r = 0, 1, …``;
- the proposer of ``(h, r)`` is ``validators[(h + r) mod n]``;
- steps: PROPOSE → PREVOTE → PRECOMMIT with per-step timeouts;
- a *polka* (>2/3 prevotes for one block) locks the validator on that block;
- >2/3 precommits for a block commit it (instant finality);
- nil votes and round changes handle faulty/slow proposers.

Byzantine behaviours available for experiments: ``withhold_vote``,
``withhold_block`` and ``equivocate_vote`` (double-voting, which produces
the evidence used for slashing in checkpoint fraud proofs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.cid import CID
from repro.chain.block import FullBlock
from repro.consensus.base import ConsensusEngine, register_engine

PROPOSE, PREVOTE, PRECOMMIT = "propose", "prevote", "precommit"


@dataclass(frozen=True)
class Vote:
    """A prevote or precommit.  ``block_cid`` of None is a nil vote."""

    height: int
    round: int
    vote_type: str
    block_cid: Optional[CID]
    voter: str

    def to_canonical(self):
        cid = self.block_cid.to_canonical() if self.block_cid else None
        return (self.height, self.round, self.vote_type, cid, self.voter)


@register_engine
class TendermintEngine(ConsensusEngine):
    """Propose/prevote/precommit BFT with locking and round changes."""

    NAME = "tendermint"
    SUPPORTS_FORKS = False
    INSTANT_FINALITY = True

    def __init__(self, sim, node, validators, params) -> None:
        super().__init__(sim, node, validators, params)
        self.height = 0
        self.round = 0
        self.step = PROPOSE
        self.locked_cid: Optional[CID] = None
        self.locked_round = -1
        self._proposals: dict[tuple, FullBlock] = {}  # (h, r) -> block
        self._valid_rounds: dict[tuple, int] = {}  # (h, r) -> claimed vr
        self._blocks: dict[CID, FullBlock] = {}
        self._prevotes: dict[tuple, dict] = {}  # (h, r) -> voter -> cid/None
        self._precommits: dict[tuple, dict] = {}
        self._equivocations: list[tuple] = []  # (voter, vote_a, vote_b)
        self._decided_heights: set[int] = set()
        # Future-height traffic buffer: a lagging validator must not drop
        # votes/proposals for heights it has not reached — peers GC their
        # books after committing and never re-send (the catch-up problem
        # block sync solves in production Tendermint).
        self._future: dict[int, list] = {}  # height -> [(kind, payload, sender)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        head = self.node.head()
        self.height = (head.height + 1) if head else 0
        self._height_started_at = self.sim.now
        self._start_round(0)

    def proposer_for(self, height: int, round_: int):
        return self.validators.round_robin(height + round_)

    def _start_round(self, round_: int, skipped: bool = False) -> None:
        if not self.running:
            return
        self.round = round_
        self.step = PROPOSE
        proposer = self.proposer_for(self.height, round_)
        self.sim.metrics.counter(
            f"consensus.{self.node.subnet_id}.rounds"
        ).inc()
        self._trace_round(
            "round_skip" if skipped else "round_start",
            height=self.height, round=round_, proposer=proposer.node_id,
            quorum=self.validators.quorum_power,
            total=self.validators.total_power,
        )
        height = self.height
        if proposer.node_id == self.node.node_id:
            self._propose()
        if self.height != height:
            return  # our own proposal completed the height synchronously
        # Whether or not we are the proposer, arm the propose timeout.
        self._schedule_timeout(PROPOSE, height, round_)
        if self.step == PROPOSE and self.round == round_:
            # A proposal for this round may already sit in the book (we
            # arrived via round skip while peers were further along) —
            # act on it now instead of waiting out the propose timeout.
            stored = self._proposals.get((height, round_))
            if stored is not None:
                self._prevote_proposal(
                    stored, self._valid_rounds.get((height, round_))
                )

    def _propose(self) -> None:
        if self.node.is_byzantine("withhold_block"):
            self._metric("withheld").inc()
            return
        head = self.node.head()
        valid_round = None
        if self.locked_cid is not None and self.locked_cid in self._blocks:
            # Repropose the locked block.  It carries its ORIGINAL
            # proposer's miner address, so the payload must also carry the
            # round it was first proposed in (the algorithm's validRound):
            # peers verify eligibility against that round's proposer.
            # Without this, a locked validator's reproposal is rejected by
            # everyone — including itself — and a round-0 lock split
            # (two lock, two precommit nil after a lossy polka) livelocks
            # the height forever: fresh proposals never gather the locked
            # validators' prevotes, and the locked block can never return.
            block = self._blocks[self.locked_cid]
            valid_round = min(
                (r for (h, r) in self._proposals
                 if h == self.height and self._proposals[(h, r)].cid == block.cid),
                default=self.locked_round,
            )
        else:
            block = self.node.assemble_block(
                height=self.height,
                parent_cid=head.cid,
                consensus_data={"engine": self.NAME, "round": self.round},
            )
        self._metric("proposed").inc()
        self._trace_round(
            "propose", height=self.height, round=self.round,
            cid=block.cid.hex()[:16],
        )
        payload = {"height": self.height, "round": self.round, "block": block}
        if valid_round is not None:
            payload["valid_round"] = valid_round
        self._on_proposal(payload, self.node.node_id)
        self.node.broadcast("tm:proposal", payload)

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def _schedule_timeout(self, step: str, height: int, round_: int) -> None:
        delay = self.params.timeout_propose if step == PROPOSE else self.params.timeout_vote
        # Linear back-off keeps lagging validators able to catch up.
        delay *= 1 + 0.5 * round_
        self.sim.schedule(
            delay, self._on_timeout, step, height, round_,
            label=f"tm:timeout:{step}",
        )

    def _on_timeout(self, step: str, height: int, round_: int) -> None:
        if not self.running or height != self.height or round_ != self.round:
            return  # stale timeout from an older height/round
        # Step transitions happen BEFORE the vote is cast: _cast_vote
        # self-delivers synchronously and may advance the round or commit
        # the height — assigning self.step afterwards would clobber that
        # fresh state with a stale one (see _check_polka).
        if step == PROPOSE and self.step == PROPOSE:
            # No acceptable proposal: prevote nil.
            self._trace_round("timeout", height=height, round=round_, step=step)
            self.step = PREVOTE
            self._schedule_timeout(PREVOTE, height, round_)
            self._cast_vote(PREVOTE, None)
        elif step == PREVOTE and self.step == PREVOTE:
            self._trace_round("timeout", height=height, round=round_, step=step)
            self.step = PRECOMMIT
            self._schedule_timeout(PRECOMMIT, height, round_)
            self._cast_vote(PRECOMMIT, None)
        elif step == PRECOMMIT and self.step == PRECOMMIT:
            self._trace_round("timeout", height=height, round=round_, step=step)
            self._start_round(round_ + 1)

    # ------------------------------------------------------------------
    # Voting
    # ------------------------------------------------------------------
    def _cast_vote(self, vote_type: str, block_cid: Optional[CID]) -> None:
        if not self.validators.contains(self.node.node_id):
            return  # observers do not vote
        if self.node.is_byzantine("withhold_vote"):
            self._metric("votes_withheld").inc()
            return
        vote = Vote(self.height, self.round, vote_type, block_cid, self.node.node_id)
        self._on_vote(vote)
        self.node.broadcast("tm:vote", vote)
        if self.node.is_byzantine("equivocate_vote") and block_cid is not None:
            # Double-vote: also vote nil for the same (h, r, type).
            conflicting = Vote(self.height, self.round, vote_type, None, self.node.node_id)
            self._metric("equivocations_sent").inc()
            self.node.broadcast("tm:vote", conflicting)

    def _vote_book(self, vote_type: str, height: int, round_: int) -> dict:
        book = self._prevotes if vote_type == PREVOTE else self._precommits
        return book.setdefault((height, round_), {})

    def _record_vote(self, vote: Vote) -> bool:
        """Store the vote; detect and log equivocation; returns acceptance."""
        if not self.validators.contains(vote.voter):
            return False
        book = self._vote_book(vote.vote_type, vote.height, vote.round)
        existing = book.get(vote.voter, _ABSENT)
        if existing is not _ABSENT:
            if existing != vote.block_cid:
                self._equivocations.append((vote.voter, existing, vote.block_cid))
                self._metric("equivocations_observed").inc()
            return False  # first vote stands
        book[vote.voter] = vote.block_cid
        return True

    def _tally(self, vote_type: str, height: int, round_: int) -> dict:
        """Map block_cid (or None) → accumulated voting power."""
        book = self._vote_book(vote_type, height, round_)
        power: dict = {}
        for voter, cid in book.items():
            validator = self.validators.by_node(voter)
            power[cid] = power.get(cid, 0) + validator.power
        return power

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, kind: str, payload: Any, sender: str) -> None:
        if kind == "tm:commit":
            # Commit certificates bypass the future-height buffer *and* the
            # running guard: they are exactly how a validator stuck at an
            # old height catches up, including a restarted node whose
            # engine is paused until its head is fresh (certificates reach
            # it eagerly or replayed through IHAVE/IWANT repair).  Round
            # state stays quiet — _begin_height no-ops while stopped.
            self._on_commit_cert(payload, sender)
            return
        if not self.running:
            return
        height = payload["height"] if kind == "tm:proposal" else getattr(payload, "height", None)
        if height is not None and height > self.height:
            if height <= self.height + 100:  # bounded buffer
                self._future.setdefault(height, []).append((kind, payload, sender))
            return
        if kind == "tm:proposal":
            self._on_proposal(payload, sender)
        elif kind == "tm:vote":
            self._on_vote(payload)

    def _on_proposal(self, payload: dict, sender: str) -> None:
        height, round_, block = payload["height"], payload["round"], payload["block"]
        if height != self.height:
            return
        valid_round = payload.get("valid_round")
        if valid_round is not None and 0 <= valid_round < round_:
            # Reproposal: the block header binds its ORIGINAL proposer, so
            # eligibility is checked against the round it was first
            # proposed in.  No weaker than the base rule — the claimed
            # (height, valid_round) pins exactly one expected miner.
            expected = self.proposer_for(height, valid_round)
        else:
            valid_round = None
            expected = self.proposer_for(height, round_)
        if block.header.miner != expected.address:
            self._metric("rejected").inc()
            return
        self._proposals[(height, round_)] = block
        self._blocks[block.cid] = block
        if valid_round is not None:
            self._valid_rounds[(height, round_)] = valid_round
        self._trace_round(
            "proposal", height=height, round=round_,
            proposer=self.proposer_for(height, round_).node_id,
            cid=block.cid.hex()[:16],
        )
        if round_ != self.round or self.step != PROPOSE:
            return
        self._prevote_proposal(block, valid_round)

    def _has_polka(self, cid: CID, round_: int) -> bool:
        """Did >2/3 prevote power endorse *cid* at (height, round_)?"""
        tally = self._tally(PREVOTE, self.height, round_)
        return tally.get(cid, 0) >= self.validators.quorum_power

    def _prevote_proposal(self, block: FullBlock, valid_round=None) -> None:
        """Prevote an acceptable proposal for the current (height, round).

        Locking rule: if locked, only prevote the locked block — unless the
        proposal is a reproposal carrying ``valid_round >= locked_round``
        whose polka we can verify in our own prevote book (arXiv:1807.04938
        line 28-30): a later polka supersedes an earlier lock.  The step
        advances and the prevote timeout arms *before* the vote is cast —
        our own vote is processed synchronously and may complete a polka
        (or even the commit) on the spot; mutating state afterwards would
        clobber it.
        """
        height, round_ = self.height, self.round
        self.step = PREVOTE
        self._schedule_timeout(PREVOTE, height, round_)
        if self.locked_cid is not None and block.cid != self.locked_cid:
            if (
                valid_round is not None
                and valid_round >= self.locked_round
                and self._has_polka(block.cid, valid_round)
            ):
                self._cast_vote(PREVOTE, block.cid)
            else:
                self._cast_vote(PREVOTE, self.locked_cid)
        else:
            self._cast_vote(PREVOTE, block.cid)

    def _on_vote(self, vote: Vote) -> None:
        if vote.height != self.height:
            return
        if not self._record_vote(vote):
            return
        voter = self.validators.by_node(vote.voter)
        self._trace_round(
            "vote", height=vote.height, round=vote.round,
            vote_type=vote.vote_type, voter=vote.voter,
            power=voter.power if voter else 1,
            cid=vote.block_cid.hex()[:16] if vote.block_cid else None,
        )
        if vote.round > self.round and self._maybe_skip_round(vote.round):
            return  # _start_round already re-evaluated the books
        if vote.vote_type == PREVOTE:
            self._check_polka(vote.round)
        else:
            self._check_commit(vote.round)

    def _maybe_skip_round(self, round_: int) -> bool:
        """The Tendermint round catch-up rule (arXiv:1807.04938, line 55).

        On f+1 voting power messaging at a round ahead of ours, honest
        validators are there and ours is stale — StartRound(round).
        Without this a loss window can phase-shift validators' locally
        clocked timeouts so no round ever gathers a quorum: each stays in
        its own cadence forever, even after the links heal (the
        lossy-links liveness stall).  Commit-certificate catch-up cannot
        repair this — it only helps once *someone* commits.
        """
        if self.step == "commit-wait" or round_ <= self.round:
            return False
        voters = set(self._prevotes.get((self.height, round_), ()))
        voters.update(self._precommits.get((self.height, round_), ()))
        if (self.height, round_) in self._proposals:
            voters.add(self.proposer_for(self.height, round_).node_id)
        if self.validators.power_of(voters) < (
            self.validators.total_power // 3 + 1
        ):
            return False
        self._metric("round_skips").inc()
        height = self.height
        self._start_round(round_, skipped=True)
        if self.height != height:
            return True  # the stored proposal carried us through a commit
        # Re-run quorum checks against the already-recorded books: the
        # polka (or commit) we were missing may be sitting there complete.
        if self.step == PREVOTE:
            self._check_polka(round_)
        if self.height == height and self.step == PRECOMMIT:
            self._check_commit(round_)
        return True

    def _check_polka(self, round_: int) -> None:
        """On >2/3 prevotes for one block at the current round: lock+precommit."""
        if round_ != self.round or self.step != PREVOTE:
            return
        tally = self._tally(PREVOTE, self.height, round_)
        quorum = self.validators.quorum_power
        for cid, power in tally.items():
            if power >= quorum:
                # Advance the step and arm the timeout BEFORE casting: our
                # own precommit is delivered synchronously and can complete
                # the commit quorum, whose _commit resets round/step for
                # the next height — assignments placed after _cast_vote
                # would overwrite that reset with a stale step, leaving the
                # engine wedged at round -1 (the commit-wait pace guard
                # never matches again).
                self.step = PRECOMMIT
                self._schedule_timeout(PRECOMMIT, self.height, round_)
                if cid is None:
                    self._cast_vote(PRECOMMIT, None)
                else:
                    self.locked_cid = cid
                    self.locked_round = round_
                    self._trace_round(
                        "lock", height=self.height, round=round_,
                        cid=cid.hex()[:16],
                    )
                    self._cast_vote(PRECOMMIT, cid)
                return

    def _check_commit(self, round_: int) -> None:
        """On >2/3 precommits for one block at any round of this height: commit."""
        tally = self._tally(PRECOMMIT, self.height, round_)
        quorum = self.validators.quorum_power
        for cid, power in tally.items():
            if cid is not None and power >= quorum:
                block = self._blocks.get(cid)
                if block is None:
                    return  # wait for the proposal to arrive
                self._commit(block)
                return
        # >2/3 nil precommits: move to the next round immediately.
        if tally.get(None, 0) >= quorum and round_ == self.round and self.step == PRECOMMIT:
            self._start_round(round_ + 1)

    # ------------------------------------------------------------------
    # Commit certificates (straggler catch-up)
    # ------------------------------------------------------------------
    # A validator that misses the precommit quorum for a height is stuck:
    # peers GC their vote books after committing and never re-send, so
    # without help it rounds forever at a height everyone else has left
    # (the catch-up problem production Tendermint solves with block sync).
    # On every commit we therefore broadcast the block together with its
    # >2/3 precommit set; a lagging validator verifies the certificate,
    # adopts the block, and jumps to the chain head.  Gossip's lazy
    # IHAVE/IWANT repair replays recent certificates to nodes that were
    # partitioned or crashed when they were first published.
    def _commit_certificate(self, block: FullBlock) -> tuple:
        votes = []
        for (height, round_), book in self._precommits.items():
            if height != block.height:
                continue
            for voter, cid in book.items():
                if cid == block.cid:
                    votes.append(Vote(height, round_, PRECOMMIT, cid, voter))
        # Canonical order (one vote per voter stands, per _record_vote).
        return tuple(sorted(votes, key=lambda v: (v.round, v.voter)))

    def _verify_commit_cert(self, block: FullBlock, votes) -> bool:
        power = 0
        seen = set()
        for vote in votes:
            if (
                vote.vote_type != PRECOMMIT
                or vote.height != block.height
                or vote.block_cid != block.cid
                or vote.voter in seen
                or not self.validators.contains(vote.voter)
            ):
                return False
            seen.add(vote.voter)
            power += self.validators.by_node(vote.voter).power
        return power >= self.validators.quorum_power

    def _on_commit_cert(self, payload: dict, sender: str) -> None:
        block: FullBlock = payload["block"]
        votes = payload["votes"]
        if not self._verify_commit_cert(block, votes):
            self._metric("rejected").inc()
            return
        if block.height < self.height:
            return  # already decided locally
        if block.height == self.height:
            # Our working height: commit through the ordinary path so the
            # block-interval pacing stays identical to a self-commit (a
            # zero-delay jump here would let fast peers drag followers
            # ahead of the paced schedule and desynchronise rounds).
            self._commit(block, cert=votes)
            return
        # Strictly ahead: we are at least one full height behind.
        self._observe_block_interval(block)
        self.node.receive_block(block, final=True)
        head = self.node.head()
        if head.height + 1 <= self.height:
            # An orphaned future block: its ancestors never committed here
            # and, after a long enough outage, are past gossip's IHAVE
            # history — so fetch the gap directly from whoever sent the
            # certificate (the orphan cascade then lands this block too).
            self.node.request_block_range(sender, head.height + 1, block.height - 1)
            return
        # Jump to the head the certificate (plus any retried orphans)
        # established and rejoin consensus at the next height.
        self._metric("caught_up").inc()
        self._gc_height(head.height)
        self._decided_heights.update(
            range(self.height, head.height + 1)
        )
        self.height = head.height + 1
        self.locked_cid = None
        self.locked_round = -1
        self.round = -1
        self.step = "commit-wait"
        self._height_started_at = self.sim.now
        self.sim.schedule(0.0, self._begin_height, self.height, label="tm:pace")

    def _commit(self, block: FullBlock, cert: Optional[tuple] = None) -> None:
        if block.height in self._decided_heights:
            return
        self._decided_heights.add(block.height)
        self._observe_block_interval(block)
        self.node.receive_block(block, final=True)
        self._metric("committed").inc()
        # Re-broadcast the certificate we received, or build one from our
        # own precommit book (a commit reached via peer certificate may
        # hold fewer than quorum local precommits).  A stopped engine
        # (catching up before a restart resume) stays silent.
        if self.running:
            self.node.broadcast(
                "tm:commit",
                {"block": block, "votes": cert or self._commit_certificate(block)},
            )
        self.sim.metrics.histogram(
            f"consensus.{self.node.subnet_id}.commit_round"
        ).observe(self.round)
        self._trace_round(
            "commit", height=block.height, round=max(self.round, 0),
            cid=block.cid.hex()[:16],
        )
        # Clean up and move to the next height, pacing to the target block
        # interval (Tendermint's timeout_commit): consensus itself finishes
        # in a few gossip round trips, so without pacing block rate would be
        # network-bound instead of the configured block_time.
        self._gc_height(self.height)
        decided_height = self.height
        self.height = block.height + 1
        self.locked_cid = None
        self.locked_round = -1
        self.round = -1
        self.step = "commit-wait"
        elapsed = self.sim.now - getattr(self, "_height_started_at", self.sim.now)
        pacing = max(0.0, self.params.block_time - elapsed)
        self.sim.schedule(
            pacing, self._begin_height, self.height, label="tm:pace"
        )

    def _begin_height(self, height: int) -> None:
        if not self.running or height != self.height or self.step != "commit-wait":
            return
        self._height_started_at = self.sim.now
        self._start_round(0)
        # Replay any traffic that arrived while we lagged behind.
        for kind, payload, sender in self._future.pop(self.height, []):
            if kind == "tm:proposal":
                self._on_proposal(payload, sender)
            else:
                self._on_vote(payload)
        for stale in [h for h in self._future if h <= self.height]:
            del self._future[stale]

    def _gc_height(self, height: int) -> None:
        for book in (self._prevotes, self._precommits):
            for key in [k for k in book if k[0] <= height]:
                del book[key]
        for key in [k for k in self._proposals if k[0] <= height]:
            block = self._proposals.pop(key)
            self._blocks.pop(block.cid, None)
            self._valid_rounds.pop(key, None)

    @property
    def equivocation_evidence(self) -> list:
        """Observed double-votes: (voter, first_cid, second_cid) tuples."""
        return list(self._equivocations)

    # ------------------------------------------------------------------
    # Introspection (stall diagnosis)
    # ------------------------------------------------------------------
    def debug_state(self) -> dict:
        """Round machinery + vote books at the working height (JSON-safe)."""

        def books(source: dict) -> dict:
            return {
                str(round_): {
                    voter: cid.hex()[:16] if cid is not None else None
                    for voter, cid in sorted(book.items())
                }
                for (height, round_), book in sorted(source.items())
                if height == self.height
            }

        state = super().debug_state()
        state.update({
            "height": self.height,
            "round": self.round,
            "step": self.step,
            "locked": (
                self.locked_cid.hex()[:16]
                if self.locked_cid is not None else None
            ),
            "locked_round": self.locked_round,
            "prevotes": books(self._prevotes),
            "precommits": books(self._precommits),
            "proposals": sorted(
                r for (h, r) in self._proposals if h == self.height
            ),
            "future_heights": sorted(self._future),
        })
        return state


_ABSENT = object()

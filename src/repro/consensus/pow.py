"""Simulated proof-of-work longest-chain consensus.

Mining is modelled as an exponential race: a miner with power ``p`` out of
total ``P`` finds its next block after ``Exp(mean = block_time · P / p)``
seconds, restarted whenever its head changes.  This reproduces the
properties the hierarchy layer must cope with on PoW subnets and the
rootnet: probabilistic finality, forks when two miners solve close together
relative to propagation delay, and reorgs resolved by the heaviest chain.

Finality is depth-based: a block is final once ``finality_depth`` blocks
build on it; the node only acts on final blocks for checkpointing.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.chain.block import FullBlock
from repro.consensus.base import ConsensusEngine, register_engine


@register_engine
class ProofOfWorkEngine(ConsensusEngine):
    """Exponential-race PoW with heaviest-chain fork choice."""

    NAME = "pow"
    SUPPORTS_FORKS = True
    INSTANT_FINALITY = False

    def __init__(self, sim, node, validators, params) -> None:
        super().__init__(sim, node, validators, params)
        self._rng = sim.rng("pow", node.subnet_id, node.node_id)
        self._mining_event = None
        self._mining_on = None  # CID of the head we are mining on

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self._restart_mining()

    def stop(self) -> None:
        super().stop()
        self._cancel_mining()

    def _cancel_mining(self) -> None:
        if self._mining_event is not None:
            self.sim.cancel(self._mining_event)
            self._mining_event = None
        self._mining_on = None

    def _my_power(self) -> int:
        validator = self.validators.by_node(self.node.node_id)
        return validator.power if validator else 0

    def _restart_mining(self) -> None:
        """(Re)schedule this miner's next solve on the current head."""
        self._cancel_mining()
        if not self.running:
            return
        power = self._my_power()
        if power == 0:
            return  # observer node: syncs but does not mine
        head = self.node.head()
        if head is None:
            return
        mean = self.params.block_time * self.validators.total_power / power
        delay = self._rng.expovariate(1.0 / mean)
        self._mining_on = head.cid
        self._mining_event = self.sim.schedule(
            delay, self._on_solved, head.cid, label=f"pow:{self.node.node_id}"
        )

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def _on_solved(self, parent_cid) -> None:
        self._mining_event = None
        if not self.running:
            return
        head = self.node.head()
        if head is None or head.cid != parent_cid:
            # Head changed while the solve event was in flight: stale work.
            self._restart_mining()
            return
        if self.node.is_byzantine("withhold_block"):
            self._metric("withheld").inc()
            self._restart_mining()
            return
        block = self.node.assemble_block(
            height=head.height + 1,
            parent_cid=parent_cid,
            consensus_data={
                "engine": self.NAME,
                "ticket": self._rng.getrandbits(64),
            },
        )
        self._metric("mined").inc()
        self._trace_round(
            "propose", height=block.height, proposer=self.node.node_id,
            cid=block.cid.hex()[:16],
        )
        self._observe_block_interval(block)
        self.node.receive_block(block, final=False)
        self._trace_round("commit", height=block.height)
        self.node.broadcast("block", block)
        self._restart_mining()

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    def handle(self, kind: str, payload: Any, sender: str) -> None:
        if kind != "block":
            return
        # No running guard on acceptance: a restarted node listens
        # passively (engine stopped) until its head is fresh — see
        # RoundRobinEngine.handle.  Only mining stays gated on running.
        block: FullBlock = payload
        if block.header.consensus_data.get("engine") != self.NAME:
            self._metric("rejected").inc()
            return
        head_before = self.node.head()
        accepted = self.node.receive_block(block, final=False)
        if not accepted:
            if block.height > self.node.head().height + 1:
                self.node.request_block_range(
                    sender, self.node.head().height + 1, block.height - 1
                )
            return
        self._metric("accepted").inc()
        head_after = self.node.head()
        if head_before is None or head_after.cid != head_before.cid:
            self._trace_round("commit", height=head_after.height)
        if self.running and (head_before is None or head_after.cid != head_before.cid):
            # Our head moved (extension or reorg): abandon stale work.
            self._restart_mining()

    # ------------------------------------------------------------------
    # Introspection (stall diagnosis)
    # ------------------------------------------------------------------
    def debug_state(self) -> dict:
        """Mining state: the head we race on, our power, final height."""
        head = self.node.head()
        state = super().debug_state()
        state.update({
            "mining_on": (
                self._mining_on.hex()[:16]
                if self._mining_on is not None else None
            ),
            "power": self._my_power(),
            "head_height": head.height if head else None,
            "final_height": self.final_height(),
        })
        return state

    # ------------------------------------------------------------------
    # Finality
    # ------------------------------------------------------------------
    def final_height(self) -> int:
        """Highest height considered final (head height − finality depth)."""
        head = self.node.head()
        if head is None:
            return -1
        return head.height - self.params.finality_depth

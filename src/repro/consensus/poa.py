"""Round-robin proof-of-authority.

The simplest engine: slot ``s`` (of length ``block_time``) belongs to
validator ``s mod n``; the slot leader proposes a block on its head and
every validator commits it on receipt after checking leader eligibility.
With honest-majority authorities this gives instant finality and a steady
block interval — the engine subnets default to in our experiments, because
its behaviour is the easiest to reason about in latency measurements.
"""

from __future__ import annotations

from typing import Any

from repro.chain.block import FullBlock
from repro.consensus.base import ConsensusEngine, register_engine


@register_engine
class RoundRobinEngine(ConsensusEngine):
    """Slot-based round-robin block production."""

    NAME = "poa"
    SUPPORTS_FORKS = False
    INSTANT_FINALITY = True

    def __init__(self, sim, node, validators, params) -> None:
        super().__init__(sim, node, validators, params)
        self._stop_ticker = None

    def start(self) -> None:
        super().start()
        # Align slot ticks to absolute slot boundaries so every validator
        # agrees on the slot schedule without communication.
        offset = self.params.block_time - (self.sim.now % self.params.block_time)
        self._stop_ticker = self.sim.every(
            self.params.block_time,
            self._on_slot,
            start_after=offset,
            label=f"poa:{self.node.node_id}",
        )

    def stop(self) -> None:
        super().stop()
        if self._stop_ticker is not None:
            self._stop_ticker()
            self._stop_ticker = None

    def _current_slot(self) -> int:
        return int(round(self.sim.now / self.params.block_time))

    def leader_for_slot(self, slot: int):
        return self.validators.round_robin(slot)

    def _on_slot(self) -> None:
        if not self.running:
            return
        slot = self._current_slot()
        leader = self.leader_for_slot(slot)
        if leader.node_id != self.node.node_id:
            return
        if self.node.is_byzantine("withhold_block"):
            self._metric("withheld").inc()
            return
        head = self.node.head()
        block = self.node.assemble_block(
            height=head.height + 1,
            parent_cid=head.cid,
            consensus_data={"engine": self.NAME, "slot": slot},
        )
        self._metric("proposed").inc()
        self._trace_round(
            "propose", height=block.height, slot=slot,
            proposer=self.node.node_id, cid=block.cid.hex()[:16],
        )
        self._observe_block_interval(block)
        # Commit locally first, then broadcast to the subnet topic.
        self.node.receive_block(block, final=True)
        self._trace_round("commit", height=block.height, slot=slot)
        self.node.broadcast("block", block)

    def handle(self, kind: str, payload: Any, sender: str) -> None:
        if kind != "block":
            return
        # No running guard: blocks are self-certifying (slot-leader
        # eligibility below), and a restarted node listens passively —
        # engine stopped — until its head is fresh.  Dropping deliveries
        # here would mark them gossip-seen yet never applied, wedging the
        # node until the max_sync_wait fallback.
        block: FullBlock = payload
        slot = block.header.consensus_data.get("slot")
        if slot is None:
            self._metric("rejected").inc()
            return
        expected = self.leader_for_slot(slot)
        if block.header.miner != expected.address:
            self._metric("rejected").inc()
            return
        if self.node.receive_block(block, final=True):
            self._metric("accepted").inc()
            self._trace_round(
                "commit", height=block.height, slot=slot,
                proposer=expected.node_id,
            )
        elif block.height > self.node.head().height + 1:
            # Orphaned with a gap gossip's IHAVE history may no longer
            # cover (long outage) — fetch the missing range directly.
            self.node.request_block_range(
                sender, self.node.head().height + 1, block.height - 1
            )

    def debug_state(self) -> dict:
        """Slot schedule state: the current slot and its expected leader."""
        slot = self._current_slot()
        head = self.node.head()
        state = super().debug_state()
        state.update({
            "slot": slot,
            "leader": self.leader_for_slot(slot).node_id,
            "head_height": head.height if head else None,
        })
        return state

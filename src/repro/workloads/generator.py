"""Workload generators.

Open-loop generators submit transactions at a configured rate through the
simulator, independent of chain progress — throughput experiments need
offered load to exceed capacity.  Latency trackers timestamp each
transaction at submission and at commit (via chain commit listeners).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.cid import CID
from repro.crypto.keys import KeyPair
from repro.hierarchy.wallet import Wallet


@dataclass
class WorkloadStats:
    """Counts and latencies collected by a workload."""

    submitted: int = 0
    committed: int = 0
    latencies: list = field(default_factory=list)

    def throughput(self, duration: float) -> float:
        return self.committed / duration if duration > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(round((q / 100) * (len(ordered) - 1))))
        return ordered[rank]


class PaymentWorkload:
    """Open-loop intra-subnet payments at a fixed rate.

    *senders* wallets pay random recipients through randomly chosen entry
    nodes.  Commit latency is measured from submission to the transaction
    appearing in a canonical block on the observer node.
    """

    def __init__(
        self,
        sim,
        nodes: list,
        senders: list,
        rate: float,
        value: int = 1,
        rng_scope: str = "payments",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.nodes = list(nodes)
        self.senders = list(senders)
        self.rate = rate
        self.value = value
        self.stats = WorkloadStats()
        self._rng = sim.rng("workload", rng_scope)
        self._inflight: dict[CID, float] = {}
        self._stop = None
        observer = self.nodes[0]
        observer.on_commit(self._on_commit)

    def start(self) -> "PaymentWorkload":
        interval = 1.0 / self.rate
        self._stop = self.sim.every(interval, self._submit_one, label="workload:pay")
        return self

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _submit_one(self) -> None:
        sender: Wallet = self._rng.choice(self.senders)
        recipient = self._rng.choice(self.senders)
        node = self._rng.choice(self.nodes)
        signed = sender.send(node, recipient.address, value=self.value)
        if signed is not None:
            self.stats.submitted += 1
            self._inflight[signed.cid] = self.sim.now

    def _on_commit(self, block) -> None:
        for signed in block.messages:
            submitted_at = self._inflight.pop(signed.cid, None)
            if submitted_at is not None:
                self.stats.committed += 1
                self.stats.latencies.append(self.sim.now - submitted_at)


class CrossNetWorkload:
    """Open-loop cross-net transfers between two subnets of a
    :class:`~repro.hierarchy.network.HierarchicalSystem`.

    Measures end-to-end latency: submission on the source subnet to the
    recipient's balance increasing on the destination subnet.
    """

    def __init__(
        self,
        system,
        from_subnet,
        to_subnet,
        sender: Wallet,
        rate: float,
        value: int = 1,
    ) -> None:
        self.system = system
        self.from_subnet = from_subnet
        self.to_subnet = to_subnet
        self.sender = sender
        self.rate = rate
        self.value = value
        self.stats = WorkloadStats()
        self._recipient = Wallet(KeyPair(("crossnet-sink", str(from_subnet), str(to_subnet))))
        self._expected = 0
        self._pending: list[float] = []  # submission times, FIFO
        self._stop = None

    def start(self) -> "CrossNetWorkload":
        self._stop = self.system.sim.every(
            1.0 / self.rate, self._submit_one, label="workload:crossnet"
        )
        self.system.node(self.to_subnet).on_commit(self._check_arrivals)
        return self

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _submit_one(self) -> None:
        signed = self.system.cross_send(
            self.sender, self.from_subnet, self.to_subnet,
            self._recipient.address, self.value,
        )
        if signed is not None:
            self.stats.submitted += 1
            self._pending.append(self.system.sim.now)

    def _check_arrivals(self, block) -> None:
        arrived_value = self.system.balance(self.to_subnet, self._recipient.address)
        arrived = arrived_value // self.value
        while self.stats.committed < arrived and self._pending:
            submitted_at = self._pending.pop(0)
            self.stats.committed += 1
            self.stats.latencies.append(self.system.sim.now - submitted_at)


def sender_fund_spec(n_senders: int, funds: int = 10**9, scope: str = "openloop") -> dict:
    """Wallet-name → funds spec for *n_senders* workload senders.

    Pass the result as ``wallet_funds`` when constructing a system or
    baseline, then look the wallets up by name to build a workload —
    funding flows through genesis (or in-protocol injection), never by
    poking node VMs directly.
    """
    return {f"{scope}-sender-{i}": funds for i in range(n_senders)}


def open_loop_payments(sim, nodes, senders, rate: float, scope: str = "openloop") -> PaymentWorkload:
    """Convenience: start an open-loop payment workload over pre-funded
    *senders* (see :func:`sender_fund_spec`)."""
    return PaymentWorkload(sim, nodes, list(senders), rate, rng_scope=scope)

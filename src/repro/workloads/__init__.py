"""Synthetic workload generators for experiments and examples."""

from repro.workloads.generator import (
    PaymentWorkload,
    CrossNetWorkload,
    WorkloadStats,
    open_loop_payments,
    sender_fund_spec,
)

__all__ = [
    "PaymentWorkload",
    "CrossNetWorkload",
    "WorkloadStats",
    "open_loop_payments",
    "sender_fund_spec",
]

"""Exit codes and actor aborts, modeled on the Filecoin VM's."""

from __future__ import annotations

import enum


class ExitCode(enum.IntEnum):
    """Result codes for message application."""

    OK = 0
    # System errors (the VM itself rejected the message).
    SYS_SENDER_INVALID = 1
    SYS_SENDER_STATE_INVALID = 2  # bad nonce
    SYS_INSUFFICIENT_FUNDS = 3
    SYS_INVALID_RECEIVER = 4
    SYS_INVALID_METHOD = 5
    SYS_OUT_OF_GAS = 6
    # Actor-raised errors.
    USR_ILLEGAL_ARGUMENT = 16
    USR_NOT_FOUND = 17
    USR_FORBIDDEN = 18
    USR_INSUFFICIENT_FUNDS = 19
    USR_ILLEGAL_STATE = 20
    USR_ASSERTION_FAILED = 24

    @property
    def is_success(self) -> bool:
        return self == ExitCode.OK

    @property
    def is_system_error(self) -> bool:
        return 1 <= self.value <= 15


class ActorError(Exception):
    """Raised by actor code to abort the current invocation.

    The VM converts it into a receipt with the carried exit code and reverts
    every state write of the invocation (including nested sends).
    """

    def __init__(self, exit_code: ExitCode, message: str = "") -> None:
        if exit_code == ExitCode.OK:
            raise ValueError("cannot abort with ExitCode.OK")
        super().__init__(f"{exit_code.name}: {message}")
        self.exit_code = exit_code
        self.message = message

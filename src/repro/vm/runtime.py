"""The invocation context actors execute against."""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto.keys import Address
from repro.vm.exitcode import ActorError, ExitCode
from repro.vm.gas import GasTracker


class InvocationContext:
    """Everything an actor may touch during one method invocation.

    Provides scoped state access (reads/writes land under the actor's own
    namespace in the VM state tree), token operations, nested sends, and
    environment data (caller, epoch, subnet id).
    """

    def __init__(
        self,
        vm,
        actor_addr: Address,
        caller: Address,
        value_received: int,
        gas: GasTracker,
        origin: Address,
        depth: int = 0,
    ) -> None:
        self._vm = vm
        self.actor_addr = actor_addr
        self.caller = caller
        self.value_received = value_received
        self.gas = gas
        self.origin = origin  # the top-level signer of this execution
        self.depth = depth
        self.events: list[tuple[str, Any]] = []

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Current chain epoch (block height) of the executing chain."""
        return self._vm.epoch

    @property
    def subnet_id(self) -> str:
        """The executing subnet's ID string (set by the chain layer)."""
        return self._vm.subnet_id

    # ------------------------------------------------------------------
    # Actor state (scoped)
    # ------------------------------------------------------------------
    def _scoped(self, key: str) -> str:
        return f"actor/{self.actor_addr.raw}/{key}"

    def state_get(self, key: str, default: Any = None) -> Any:
        self.gas.charge(self._vm.gas_schedule.state_read, f"read {key}")
        return self._vm.state.get(self._scoped(key), default)

    def state_set(self, key: str, value: Any) -> None:
        self.gas.charge(self._vm.gas_schedule.state_write, f"write {key}")
        self._vm.state.set(self._scoped(key), value)

    def state_delete(self, key: str) -> None:
        self.gas.charge(self._vm.gas_schedule.state_write, f"delete {key}")
        self._vm.state.delete(self._scoped(key))

    def state_has(self, key: str) -> bool:
        self.gas.charge(self._vm.gas_schedule.state_read, f"has {key}")
        return self._vm.state.has(self._scoped(key))

    def state_keys(self, prefix: str = "") -> list:
        self.gas.charge(self._vm.gas_schedule.state_read, f"list {prefix}")
        scope = self._scoped(prefix)
        strip = len(self._scoped(""))
        return [k[strip:] for k in self._vm.state.keys(scope)]

    # ------------------------------------------------------------------
    # Tokens
    # ------------------------------------------------------------------
    def balance_of(self, addr: Address) -> int:
        self.gas.charge(self._vm.gas_schedule.state_read, "balance")
        return self._vm.balance_of(addr)

    @property
    def own_balance(self) -> int:
        return self.balance_of(self.actor_addr)

    def transfer(self, to: Address, amount: int) -> None:
        """Move tokens from this actor's balance to *to*."""
        self.gas.charge(self._vm.gas_schedule.value_transfer, "transfer")
        self._vm.transfer(self.actor_addr, to, amount)

    def burn(self, amount: int) -> None:
        """Destroy tokens from this actor's balance (cross-net fund burns)."""
        self.gas.charge(self._vm.gas_schedule.value_transfer, "burn")
        self._vm.burn(self.actor_addr, amount)

    def mint(self, to: Address, amount: int) -> None:
        """Create tokens out of thin air.  Restricted to system actors —
        the paper's top-down fund minting (§IV-A) is done by the SCA."""
        if not self.actor_addr.is_system_actor:
            raise ActorError(ExitCode.USR_FORBIDDEN, "only system actors may mint")
        self.gas.charge(self._vm.gas_schedule.value_transfer, "mint")
        self._vm.mint(to, amount)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def send(
        self,
        to: Address,
        method: str = "send",
        params: Any = None,
        value: int = 0,
        caller: Optional[Address] = None,
    ):
        """Synchronously invoke another actor; returns its Receipt.

        The nested call runs in its own state snapshot: if it aborts, its
        writes are reverted, and the caller receives the failed receipt and
        decides whether to tolerate or propagate the failure.

        *caller* lets **system actors only** present a different caller
        identity to the callee — the SCA uses it so a delivered cross-net
        call appears to come from its original sender, not from the SCA
        (the funds still flow from this actor's balance).
        """
        if caller is not None and not self.actor_addr.is_system_actor:
            raise ActorError(
                ExitCode.USR_FORBIDDEN, "caller impersonation is system-only"
            )
        self.gas.charge(self._vm.gas_schedule.nested_send, f"send {method}")
        return self._vm.internal_send(self, to, method, params, value, caller=caller)

    def create_actor(self, addr: Address, code: str, params: Optional[dict] = None) -> None:
        """Deploy a new actor at *addr* (used by the init actor).

        Aborts if an actor already exists there or its constructor fails.
        """
        self.gas.charge(self._vm.gas_schedule.state_write * 2, "create actor")
        receipt = self._vm.create_actor(addr, code, params)
        if not receipt.ok:
            raise ActorError(receipt.exit_code, f"constructor failed: {receipt.error}")

    def abort(self, exit_code: ExitCode, message: str = "") -> None:
        """Abort this invocation (reverting all its writes)."""
        raise ActorError(exit_code, message)

    def require(self, condition: bool, message: str, exit_code: ExitCode = ExitCode.USR_ILLEGAL_ARGUMENT) -> None:
        """Abort unless *condition* holds."""
        if not condition:
            raise ActorError(exit_code, message)

    def emit(self, kind: str, payload: Any = None) -> None:
        """Record an event visible in the receipt (and to chain watchers)."""
        self.events.append((kind, payload))

"""A small actor-based virtual machine.

Stands in for the Filecoin VM: subnets in the paper instantiate "a new
instance of the Virtual Machine … as well as any other additional module
required by the consensus" (§III-A), and the hierarchical-consensus logic
itself lives in two *system actors* — the Subnet Coordinator Actor (SCA) and
per-subnet Subnet Actors (SA).

Model:

- persistent state lives only in a :class:`~repro.storage.statetree.StateTree`
  (keys scoped per actor), so message application is transactional;
- actors are stateless method dispatchers subclassing
  :class:`~repro.vm.actor.Actor`, exporting methods with
  :func:`~repro.vm.actor.export`;
- :meth:`~repro.vm.vm.VM.apply_message` charges gas, checks nonces and
  balances, transfers value, dispatches, and commits or reverts atomically;
- aborts are raised as :class:`~repro.vm.exitcode.ActorError` with an
  :class:`~repro.vm.exitcode.ExitCode`.
"""

from repro.vm.exitcode import ActorError, ExitCode
from repro.vm.gas import GasSchedule, GasTracker, OutOfGas
from repro.vm.message import Message, Receipt, SignedMessage
from repro.vm.actor import Actor, ActorRegistry, export
from repro.vm.runtime import InvocationContext
from repro.vm.vm import VM

__all__ = [
    "ActorError",
    "ExitCode",
    "GasSchedule",
    "GasTracker",
    "OutOfGas",
    "Message",
    "Receipt",
    "SignedMessage",
    "Actor",
    "ActorRegistry",
    "export",
    "InvocationContext",
    "VM",
]

"""Gas accounting.

Gas makes execution cost explicit and funds subnet miners: "Miners in
subnets are rewarded with fees for the transactions executed in the subnet"
(§II).  The schedule is deliberately simple — flat costs per operation class
— because experiments measure protocol behaviour, not EVM-grade metering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.encoding import canonical_encode


class OutOfGas(Exception):
    """Raised internally when an invocation exhausts its gas limit."""


@dataclass(frozen=True)
class GasSchedule:
    """Cost constants (in gas units)."""

    base_message: int = 100  # flat cost of including any message
    per_param_byte: int = 1  # serialized parameter size
    method_invocation: int = 50  # dispatching into an actor
    state_read: int = 5
    state_write: int = 20
    nested_send: int = 30
    value_transfer: int = 25

    def message_intrinsic(self, params) -> int:
        """Intrinsic cost of a message before any execution."""
        try:
            size = len(canonical_encode(params))
        except TypeError:
            size = 64  # opaque params get a flat estimate
        return self.base_message + self.per_param_byte * size


class GasTracker:
    """Tracks gas consumption against a limit for one top-level message."""

    def __init__(self, limit: int, schedule: GasSchedule) -> None:
        self.limit = limit
        self.schedule = schedule
        self.used = 0

    def charge(self, amount: int, reason: str = "") -> None:
        """Consume *amount* gas; raises :class:`OutOfGas` past the limit."""
        if amount < 0:
            raise ValueError("gas charge cannot be negative")
        self.used += amount
        if self.used > self.limit:
            raise OutOfGas(f"gas limit {self.limit} exceeded ({reason or 'charge'})")

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.used)

"""The VM: transactional message application over a state tree."""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto.cid import CID
from repro.crypto.keys import Address
from repro.storage.statetree import StateTree
from repro.vm.actor import Actor, ActorRegistry
from repro.vm.exitcode import ActorError, ExitCode
from repro.vm.gas import GasSchedule, GasTracker, OutOfGas
from repro.vm.message import Message, Receipt
from repro.vm.runtime import InvocationContext

# The address that receives burned funds' accounting (never spendable).
BURN_ADDRESS = Address.actor(99)
# Implicit sender for system-originated calls (block rewards, cron, cross-msg
# application by consensus).
SYSTEM_ADDRESS = Address.actor(0)

_MAX_CALL_DEPTH = 32


class VM:
    """One subnet's execution environment.

    Holds the state tree, actor registry and token accounting.  The chain
    layer owns one VM per node per subnet and calls :meth:`apply_message`
    for every message in every block, in block order.
    """

    def __init__(
        self,
        subnet_id: str = "/root",
        registry: Optional[ActorRegistry] = None,
        gas_schedule: Optional[GasSchedule] = None,
        gas_price: int = 0,
    ) -> None:
        self.subnet_id = subnet_id
        self.registry = registry or ActorRegistry()
        if not self.registry.has(Actor.CODE):
            self.registry.register(Actor)
        self.gas_schedule = gas_schedule or GasSchedule()
        self.gas_price = gas_price
        self.state = StateTree()
        self.epoch = 0
        self._instances: dict[str, Actor] = {}

    # ------------------------------------------------------------------
    # Token accounting
    # ------------------------------------------------------------------
    def balance_of(self, addr: Address) -> int:
        return self.state.get(f"balance/{addr.raw}", 0)

    def _set_balance(self, addr: Address, amount: int) -> None:
        if amount < 0:
            raise ActorError(
                ExitCode.SYS_INSUFFICIENT_FUNDS, f"negative balance for {addr}"
            )
        self.state.set(f"balance/{addr.raw}", amount)

    def transfer(self, src: Address, dst: Address, amount: int) -> None:
        """Move *amount* from *src* to *dst*; aborts on insufficient funds."""
        if amount < 0:
            raise ActorError(ExitCode.USR_ILLEGAL_ARGUMENT, "negative transfer")
        if amount == 0 or src == dst:
            return
        balance = self.balance_of(src)
        if balance < amount:
            raise ActorError(
                ExitCode.SYS_INSUFFICIENT_FUNDS,
                f"{src} has {balance}, needs {amount}",
            )
        self._set_balance(src, balance - amount)
        self._set_balance(dst, self.balance_of(dst) + amount)

    def mint(self, to: Address, amount: int) -> None:
        """Create tokens (top-down cross-msg arrival, genesis allocations)."""
        if amount < 0:
            raise ActorError(ExitCode.USR_ILLEGAL_ARGUMENT, "negative mint")
        self._set_balance(to, self.balance_of(to) + amount)
        self.state.set("supply/minted", self.state.get("supply/minted", 0) + amount)

    def burn(self, src: Address, amount: int) -> None:
        """Destroy tokens from *src* (bottom-up cross-msg departure)."""
        self.transfer(src, BURN_ADDRESS, amount)
        self.state.set("supply/burned", self.state.get("supply/burned", 0) + amount)

    @property
    def total_minted(self) -> int:
        return self.state.get("supply/minted", 0)

    @property
    def total_burned(self) -> int:
        return self.state.get("supply/burned", 0)

    # ------------------------------------------------------------------
    # Actors
    # ------------------------------------------------------------------
    def create_actor(
        self,
        addr: Address,
        code: str,
        params: Optional[dict] = None,
        balance: int = 0,
    ) -> Receipt:
        """Instantiate an actor of *code* at *addr* and run its constructor."""
        if self.state.has(f"actorcode/{addr.raw}"):
            raise ActorError(ExitCode.USR_ILLEGAL_STATE, f"actor exists at {addr}")
        self.registry.get(code)  # validate the code exists
        self.state.set(f"actorcode/{addr.raw}", code)
        if balance:
            self.mint(addr, balance)
        return self.apply_implicit(
            SYSTEM_ADDRESS, addr, "constructor", params or {}, value=0
        )

    def actor_code(self, addr: Address) -> Optional[str]:
        return self.state.get(f"actorcode/{addr.raw}")

    def _instance(self, addr: Address) -> Actor:
        """Return (caching) the dispatcher instance for the actor at *addr*.

        Plain accounts (no registered code) get the base Actor, which
        supports bare ``send``.
        """
        code = self.actor_code(addr) or Actor.CODE
        instance = self._instances.get(code)
        if instance is None:
            instance = self.registry.get(code)()
            self._instances[code] = instance
        return instance

    # ------------------------------------------------------------------
    # Nonces
    # ------------------------------------------------------------------
    def nonce_of(self, addr: Address) -> int:
        return self.state.get(f"nonce/{addr.raw}", 0)

    def _bump_nonce(self, addr: Address) -> None:
        self.state.set(f"nonce/{addr.raw}", self.nonce_of(addr) + 1)

    # ------------------------------------------------------------------
    # Message application
    # ------------------------------------------------------------------
    def apply_message(self, message: Message, miner: Optional[Address] = None) -> Receipt:
        """Apply a top-level user message transactionally.

        Checks nonce and balance, transfers value, dispatches the method and
        commits — or reverts everything except the nonce bump and gas fee,
        which are kept so failed messages still cost their sender (and cannot
        be replayed).
        """
        gas = GasTracker(message.gas_limit, self.gas_schedule)
        try:
            gas.charge(self.gas_schedule.message_intrinsic(message.params), "intrinsic")
        except OutOfGas:
            return Receipt(ExitCode.SYS_OUT_OF_GAS, gas_used=gas.used, error="intrinsic gas")

        if message.nonce != self.nonce_of(message.from_addr):
            return Receipt(
                ExitCode.SYS_SENDER_STATE_INVALID,
                gas_used=gas.used,
                error=f"bad nonce {message.nonce}, expected {self.nonce_of(message.from_addr)}",
            )
        self._bump_nonce(message.from_addr)

        max_fee = message.gas_limit * self.gas_price
        if self.balance_of(message.from_addr) < message.value + max_fee:
            receipt = Receipt(
                ExitCode.SYS_INSUFFICIENT_FUNDS,
                gas_used=gas.used,
                error="cannot cover value plus max gas fee",
            )
            self._settle_gas(message.from_addr, miner, gas)
            return receipt

        token = self.state.snapshot()
        ctx = InvocationContext(
            vm=self,
            actor_addr=message.to_addr,
            caller=message.from_addr,
            value_received=message.value,
            gas=gas,
            origin=message.from_addr,
        )
        try:
            self.transfer(message.from_addr, message.to_addr, message.value)
            gas.charge(self.gas_schedule.method_invocation, message.method)
            result = self._instance(message.to_addr).dispatch(ctx, message.method, message.params)
            self.state.commit(token)
            receipt = Receipt(
                ExitCode.OK,
                return_value=result,
                gas_used=gas.used,
                events=tuple(ctx.events),
            )
        except ActorError as err:
            self.state.revert(token)
            receipt = Receipt(err.exit_code, gas_used=gas.used, error=err.message)
        except OutOfGas as err:
            self.state.revert(token)
            receipt = Receipt(ExitCode.SYS_OUT_OF_GAS, gas_used=message.gas_limit, error=str(err))
            gas.used = message.gas_limit
        self._settle_gas(message.from_addr, miner, gas)
        return receipt

    def _settle_gas(self, sender: Address, miner: Optional[Address], gas: GasTracker) -> None:
        """Pay the miner fee = gas_used × gas_price, capped by the balance."""
        if miner is None or self.gas_price == 0:
            return
        fee = min(gas.used * self.gas_price, self.balance_of(sender))
        if fee > 0:
            self.transfer(sender, miner, fee)

    def apply_implicit(
        self,
        from_addr: Address,
        to_addr: Address,
        method: str,
        params: Any = None,
        value: int = 0,
        gas_limit: int = 10_000_000,
    ) -> Receipt:
        """Apply a system-originated message: no nonce, no signature, no fee.

        Used for constructors, block rewards and consensus-driven cross-msg
        application (the paper's SCA state changes triggered by committed
        blocks and checkpoints).
        """
        gas = GasTracker(gas_limit, self.gas_schedule)
        token = self.state.snapshot()
        ctx = InvocationContext(
            vm=self,
            actor_addr=to_addr,
            caller=from_addr,
            value_received=value,
            gas=gas,
            origin=from_addr,
        )
        try:
            if value:
                self.transfer(from_addr, to_addr, value)
            result = self._instance(to_addr).dispatch(ctx, method, params)
            self.state.commit(token)
            return Receipt(ExitCode.OK, return_value=result, gas_used=gas.used, events=tuple(ctx.events))
        except ActorError as err:
            self.state.revert(token)
            return Receipt(err.exit_code, gas_used=gas.used, error=err.message)
        except OutOfGas as err:
            self.state.revert(token)
            return Receipt(ExitCode.SYS_OUT_OF_GAS, gas_used=gas_limit, error=str(err))

    def internal_send(
        self,
        parent_ctx: InvocationContext,
        to_addr: Address,
        method: str,
        params: Any,
        value: int,
        caller: Optional[Address] = None,
    ) -> Receipt:
        """Nested actor-to-actor call sharing the parent's gas tracker.

        *caller* overrides the presented caller identity (system actors
        only, enforced by the runtime): value still flows from the calling
        actor's own balance.
        """
        if parent_ctx.depth + 1 > _MAX_CALL_DEPTH:
            raise ActorError(ExitCode.USR_ILLEGAL_STATE, "call depth exceeded")
        token = self.state.snapshot()
        ctx = InvocationContext(
            vm=self,
            actor_addr=to_addr,
            caller=caller if caller is not None else parent_ctx.actor_addr,
            value_received=value,
            gas=parent_ctx.gas,
            origin=parent_ctx.origin,
            depth=parent_ctx.depth + 1,
        )
        try:
            if value:
                self.transfer(parent_ctx.actor_addr, to_addr, value)
            result = self._instance(to_addr).dispatch(ctx, method, params)
            self.state.commit(token)
            parent_ctx.events.extend(ctx.events)
            return Receipt(ExitCode.OK, return_value=result, gas_used=0, events=tuple(ctx.events))
        except ActorError as err:
            self.state.revert(token)
            return Receipt(err.exit_code, gas_used=0, error=err.message)
        # OutOfGas intentionally propagates: it aborts the whole top message.

    # ------------------------------------------------------------------
    # Commitments
    # ------------------------------------------------------------------
    def state_root(self) -> CID:
        return self.state.root()

    def copy(self) -> "VM":
        """An independent VM forked off the same state (O(1), shared history)."""
        clone = VM(
            subnet_id=self.subnet_id,
            registry=self.registry,
            gas_schedule=self.gas_schedule,
            gas_price=self.gas_price,
        )
        clone.state = self.state.fork()
        clone.epoch = self.epoch
        return clone

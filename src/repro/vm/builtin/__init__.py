"""Built-in actors available in every subnet VM."""

from repro.vm.actor import Actor, ActorRegistry
from repro.vm.builtin.reward import RewardActor
from repro.vm.builtin.token_faucet import FaucetActor
from repro.vm.builtin.init_actor import InitActor, INIT_ACTOR_ADDRESS, derive_actor_address


def default_registry() -> ActorRegistry:
    """Registry with the base account actor and simple built-ins.

    The hierarchy layer registers the SCA and SA codes on top of this.
    """
    registry = ActorRegistry()
    registry.register(Actor)
    registry.register(RewardActor)
    registry.register(FaucetActor)
    registry.register(InitActor)
    return registry


__all__ = [
    "default_registry",
    "RewardActor",
    "FaucetActor",
    "InitActor",
    "INIT_ACTOR_ADDRESS",
    "derive_actor_address",
]

"""The init actor: in-protocol actor deployment.

Subnet Actors are "user-defined and untrusted" contracts deployed by peers
(§III-A); deployment must therefore go through consensus like any other
transaction.  The init actor creates new actors at deterministic addresses
derived from (code, label) — which is exactly what makes subnet IDs
"inferred deterministically … from the ID of the SA" discoverable without
a directory service.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from repro.crypto.keys import Address
from repro.vm.actor import Actor, export
from repro.vm.exitcode import ExitCode

INIT_ACTOR_ADDRESS = Address.actor(3)


def derive_actor_address(code: str, label: str) -> Address:
    """The deterministic deployment address for (code, label)."""
    digest = hashlib.sha256(f"deploy:{code}:{label}".encode()).hexdigest()
    return Address("f2" + digest[:20])


class InitActor(Actor):
    """Deploys actors at deterministic addresses."""

    CODE = "init"

    @export
    def deploy(self, ctx, code: str = "", label: str = "", params: Any = None) -> str:
        """Create an actor of *code* at ``derive_actor_address(code, label)``.

        Returns the new actor's address string.  Aborts if the label is
        taken (same code+label ⇒ same address ⇒ collision).
        """
        ctx.require(code, "actor code required")
        ctx.require(label, "deployment label required")
        addr = derive_actor_address(code, label)
        ctx.create_actor(addr, code, params if isinstance(params, dict) else None)
        ctx.state_set(f"deployed/{addr.raw}", {"code": code, "label": label,
                                               "deployer": ctx.caller.raw})
        ctx.emit("init.deployed", (code, label, addr.raw))
        return addr.raw

"""A test/bench faucet actor: dispenses a bounded grant per address.

Used by workloads and examples to fund wallets inside freshly-spawned
subnets without routing setup transfers through the whole hierarchy.
"""

from __future__ import annotations

from repro.crypto.keys import Address
from repro.vm.actor import Actor, export
from repro.vm.exitcode import ExitCode


class FaucetActor(Actor):
    """Pays each requesting address at most ``grant`` tokens, once."""

    CODE = "faucet"

    @export
    def constructor(self, ctx, grant: int = 1000) -> None:
        ctx.require(grant > 0, "grant must be positive")
        ctx.state_set("grant", grant)

    @export
    def drip(self, ctx) -> int:
        """Send the grant to the caller; aborts on repeat requests."""
        claimed_key = f"claimed/{ctx.caller.raw}"
        ctx.require(
            not ctx.state_has(claimed_key),
            f"{ctx.caller} already claimed",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        grant = ctx.state_get("grant")
        ctx.require(
            ctx.own_balance >= grant,
            "faucet is dry",
            exit_code=ExitCode.USR_INSUFFICIENT_FUNDS,
        )
        ctx.state_set(claimed_key, True)
        ctx.transfer(ctx.caller, grant)
        return grant

"""Block reward actor.

Subnets reward miners with transaction fees (§II); rootnet-style block
rewards are also supported so the single-chain baseline matches present-day
Filecoin economics.  The consensus layer calls ``award`` implicitly once per
block.
"""

from __future__ import annotations

from repro.crypto.keys import Address
from repro.vm.actor import Actor, export
from repro.vm.exitcode import ExitCode

REWARD_ACTOR_ADDRESS = Address.actor(2)


class RewardActor(Actor):
    """Pays a fixed per-block subsidy out of a pre-funded reserve."""

    CODE = "reward"

    @export
    def constructor(self, ctx, per_block: int = 0) -> None:
        ctx.require(per_block >= 0, "per_block reward cannot be negative")
        ctx.state_set("per_block", per_block)
        ctx.state_set("total_awarded", 0)

    @export
    def award(self, ctx, miner: str) -> int:
        """Pay the block subsidy to *miner*; returns the amount paid.

        Only callable by the system (consensus layer), never by users.
        """
        ctx.require(
            ctx.caller.is_system_actor,
            "award is consensus-only",
            exit_code=ExitCode.USR_FORBIDDEN,
        )
        per_block = ctx.state_get("per_block", 0)
        payable = min(per_block, ctx.own_balance)
        if payable > 0:
            ctx.transfer(Address(miner), payable)
            ctx.state_set("total_awarded", ctx.state_get("total_awarded", 0) + payable)
        return payable

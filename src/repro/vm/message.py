"""VM messages (transactions) and receipts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.crypto.cid import CID, cached_cid
from repro.crypto.keys import Address, KeyPair
from repro.crypto.signature import Signature, sign, verify
from repro.vm.exitcode import ExitCode

DEFAULT_GAS_LIMIT = 1_000_000


@dataclass(frozen=True)
class Message:
    """An unsigned transaction.

    ``value`` is in integer token base units (attoFIL-like).  ``method`` is
    the exported actor method name; plain value transfers use method
    ``"send"`` with empty params.
    """

    from_addr: Address
    to_addr: Address
    value: int
    method: str = "send"
    params: Any = None
    nonce: int = 0
    gas_limit: int = DEFAULT_GAS_LIMIT

    def __post_init__(self):
        if self.value < 0:
            raise ValueError("message value cannot be negative")
        if self.nonce < 0:
            raise ValueError("nonce cannot be negative")
        if self.gas_limit <= 0:
            raise ValueError("gas limit must be positive")

    def to_canonical(self):
        params = self.params
        if hasattr(params, "to_canonical"):
            params = params.to_canonical()
        return (
            self.from_addr.raw,
            self.to_addr.raw,
            self.value,
            self.method,
            params,
            self.nonce,
            self.gas_limit,
        )

    @property
    def cid(self) -> CID:
        return cached_cid(self)


@dataclass(frozen=True)
class SignedMessage:
    """A message plus its sender's signature."""

    message: Message
    signature: Signature

    @classmethod
    def create(cls, message: Message, keypair: KeyPair) -> "SignedMessage":
        if keypair.address != message.from_addr:
            raise ValueError("signer does not match message sender")
        return cls(message=message, signature=sign(keypair, message))

    def verify_signature(self) -> bool:
        # Memoized (True only): the registry is append-only, so a signature
        # that verified once stays valid — but a failing one may verify
        # later (its sign() not yet recorded), so failures are re-checked.
        # Every validator re-verifies each gossiped message; this caches
        # that work per object.
        if self.__dict__.get("_sig_ok"):
            return True
        if self.signature.signer != self.message.from_addr:
            return False
        ok = verify(self.signature, self.message)
        if ok:
            object.__setattr__(self, "_sig_ok", True)
        return ok

    def to_canonical(self):
        return (self.message.to_canonical(), self.signature.to_canonical())

    @property
    def cid(self) -> CID:
        return cached_cid(self)


@dataclass(frozen=True)
class Receipt:
    """The result of applying one message."""

    exit_code: ExitCode
    return_value: Any = None
    gas_used: int = 0
    error: str = ""
    events: tuple = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.exit_code == ExitCode.OK

"""Actor base class and registry.

Actors are *stateless dispatchers*: all persistent state goes through the
invocation context into the VM's state tree, scoped under the actor's
address.  That keeps snapshot/revert sound — reverting the tree reverts the
actor completely.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.vm.exitcode import ActorError, ExitCode

_EXPORT_MARK = "_vm_exported"


def export(fn: Callable) -> Callable:
    """Mark an actor method as callable via messages."""
    setattr(fn, _EXPORT_MARK, True)
    return fn


class Actor:
    """Base class for all actors (smart contracts).

    Subclasses export methods with :func:`export`; each exported method
    receives the :class:`~repro.vm.runtime.InvocationContext` as its first
    argument and the message params as keyword arguments.

    ``CODE`` names the actor type in the registry and in traces.
    """

    CODE = "actor"

    @export
    def constructor(self, ctx, **params) -> None:
        """Default constructor: accepts no params, initialises nothing."""
        if params:
            raise ActorError(
                ExitCode.USR_ILLEGAL_ARGUMENT,
                f"{self.CODE} constructor takes no params, got {sorted(params)}",
            )

    @export
    def send(self, ctx, **params) -> None:
        """Bare value transfer — the value was already credited by the VM."""

    @classmethod
    def exported_methods(cls) -> dict:
        """Return {name: function} of all exported methods.

        Computed once per class: actor classes are defined at import time
        and never gain exports afterwards, and this runs on every message
        dispatch.  Cached per concrete class (``vars``, not inherited).
        """
        cached = vars(cls).get("_exported_cache")
        if cached is not None:
            return cached
        methods = {}
        for klass in reversed(cls.__mro__):
            for name, attr in vars(klass).items():
                if callable(attr) and getattr(attr, _EXPORT_MARK, False):
                    methods[name] = attr
        cls._exported_cache = methods
        return methods

    def dispatch(self, ctx, method: str, params: Any) -> Any:
        """Invoke *method* with *params* (a dict or None)."""
        fn = self.exported_methods().get(method)
        if fn is None:
            raise ActorError(
                ExitCode.SYS_INVALID_METHOD, f"{self.CODE} has no method {method!r}"
            )
        kwargs = params if isinstance(params, dict) else {}
        if params is not None and not isinstance(params, dict):
            kwargs = {"params": params}
        return fn(self, ctx, **kwargs)


class ActorRegistry:
    """Maps actor code names to classes, so state can reference code by name."""

    def __init__(self) -> None:
        self._codes: dict[str, type] = {}

    def register(self, actor_class: type) -> type:
        """Register *actor_class* under its ``CODE``; returns the class."""
        if not issubclass(actor_class, Actor):
            raise TypeError(f"{actor_class} is not an Actor subclass")
        code = actor_class.CODE
        existing = self._codes.get(code)
        if existing is not None and existing is not actor_class:
            raise ValueError(f"actor code {code!r} already registered to {existing}")
        self._codes[code] = actor_class
        return actor_class

    def get(self, code: str) -> type:
        actor_class = self._codes.get(code)
        if actor_class is None:
            raise KeyError(f"unknown actor code {code!r}")
        return actor_class

    def has(self, code: str) -> bool:
        return code in self._codes

    def codes(self) -> list:
        return sorted(self._codes)

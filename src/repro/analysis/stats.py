"""Small, dependency-free statistics helpers used by the bench harness."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return math.nan
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated q-th percentile, q in [0, 100]."""
    ordered = sorted(values)
    if not ordered:
        return math.nan
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    rank = (q / 100) * (len(ordered) - 1)
    low, high = int(math.floor(rank)), int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize(values: Sequence[float]) -> dict:
    values = list(values)
    return {
        "count": len(values),
        "mean": mean(values),
        "p50": percentile(values, 50) if values else math.nan,
        "p95": percentile(values, 95) if values else math.nan,
        "min": min(values) if values else math.nan,
        "max": max(values) if values else math.nan,
    }

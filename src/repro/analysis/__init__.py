"""Result analysis and report formatting for the bench harness."""

from repro.analysis.stats import percentile, mean, stdev, summarize
from repro.analysis.report import Table

__all__ = ["percentile", "mean", "stdev", "summarize", "Table"]

"""Plain-text result tables for benchmark output (EXPERIMENTS.md rows)."""

from __future__ import annotations

from typing import Any, Sequence


class Table:
    """A fixed-column text table printed by each experiment harness."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_format(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def show(self) -> str:
        """Print the table (pytest runs use ``--capture=tee-sys`` from
        pyproject.toml so experiment tables reach the terminal/log live)."""
        text = self.render()
        print("\n" + text)
        return text


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)

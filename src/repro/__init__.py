"""Hierarchical Consensus: a horizontal scaling framework for blockchains.

A full-system reproduction of de la Rocha, Kokoris-Kogias, Soares & Vukolic
(ICDCS 2022) on a deterministic discrete-event simulator: subnets spawned
on demand anywhere in the hierarchy, per-subnet consensus engines,
checkpoint anchoring, cross-net messages with firewall-bounded security,
content resolution, and atomic cross-net executions.

Quickstart::

    from repro import HierarchicalSystem, SubnetConfig

    system = HierarchicalSystem(seed=42, wallet_funds={"alice": 100_000})
    system.start()
    subnet = system.spawn_subnet(SubnetConfig(name="fast", engine="tendermint"))
    alice = system.wallets["alice"]
    system.fund_subnet(alice, subnet, alice.address, 50_000)
    system.run_for(30)
    print(system.balance(subnet, alice.address))

See DESIGN.md for the architecture and EXPERIMENTS.md for the experiment
index.
"""

from repro.hierarchy import (
    ROOTNET,
    Checkpoint,
    CompromisedSubnet,
    CrossMsg,
    CrossMsgMeta,
    HierarchicalSystem,
    SCA_ADDRESS,
    SignaturePolicy,
    SignedCheckpoint,
    SpawnError,
    SubnetConfig,
    SubnetID,
    Wallet,
    audit_system,
)
from repro.hierarchy.atomic import AtomicExecutionClient, AtomicParty, swap_executor
from repro.baselines import SingleChainBaseline, ShardedBaseline

__version__ = "1.0.0"

__all__ = [
    "ROOTNET",
    "Checkpoint",
    "CompromisedSubnet",
    "CrossMsg",
    "CrossMsgMeta",
    "HierarchicalSystem",
    "SCA_ADDRESS",
    "SignaturePolicy",
    "SignedCheckpoint",
    "SpawnError",
    "SubnetConfig",
    "SubnetID",
    "Wallet",
    "audit_system",
    "AtomicExecutionClient",
    "AtomicParty",
    "swap_executor",
    "SingleChainBaseline",
    "ShardedBaseline",
    "__version__",
]

"""The unified node/network runtime every chain in the system runs on.

The paper's framework hosts *many* subnets, each running a *different*
consensus engine over one shared transport (§II, Fig. 2).  This package is
that claim in code — one runtime, three compositions:

- :class:`~repro.runtime.node.NodeRuntime` — a full validator node
  composing (a) a pluggable :class:`~repro.consensus.base.ConsensusEngine`
  (PoW/PoS/PoA/Tendermint/Mir via the engine registry), (b) the gossip
  transport facade, and (c) the chain store / mempool / validation /
  execution pipeline from :mod:`repro.chain`;
- :class:`~repro.runtime.stack.NetworkStack` — the simulator + topology +
  transport + gossipsub fabric, built once and shared by every node of a
  deployment;
- :class:`~repro.runtime.cluster.ValidatorCluster` — N nodes validating one
  chain, with shared lifecycle and measurement helpers.

The hierarchy layer (:class:`~repro.hierarchy.node.SubnetNode`), both
baselines and the consensus test harness all instantiate these rather than
keeping private node/network stacks.
"""

from repro.runtime.node import NodeRuntime, subnet_topic
from repro.runtime.stack import NetworkStack
from repro.runtime.cluster import ClusterMember, ValidatorCluster, cluster_members

__all__ = [
    "NodeRuntime",
    "subnet_topic",
    "NetworkStack",
    "ClusterMember",
    "ValidatorCluster",
    "cluster_members",
]

"""`ValidatorCluster` — N :class:`NodeRuntime`\\ s validating one chain.

Every place that used to hand-roll the same loop — build keys, derive a
:class:`~repro.consensus.base.ValidatorSet`, construct one node per
validator, start them — now goes through :meth:`ValidatorCluster.build`.
A ``node_factory`` hook lets callers construct subclasses (the hierarchy's
``SubnetNode``) or attach per-node extras without re-duplicating the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.crypto.keys import KeyPair
from repro.consensus.base import ConsensusParams, Validator, ValidatorSet
from repro.runtime.node import NodeRuntime
from repro.runtime.stack import NetworkStack


@dataclass(frozen=True)
class ClusterMember:
    """One validator seat: node id, signing keypair and voting power."""

    node_id: str
    keypair: KeyPair
    power: int = 1


def cluster_members(
    keys: Sequence[KeyPair],
    id_prefix: str,
    powers: Optional[Sequence[int]] = None,
) -> list[ClusterMember]:
    """Members named ``{id_prefix}#{i}``, the convention used everywhere."""
    powers = list(powers) if powers is not None else [1] * len(keys)
    return [
        ClusterMember(node_id=f"{id_prefix}#{i}", keypair=keys[i], power=powers[i])
        for i in range(len(keys))
    ]


class ValidatorCluster:
    """The validator nodes of one chain, with shared lifecycle helpers."""

    def __init__(self, subnet_id: str, validators: ValidatorSet, nodes: list) -> None:
        self.subnet_id = subnet_id
        self.validators = validators
        self.nodes = list(nodes)

    @classmethod
    def build(
        cls,
        members: Sequence[ClusterMember],
        *,
        subnet_id: str,
        genesis_block,
        genesis_vm,
        consensus_params: ConsensusParams,
        stack: Optional[NetworkStack] = None,
        sim=None,
        gossip=None,
        node_factory: Optional[Callable[[int, ClusterMember, ValidatorSet], NodeRuntime]] = None,
        byzantine: Optional[dict] = None,
    ) -> "ValidatorCluster":
        """Build one node per member.

        ``node_factory(index, member, validators)`` overrides node
        construction; the default instantiates :class:`NodeRuntime` on the
        given stack.  ``byzantine`` maps node ids to behaviour sets for the
        default factory.
        """
        if stack is not None:
            sim = sim or stack.sim
            gossip = gossip or stack.gossip
        if sim is None or gossip is None:
            raise ValueError("provide either stack or both sim and gossip")
        validators = ValidatorSet(
            Validator(node_id=m.node_id, address=m.keypair.address, power=m.power)
            for m in members
        )
        if node_factory is None:

            def node_factory(index: int, member: ClusterMember, vset: ValidatorSet):
                return NodeRuntime(
                    sim=sim,
                    node_id=member.node_id,
                    keypair=member.keypair,
                    subnet_id=subnet_id,
                    genesis_block=genesis_block,
                    genesis_vm=genesis_vm,
                    gossip=gossip,
                    validators=vset,
                    consensus_params=consensus_params,
                    byzantine=(byzantine or {}).get(member.node_id),
                )

        nodes = [node_factory(i, member, validators) for i, member in enumerate(members)]
        return cls(subnet_id, validators, nodes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ValidatorCluster":
        for node in self.nodes:
            node.start()
        return self

    def stop(self) -> None:
        for node in self.nodes:
            node.stop()

    def replay_chain(self, source: NodeRuntime) -> None:
        """Sync every node from *source*'s canonical chain (state handoff)."""
        blocks = source.store.canonical_chain()[1:]
        for node in self.nodes:
            for block in blocks:
                node.receive_block(block, final=True)

    # ------------------------------------------------------------------
    # Inspection / measurement
    # ------------------------------------------------------------------
    @property
    def primary(self) -> NodeRuntime:
        """A representative (first) node."""
        return self.nodes[0]

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> NodeRuntime:
        return self.nodes[index]

    def committed_tx_count(self) -> int:
        """User transactions on the primary's canonical chain."""
        return sum(len(b.messages) for b in self.primary.store.canonical_chain())

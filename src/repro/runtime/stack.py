"""`NetworkStack` — the shared transport fabric under every deployment.

One deployment (the hierarchy, a baseline, a consensus test cluster) builds
exactly one stack: a deterministic :class:`~repro.sim.scheduler.Simulator`,
a latency/loss :class:`~repro.net.topology.Topology`, a point-to-point
:class:`~repro.net.transport.Transport` and the gossipsub-style
:class:`~repro.net.gossip.GossipNetwork` over it.  Every node routes its
traffic through this facade instead of assembling a private copy of the
net layer.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.gossip import GossipNetwork, GossipParams
from repro.net.topology import Topology, UniformLatency
from repro.net.transport import Transport
from repro.sim.scheduler import Simulator


class NetworkStack:
    """Simulator + topology + transport + gossip, composed once."""

    def __init__(
        self,
        seed: int = 1,
        latency: float = 0.02,
        jitter: Optional[float] = None,
        loss_rate: float = 0.0,
        gossip_params: Optional[GossipParams] = None,
        sim: Optional[Simulator] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator(seed=seed)
        if topology is None:
            model = UniformLatency(
                base=latency, jitter=latency / 2 if jitter is None else jitter
            )
            topology = Topology(model, loss_rate=loss_rate)
        self.topology = topology
        self.transport = Transport(self.sim, self.topology)
        self.gossip = GossipNetwork(self.sim, self.transport, gossip_params)

    # ------------------------------------------------------------------
    # Clock helpers shared by every deployment built on the stack
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def run_for(self, seconds: float) -> "NetworkStack":
        self.sim.run_until(self.sim.now + seconds)
        return self

    def run_until(self, time: float) -> "NetworkStack":
        self.sim.run_until(time)
        return self

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float = 120.0, step: float = 0.25
    ) -> bool:
        """Advance simulated time until *predicate* holds; False on timeout."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if predicate():
                return True
            self.sim.run_until(min(self.sim.now + step, deadline))
        return predicate()

    def shutdown(self) -> None:
        self.gossip.shutdown()

"""The generic validator node — one runtime for every chain in the system.

``NodeRuntime`` owns one chain's store, VM, mempool and consensus engine,
wired to the subnet's pubsub topic.  Consensus is pluggable through the
engine registry (:func:`repro.consensus.base.make_engine`); transport is
the shared :class:`~repro.net.gossip.GossipNetwork` facade over
:class:`~repro.net.transport.Transport`; the block pipeline (assembly,
validation, execution, reorg housekeeping) comes from :mod:`repro.chain`.

The hierarchy layer subclasses this with cross-net behaviour (cross-msg
pool, checkpoint signing, parent syncing); the single-chain and sharded
baselines and the consensus unit tests instantiate it directly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.crypto.cid import CID
from repro.crypto.keys import Address, KeyPair
from repro.chain.block import BlockHeader, FullBlock
from repro.chain.chainstore import ChainStore
from repro.chain.message_pool import MessagePool
from repro.chain.validation import ValidationError, validate_block_shape
from repro.consensus.base import ConsensusParams, ValidatorSet, make_engine
from repro.net.gossip import GossipNetwork, PubsubEnvelope
from repro.vm.builtin.reward import REWARD_ACTOR_ADDRESS
from repro.vm.message import SignedMessage
from repro.vm.vm import SYSTEM_ADDRESS, VM


def subnet_topic(subnet_id: str) -> str:
    """The pubsub topic carrying a subnet's chain traffic (§III-A)."""
    return f"subnet:{subnet_id}"


class NodeRuntime:
    """A full node validating one subnet chain."""

    def __init__(
        self,
        sim,
        node_id: str,
        keypair: KeyPair,
        subnet_id: str,
        genesis_block: FullBlock,
        genesis_vm: VM,
        gossip: GossipNetwork,
        validators: ValidatorSet,
        consensus_params: ConsensusParams,
        byzantine: Optional[set] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.keypair = keypair
        self.miner_address = keypair.address
        self.subnet_id = subnet_id
        self.gossip = gossip
        self.validators = validators
        self.byzantine = set(byzantine or ())

        self.store = ChainStore()
        self.store.add_block(genesis_block)
        self.vm = genesis_vm.copy()
        self.vm.epoch = 0
        self.mempool = MessagePool()
        self._orphans: dict[CID, list[FullBlock]] = {}  # parent -> waiting blocks
        # Post-states of blocks this node assembled itself, keyed by block
        # CID: when the block comes back through receive_block unchanged,
        # the deterministic execution need not be repeated.  Bounded; an
        # entry is dropped on use or overflow (engines that mutate the
        # header after assembly simply miss and re-execute).
        self._assembled: dict[CID, tuple[VM, tuple]] = {}
        self._commit_listeners: list[Callable[[FullBlock], None]] = []
        self._restart_epoch = 0  # invalidates pending restart resumes
        self._notified: set[CID] = {genesis_block.cid}  # blocks already announced
        # Protocol events (receipt events) per executed-but-not-yet-committed
        # block, kept only while a commit-time observer (span tracer or
        # invariant monitor) is installed on the simulator.
        self._block_events: dict[CID, tuple] = {}

        self.engine = make_engine(sim, self, validators, consensus_params)
        # State snapshots are kept for every engine (pruned by depth): even
        # "fork-free" engines fork transiently under partitions, and a
        # recovering node must be able to validate blocks off its own head.
        # Snapshots are O(1) tree forks sharing structure with the live VM.
        self.store.put_state(genesis_block.cid, self.vm.state.fork())

        self.topic = subnet_topic(subnet_id)
        gossip.subscribe(node_id, self.topic, self._on_pubsub)
        # Direct block-range sync for peers that fall further behind than
        # gossip's IHAVE history window covers (e.g. a long outage).
        self._sync_inflight = False
        gossip.rpc.expose(node_id, "chain:blocks", self._serve_block_range)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.engine.start()

    def stop(self) -> None:
        self.engine.stop()
        self._restart_epoch += 1  # cancel any pending sync-grace resume
        self.gossip.unsubscribe(self.node_id, self.topic)

    def restart(
        self, sync_grace: float = 1.0, max_sync_wait: float = 15.0
    ) -> None:
        """Rejoin the subnet after a :meth:`stop` (crash/restart faults).

        Re-subscribes the chain topic immediately — gossip (eager mesh
        push plus lazy IHAVE/IWANT repair) starts filling the blocks the
        node missed while down — but keeps the engine paused until the
        local head looks *caught up* (its timestamp within two block
        times of now).  A validator proposing off a stale head the moment
        it comes back self-commits a conflicting block on lag-0 engines,
        so it listens passively first, polling every *sync_grace*
        simulated seconds.  After *max_sync_wait* it starts regardless —
        if the whole subnet is stalled no head ever looks fresh, and a
        proposer is exactly what the subnet is missing.  ``sync_grace=0``
        restores the immediate restart.  Idempotent; a :meth:`stop`
        during the wait cancels the pending resume.
        """
        self.gossip.subscribe(self.node_id, self.topic, self._on_pubsub)
        self._restart_epoch += 1
        token = self._restart_epoch
        if sync_grace <= 0:
            if not self.engine.running:
                self.engine.start()
            return
        deadline = self.sim.now + max_sync_wait
        freshness = 2.0 * self.engine.params.block_time

        def _resume() -> None:
            if token != self._restart_epoch or self.engine.running:
                return
            caught_up = self.sim.now - self.head().header.timestamp <= freshness
            if caught_up or self.sim.now >= deadline:
                self.engine.start()
            else:
                self.sim.schedule(sync_grace, _resume, label="node:restart")

        self.sim.schedule(sync_grace, _resume, label="node:restart")

    def swap_engine(self, engine_factory) -> Any:
        """Replace the consensus engine in place; returns the old engine.

        *engine_factory* is called as ``factory(sim, node, validators,
        params)`` — the same plug point as
        :func:`repro.consensus.base.make_engine`.  The old engine is
        stopped first and handed back so a fault can restore it on heal.
        """
        old = self.engine
        was_running = old.running
        old.stop()
        self.engine = engine_factory(self.sim, self, self.validators, old.params)
        if was_running:
            self.engine.start()
        return old

    def is_byzantine(self, behaviour: str) -> bool:
        return behaviour in self.byzantine

    # ------------------------------------------------------------------
    # Pubsub
    # ------------------------------------------------------------------
    def _on_pubsub(self, envelope: PubsubEnvelope) -> None:
        kind, payload = envelope.data
        if envelope.publisher == self.node_id:
            return  # own messages were handled locally at publish time
        if kind == "msg":
            signed: SignedMessage = payload
            self.mempool.add(signed)
        else:
            self.engine.handle(kind, payload, envelope.publisher)

    def broadcast(self, kind: str, payload: Any) -> None:
        self.gossip.publish(self.node_id, self.topic, (kind, payload))

    # ------------------------------------------------------------------
    # User-facing entry points
    # ------------------------------------------------------------------
    def submit_message(self, signed: SignedMessage) -> bool:
        """Accept a user transaction into the mempool and gossip it."""
        if not self.mempool.add(signed):
            return False
        self.broadcast("msg", signed)
        return True

    def head(self) -> FullBlock:
        return self.store.head

    # ------------------------------------------------------------------
    # Direct block sync (RPC; for gaps beyond gossip's IHAVE history)
    # ------------------------------------------------------------------
    _SYNC_BATCH_LIMIT = 256

    def _serve_block_range(self, caller: str, params) -> list:
        """RPC ``chain:blocks``: canonical-chain blocks in [start, end]."""
        if not self.engine.running:
            raise RuntimeError("node not serving")  # down/syncing nodes abstain
        start, end = params
        head = self.store.head
        end = min(end, head.height)
        start = max(start, 0, end - self._SYNC_BATCH_LIMIT + 1)
        blocks: list[FullBlock] = []
        cursor: Optional[FullBlock] = head
        while cursor is not None and cursor.height >= start:
            if cursor.height <= end:
                blocks.append(cursor)
            cursor = self.store.get_optional(cursor.header.parent)
        blocks.reverse()
        return blocks

    def request_block_range(self, peer: str, start: int, end: int) -> bool:
        """Fetch blocks [start, end] from *peer* and apply them as final.

        Used when a commit certificate proves a future block but the
        ancestors are no longer advertisable over gossip.  One request in
        flight at a time; the parked orphan cascade applies the rest.
        """
        if self._sync_inflight or end < start or peer == self.node_id:
            return False
        self._sync_inflight = True

        def _on_blocks(result, error) -> None:
            self._sync_inflight = False
            if error is not None or not result:
                self.sim.metrics.counter(f"chain.{self.subnet_id}.sync_failed").inc()
                return
            self.sim.metrics.counter(f"chain.{self.subnet_id}.sync_blocks").inc(
                len(result)
            )
            # Synced blocks adopt the engine's own finality semantics —
            # instant-finality engines only serve decided blocks, while
            # fork-capable ones (PoW) keep depth-based finality intact.
            final = self.engine.INSTANT_FINALITY
            for block in result:
                self.receive_block(block, final=final)

        self.gossip.rpc.call(
            self.node_id, peer, "chain:blocks", (start, end), _on_blocks
        )
        return True

    # ------------------------------------------------------------------
    # Block assembly (called by the consensus engine when we lead)
    # ------------------------------------------------------------------
    def assemble_block(
        self,
        height: int,
        parent_cid: CID,
        consensus_data: dict,
        message_filter: Optional[Callable[[SignedMessage], bool]] = None,
    ) -> FullBlock:
        parent_state = self._state_at(parent_cid)
        scratch = self._vm_from_state(parent_state)
        scratch.epoch = height

        selected = self.mempool.select(
            nonce_of=scratch.nonce_of,
            max_messages=self.engine.params.max_block_messages,
        )
        if message_filter is not None:
            selected = [s for s in selected if message_filter(s)]
        cross = self.select_cross_messages(scratch)

        events = self._execute_payload(
            scratch, selected, cross, self.miner_address, height, parent_cid
        )
        header = BlockHeader(
            subnet_id=self.subnet_id,
            height=height,
            parent=parent_cid,
            state_root=scratch.state_root(),
            messages_root=FullBlock.compute_messages_root(selected, cross),
            timestamp=self.sim.now,
            miner=self.miner_address,
            consensus_data=consensus_data,
        )
        block = FullBlock(
            header=header, messages=tuple(selected), cross_messages=tuple(cross)
        )
        self._assembled[block.cid] = (scratch, tuple(events))
        while len(self._assembled) > 16:
            self._assembled.pop(next(iter(self._assembled)))
        self._publish_execution(block.cid, scratch.state, events)
        return block

    def select_cross_messages(self, scratch_vm: VM) -> list:
        """Cross-msgs to include; the hierarchy node overrides this."""
        return []

    # ------------------------------------------------------------------
    # Block reception (from the engine, local or remote)
    # ------------------------------------------------------------------
    def receive_block(self, block: FullBlock, final: bool) -> bool:
        """Validate, execute and store *block*; returns acceptance.

        Out-of-order blocks (parent unknown) are parked and retried when
        the parent arrives — PoW gossip can deliver children first.
        """
        if self.store.has(block.cid):
            return False
        parent = self.store.get_optional(block.header.parent)
        if parent is None:
            self._orphans.setdefault(block.header.parent, []).append(block)
            return False
        try:
            validate_block_shape(block, parent, self.subnet_id)
        except ValidationError as err:
            self.sim.metrics.counter(f"chain.{self.subnet_id}.invalid_blocks").inc()
            self.sim.trace.emit("block.invalid", self.subnet_id, block.cid.short(), err)
            return False

        assembled = self._assembled.pop(block.cid, None)
        shared = None if assembled is not None else self._shared_execution(block.cid)
        if assembled is not None:
            # Our own assembly: the post-state was already computed from
            # this exact (parent state, payload); execution is deterministic,
            # so re-running it (and re-checking the root it produced) would
            # only reproduce the same result.
            scratch, events = assembled
        elif shared is not None:
            # Another honest validator of this subnet already executed this
            # exact block; fork its published post-state instead of
            # re-deriving it (identical by determinism).
            tree, events = shared
            scratch = self._vm_from_state(tree)
            scratch.epoch = block.height
        else:
            parent_state = self._state_at(block.header.parent)
            if parent_state is None:
                return False  # state pruned too deep to validate; ignore
            scratch = self._vm_from_state(parent_state)
            scratch.epoch = block.height
            events = self._execute_payload(
                scratch, block.messages, block.cross_messages,
                block.header.miner, block.height, block.header.parent,
            )
            if scratch.state_root() != block.header.state_root:
                self.sim.metrics.counter(f"chain.{self.subnet_id}.state_mismatch").inc()
                self.sim.trace.emit(
                    "block.state_mismatch", self.subnet_id, block.cid.short()
                )
                return False
            self._publish_execution(block.cid, scratch.state, events)
        if shared is None:
            # Only executions that computed a root report root work: on the
            # shared path this node never hashed anything, and publishing a
            # zero would just mask the executing node's sample.
            self.sim.metrics.gauge("state.root.buckets_rehashed").set(
                scratch.state.last_root_rehashed
            )
        self.sim.metrics.gauge("state.tree.layer_depth").set(scratch.state.chain_depth)

        self.store.put_state(block.cid, scratch.state.fork())
        if self.sim.span_tracer is not None or self.sim.invariant_monitor is not None:
            self._block_events[block.cid] = tuple(events)
            # Forked/orphaned blocks are never announced, so cap the buffer
            # rather than letting dead entries accumulate forever.
            while len(self._block_events) > 4096:
                self._block_events.pop(next(iter(self._block_events)))

        old_head = self.store.head_cid
        head_changed = self.store.add_block(block)
        if head_changed:
            self.vm = scratch
            self._after_head_change(old_head, block)
        self._retry_orphans(block.cid, final)
        return True

    def _retry_orphans(self, parent_cid: CID, final: bool) -> None:
        waiting = self._orphans.pop(parent_cid, [])
        for orphan in waiting:
            self.receive_block(orphan, final)

    def _after_head_change(self, old_head: Optional[CID], new_head_block: FullBlock) -> None:
        """Housekeeping when the canonical head moves."""
        new_head = new_head_block.cid
        if old_head is not None and not self.store.is_extension(old_head, new_head):
            self.sim.metrics.counter(f"chain.{self.subnet_id}.reorgs").inc()
            self.sim.trace.emit(
                "chain.reorg", self.subnet_id, old_head.short(), new_head.short()
            )
            # Depth = abandoned blocks of the old branch (back to the fork
            # point, which is canonical again by now).
            depth = 0
            for block in self.store.ancestors(old_head):
                if self.store.is_canonical(block.cid):
                    break
                depth += 1
            self.sim.metrics.histogram(f"chain.{self.subnet_id}.reorg.depth").observe(depth)
            monitor = self.sim.invariant_monitor
            if monitor is not None:
                monitor.on_reorg(self, old_head, new_head_block, depth)
        # Newly canonical segment, oldest first.  Each block is announced to
        # commit listeners at most once ever, even across reorgs (listeners
        # receive no "un-commit" signal; fork-capable engines therefore act
        # only on finalized depths).
        added: list[FullBlock] = []
        for block in self.store.ancestors(new_head):
            if block.cid in self._notified:
                break
            added.append(block)
        added.reverse()
        for block in added:
            self._notified.add(block.cid)
        for block in added:
            self.mempool.remove_included(block.messages)
            self.sim.metrics.mark(f"chain.{self.subnet_id}.txs", len(block.messages))
            self.sim.metrics.mark(f"chain.{self.subnet_id}.blocks", 1)
            self.sim.trace.emit(
                "block.commit", self.subnet_id,
                f"h={block.height}", block.cid.short(), f"msgs={len(block.messages)}",
            )
            tracer = self.sim.span_tracer
            monitor = self.sim.invariant_monitor
            if tracer is not None or monitor is not None:
                events = self._block_events.pop(block.cid, ())
                if tracer is not None:
                    tracer.on_block_commit(self.subnet_id, self.node_id, block, events)
                if monitor is not None:
                    monitor.on_block_commit(self, block, events)
            for listener in self._commit_listeners:
                listener(block)
        self.mempool.drop_stale(self.vm.nonce_of)

    def on_commit(self, listener: Callable[[FullBlock], None]) -> None:
        """Register a callback fired for every newly canonical block."""
        self._commit_listeners.append(listener)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_payload(
        self, vm: VM, messages, cross_messages, miner: Address,
        height: int, parent_cid: Optional[CID] = None,
    ) -> list:
        """Apply a block's payload to *vm* in canonical order.

        Returns the concatenated receipt events of the payload, in
        execution order — the raw material for commit-time observers
        (the telemetry span tracer correlates cross-net hops from them).
        """
        events: list = []
        if vm.actor_code(REWARD_ACTOR_ADDRESS) == "reward":
            receipt = vm.apply_implicit(
                SYSTEM_ADDRESS, REWARD_ACTOR_ADDRESS, "award", {"miner": miner.raw}
            )
            events.extend(receipt.events)
        for cross in cross_messages:
            receipt = self.apply_cross_message(vm, cross, miner)
            if receipt is not None:
                events.extend(receipt.events)
        for signed in messages:
            receipt = vm.apply_message(signed.message, miner=miner)
            events.extend(receipt.events)
        return events

    def apply_cross_message(self, vm: VM, cross, miner: Address):
        """Hook for the hierarchy node; the base chain has no cross-msgs."""
        raise ValidationError("cross messages are not supported on this chain")

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def _state_at(self, block_cid: CID):
        """The state tree after *block_cid*, or None if unavailable.

        The returned tree is only ever forked from (never written), so
        handing out the live VM's tree for the head is safe.
        """
        if block_cid == self.store.head_cid:
            return self.vm.state
        return self.store.get_state(block_cid)

    def _vm_from_state(self, state) -> VM:
        """A scratch VM branched off *state* — an O(1) fork, no state copy."""
        vm = VM(
            subnet_id=self.vm.subnet_id,
            registry=self.vm.registry,
            gas_schedule=self.vm.gas_schedule,
            gas_price=self.vm.gas_price,
        )
        vm.state = state.fork()
        return vm

    # Shared block-execution cache: block execution is a pure function of
    # (parent post-state, block payload), and every honest validator of a
    # subnet holds content-identical parent state for a block it accepts —
    # so the first validator to execute a block publishes its post-state
    # tree (a frozen fork) and receipt events, and the others fork it
    # instead of re-deriving the identical result.  Keyed by block CID
    # (which commits to parent, payload, and claimed state root) plus the
    # subnet and runtime class, so subclasses with different execution
    # hooks never share.  Byzantine nodes neither publish nor consume.
    _EXEC_CACHE_CAP = 512

    def _exec_cache(self) -> dict:
        return self.sim.memo.setdefault("runtime.exec_cache", {})

    def _shared_execution(self, block_cid: CID):
        if self.byzantine:
            return None
        return self._exec_cache().get((self.subnet_id, type(self).__name__, block_cid))

    def _publish_execution(self, block_cid: CID, state, events) -> None:
        if self.byzantine:
            return
        cache = self._exec_cache()
        cache[(self.subnet_id, type(self).__name__, block_cid)] = (
            state.fork(),
            tuple(events),
        )
        while len(cache) > self._EXEC_CACHE_CAP:
            cache.pop(next(iter(cache)))

"""The grandfathering baseline.

``LINT_BASELINE.txt`` (committed at the repo root) lists findings that
predate a rule or are provably benign; each entry carries a justifying
comment.  Entries match by **content** — ``rule_id | path | stripped
source line`` — not by line number, so unrelated edits above a
grandfathered line do not invalidate it, while editing the flagged line
itself forces a re-review.

File format, one entry per line::

    # why this is benign …
    DET001|src/repro/foo/bar.py|offending_source_line_stripped

Blank lines and ``#`` comments are free-form; an entry inherits the
comment block directly above it (the CLI prints it back when listing
baselined findings).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.findings import Finding

DEFAULT_BASELINE_NAME = "LINT_BASELINE.txt"


def normalize_entry_path(path: str) -> str:
    """Reduce *path* to its ``repro/…`` suffix so entries match no matter
    whether the CLI was invoked with absolute or repo-relative paths."""
    norm = path.replace("\\", "/")
    marker = "repro/"
    idx = norm.rfind("/" + marker)
    if idx >= 0:
        return norm[idx + 1:]
    if norm.startswith(marker):
        return norm
    return norm


def format_baseline_entry(finding: Finding) -> str:
    """The canonical baseline line for *finding*."""
    return f"{finding.rule_id}|{normalize_entry_path(finding.path)}|{finding.source_line}"


@dataclass
class Baseline:
    """Parsed baseline: entry -> justification comment."""

    entries: dict[str, str] = field(default_factory=dict)
    path: Optional[str] = None

    def matches(self, finding: Finding) -> bool:
        return format_baseline_entry(finding) in self.entries

    def justification(self, finding: Finding) -> str:
        return self.entries.get(format_baseline_entry(finding), "")

    def unused(self, findings: Iterable[Finding]) -> list[str]:
        """Baseline entries no finding matched — stale, should be pruned."""
        seen = {format_baseline_entry(f) for f in findings}
        return [entry for entry in self.entries if entry not in seen]

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: Optional[str]) -> Baseline:
    """Load *path*; a missing file is an empty baseline (nothing excused)."""
    baseline = Baseline(path=path)
    if path is None or not os.path.exists(path):
        return baseline
    comment: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.rstrip("\n")
            stripped = line.strip()
            if not stripped:
                comment = []
                continue
            if stripped.startswith("#"):
                comment.append(stripped.lstrip("# "))
                continue
            parts = stripped.split("|", 2)
            if len(parts) == 3:
                stripped = f"{parts[0]}|{normalize_entry_path(parts[1])}|{parts[2]}"
            baseline.entries[stripped] = " ".join(comment)
            comment = []
    return baseline


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write every finding as a baseline entry (used by ``--write-baseline``).

    Entries get a TODO comment so a human must still justify each one —
    an unjustified baseline defeats the point of having rules.
    """
    ordered = sorted(findings, key=lambda f: f.sort_key())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "# repro.lint baseline — grandfathered findings.\n"
            "# Every entry MUST carry a comment explaining why it is benign.\n"
            "# Format: RULE|path|stripped source line (content-matched).\n\n"
        )
        for finding in ordered:
            handle.write(f"# TODO: justify — {finding.message}\n")
            handle.write(format_baseline_entry(finding) + "\n\n")
    return len(ordered)
